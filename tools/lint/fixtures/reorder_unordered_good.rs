// Known-good: the real reorder stage never groups through a hash map at
// all — it sorts the frontier in place by a total (segment, address)
// key — and any hash-map index used for grouping launders its iteration
// through an explicit sort before the order can escape.
use std::collections::HashMap;

pub struct Grouper {
    segments: HashMap<u64, Vec<u32>>,
}

impl Grouper {
    pub fn emit(&mut self, out: &mut Vec<u32>) {
        let mut ids: Vec<u64> = self.segments.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(vs) = self.segments.get(&id) {
                out.extend(vs);
            }
        }
    }
}
