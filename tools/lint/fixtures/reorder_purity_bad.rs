// Known-bad: a frontier-reorder sort key derived from live machine
// state. The key must be a pure function of the immutable layout's
// address arithmetic — sizing the segment from the simulated clock or
// breaking ties on the traffic monitor's counters would make frontier
// order (and with it every coalesced transaction and cache probe)
// depend on how far the run has progressed, breaking bit-identity with
// the unreordered engine.
pub struct Reorder;

impl Reorder {
    fn segment_key(&self, m: &Machine, start: u64) -> (u64, u64) {
        let seg = 1 + m.now % 4096; // live clock sizes the segment
        (self.addr(start) / seg, m.monitor.hot_lines()) // traffic counters order ties
    }
}
