// Known-good: the tier decision reads only the policy's own accumulated
// densities and configured thresholds; promotions and demotions replay
// from the plan round's inputs alone.
pub struct TierPolicy;

impl TierPolicy {
    fn decide_tiered(&self, r: usize, upcoming: f64) -> u8 {
        if upcoming <= 0.0 {
            return 2; // serve in place from the external tier
        }
        if self.cumulative[r] + upcoming >= self.cxl_stage_threshold {
            0 // stage into the HBM pool
        } else {
            2
        }
    }
}
