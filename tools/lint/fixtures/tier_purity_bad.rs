// Known-bad: a tier decision reading live machine state. Placement must
// be a pure function of the planner's iteration-start densities, or the
// set of staged/promoted regions — and every address and counter
// downstream of it — would depend on how warp tasks interleaved in the
// simulated machine.
pub struct TierPolicy;

impl TierPolicy {
    fn decide_tiered(&self, m: &Machine, r: usize) -> bool {
        let cut = m.now; // live clock as a placement input
        let seen = m.monitor.bytes_to_device(); // live traffic as an input
        self.cumulative[r] >= self.threshold(cut, seen)
    }
}
