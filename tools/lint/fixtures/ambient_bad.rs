// Known-bad: ambient clock and OS randomness inside a deterministic
// crate — exactly what an async-pipelined transfer path would be
// tempted to reach for.
use std::time::Instant;

pub fn schedule_transfer(queue_len: usize) -> u64 {
    let started = Instant::now();
    let jitter = rand::random::<u64>() % 7;
    started.elapsed().as_nanos() as u64 + queue_len as u64 + jitter
}
