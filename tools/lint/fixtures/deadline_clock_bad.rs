// Known-bad: a deadline scheduler reading wall clocks — expiry becomes
// a function of host load rather than queue state, so replaying the
// same submissions yields different serving outcomes.
pub fn expired(deadline_ns: u128) -> bool {
    let boot = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    boot.elapsed().as_nanos() + wall.elapsed().unwrap().as_nanos() > deadline_ns
}
