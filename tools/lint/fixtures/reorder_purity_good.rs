// Known-good: the frontier-reorder key is pure address arithmetic over
// the immutable layout — the segment size is captured once from the
// engine configuration at load, ties break on the address itself — so
// the ordering replays from iteration-start state alone.
pub struct Reorder;

impl Reorder {
    fn segment_key(&self, start: u64, segment_bytes: u64) -> (u64, u64) {
        let addr = self.edge_addr(start);
        (addr / segment_bytes.max(1), addr)
    }
}
