// Known-good: ranking reads only the planner's iteration-start inputs —
// the staging table, the accumulated per-region densities and the
// round's touch set — and orders candidates totally (score, then region
// index), so the prediction is replayable from those inputs alone.
pub struct Ranker;

impl Ranker {
    fn rank_candidates(&self, table: &[u64], touched: &[(u32, u64)]) -> Vec<u32> {
        let mut scored: Vec<(f64, u32)> = Vec::new();
        for (r, _) in table.iter().enumerate() {
            let score = self.cum[r] + self.predicted(touched, r);
            if score >= self.threshold {
                scored.push((score, r as u32));
            }
        }
        scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, r)| r).collect()
    }
}
