// Known-good: the fold is declared canonical-order — it walks vertices
// ascending and each neighbour list in CSR order, so every execution
// plan produces bit-identical sums (PageRank's sanctioned pattern).
pub struct Ranks {
    next: Vec<f64>,
}

impl Ranks {
    fn post_iteration(&mut self, contrib: &[f64], lists: &[Vec<usize>]) {
        for v in 0..contrib.len() {
            for &dst in &lists[v] {
                // emogi-lint: allow(float-fold, canonical-order) — folded in CSR order, vertex-ascending
                self.next[dst] += contrib[v];
            }
        }
    }
}
