// Known-bad: grouping the frontier into cache segments with a HashMap
// and emitting the groups in hash order — the emitted order feeds the
// coalescer directly, so hash iteration order would leak into every
// transaction boundary and cache probe of the iteration.
use std::collections::HashMap;

pub struct Grouper {
    segments: HashMap<u64, Vec<u32>>,
}

impl Grouper {
    pub fn emit(&mut self, out: &mut Vec<u32>) {
        for (_seg, vs) in self.segments.drain() {
            out.extend(vs); // hash order escapes into the frontier
        }
    }

    pub fn segment_ids(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }
}
