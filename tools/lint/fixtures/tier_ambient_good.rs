// Known-good: the three-way placement decision is a pure function of
// the region's accumulated density and the configured thresholds — no
// clocks, no machine state — so any tier configuration replays
// identically from the same traversal inputs.
pub enum TierDecision {
    StageToHbm,
    ZeroCopyHost,
    ServeCxl,
}

pub fn decide_tiered(cumulative: f64, upcoming: f64, cxl_stage_threshold: f64) -> TierDecision {
    if upcoming <= 0.0 {
        return TierDecision::ServeCxl;
    }
    if cumulative + upcoming >= cxl_stage_threshold {
        TierDecision::StageToHbm
    } else {
        TierDecision::ServeCxl
    }
}
