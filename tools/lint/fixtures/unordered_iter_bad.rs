// Known-bad: the executor drains its in-flight map in hash order and
// lets that order reach a stats counter — the bug class PR 3/4's
// bit-identity work exists to prevent.
use std::collections::HashMap;

pub struct Pending {
    lines: HashMap<u64, u32>,
}

impl Pending {
    pub fn flush(&mut self, out: &mut Vec<u64>) {
        for (addr, _) in self.lines.drain() {
            out.push(addr); // hash order escapes into `out`
        }
    }

    pub fn waiters(&self) -> Vec<u32> {
        self.lines.values().copied().collect()
    }
}
