// Known-bad crate root: no #![forbid(unsafe_code)] attribute, and an
// unsafe block on top of it.
pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
