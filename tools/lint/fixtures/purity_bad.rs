// Known-bad: a kernel step hook that re-captures program state mid-launch
// instead of reading the pre-captured iteration-start context. This is
// the exact regression that would silently break batched/sharded
// bit-identity: the context would depend on how earlier warp tasks of
// the *same* iteration interleaved.
pub struct Kern;

impl Kern {
    fn step(&mut self, v: u32) -> u32 {
        let ctx = self.program.source_ctx(v); // live state, not iteration-start
        self.visit(v, ctx)
    }

    fn visit_edge(&mut self, m: &mut Machine) {
        m.now += 1; // hooks must never touch the simulated machine
    }
}
