// Known-bad: a tier-placement policy that reads wall clocks — the same
// traversal then places regions on different tiers across runs, and the
// cross-config output-digest equality the tiering experiment asserts
// has nothing left to stand on.
pub fn decide_tiered(cumulative: f64, threshold: f64) -> bool {
    let since_boot = std::time::Instant::now().elapsed().as_nanos();
    let wall = std::time::SystemTime::now();
    wall.elapsed().is_ok() && cumulative + (since_boot % 2) as f64 >= threshold
}
