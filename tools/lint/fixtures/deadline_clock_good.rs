// Known-good: deadlines are absolute points on the server's simulated
// clock, fixed at admission; expiry compares two counters and
// scheduling stays a pure function of queue state.
pub type SimTime = u64;

pub fn expired(clock_ns: SimTime, deadline_ns: SimTime) -> bool {
    deadline_ns < clock_ns
}
