// Known-bad: a prefetch ranking hook that reads live machine state.
// Prediction must be a pure function of iteration-start state — the
// planner's staging table, accumulated densities, the round's touch
// set — or the pipelined path's staging decisions (and with them every
// device-pool charge and address) would depend on copy-lane timing,
// breaking bit-identity with the synchronous engine.
pub struct Ranker;

impl Ranker {
    fn rank_candidates(&self, m: &Machine) -> Vec<u32> {
        let cut = m.now; // live clock as a prediction input
        self.pick(cut)
    }

    fn step(&mut self, m: &mut Machine) {
        m.monitor.on_dma(0, 1, 1); // hooks never touch the traffic monitor
    }
}
