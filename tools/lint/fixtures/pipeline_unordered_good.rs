// Known-good: the real copy lane keeps its in-flight tickets in a FIFO
// VecDeque — submission order IS completion order on a single serial
// lane — and any hash-map index serves point lookups only, with
// iteration laundered through an explicit sort.
use std::collections::{HashMap, VecDeque};

pub struct Lane {
    inflight: VecDeque<u64>,
    by_id: HashMap<u64, u64>,
}

impl Lane {
    pub fn drain_completed(&mut self, at: u64, out: &mut Vec<u64>) {
        while let Some(&done) = self.inflight.front() {
            if done > at {
                break;
            }
            out.push(done);
            self.inflight.pop_front();
        }
    }

    pub fn lookup(&self, id: u64) -> Option<u64> {
        self.by_id.get(&id).copied()
    }

    pub fn ids_sorted(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.by_id.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}
