// Known-good: point lookups are always fine; iteration is fine when the
// result is explicitly sorted before the order can escape, or when a
// reasoned waiver vouches for it.
use std::collections::HashMap;

pub struct Pending {
    lines: HashMap<u64, u32>,
}

impl Pending {
    pub fn lookup(&self, addr: u64) -> Option<u32> {
        self.lines.get(&addr).copied()
    }

    pub fn flush_sorted(&mut self, out: &mut Vec<u64>) {
        let mut addrs: Vec<u64> = self.lines.keys().copied().collect();
        addrs.sort_unstable();
        out.extend(addrs);
        self.lines.clear();
    }

    pub fn total(&self) -> u64 {
        // emogi-lint: allow(unordered-iter) — summing u64s is commutative; no order escapes
        self.lines.values().map(|&v| u64::from(v)).sum()
    }
}
