// Known-good: time is the simulated tick counter, randomness is a
// seeded PRNG passed in by the caller.
pub type Time = u64;

pub fn schedule_transfer(now: Time, queue_len: usize, seeded_jitter: u64) -> Time {
    now + queue_len as u64 + seeded_jitter % 7
}
