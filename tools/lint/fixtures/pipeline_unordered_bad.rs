// Known-bad: a copy lane tracking its in-flight tickets in a hash map
// and draining completions in hash order — the completion order would
// leak into adoption stalls and, through the settle/recharge protocol,
// into every downstream device-pool charge.
use std::collections::HashMap;

pub struct Lane {
    inflight: HashMap<u64, u64>,
}

impl Lane {
    pub fn drain_completed(&mut self, at: u64, out: &mut Vec<u64>) {
        for (id, done) in self.inflight.drain() {
            if done <= at {
                out.push(id); // hash order escapes into the completion stream
            }
        }
    }

    pub fn pending_ids(&self) -> Vec<u64> {
        self.inflight.keys().copied().collect()
    }
}
