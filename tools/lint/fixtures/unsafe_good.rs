//! Known-good crate root: locks the workspace's unsafe-free status in.

#![forbid(unsafe_code)]

pub fn peek(v: &[u32], i: usize) -> u32 {
    v[i]
}
