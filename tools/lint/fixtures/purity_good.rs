// Known-good: the step hook reads only pre-captured contexts (the
// `ctxs` vector filled at kernel construction), and capture itself
// happens in the constructor — which is not a hook.
pub struct Kern;

impl Kern {
    pub fn new(&mut self, work: &[u32]) {
        self.ctxs = work.iter().map(|&v| self.program.source_ctx(v)).collect();
    }

    fn step(&mut self, i: usize) -> u32 {
        let ctx = self.ctxs[i];
        self.visit(i, ctx)
    }
}
