// Known-bad: rank mass accumulated in visit order inside the per-edge
// hook. Floating-point addition is not associative, so the result now
// depends on warp interleaving and shard count — the ranks would differ
// between Engine and ShardedEngine at 2 devices.
pub struct Ranks {
    next: Vec<f64>,
}

impl Ranks {
    fn edge(&mut self, dst: usize, contrib: f64) {
        self.next[dst] += contrib;
    }

    fn total(&self, v: &[f64]) -> f64 {
        v.iter().sum::<f64>()
    }
}
