//! Diagnostics: rustc-style `file:line: error[rule-id]: message`.

use std::fmt;

/// The known rule ids, as they appear in `error[...]` and waivers.
pub mod rules {
    /// Iteration over a hash container without a sort or waiver.
    pub const UNORDERED_ITER: &str = "unordered-iter";
    /// Ambient nondeterminism: wall clocks or OS randomness.
    pub const AMBIENT_NONDET: &str = "ambient-nondet";
    /// Kernel hook body touching live (non-iteration-start) state.
    pub const KERNEL_PURITY: &str = "kernel-purity";
    /// Floating-point accumulation outside a canonical-order waiver.
    pub const FLOAT_FOLD: &str = "float-fold";
    /// Missing `#![forbid(unsafe_code)]` (or an `unsafe` token).
    pub const FORBID_UNSAFE: &str = "forbid-unsafe";
    /// A waiver that matched nothing (stale) or is malformed.
    pub const BAD_WAIVER: &str = "bad-waiver";

    /// Every real (waivable) rule id.
    pub const ALL: &[&str] = &[
        UNORDERED_ITER,
        AMBIENT_NONDET,
        KERNEL_PURITY,
        FLOAT_FOLD,
        FORBID_UNSAFE,
    ];
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 for file-level findings).
    pub line: u32,
    /// Rule id (see [`rules`]).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic {
            path: "crates/core/src/kernel.rs".into(),
            line: 42,
            rule: rules::KERNEL_PURITY,
            message: "no".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/kernel.rs:42: error[kernel-purity]: no"
        );
    }
}
