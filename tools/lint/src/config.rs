//! `emogi-lint.toml` parsing.
//!
//! A deliberately minimal hand-rolled TOML subset (no external crate, in
//! keeping with the offline-shims philosophy): `[table]` headers,
//! `[[waiver]]` array-of-tables, `key = "string"` and
//! `key = ["a", "b", ...]` (arrays may span lines). Comments start with
//! `#`. That is all the config needs.

use std::collections::BTreeMap;
use std::fmt;

/// A rule/path waiver declared in `emogi-lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct TomlWaiver {
    /// Workspace-relative file the waiver applies to.
    pub path: String,
    /// The waived rule id.
    pub rule: String,
    /// Optional waiver kind (`float-fold` requires `canonical-order`).
    pub kind: Option<String>,
    /// Optional list of function names the waiver is scoped to; empty
    /// means the whole file.
    pub scope: Vec<String>,
    /// The written reason. Required.
    pub reason: String,
}

/// The parsed lint configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crate directories whose `src/**.rs` files are scanned.
    pub crates: Vec<String>,
    /// Container types with nondeterministic iteration order.
    pub hash_types: Vec<String>,
    /// Forbidden ambient-nondeterminism call patterns (`A::b` or `a`).
    pub ambient_patterns: Vec<String>,
    /// Files subject to the kernel-purity rule.
    pub purity_modules: Vec<String>,
    /// Function names treated as per-edge/per-vertex hook bodies.
    pub purity_hooks: Vec<String>,
    /// Identifiers hook bodies must not touch.
    pub purity_disallowed: Vec<String>,
    /// Files subject to the ordered-float-folds rule.
    pub float_modules: Vec<String>,
    /// `lib.rs` files that must carry `#![forbid(unsafe_code)]`.
    pub unsafe_crates: Vec<String>,
    /// Path/rule waivers.
    pub waivers: Vec<TomlWaiver>,
}

/// A configuration error with the offending line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in the TOML file (0 = whole-file problem).
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "emogi-lint.toml:{}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, msg: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        msg: msg.into(),
    }
}

/// One parsed `key = value` entry.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    List(Vec<String>),
}

/// Parse the configuration text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    // section name -> (key -> value); waivers collected separately.
    let mut sections: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
    let mut waivers: Vec<(u32, BTreeMap<String, Value>)> = Vec::new();
    let mut current = String::new();
    let mut in_waiver = false;

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "malformed [[table]] header"))?;
            if name.trim() != "waiver" {
                return Err(err(lineno, format!("unknown array table [[{name}]]")));
            }
            waivers.push((lineno, BTreeMap::new()));
            in_waiver = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "malformed [table] header"))?;
            current = name.trim().to_string();
            in_waiver = false;
            continue;
        }
        let (key, mut val) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = key.trim().to_string();
        let mut buf = val.trim().to_string();
        // Multi-line array: keep consuming until brackets balance.
        while buf.starts_with('[') && !brackets_balanced(&buf) {
            let Some((_, next)) = lines.next() else {
                return Err(err(lineno, "unterminated array"));
            };
            buf.push(' ');
            buf.push_str(strip_comment(next).trim());
        }
        val = &buf;
        let value = parse_value(val.trim(), lineno)?;
        if in_waiver {
            waivers
                .last_mut()
                .expect("inside a [[waiver]]")
                .1
                .insert(key, value);
        } else {
            sections
                .entry(current.clone())
                .or_default()
                .insert(key, value);
        }
    }

    let mut cfg = Config::default();
    let take_list = |sections: &BTreeMap<String, BTreeMap<String, Value>>,
                     section: &str,
                     key: &str|
     -> Vec<String> {
        match sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(l)) => l.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            None => Vec::new(),
        }
    };
    cfg.crates = take_list(&sections, "lint", "crates");
    cfg.hash_types = take_list(&sections, "rules.unordered-iter", "types");
    cfg.ambient_patterns = take_list(&sections, "rules.ambient-nondet", "patterns");
    cfg.purity_modules = take_list(&sections, "rules.kernel-purity", "modules");
    cfg.purity_hooks = take_list(&sections, "rules.kernel-purity", "hooks");
    cfg.purity_disallowed = take_list(&sections, "rules.kernel-purity", "disallowed");
    cfg.float_modules = take_list(&sections, "rules.float-fold", "modules");
    cfg.unsafe_crates = take_list(&sections, "rules.forbid-unsafe", "crates");

    for (lineno, fields) in waivers {
        let get_str = |key: &str| -> Option<String> {
            match fields.get(key) {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let w = TomlWaiver {
            path: get_str("path").unwrap_or_default(),
            rule: get_str("rule").unwrap_or_default(),
            kind: get_str("kind"),
            scope: match fields.get("scope") {
                Some(Value::List(l)) => l.clone(),
                Some(Value::Str(s)) => vec![s.clone()],
                None => Vec::new(),
            },
            reason: get_str("reason").unwrap_or_default(),
        };
        if w.path.is_empty() || w.rule.is_empty() {
            return Err(err(lineno, "waiver needs `path` and `rule`"));
        }
        if w.reason.trim().is_empty() {
            return Err(err(
                lineno,
                format!(
                    "waiver for {} ({}) has no written reason — every waiver must say why",
                    w.path, w.rule
                ),
            ));
        }
        cfg.waivers.push(w);
    }
    Ok(cfg)
}

fn strip_comment(line: &str) -> &str {
    // `#` only starts a comment outside quotes.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(s: &str, line: u32) -> Result<Value, ConfigError> {
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unterminated array"))?;
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(part, line)?);
        }
        return Ok(Value::List(items));
    }
    Ok(Value::Str(parse_string(s, line)?))
}

fn parse_string(s: &str, line: u32) -> Result<String, ConfigError> {
    s.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[lint]
crates = [
    "crates/core",   # trailing comment
    "crates/runtime",
]

[rules.unordered-iter]
types = ["HashMap", "FastMap"]

[rules.kernel-purity]
modules = ["crates/core/src/kernel.rs"]
hooks = ["step"]
disallowed = ["source_ctx"]

[[waiver]]
path = "crates/core/src/pagerank.rs"
rule = "float-fold"
kind = "canonical-order"
scope = ["post_iteration"]
reason = "folded in canonical CSR order"
"#;

    #[test]
    fn parses_sections_lists_and_waivers() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(cfg.crates, vec!["crates/core", "crates/runtime"]);
        assert_eq!(cfg.hash_types, vec!["HashMap", "FastMap"]);
        assert_eq!(cfg.purity_hooks, vec!["step"]);
        assert_eq!(cfg.waivers.len(), 1);
        let w = &cfg.waivers[0];
        assert_eq!(w.kind.as_deref(), Some("canonical-order"));
        assert_eq!(w.scope, vec!["post_iteration"]);
    }

    #[test]
    fn reasonless_waiver_is_rejected() {
        let bad = "[[waiver]]\npath = \"a.rs\"\nrule = \"unordered-iter\"\nreason = \"  \"\n";
        let e = parse(bad).unwrap_err();
        assert!(e.msg.contains("no written reason"), "{}", e.msg);
    }

    #[test]
    fn waiver_without_path_is_rejected() {
        let bad = "[[waiver]]\nrule = \"x\"\nreason = \"y\"\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn unknown_array_table_is_rejected() {
        assert!(parse("[[thing]]\n").is_err());
    }
}
