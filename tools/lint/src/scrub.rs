//! Source scrubbing and tokenization.
//!
//! The analyzer never parses Rust properly; it works on a *scrubbed*
//! copy of each file in which comments and string/char literals are
//! replaced by spaces (newlines preserved, so line numbers survive).
//! Waiver comments (`// emogi-lint: allow(<rule>[, <kind>]) — <reason>`)
//! are extracted during scrubbing, before the comment text is erased.

/// An inline waiver extracted from a `// emogi-lint: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineWaiver {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Whether the comment was alone on its line (then it also covers
    /// the next line) or trailed code (then it covers only its line).
    pub standalone: bool,
    /// The waived rule id, e.g. `unordered-iter`.
    pub rule: String,
    /// Optional waiver kind, e.g. `canonical-order` for `float-fold`.
    pub kind: Option<String>,
    /// The written reason. Empty means the waiver is invalid.
    pub reason: String,
}

/// A scrubbed file: literal-free text plus the extracted waivers.
#[derive(Debug)]
pub struct Scrubbed {
    /// The source with comments and literals blanked; same length and
    /// line structure as the original.
    pub text: String,
    /// Inline waivers found in comments.
    pub waivers: Vec<InlineWaiver>,
}

/// Marker prefix of a waiver comment (after the `//`).
pub const WAIVER_MARK: &str = "emogi-lint:";

/// Replace comments and string/char literals with spaces, keeping the
/// line structure intact, and collect inline waiver comments.
pub fn scrub(src: &str) -> Scrubbed {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut waivers = Vec::new();
    let mut line: u32 = 1;
    // Does the current line contain any non-blank scrubbed output yet?
    let mut line_has_code = false;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            out[i] = b'\n';
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        // Line comment: blank to end of line, but mine it for waivers.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
            if let Some(w) = parse_waiver(&src[i + 2..end], line, !line_has_code) {
                waivers.push(w);
            }
            i = end;
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    out[i] = b'\n';
                    line += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 1;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        // Raw (byte) string literal: r"..." / r#"..."# / br##"..."##.
        if c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r') {
            let start = if c == b'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                // Find the closing quote followed by `hashes` hashes.
                let closer: String = std::iter::once('"')
                    .chain("#".repeat(hashes).chars())
                    .collect();
                let body_end = src[j + 1..]
                    .find(&closer)
                    .map_or(b.len(), |n| j + 1 + n + closer.len());
                for (k, &bb) in b.iter().enumerate().take(body_end).skip(i) {
                    if bb == b'\n' {
                        out[k] = b'\n';
                        line += 1;
                    }
                }
                i = body_end;
                continue;
            }
        }
        // Plain (byte) string literal.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            i += if c == b'b' { 2 } else { 1 };
            while i < b.len() {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        out[i] = b'\n';
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            line_has_code = true;
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals, 'a (no
        // closing quote right after) is a lifetime and kept as-is.
        if c == b'\'' {
            let lit_end = if i + 2 < b.len() && b[i + 1] == b'\\' {
                // Escape: find the closing quote within a few bytes.
                b[i + 2..]
                    .iter()
                    .take(8)
                    .position(|&x| x == b'\'')
                    .map(|n| i + 2 + n)
            } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                Some(i + 2)
            } else {
                None
            };
            if let Some(e) = lit_end {
                i = e + 1;
                line_has_code = true;
                continue;
            }
        }
        out[i] = c;
        if !c.is_ascii_whitespace() {
            line_has_code = true;
        }
        i += 1;
    }
    Scrubbed {
        text: String::from_utf8(out).expect("scrub output is ASCII-compatible"),
        waivers,
    }
}

/// Parse `emogi-lint: allow(rule[, kind]) <sep> reason` from the body of
/// a `//` comment. Returns `None` for ordinary comments; a waiver with an
/// empty `reason` is returned (and later rejected) so a reasonless waiver
/// is an error, not silently ignored.
fn parse_waiver(comment: &str, line: u32, standalone: bool) -> Option<InlineWaiver> {
    let c = comment.trim_start_matches(['/', '!']).trim();
    let rest = c.strip_prefix(WAIVER_MARK)?.trim();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let args = &rest[..close];
    let mut parts = args.split(',').map(str::trim);
    let rule = parts.next().unwrap_or("").to_string();
    let kind = parts.next().map(str::to_string);
    // The reason follows the closing paren after a dash/em-dash/colon.
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim()
        .to_string();
    Some(InlineWaiver {
        line,
        standalone,
        rule,
        kind,
        reason,
    })
}

/// One token of scrubbed source: an identifier/number or a (possibly
/// two-character) operator, with its 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// Token text.
    pub s: &'a str,
    /// 1-based source line.
    pub line: u32,
}

impl Tok<'_> {
    /// Is this token an identifier (or keyword)?
    pub fn is_ident(&self) -> bool {
        self.s
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    }
}

/// Two-character operators kept as single tokens.
const OPS2: &[&str] = &["::", "+=", "-=", "*=", "/=", "->", "=>", "..", "<<", ">>"];

/// Tokenize scrubbed source.
pub fn tokenize(text: &str) -> Vec<Tok<'_>> {
    let b = text.as_bytes();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                s: &text[start..i],
                line,
            });
            continue;
        }
        if i + 1 < b.len() {
            let two = &text[i..i + 2];
            if OPS2.contains(&two) {
                toks.push(Tok { s: two, line });
                i += 2;
                continue;
            }
        }
        toks.push(Tok {
            s: &text[i..i + 1],
            line,
        });
        i += 1;
    }
    toks
}

/// Line ranges (1-based, inclusive) of `#[cfg(test)] mod ... { }` blocks,
/// so rules can skip test code.
pub fn test_regions(toks: &[Tok<'_>]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]`.
        if toks[i].s == "#" && matches(toks, i + 1, &["[", "cfg", "(", "test", ")", "]"]) {
            // Skip further attributes, then expect `mod <name> {`.
            let mut j = i + 7;
            while j < toks.len() && toks[j].s == "#" {
                j = skip_attribute(toks, j);
            }
            if j + 2 < toks.len() && toks[j].s == "mod" && toks[j + 2].s == "{" {
                let open = j + 2;
                let close = matching_brace(toks, open);
                regions.push((toks[i].line, toks[close.min(toks.len() - 1)].line));
                i = close;
                continue;
            }
        }
        i += 1;
    }
    regions
}

fn matches(toks: &[Tok<'_>], at: usize, want: &[&str]) -> bool {
    toks.len() >= at + want.len() && want.iter().enumerate().all(|(k, w)| toks[at + k].s == *w)
}

/// Given `toks[at] == "#"`, return the index just past the attribute.
fn skip_attribute(toks: &[Tok<'_>], at: usize) -> usize {
    let mut j = at + 1;
    if j < toks.len() && toks[j].s == "!" {
        j += 1;
    }
    if j >= toks.len() || toks[j].s != "[" {
        return at + 1;
    }
    let mut depth = 0;
    while j < toks.len() {
        match toks[j].s {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(toks: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0;
    let mut j = open;
    while j < toks.len() {
        match toks[j].s {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len() - 1
}

/// A named function body: token range of `{ ... }` plus line span.
#[derive(Debug, Clone)]
pub struct FnBody {
    /// The function's name.
    pub name: String,
    /// Token index of the opening brace.
    pub open: usize,
    /// Token index of the closing brace.
    pub close: usize,
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line.
    pub end_line: u32,
}

/// Find every `fn <name>` body in the token stream. The body is the
/// first `{` after the signature at zero paren/bracket depth.
pub fn fn_bodies(toks: &[Tok<'_>]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].s == "fn" && toks[i + 1].is_ident() {
            let name = toks[i + 1].s.to_string();
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut open = None;
            while j < toks.len() {
                match toks[j].s {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    // A `;` at depth 0 means a trait method without body.
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = matching_brace(toks, open);
                out.push(FnBody {
                    name,
                    open,
                    close,
                    start_line: toks[i].line,
                    end_line: toks[close].line,
                });
                // Continue scanning *inside* the body too (nested fns).
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let x = \"a // not a comment\"; // real comment\nlet y = 'c';\n";
        let s = scrub(src);
        assert!(!s.text.contains("not a comment"));
        assert!(!s.text.contains("real comment"));
        assert!(!s.text.contains('c'), "char literal scrubbed: {}", s.text);
        assert!(s.text.contains("let x ="));
        assert_eq!(s.text.matches('\n').count(), 2);
    }

    #[test]
    fn scrub_handles_nested_block_comments_and_raw_strings() {
        let src = "a /* outer /* inner */ still */ b r#\"raw \" here\"# c";
        let s = scrub(src);
        assert!(s.text.contains('a') && s.text.contains('b') && s.text.contains('c'));
        assert!(!s.text.contains("inner") && !s.text.contains("raw"));
    }

    #[test]
    fn scrub_keeps_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) {}");
        assert!(s.text.contains("'a"), "{}", s.text);
    }

    #[test]
    fn waiver_comment_is_extracted() {
        let src = "let k = m.keys(); // emogi-lint: allow(unordered-iter) — keys feed a sort\n";
        let s = scrub(src);
        assert_eq!(s.waivers.len(), 1);
        let w = &s.waivers[0];
        assert_eq!(w.rule, "unordered-iter");
        assert_eq!(w.kind, None);
        assert_eq!(w.reason, "keys feed a sort");
        assert_eq!(w.line, 1);
        assert!(!w.standalone);
    }

    #[test]
    fn standalone_waiver_with_kind() {
        let src = "    // emogi-lint: allow(float-fold, canonical-order) - folded in CSR order\n    x += y;\n";
        let s = scrub(src);
        let w = &s.waivers[0];
        assert!(w.standalone);
        assert_eq!(w.kind.as_deref(), Some("canonical-order"));
        assert_eq!(w.reason, "folded in CSR order");
    }

    #[test]
    fn reasonless_waiver_is_kept_with_empty_reason() {
        let s = scrub("// emogi-lint: allow(ambient-nondet)\n");
        assert_eq!(s.waivers[0].reason, "");
    }

    #[test]
    fn tokenizer_merges_two_char_ops() {
        let toks = tokenize("a += b :: c;");
        let texts: Vec<_> = toks.iter().map(|t| t.s).collect();
        assert_eq!(texts, vec!["a", "+=", "b", "::", "c", ";"]);
    }

    #[test]
    fn test_regions_span_the_mod_block() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let s = scrub(src);
        let toks = tokenize(&s.text);
        let r = test_regions(&toks);
        assert_eq!(r, vec![(2, 5)]);
    }

    #[test]
    fn fn_bodies_are_found_with_lines() {
        let src = "impl X {\n  fn step(&mut self) {\n    let y = 1;\n  }\n}\nfn free() { }\n";
        let s = scrub(src);
        let toks = tokenize(&s.text);
        let fns = fn_bodies(&toks);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["step", "free"]);
        assert_eq!(fns[0].start_line, 2);
        assert_eq!(fns[0].end_line, 4);
    }

    #[test]
    fn trait_method_without_body_is_skipped() {
        let src = "trait T { fn sig(&self) -> bool; fn with(&self) {} }";
        let toks_src = scrub(src);
        let fns = fn_bodies(&tokenize(&toks_src.text));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with");
    }
}
