//! `cargo run -p emogi-lint` — lint the workspace against the
//! determinism contract.
//!
//! Usage: `emogi-lint [--root <dir>] [--config <file>]`. With no
//! arguments the workspace root is located from the binary's own
//! manifest (`tools/lint/../..`), so the tool runs correctly from any
//! working directory inside the repo. Exit codes: 0 clean, 1 findings,
//! 2 usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: emogi-lint [--root <dir>] [--config <file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("emogi-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // tools/lint/ -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let config = config.unwrap_or_else(|| root.join("emogi-lint.toml"));

    let text = match std::fs::read_to_string(&config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("emogi-lint: cannot read {}: {e}", config.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match emogi_lint::config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("emogi-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match emogi_lint::lint_root(&root, &cfg) {
        Ok(diags) if diags.is_empty() => {
            println!(
                "emogi-lint: clean — {} crate(s) uphold the determinism contract",
                cfg.crates.len()
            );
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("emogi-lint: {} finding(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("emogi-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
