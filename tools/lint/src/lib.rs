//! # emogi-lint — the determinism-contract static gate
//!
//! Every headline property of this repository — batched serving's
//! bit-identity with sequential execution, the sharded engine's
//! bit-identity with the single-device engine — rests on one invariant:
//! *each iteration is a pure function of iteration-start state*. The
//! differential proptest harness witnesses that invariant at runtime,
//! probabilistically and after the fact; this tool enforces its known
//! static preconditions up front:
//!
//! * [`unordered-iter`](diag::rules::UNORDERED_ITER) — no iteration over
//!   hash-ordered containers unless the result is sorted or waived;
//! * [`ambient-nondet`](diag::rules::AMBIENT_NONDET) — no wall clocks or
//!   OS randomness in deterministic crates;
//! * [`kernel-purity`](diag::rules::KERNEL_PURITY) — kernel hook bodies
//!   read only pre-captured iteration-start contexts;
//! * [`float-fold`](diag::rules::FLOAT_FOLD) — floating-point
//!   accumulation only under a declared `canonical-order` waiver;
//! * [`forbid-unsafe`](diag::rules::FORBID_UNSAFE) — the workspace stays
//!   `unsafe`-free and every library crate root says so.
//!
//! The analyzer is a hand-rolled lexer (no external parser crate,
//! consistent with the repo's offline-shims philosophy). Configuration
//! and path waivers live in `emogi-lint.toml` at the workspace root;
//! inline waivers are `// emogi-lint: allow(<rule>) — <reason>` comments.
//! Every waiver must carry a reason, and stale waivers are errors.

pub mod config;
pub mod diag;
pub mod rules;
pub mod scrub;

use config::{Config, TomlWaiver};
use diag::{rules as ids, Diagnostic};
use rules::FileCtx;
use scrub::InlineWaiver;
use std::path::{Path, PathBuf};

/// Result of linting one file: surviving diagnostics plus which waivers
/// were consumed (for stale-waiver detection at workspace level).
struct FileOutcome {
    diags: Vec<Diagnostic>,
    /// Lines of inline waivers that never matched a finding.
    stale_inline: Vec<(u32, String)>,
    /// Indices into `cfg.waivers` that matched at least one finding.
    used_toml: Vec<usize>,
}

/// Lint a single in-memory source. Used by the fixture self-tests; the
/// binary goes through [`lint_root`].
pub fn lint_source(path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    lint_one(path, source, cfg).diags
}

fn lint_one(path: &str, source: &str, cfg: &Config) -> FileOutcome {
    let scrubbed = scrub::scrub(source);
    let ctx = FileCtx::new(path, &scrubbed);
    let mut raw = Vec::new();
    rules::check_all(&ctx, cfg, &mut raw);

    let mut bad_waivers = Vec::new();
    for w in &scrubbed.waivers {
        if !ids::ALL.contains(&w.rule.as_str()) {
            bad_waivers.push(Diagnostic {
                path: path.to_string(),
                line: w.line,
                rule: ids::BAD_WAIVER,
                message: format!("waiver names unknown rule `{}`", w.rule),
            });
        }
        if w.reason.is_empty() {
            bad_waivers.push(Diagnostic {
                path: path.to_string(),
                line: w.line,
                rule: ids::BAD_WAIVER,
                message: "waiver has no written reason — every waiver must say why".to_string(),
            });
        }
        if w.rule == ids::FLOAT_FOLD && w.kind.as_deref() != Some("canonical-order") {
            bad_waivers.push(Diagnostic {
                path: path.to_string(),
                line: w.line,
                rule: ids::BAD_WAIVER,
                message: "a float-fold waiver must declare the `canonical-order` kind: \
                          `allow(float-fold, canonical-order) — <reason>`"
                    .to_string(),
            });
        }
    }

    let mut used_inline = vec![false; scrubbed.waivers.len()];
    let mut used_toml_flags = vec![false; cfg.waivers.len()];
    let mut diags = Vec::new();
    for d in raw {
        let inline_hit = scrubbed
            .waivers
            .iter()
            .enumerate()
            .find(|(_, w)| waiver_valid(w) && w.rule == d.rule && covers_line(w, d.line));
        if let Some((i, _)) = inline_hit {
            used_inline[i] = true;
            continue;
        }
        let toml_hit = cfg.waivers.iter().enumerate().find(|(_, w)| {
            toml_waiver_valid(w)
                && w.path == d.path
                && w.rule == d.rule
                && (w.scope.is_empty()
                    || ctx
                        .enclosing_fn(d.line)
                        .is_some_and(|f| w.scope.iter().any(|s| s == f)))
        });
        if let Some((i, _)) = toml_hit {
            used_toml_flags[i] = true;
            continue;
        }
        diags.push(d);
    }
    diags.extend(bad_waivers);

    let stale_inline = scrubbed
        .waivers
        .iter()
        .zip(&used_inline)
        .filter(|(w, &used)| !used && waiver_valid(w))
        .map(|(w, _)| (w.line, w.rule.clone()))
        .collect();
    FileOutcome {
        diags,
        stale_inline,
        used_toml: used_toml_flags
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| i)
            .collect(),
    }
}

fn waiver_valid(w: &InlineWaiver) -> bool {
    !w.reason.is_empty()
        && ids::ALL.contains(&w.rule.as_str())
        && (w.rule != ids::FLOAT_FOLD || w.kind.as_deref() == Some("canonical-order"))
}

fn toml_waiver_valid(w: &TomlWaiver) -> bool {
    w.rule != ids::FLOAT_FOLD || w.kind.as_deref() == Some("canonical-order")
}

/// Does inline waiver `w` cover a finding on `line`? Trailing waivers
/// cover their own line; standalone comment lines cover the next line.
fn covers_line(w: &InlineWaiver, line: u32) -> bool {
    w.line == line || (w.standalone && w.line + 1 == line)
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // `target/` never appears inside crate dirs, but be safe.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root` with `cfg`. Returns every
/// surviving diagnostic, sorted by path and line — including stale
/// waivers (a waiver that waives nothing must be deleted, so the audit
/// trail stays truthful).
pub fn lint_root(root: &Path, cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for c in &cfg.crates {
        rs_files(&root.join(c), &mut files)?;
    }
    // Crate roots checked for #![forbid(unsafe_code)] may live outside
    // the scanned crates (emogi_bench is excluded from the determinism
    // rules but must still be unsafe-free).
    for extra in &cfg.unsafe_crates {
        let p = root.join(extra);
        if !files.contains(&p) {
            files.push(p);
        }
    }

    let mut diags = Vec::new();
    let mut toml_used = vec![false; cfg.waivers.len()];
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(f)?;
        let outcome = lint_one(&rel, &source, cfg);
        for i in outcome.used_toml {
            toml_used[i] = true;
        }
        for (line, rule) in outcome.stale_inline {
            diags.push(Diagnostic {
                path: rel.clone(),
                line,
                rule: ids::BAD_WAIVER,
                message: format!("stale waiver: no `{rule}` finding here — delete it"),
            });
        }
        diags.extend(outcome.diags);
    }
    for (w, used) in cfg.waivers.iter().zip(&toml_used) {
        if !used {
            diags.push(Diagnostic {
                path: w.path.clone(),
                line: 0,
                rule: ids::BAD_WAIVER,
                message: format!(
                    "stale emogi-lint.toml waiver for `{}`: it waives nothing — delete it",
                    w.rule
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            hash_types: vec!["HashMap".into()],
            ..Config::default()
        }
    }

    #[test]
    fn inline_waiver_suppresses_and_is_consumed() {
        let src = "fn f(m: HashMap<u64, u32>) {\n  // emogi-lint: allow(unordered-iter) — order folded commutatively\n  for k in m { }\n}\n";
        let d = lint_source("x.rs", src, &cfg());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "fn f(m: HashMap<u64, u32>) {\n  for k in m { } // emogi-lint: allow(unordered-iter) — commutative fold\n}\n";
        let d = lint_source("x.rs", src, &cfg());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reasonless_waiver_does_not_suppress_and_is_flagged() {
        let src = "fn f(m: HashMap<u64, u32>) {\n  // emogi-lint: allow(unordered-iter)\n  for k in m { }\n}\n";
        let d = lint_source("x.rs", src, &cfg());
        assert!(d.iter().any(|d| d.rule == diag::rules::UNORDERED_ITER));
        assert!(d.iter().any(|d| d.rule == diag::rules::BAD_WAIVER));
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let src = "// emogi-lint: allow(no-such-rule) — because\nfn f() {}\n";
        let d = lint_source("x.rs", src, &cfg());
        assert!(d.iter().any(|d| d.rule == diag::rules::BAD_WAIVER), "{d:?}");
    }

    #[test]
    fn toml_waiver_scoped_to_function() {
        let mut c = Config {
            float_modules: vec!["x.rs".into()],
            ..Config::default()
        };
        c.waivers.push(TomlWaiver {
            path: "x.rs".into(),
            rule: ids::FLOAT_FOLD.into(),
            kind: Some("canonical-order".into()),
            scope: vec!["post_iteration".into()],
            reason: "canonical edge order".into(),
        });
        let inside = "struct S { a: f64 }\nimpl S {\n  fn post_iteration(&mut self, x: f64) { self.a += x; }\n}\n";
        assert!(lint_source("x.rs", inside, &c).is_empty());
        let outside =
            "struct S { a: f64 }\nimpl S {\n  fn edge(&mut self, x: f64) { self.a += x; }\n}\n";
        let d = lint_source("x.rs", outside, &c);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, ids::FLOAT_FOLD);
    }

    #[test]
    fn float_waiver_without_canonical_order_kind_is_rejected() {
        let c = Config {
            float_modules: vec!["x.rs".into()],
            ..Config::default()
        };
        let src = "struct S { a: f64 }\nimpl S {\n  fn f(&mut self, x: f64) { self.a += x; } // emogi-lint: allow(float-fold) — because\n}\n";
        let d = lint_source("x.rs", src, &c);
        assert!(d.iter().any(|d| d.rule == ids::FLOAT_FOLD), "{d:?}");
        assert!(d.iter().any(|d| d.rule == ids::BAD_WAIVER), "{d:?}");
    }
}
