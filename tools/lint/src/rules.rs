//! The determinism-contract rules.
//!
//! Each rule is a best-effort token-level analysis over scrubbed source
//! (see [`crate::scrub`]): no type inference, but identifier tracking
//! through declarations (`name: FastMap<..>`, `let x: f64`) catches the
//! shapes the deterministic crates actually use. False negatives are
//! possible by construction; the runtime differential harness remains
//! the backstop. False positives are waivable — with a written reason.

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::scrub::{fn_bodies, test_regions, tokenize, FnBody, Scrubbed, Tok};
use std::collections::BTreeSet;

/// Everything the rules need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Scrubbed source (comments/literals blanked).
    pub scrubbed: &'a Scrubbed,
    /// Token stream of the scrubbed source.
    pub toks: Vec<Tok<'a>>,
    /// Scrubbed source split into lines (index 0 = line 1).
    pub lines: Vec<&'a str>,
    /// `#[cfg(test)] mod` line ranges (1-based, inclusive).
    pub tests: Vec<(u32, u32)>,
    /// Every function body, for hook scanning and waiver scoping.
    pub fns: Vec<FnBody>,
}

impl<'a> FileCtx<'a> {
    /// Build the per-file analysis context.
    pub fn new(path: &'a str, scrubbed: &'a Scrubbed) -> Self {
        let toks = tokenize(&scrubbed.text);
        let tests = test_regions(&toks);
        let fns = fn_bodies(&toks);
        FileCtx {
            path,
            scrubbed,
            toks,
            lines: scrubbed.text.lines().collect(),
            tests,
            fns,
        }
    }

    fn in_tests(&self, line: u32) -> bool {
        self.tests.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Name of the innermost function containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&str> {
        self.fns
            .iter()
            .filter(|f| (f.start_line..=f.end_line).contains(&line))
            .min_by_key(|f| f.end_line - f.start_line)
            .map(|f| f.name.as_str())
    }
}

fn diag(ctx: &FileCtx<'_>, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: ctx.path.to_string(),
        line,
        rule,
        message,
    }
}

/// Identifiers declared (field, param, let, or struct-literal init) with
/// a type/constructor naming one of `type_names`.
fn typed_idents(toks: &[Tok<'_>], type_names: &[String]) -> BTreeSet<String> {
    let is_type = |s: &str| type_names.iter().any(|t| t == s);
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        // `name : ... TypeName ...` up to a stop token at angle depth 0.
        if toks[i].is_ident() && i + 1 < toks.len() && toks[i + 1].s == ":" {
            let mut angle = 0i32;
            for t in toks.iter().skip(i + 2).take(40) {
                match t.s {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "," | ";" | "=" | ")" | "{" | "}" if angle <= 0 => break,
                    s if is_type(s) => {
                        out.insert(toks[i].s.to_string());
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `let [mut] name = TypeName::ctor(..)`.
        if toks[i].s == "let" {
            let mut j = i + 1;
            if j < toks.len() && toks[j].s == "mut" {
                j += 1;
            }
            if j + 3 < toks.len()
                && toks[j].is_ident()
                && toks[j + 1].s == "="
                && is_type(toks[j + 2].s)
                && toks[j + 3].s == "::"
            {
                out.insert(toks[j].s.to_string());
            }
        }
    }
    out
}

/// Methods whose call iterates the receiver in storage order.
const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Things that make a flagged iteration deterministic when they appear
/// within the look-ahead window: an explicit sort, or collecting into an
/// ordered container.
const ORDER_RESTORERS: &[&str] = &[".sort", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// How many lines after the iteration site an order-restoring operation
/// still counts as "followed by an explicit sort".
const SORT_WINDOW_LINES: usize = 4;

/// Rule `unordered-iter`: iterating a `HashMap`/`HashSet`/`FastMap`
/// visits entries in hash order — randomized across `std` versions and,
/// for non-`FastMap` maps, across processes. Point lookups are fine;
/// iteration must feed a sort (checked within a few lines) or carry a
/// waiver explaining why the order cannot escape.
pub fn check_unordered(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.hash_types.is_empty() {
        return;
    }
    let hashes = typed_idents(&ctx.toks, &cfg.hash_types);
    if hashes.is_empty() {
        return;
    }
    let toks = &ctx.toks;
    let mut flag = |line: u32, ident: &str, how: &str| {
        if sorted_soon(ctx, line) {
            return;
        }
        out.push(diag(
            ctx,
            line,
            rules::UNORDERED_ITER,
            format!(
                "{how} over hash container `{ident}` has nondeterministic order; \
                 sort the result or waive with `// emogi-lint: allow(unordered-iter) — <reason>`"
            ),
        ));
    };
    for i in 0..toks.len() {
        // `recv.method(` where recv is a tracked hash container.
        if toks[i].s == "."
            && i > 0
            && i + 2 < toks.len()
            && ITERATING_METHODS.contains(&toks[i + 1].s)
            && toks[i + 2].s == "("
            && hashes.contains(toks[i - 1].s)
        {
            flag(
                toks[i].line,
                toks[i - 1].s,
                &format!("`.{}()`", toks[i + 1].s),
            );
        }
        // `for pat in [&[mut]] recv {` where recv is tracked.
        if toks[i].s == "for" {
            let Some(in_idx) = find_loop_in(toks, i) else {
                continue;
            };
            // Expression tokens between `in` and `{`, minus `&`/`mut`.
            let mut expr: Vec<&Tok<'_>> = Vec::new();
            for t in &toks[in_idx + 1..] {
                if t.s == "{" {
                    break;
                }
                if t.s != "&" && t.s != "mut" {
                    expr.push(t);
                }
            }
            let root = match expr.as_slice() {
                [x] if x.is_ident() => Some(x),
                [s, d, x] if s.s == "self" && d.s == "." && x.is_ident() => Some(x),
                _ => None,
            };
            if let Some(r) = root {
                if hashes.contains(r.s) {
                    flag(r.line, r.s, "`for` loop");
                }
            }
        }
    }
}

/// Find the `in` of a `for` loop header starting at `for_idx`.
fn find_loop_in(toks: &[Tok<'_>], for_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(for_idx + 1).take(40) {
        match t.s {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => return Some(j),
            "{" | ";" => return None,
            _ => {}
        }
    }
    None
}

/// Does an order-restoring operation appear within the window after
/// `line`? (Scrubbed text, so comments cannot fake a sort.)
fn sorted_soon(ctx: &FileCtx<'_>, line: u32) -> bool {
    let start = line as usize - 1;
    ctx.lines
        .iter()
        .skip(start)
        .take(1 + SORT_WINDOW_LINES)
        .any(|l| ORDER_RESTORERS.iter().any(|r| l.contains(r)))
}

/// Rule `ambient-nondet`: wall clocks and OS randomness make a run a
/// function of *when/where* it executed, not of its inputs. Only the
/// bench crate (outside the scanned set) may time things.
pub fn check_ambient(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for pat in &cfg.ambient_patterns {
        let segs: Vec<&str> = pat.split("::").collect();
        let toks = &ctx.toks;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].s == segs[0] {
                let mut ok = true;
                let mut j = i;
                for seg in &segs[1..] {
                    if j + 2 < toks.len() && toks[j + 1].s == "::" && toks[j + 2].s == *seg {
                        j += 2;
                    } else {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    out.push(diag(
                        ctx,
                        toks[i].line,
                        rules::AMBIENT_NONDET,
                        format!(
                            "`{pat}` is ambient nondeterminism; deterministic crates must take \
                             time/randomness as explicit inputs (only `crates/bench` may measure \
                             wall-clock)"
                        ),
                    ));
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// Rule `kernel-purity`: within the kernel/batch/sharded modules, the
/// per-edge/per-vertex hook bodies (`next_task`, `step`, `visit_edge`,
/// `open_vertex`) must be pure functions of pre-captured iteration-start
/// state. Touching live program state (`source_ctx`, the per-iteration
/// hooks) or any `Machine` field from inside a hook would make launch
/// semantics depend on warp/shard interleaving.
pub fn check_purity(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !cfg.purity_modules.iter().any(|m| m == ctx.path) {
        return;
    }
    for f in &ctx.fns {
        if !cfg.purity_hooks.iter().any(|h| h == &f.name) || ctx.in_tests(f.start_line) {
            continue;
        }
        for t in &ctx.toks[f.open..=f.close] {
            if t.is_ident() && cfg.purity_disallowed.iter().any(|d| d == t.s) {
                out.push(diag(
                    ctx,
                    t.line,
                    rules::KERNEL_PURITY,
                    format!(
                        "kernel hook `{}` touches `{}`; hook bodies may only read contexts \
                         captured at iteration start (see ProgramKernel::with_ctxs)",
                        f.name, t.s
                    ),
                ));
            }
        }
    }
}

/// Rule `float-fold`: floating-point addition is not associative, so an
/// accumulation (`+=`, `.sum()`) in a kernel or exchange path makes the
/// result depend on visit order — warp interleaving, shard count, batch
/// composition. The sanctioned pattern is a fold in canonical edge
/// order, declared with a `canonical-order` waiver (PageRank's
/// `post_iteration` is the exemplar). Test modules are exempt.
pub fn check_float(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !cfg.float_modules.iter().any(|m| m == ctx.path) {
        return;
    }
    let float_types = ["f32".to_string(), "f64".to_string()];
    let floats = typed_idents(&ctx.toks, &float_types);
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_tests(toks[i].line) {
            continue;
        }
        // `<stmt containing a float ident> += ...`
        if toks[i].s == "+=" {
            let start = stmt_start(toks, i);
            if toks[start..i]
                .iter()
                .any(|t| t.is_ident() && floats.contains(t.s))
            {
                out.push(diag(
                    ctx,
                    toks[i].line,
                    rules::FLOAT_FOLD,
                    "floating-point accumulation in a kernel/exchange path; fold in canonical \
                     order and declare it with a `canonical-order` waiver"
                        .to_string(),
                ));
            }
        }
        // `.sum::<f64>()` / `let x: f64 = ....sum()`.
        if toks[i].s == "." && i + 1 < toks.len() && toks[i + 1].s == "sum" {
            let turbofish_float = toks.get(i + 2).map(|t| t.s) == Some("::")
                && toks
                    .get(i + 4)
                    .is_some_and(|t| t.s == "f64" || t.s == "f32");
            let start = stmt_start(toks, i);
            let let_float = toks[start..i].iter().any(|t| t.s == "let")
                && toks[start..i].iter().any(|t| t.s == "f64" || t.s == "f32");
            if turbofish_float || let_float {
                out.push(diag(
                    ctx,
                    toks[i].line,
                    rules::FLOAT_FOLD,
                    "floating-point `.sum()` in a kernel/exchange path; fold in canonical order \
                     and declare it with a `canonical-order` waiver"
                        .to_string(),
                ));
            }
        }
    }
}

/// Token index where the statement containing `idx` begins.
fn stmt_start(toks: &[Tok<'_>], idx: usize) -> usize {
    let mut j = idx;
    while j > 0 {
        match toks[j - 1].s {
            ";" | "{" | "}" => return j,
            _ => j -= 1,
        }
    }
    0
}

/// Rule `forbid-unsafe`: flags any `unsafe` token in a scanned file, and
/// (for the configured crate roots) a missing `#![forbid(unsafe_code)]`
/// attribute. The workspace is unsafe-free; the attribute locks that in
/// at the compiler level and this rule keeps the attribute itself from
/// rotting away.
pub fn check_unsafe(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for t in &ctx.toks {
        if t.s == "unsafe" {
            out.push(diag(
                ctx,
                t.line,
                rules::FORBID_UNSAFE,
                "`unsafe` is forbidden across the workspace (determinism reviews assume \
                 memory-safe code)"
                    .to_string(),
            ));
        }
    }
    if cfg.unsafe_crates.iter().any(|c| c == ctx.path) {
        let toks = &ctx.toks;
        let want = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
        let found = (0..toks.len().saturating_sub(want.len()))
            .any(|i| want.iter().enumerate().all(|(k, w)| toks[i + k].s == *w));
        if !found {
            out.push(diag(
                ctx,
                1,
                rules::FORBID_UNSAFE,
                "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }
}

/// Run every rule over one file.
pub fn check_all(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    check_unordered(ctx, cfg, out);
    check_ambient(ctx, cfg, out);
    check_purity(ctx, cfg, out);
    check_float(ctx, cfg, out);
    check_unsafe(ctx, cfg, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn cfg() -> Config {
        Config {
            hash_types: vec!["HashMap".into(), "FastMap".into(), "HashSet".into()],
            ambient_patterns: vec!["Instant::now".into(), "thread_rng".into()],
            purity_modules: vec!["k.rs".into()],
            purity_hooks: vec!["step".into()],
            purity_disallowed: vec!["source_ctx".into(), "Machine".into()],
            float_modules: vec!["k.rs".into()],
            unsafe_crates: vec!["k.rs".into()],
            ..Config::default()
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let s = scrub(src);
        let ctx = FileCtx::new("k.rs", &s);
        let mut out = Vec::new();
        check_all(&ctx, &cfg(), &mut out);
        // Every fixture here carries the attribute implicitly.
        out.retain(|d| !(d.rule == rules::FORBID_UNSAFE && d.line == 1));
        out
    }

    #[test]
    fn tracked_map_iteration_fires() {
        let d = run("struct S { m: FastMap<u64, u32> }\nfn f(s: &S) { for k in &s.m.keys() {} }");
        assert!(d.iter().any(|d| d.rule == rules::UNORDERED_ITER), "{d:?}");
    }

    #[test]
    fn point_lookup_is_fine() {
        let d = run("fn f(m: &HashMap<u64, u32>) -> Option<&u32> { m.get(&3) }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn iteration_feeding_a_sort_is_fine() {
        let d = run(
            "fn f(m: &HashMap<u64, u32>) -> Vec<u64> {\n  let mut v: Vec<u64> = m.keys().copied().collect();\n  v.sort_unstable();\n  v\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn for_loop_over_map_fires() {
        let d = run("fn f(m: HashMap<u64, u32>) { for (k, v) in m { } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, rules::UNORDERED_ITER);
    }

    #[test]
    fn ambient_patterns_fire() {
        let d = run("fn f() { let t = Instant::now(); let r = thread_rng(); }");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == rules::AMBIENT_NONDET));
    }

    #[test]
    fn hook_touching_live_state_fires() {
        let d = run("impl K { fn step(&mut self) { let c = self.program.source_ctx(v); } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, rules::KERNEL_PURITY);
    }

    #[test]
    fn hook_reading_captured_ctx_is_fine() {
        let d = run("impl K { fn step(&mut self) { let c = self.ctxs[self.pos]; } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_hook_may_call_source_ctx() {
        let d = run("impl K { fn new(&mut self) { let c = self.program.source_ctx(v); } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn float_accumulation_fires() {
        let d =
            run("struct S { acc: f64 }\nimpl S { fn go(&mut self, x: f64) { self.acc += x; } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, rules::FLOAT_FOLD);
    }

    #[test]
    fn float_sum_fires_via_turbofish_or_let_type() {
        let d =
            run("fn f(v: &[f64]) { let a = v.iter().sum::<f64>(); let b: f64 = v.iter().sum(); }");
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn integer_accumulation_is_fine() {
        let d = run("struct S { n: u64 }\nimpl S { fn go(&mut self) { self.n += 1; } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn float_in_tests_is_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n  fn t() { let s: f64 = v.iter().sum(); }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_token_fires() {
        let d = run("#![forbid(unsafe_code)]\nfn f() { unsafe { } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, rules::FORBID_UNSAFE);
    }

    #[test]
    fn missing_forbid_attribute_fires() {
        let s = scrub("pub fn f() {}\n");
        let ctx = FileCtx::new("k.rs", &s);
        let mut out = Vec::new();
        check_unsafe(&ctx, &cfg(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let s = scrub("fn outer() {\n  fn inner() {\n    let x = 1;\n  }\n}\n");
        let ctx = FileCtx::new("k.rs", &s);
        assert_eq!(ctx.enclosing_fn(3), Some("inner"));
        assert_eq!(ctx.enclosing_fn(1), Some("outer"));
        assert_eq!(ctx.enclosing_fn(99), None);
    }
}
