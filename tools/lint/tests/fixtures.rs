//! Fixture-driven self-tests for emogi-lint.
//!
//! Two layers:
//!
//! * **Fixtures** (`tools/lint/fixtures/*.rs`): a known-bad and a
//!   known-good snippet per rule, linted under a config that routes each
//!   fixture to its rule. The bad fixture must fire the right rule id;
//!   the good fixture must be clean.
//! * **Guards** (real sources): the workspace must lint clean under the
//!   checked-in `emogi-lint.toml`, and removing any single protection
//!   the lint watches — a `#![forbid(unsafe_code)]` attribute, the
//!   pagerank canonical-order waiver, a pre-captured-context read, a
//!   sort after hash iteration — must make the lint fail. This is the
//!   proof that the gate is load-bearing rather than vacuously green.

use emogi_lint::config::{self, Config};
use emogi_lint::diag::rules;
use emogi_lint::{lint_root, lint_source};
use std::path::{Path, PathBuf};

/// Routes each fixture file to the rule it exercises. Parsed through the
/// real TOML parser so the config path is exercised end to end.
const FIXTURE_TOML: &str = r#"
[lint]
crates = []

[rules.unordered-iter]
types = ["HashMap", "HashSet", "FastMap", "FastSet"]

[rules.ambient-nondet]
patterns = ["Instant::now", "SystemTime", "thread_rng", "rand::random"]

[rules.kernel-purity]
modules = [
    "purity_bad.rs",
    "purity_good.rs",
    "prefetch_purity_bad.rs",
    "prefetch_purity_good.rs",
    "reorder_purity_bad.rs",
    "reorder_purity_good.rs",
    "tier_purity_bad.rs",
    "tier_purity_good.rs",
]
hooks = [
    "next_task",
    "step",
    "visit_edge",
    "open_vertex",
    "rank_candidates",
    "segment_key",
    "decide_tiered",
]
disallowed = ["source_ctx", "begin_iteration", "post_iteration", "Machine", "now", "monitor"]

[rules.float-fold]
modules = ["float_fold_bad.rs", "float_fold_good.rs"]

[rules.forbid-unsafe]
crates = ["unsafe_bad.rs", "unsafe_good.rs"]
"#;

fn fixture_cfg() -> Config {
    config::parse(FIXTURE_TOML).expect("fixture config parses")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workspace_cfg() -> Config {
    let text = std::fs::read_to_string(workspace_root().join("emogi-lint.toml"))
        .expect("read emogi-lint.toml");
    config::parse(&text).expect("checked-in config parses")
}

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn real(rel: &str) -> String {
    let p = workspace_root().join(rel);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn fired(diags: &[emogi_lint::diag::Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

fn render(diags: &[emogi_lint::diag::Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------- fixtures

#[test]
fn unordered_iter_bad_fires() {
    let d = lint_source(
        "unordered_iter_bad.rs",
        &fixture("unordered_iter_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::UNORDERED_ITER),
        2,
        "drain + values should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn unordered_iter_good_is_clean() {
    let d = lint_source(
        "unordered_iter_good.rs",
        &fixture("unordered_iter_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn ambient_bad_fires() {
    let d = lint_source("ambient_bad.rs", &fixture("ambient_bad.rs"), &fixture_cfg());
    assert_eq!(
        fired(&d, rules::AMBIENT_NONDET),
        2,
        "Instant::now + rand::random should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn ambient_good_is_clean() {
    let d = lint_source(
        "ambient_good.rs",
        &fixture("ambient_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn deadline_clock_bad_fires() {
    let d = lint_source(
        "deadline_clock_bad.rs",
        &fixture("deadline_clock_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::AMBIENT_NONDET),
        2,
        "Instant::now + SystemTime in a deadline check should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn deadline_clock_good_is_clean() {
    let d = lint_source(
        "deadline_clock_good.rs",
        &fixture("deadline_clock_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn purity_bad_fires() {
    let d = lint_source("purity_bad.rs", &fixture("purity_bad.rs"), &fixture_cfg());
    assert_eq!(
        fired(&d, rules::KERNEL_PURITY),
        2,
        "live source_ctx in step + machine clock in visit_edge should fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn purity_good_is_clean() {
    let d = lint_source("purity_good.rs", &fixture("purity_good.rs"), &fixture_cfg());
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn prefetch_purity_bad_fires() {
    let d = lint_source(
        "prefetch_purity_bad.rs",
        &fixture("prefetch_purity_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::KERNEL_PURITY),
        2,
        "live clock in rank_candidates + monitor write in step should fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn prefetch_purity_good_is_clean() {
    let d = lint_source(
        "prefetch_purity_good.rs",
        &fixture("prefetch_purity_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn reorder_purity_bad_fires() {
    let d = lint_source(
        "reorder_purity_bad.rs",
        &fixture("reorder_purity_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::KERNEL_PURITY),
        2,
        "live clock + monitor read in segment_key should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn reorder_purity_good_is_clean() {
    let d = lint_source(
        "reorder_purity_good.rs",
        &fixture("reorder_purity_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn reorder_unordered_bad_fires() {
    let d = lint_source(
        "reorder_unordered_bad.rs",
        &fixture("reorder_unordered_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::UNORDERED_ITER),
        2,
        "drain + keys over the segment map should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn reorder_unordered_good_is_clean() {
    let d = lint_source(
        "reorder_unordered_good.rs",
        &fixture("reorder_unordered_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn pipeline_unordered_bad_fires() {
    let d = lint_source(
        "pipeline_unordered_bad.rs",
        &fixture("pipeline_unordered_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::UNORDERED_ITER),
        2,
        "drain + keys over the in-flight map should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn pipeline_unordered_good_is_clean() {
    let d = lint_source(
        "pipeline_unordered_good.rs",
        &fixture("pipeline_unordered_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn tier_ambient_bad_fires() {
    let d = lint_source(
        "tier_ambient_bad.rs",
        &fixture("tier_ambient_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::AMBIENT_NONDET),
        2,
        "Instant::now + SystemTime in a tier policy should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn tier_ambient_good_is_clean() {
    let d = lint_source(
        "tier_ambient_good.rs",
        &fixture("tier_ambient_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn tier_purity_bad_fires() {
    let d = lint_source(
        "tier_purity_bad.rs",
        &fixture("tier_purity_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::KERNEL_PURITY),
        2,
        "live clock + monitor read in decide_tiered should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn tier_purity_good_is_clean() {
    let d = lint_source(
        "tier_purity_good.rs",
        &fixture("tier_purity_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn float_fold_bad_fires() {
    let d = lint_source(
        "float_fold_bad.rs",
        &fixture("float_fold_bad.rs"),
        &fixture_cfg(),
    );
    assert_eq!(
        fired(&d, rules::FLOAT_FOLD),
        2,
        "`+=` on f64 + `.sum::<f64>()` should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn float_fold_good_is_clean() {
    let d = lint_source(
        "float_fold_good.rs",
        &fixture("float_fold_good.rs"),
        &fixture_cfg(),
    );
    assert!(d.is_empty(), "{}", render(&d));
}

#[test]
fn unsafe_bad_fires() {
    let d = lint_source("unsafe_bad.rs", &fixture("unsafe_bad.rs"), &fixture_cfg());
    assert_eq!(
        fired(&d, rules::FORBID_UNSAFE),
        2,
        "missing attribute + unsafe block should both fire:\n{}",
        render(&d)
    );
    assert_eq!(d.len(), 2, "no other rule should fire:\n{}", render(&d));
}

#[test]
fn unsafe_good_is_clean() {
    let d = lint_source("unsafe_good.rs", &fixture("unsafe_good.rs"), &fixture_cfg());
    assert!(d.is_empty(), "{}", render(&d));
}

// ------------------------------------------------------------------ guards

/// The whole workspace lints clean under the checked-in configuration —
/// the exact invocation CI runs.
#[test]
fn workspace_is_clean_under_checked_in_config() {
    let diags = lint_root(&workspace_root(), &workspace_cfg()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace lint is not clean:\n{}",
        render(&diags)
    );
}

/// Stripping `#![forbid(unsafe_code)]` from a real crate root makes the
/// lint fail — the attribute is a guard the lint keeps from rotting.
#[test]
fn stripping_forbid_attribute_from_core_fires() {
    let cfg = workspace_cfg();
    let path = "crates/core/src/lib.rs";
    let src = real(path);
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "intact root clean"
    );
    assert!(src.contains("#![forbid(unsafe_code)]"), "attribute present");
    let stripped = src.replace("#![forbid(unsafe_code)]", "");
    let d = lint_source(path, &stripped, &cfg);
    assert_eq!(fired(&d, rules::FORBID_UNSAFE), 1, "{}", render(&d));
}

/// PageRank's canonical-order fold is sanctioned *only* by its scoped
/// waiver: lint the real source without the waiver and float-fold fires.
#[test]
fn pagerank_canonical_fold_needs_its_waiver() {
    let path = "crates/core/src/pagerank.rs";
    let src = real(path);
    let mut cfg = workspace_cfg();
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "pagerank clean with its waiver"
    );
    let before = cfg.waivers.len();
    cfg.waivers.retain(|w| w.path != path);
    assert!(cfg.waivers.len() < before, "the waiver exists to remove");
    let d = lint_source(path, &src, &cfg);
    assert!(
        fired(&d, rules::FLOAT_FOLD) >= 1,
        "waiver must be load-bearing:\n{}",
        render(&d)
    );
}

/// Re-introducing a live program-state read inside a kernel hook — the
/// regression pre-captured contexts exist to prevent — fires
/// kernel-purity on the real kernel module.
#[test]
fn live_ctx_capture_in_kernel_hook_fires() {
    let cfg = workspace_cfg();
    let path = "crates/core/src/kernel.rs";
    let src = real(path);
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "intact kernel clean"
    );
    let mutated = format!(
        "{src}\nimpl Regress {{ fn step(&mut self) {{ let c = self.program.source_ctx(0); }} }}\n"
    );
    let d = lint_source(path, &mutated, &cfg);
    assert!(
        fired(&d, rules::KERNEL_PURITY) >= 1,
        "live capture in a hook must fire:\n{}",
        render(&d)
    );
}

/// The pipelined predictor is under the same purity gate as the kernel
/// hooks: re-introducing a live machine/clock read into a
/// `rank_candidates` body fires kernel-purity on the real prefetch
/// module.
#[test]
fn live_machine_read_in_rank_candidates_fires() {
    let cfg = workspace_cfg();
    let path = "crates/runtime/src/prefetch.rs";
    let src = real(path);
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "intact prefetch module clean"
    );
    let mutated = format!(
        "{src}\nimpl Regress {{ fn rank_candidates(&self, m: &Machine) -> u64 {{ m.now }} }}\n"
    );
    let d = lint_source(path, &mutated, &cfg);
    assert!(
        fired(&d, rules::KERNEL_PURITY) >= 1,
        "live machine read in the prediction hook must fire:\n{}",
        render(&d)
    );
}

/// The copy-lane module is purity-gated too: a hook body advancing the
/// machine clock from inside the lane fires on the real pipeline module.
#[test]
fn machine_clock_write_in_copy_lane_hook_fires() {
    let cfg = workspace_cfg();
    let path = "crates/sim/src/pipeline.rs";
    let src = real(path);
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "intact pipeline module clean"
    );
    let mutated = format!(
        "{src}\nimpl Regress {{ fn step(&mut self, m: &mut Machine) {{ m.now += 1; }} }}\n"
    );
    let d = lint_source(path, &mutated, &cfg);
    assert!(
        fired(&d, rules::KERNEL_PURITY) >= 1,
        "clock write in a copy-lane hook must fire:\n{}",
        render(&d)
    );
}

/// The frontier-reorder module is purity-gated too: re-introducing a
/// live machine read into a `segment_key` body fires kernel-purity on
/// the real reorder module.
#[test]
fn live_machine_read_in_segment_key_fires() {
    let cfg = workspace_cfg();
    let path = "crates/core/src/reorder.rs";
    let src = real(path);
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "intact reorder module clean"
    );
    let mutated = format!(
        "{src}\nimpl Regress {{ fn segment_key(&self, m: &Machine) -> u64 {{ m.now }} }}\n"
    );
    let d = lint_source(path, &mutated, &cfg);
    assert!(
        fired(&d, rules::KERNEL_PURITY) >= 1,
        "live machine read in the reorder key must fire:\n{}",
        render(&d)
    );
}

/// The N-tier placement policy is under the same purity gate: re-
/// introducing a live machine/clock read into a `decide_tiered` body
/// fires kernel-purity on the real UVM transfer-policy module.
#[test]
fn live_machine_read_in_decide_tiered_fires() {
    let cfg = workspace_cfg();
    let path = "crates/uvm/src/transfer.rs";
    let src = real(path);
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "intact transfer-policy module clean"
    );
    let mutated = format!(
        "{src}\nimpl Regress {{ fn decide_tiered(&self, m: &Machine) -> u64 {{ m.now }} }}\n"
    );
    let d = lint_source(path, &mutated, &cfg);
    assert!(
        fired(&d, rules::KERNEL_PURITY) >= 1,
        "live machine read in the tier decision must fire:\n{}",
        render(&d)
    );
}

/// The SLA scheduler is under the ambient-nondet gate: re-introducing a
/// wall-clock read into the real scheduler module — the shortcut a
/// deadline-expiry check would be tempted to take — fires on
/// `crates/serve`, proving serving outcomes stay a pure function of the
/// submitted workload.
#[test]
fn wall_clock_read_in_the_sla_scheduler_fires() {
    let cfg = workspace_cfg();
    let path = "crates/serve/src/scheduler.rs";
    let src = real(path);
    assert!(
        lint_source(path, &src, &cfg).is_empty(),
        "intact scheduler clean"
    );
    let mutated = format!(
        "{src}\npub fn expired_now(deadline_ns: u128) -> bool {{ \
         std::time::Instant::now().elapsed().as_nanos() > deadline_ns }}\n"
    );
    let d = lint_source(path, &mutated, &cfg);
    assert!(
        fired(&d, rules::AMBIENT_NONDET) >= 1,
        "a wall-clock deadline check must fire:\n{}",
        render(&d)
    );
}

/// Removing the explicit sort that launders a hash iteration makes the
/// lint fail — "followed by an explicit sort" is checked, not assumed.
#[test]
fn removing_the_sort_guard_fires() {
    let good = fixture("unordered_iter_good.rs");
    let cfg = fixture_cfg();
    assert!(
        lint_source("unordered_iter_good.rs", &good, &cfg).is_empty(),
        "sorted version clean"
    );
    assert!(good.contains("addrs.sort_unstable();"));
    let unsorted = good.replace("addrs.sort_unstable();", "");
    let d = lint_source("unordered_iter_good.rs", &unsorted, &cfg);
    assert!(
        fired(&d, rules::UNORDERED_ITER) >= 1,
        "unsorted iteration must fire:\n{}",
        render(&d)
    );
}
