//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of the `rand` 0.8 API the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over the
//! integer/float/bool types the graph generators draw. The generator is
//! splitmix64 feeding xoshiro256++, which is statistically solid for the
//! synthetic-graph use here and fully deterministic in its seed.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

/// Integer types usable with `gen_range`.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_below<R: RngCore>(rng: &mut R, lo: Self, hi_excl: Self) -> Self;
    fn successor(self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                debug_assert!(lo < hi_excl, "gen_range with empty range");
                let span = (hi_excl as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far
                // below what the synthetic generators can observe.
                let r = rng.next_u64() as u128;
                lo + ((r * span) >> 64) as $t
            }
            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by `gen_range` (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_below(rng, lo, hi.successor())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via splitmix64 — the statistical workhorse.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values reachable");
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(8..=72);
            assert!((8..=72).contains(&v));
        }
    }

    #[test]
    fn f64_is_unit_interval_and_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_700..5_300).contains(&trues), "{trues} trues");
    }
}
