//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of the criterion 0.5 API the workspace's benches use, backed by a
//! plain `Instant`-based timing loop: enough to compile, run and print
//! per-benchmark wall-clock numbers, without criterion's statistics.

// Timing shim: wall-clock use is its whole point. Opt out of the
// workspace-wide ambient-clock ban (clippy.toml / ambient-nondet).
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn new() -> Self {
        Self { sample_size: 20 }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }
}

/// Declared throughput; accepted and ignored (no per-element rates).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: time one iteration, then size the batch so the whole
    // sample run lands near MEASURE_TARGET.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let budget = MEASURE_TARGET.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let samples = sample_size.max(1) as u64;
    let mean_ns = total.as_nanos() as f64 / (samples * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    println!("bench {name:<50} mean {mean_ns:>12.1} ns/iter   best {best_ns:>12.1} ns/iter   ({samples} samples x {iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("push_pop", 1000).0, "push_pop/1000");
    }
}
