//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `Just` / `any` /
//! `prop_oneof!` / `prop::collection::vec` strategies, the `proptest!`
//! macro, and the `prop_assert*` family. No shrinking: a failing case
//! panics with its seed-derived inputs printed by the assertion itself.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Per-test-function configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values (subset of proptest's `Strategy`; no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integer types with range strategies.
pub trait RangeValue: Copy {
    fn from_offset(lo: Self, offset: u64) -> Self;
    fn span(lo: Self, hi_excl: Self) -> u64;
}

macro_rules! range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn from_offset(lo: Self, offset: u64) -> Self {
                (lo as i128 + offset as i128) as $t
            }
            fn span(lo: Self, hi_excl: Self) -> u64 {
                (hi_excl as i128 - lo as i128) as u64
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = <$t as RangeValue>::span(self.start, self.end);
                assert!(span > 0, "empty range strategy");
                <$t as RangeValue>::from_offset(self.start, rng.below(span))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = <$t as RangeValue>::span(lo, hi) + 1;
                <$t as RangeValue>::from_offset(lo, rng.below(span))
            }
        }
    )*};
}

range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Whole-domain arbitrary values (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper for [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `prop::collection::vec(element, len_range)`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec strategy with empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one test function's cases; used by the `proptest!` expansion.
///
/// The seed is derived from the test name (FNV-1a), so failures
/// reproduce run-to-run with no flags. Setting `EMOGI_PROPTEST_SEED=<n>`
/// mixes an explicit seed in on top — CI pins it so a red CI run is
/// reproduced locally by exporting the same value.
pub fn run_cases(name: &str, cfg: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    if let Some(explicit) = std::env::var("EMOGI_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        // splitmix the explicit seed so adjacent values diverge fully.
        seed ^= TestRng::new(explicit).next_u64();
    }
    for i in 0..cfg.cases {
        let mut rng = TestRng::new(seed ^ (u64::from(i) << 32));
        case(&mut rng);
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Discard this case (no replacement generation, unlike real
            // proptest — acceptable for the assumption rates used here).
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &cfg, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                // Immediately-invoked closure so prop_assume! can
                // early-return out of a single case.
                #[allow(unused_mut)]
                let mut case = move || { $body };
                case();
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()); $($rest)* }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = (0u64..4096).generate(&mut rng);
            assert!(v < 4096);
            let w = (1u8..=16).generate(&mut rng);
            assert!((1..=16).contains(&w));
        }
        let vs = prop::collection::vec(0u32..64, 1..64).generate(&mut rng);
        assert!((1..64).contains(&vs.len()));
        assert!(vs.iter().all(|&v| v < 64));
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(4u8), Just(8u8)].prop_map(|v| u32::from(v) * 2);
        let mut rng = crate::TestRng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![8, 16]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro expansion itself: multiple bindings, assume, assert.
        #[test]
        fn macro_generates_and_filters(x in 0u32..100, ys in prop::collection::vec(0u32..10, 1..5)) {
            prop_assume!(x > 0);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.iter().filter(|&&y| y < 10).count());
        }
    }
}
