//! `cudaMemcpy`-style bulk transfer engine.
//!
//! Explicit copies are the transport of the Subway baseline (§5.6) and the
//! "cudaMemcpy peak" reference line of Figure 8. A copy pays a fixed
//! driver/launch overhead and then streams through the PCIe link's bulk
//! path, touching host DRAM on one side and device memory on the other.

use crate::dram::Dram;
use crate::monitor::TrafficMonitor;
use crate::pcie::PcieLink;
use crate::time::Time;

/// Fixed software cost of one `cudaMemcpy` call (driver validation, DMA
/// descriptor setup). Measured values on the paper's platform are in the
/// 5–15 µs range for device-synchronous copies.
pub const MEMCPY_LAUNCH_OVERHEAD_NS: Time = 8_000;

/// Bulk copy engine bound to one link + host/device memory pair.
#[derive(Debug, Default)]
pub struct DmaEngine {
    /// Total payload bytes copied host→device.
    pub bytes_to_device: u64,
    /// Total payload bytes copied device→host.
    pub bytes_to_host: u64,
    /// Number of copies issued.
    pub copies: u64,
}

impl DmaEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Synchronous host→device copy; returns completion time.
    pub fn copy_to_device(
        &mut self,
        now: Time,
        bytes: u64,
        link: &mut PcieLink,
        host: &mut Dram,
        device: &mut Dram,
        monitor: &mut TrafficMonitor,
    ) -> Time {
        if bytes == 0 {
            return now;
        }
        self.copies += 1;
        self.bytes_to_device += bytes;
        let start = now + MEMCPY_LAUNCH_OVERHEAD_NS;
        let arrived = link.dma_host_to_gpu(start, bytes, host, monitor);
        // The device-side write happens as data streams in; it only shows
        // up in the completion time if HBM is slower than the link, which
        // it never is on these platforms, but we keep the accounting exact.
        device.write_bulk(start, bytes).max(arrived)
    }

    /// Synchronous device→host copy; returns completion time.
    pub fn copy_to_host(
        &mut self,
        now: Time,
        bytes: u64,
        link: &mut PcieLink,
        host: &mut Dram,
        device: &mut Dram,
        monitor: &mut TrafficMonitor,
    ) -> Time {
        if bytes == 0 {
            return now;
        }
        self.copies += 1;
        self.bytes_to_host += bytes;
        let start = now + MEMCPY_LAUNCH_OVERHEAD_NS;
        let read_done = device.read_bulk(start, bytes);
        link.dma_gpu_to_host(start, bytes, host, monitor)
            .max(read_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;
    use crate::pcie::PcieConfig;

    fn rig() -> (PcieLink, Dram, Dram, TrafficMonitor, DmaEngine) {
        (
            PcieLink::new(PcieConfig::gen3_x16()),
            Dram::new(DramConfig::ddr4_2933_quad()),
            Dram::new(DramConfig::hbm2_v100()),
            TrafficMonitor::new(10_000),
            DmaEngine::new(),
        )
    }

    #[test]
    fn large_copy_amortizes_launch_overhead() {
        let (mut link, mut host, mut dev, mut mon, mut dma) = rig();
        let bytes = 256u64 << 20;
        let done = dma.copy_to_device(0, bytes, &mut link, &mut host, &mut dev, &mut mon);
        let gbps = bytes as f64 / done as f64;
        assert!((12.0..12.6).contains(&gbps), "large memcpy {gbps} GB/s");
    }

    #[test]
    fn small_copy_is_overhead_dominated() {
        let (mut link, mut host, mut dev, mut mon, mut dma) = rig();
        let done = dma.copy_to_device(0, 4096, &mut link, &mut host, &mut dev, &mut mon);
        assert!(done >= MEMCPY_LAUNCH_OVERHEAD_NS);
        let gbps = 4096.0 / done as f64;
        assert!(
            gbps < 1.0,
            "4 KiB memcpy should be far from peak, got {gbps}"
        );
    }

    #[test]
    fn zero_byte_copy_is_free() {
        let (mut link, mut host, mut dev, mut mon, mut dma) = rig();
        assert_eq!(
            dma.copy_to_device(42, 0, &mut link, &mut host, &mut dev, &mut mon),
            42
        );
        assert_eq!(dma.copies, 0);
    }

    #[test]
    fn copy_back_uses_uplink_and_counts() {
        let (mut link, mut host, mut dev, mut mon, mut dma) = rig();
        let done = dma.copy_to_host(0, 1 << 20, &mut link, &mut host, &mut dev, &mut mon);
        assert!(done > 0);
        assert_eq!(dma.bytes_to_host, 1 << 20);
        assert_eq!(dev.bytes_read, 1 << 20);
        assert_eq!(host.bytes_written, 1 << 20);
    }

    #[test]
    fn device_side_traffic_is_accounted() {
        let (mut link, mut host, mut dev, mut mon, mut dma) = rig();
        dma.copy_to_device(0, 1 << 20, &mut link, &mut host, &mut dev, &mut mon);
        assert_eq!(dev.bytes_written, 1 << 20);
        assert_eq!(host.bytes_read, 1 << 20);
        assert_eq!(mon.dma_bytes, 1 << 20);
    }
}
