//! DRAM model with a minimum access granularity.
//!
//! EMOGI §3.3 points out that the host's DDR4 DRAM serves a minimum of 64
//! bytes per access, so a stream of 32-byte PCIe reads wastes half of the
//! DRAM bandwidth (the paper's Figure 4 shows the DRAM lane running at
//! exactly twice the PCIe lane for the strided pattern). We reproduce that
//! by charging every request the 64-byte-aligned *span* it touches.
//!
//! The same model doubles as the GPU's HBM when configured with HBM numbers;
//! granularity for HBM2 is one 32-byte sector.

use crate::time::{aligned_span, bytes_over_bandwidth_ns, Time};

/// Static configuration of one DRAM device.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Human-readable name used in reports ("DDR4-2933 quad", "HBM2").
    pub name: &'static str,
    /// Minimum access size in bytes (64 for DDR4, 32 for HBM2).
    pub access_granularity: u64,
    /// Peak sequential bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Access latency in nanoseconds (row activation + CAS, amortized).
    pub latency_ns: Time,
}

impl DramConfig {
    /// The evaluation host of Table 1: DDR4-2933 in quad-channel mode.
    /// 4 channels x 2933 MT/s x 8 B = 93.9 GB/s peak.
    pub fn ddr4_2933_quad() -> Self {
        Self {
            name: "DDR4-2933 quad-channel",
            access_granularity: 64,
            bandwidth_gbps: 93.9,
            latency_ns: 90,
        }
    }

    /// DGX A100 host memory (8-channel DDR4-3200 per socket; we model the
    /// share reachable from one root port generously — it is never the
    /// bottleneck).
    pub fn ddr4_3200_octa() -> Self {
        Self {
            name: "DDR4-3200 octa-channel",
            access_granularity: 64,
            bandwidth_gbps: 204.8,
            latency_ns: 90,
        }
    }

    /// V100 on-package HBM2 (16 GB, ~900 GB/s).
    pub fn hbm2_v100() -> Self {
        Self {
            name: "HBM2 (V100)",
            access_granularity: 32,
            bandwidth_gbps: 900.0,
            latency_ns: 350,
        }
    }

    /// A100 on-package HBM2e (40 GB, ~1555 GB/s).
    pub fn hbm2e_a100() -> Self {
        Self {
            name: "HBM2e (A100)",
            access_granularity: 32,
            bandwidth_gbps: 1555.0,
            latency_ns: 320,
        }
    }

    /// Titan Xp GDDR5X (12 GB, ~547 GB/s).
    pub fn gddr5x_titan_xp() -> Self {
        Self {
            name: "GDDR5X (Titan Xp)",
            access_granularity: 32,
            bandwidth_gbps: 547.0,
            latency_ns: 400,
        }
    }
}

/// A DRAM device: a bandwidth resource with busy-until semantics plus
/// cumulative traffic counters.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    busy_until: Time,
    /// Total bytes read from the array, after granularity rounding.
    pub bytes_read: u64,
    /// Total bytes written to the array, after granularity rounding.
    pub bytes_written: u64,
}

impl Dram {
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            busy_until: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Service a read of `[addr, addr + size)` arriving at `arrive`.
    /// Returns the time the data is available. Charges the 64-byte-aligned
    /// span against bandwidth and the traffic counter.
    pub fn read(&mut self, arrive: Time, addr: u64, size: u32) -> Time {
        let span = aligned_span(addr, size, self.cfg.access_granularity);
        self.bytes_read += span;
        self.occupy(arrive, span)
    }

    /// Service a write (same cost model as a read; the simulated workloads
    /// are read-dominated so we do not model write combining).
    pub fn write(&mut self, arrive: Time, addr: u64, size: u32) -> Time {
        let span = aligned_span(addr, size, self.cfg.access_granularity);
        self.bytes_written += span;
        self.occupy(arrive, span)
    }

    /// Service a bulk sequential read of `bytes` (DMA): granularity rounding
    /// is irrelevant for large streams, bandwidth occupancy is not.
    pub fn read_bulk(&mut self, arrive: Time, bytes: u64) -> Time {
        let span = crate::time::align_up(bytes.max(1), self.cfg.access_granularity);
        self.bytes_read += span;
        self.occupy(arrive, span)
    }

    /// Service a bulk sequential write of `bytes` (DMA into this device).
    pub fn write_bulk(&mut self, arrive: Time, bytes: u64) -> Time {
        let span = crate::time::align_up(bytes.max(1), self.cfg.access_granularity);
        self.bytes_written += span;
        self.occupy(arrive, span)
    }

    /// Counter-only twin of [`read_bulk`](Self::read_bulk): charge the
    /// traffic a bulk read would record without occupying the bank or
    /// returning a completion time. Used to retro-account asynchronous
    /// copies whose *time* was already paid on a pipelined copy lane but
    /// whose *bytes* must still appear in the traffic counters exactly as
    /// a synchronous copy's would.
    pub fn account_bulk_read(&mut self, bytes: u64) {
        self.bytes_read += crate::time::align_up(bytes.max(1), self.cfg.access_granularity);
    }

    /// Counter-only twin of [`write_bulk`](Self::write_bulk); see
    /// [`account_bulk_read`](Self::account_bulk_read).
    pub fn account_bulk_write(&mut self, bytes: u64) {
        self.bytes_written += crate::time::align_up(bytes.max(1), self.cfg.access_granularity);
    }

    fn occupy(&mut self, arrive: Time, span: u64) -> Time {
        let start = self.busy_until.max(arrive);
        let xfer = bytes_over_bandwidth_ns(span, self.cfg.bandwidth_gbps);
        self.busy_until = start + xfer;
        start + xfer + self.cfg.latency_ns
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Reset traffic counters (busy-until is preserved; use between
    /// measurement phases).
    pub fn reset_counters(&mut self) {
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig {
            name: "test",
            access_granularity: 64,
            bandwidth_gbps: 64.0, // 64 B/ns: one word per ns
            latency_ns: 10,
        })
    }

    #[test]
    fn small_read_charges_full_word() {
        let mut d = dram();
        let done = d.read(0, 0, 32);
        assert_eq!(d.bytes_read, 64, "32 B read must cost one 64 B word");
        assert_eq!(done, 1 + 10); // 1 ns transfer + latency
    }

    #[test]
    fn straddling_read_charges_two_words() {
        let mut d = dram();
        d.read(0, 48, 32);
        assert_eq!(d.bytes_read, 128);
    }

    #[test]
    fn back_to_back_reads_queue_on_bandwidth() {
        let mut d = dram();
        let a = d.read(0, 0, 64); // busy 0..1
        let b = d.read(0, 64, 64); // busy 1..2
        assert_eq!(a, 11);
        assert_eq!(b, 12, "second read must wait for the first transfer");
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = dram();
        d.read(0, 0, 64);
        let b = d.read(100, 64, 64);
        assert_eq!(b, 111, "arrival after idle period starts immediately");
    }

    #[test]
    fn bulk_read_rounds_to_granularity() {
        let mut d = dram();
        d.read_bulk(0, 100);
        assert_eq!(d.bytes_read, 128);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut d = dram();
        d.read(0, 0, 64);
        d.write(0, 0, 64);
        assert_eq!(d.total_bytes(), 128);
        d.reset_counters();
        assert_eq!(d.total_bytes(), 0);
    }
}
