//! The FPGA-style PCIe traffic monitor.
//!
//! EMOGI's authors connected an FPGA to the PCIe switch and programmed it to
//! record "the request count, average/peak number of outstanding memory
//! requests, and request sizes" (§3.2). This module is the software
//! equivalent: the link model reports every request to a `TrafficMonitor`,
//! which maintains exactly those statistics plus the bandwidth-over-time
//! series used to draw Figure 4 and the byte counters behind the I/O
//! amplification study (Figure 10).

use crate::time::{achieved_gbps, Time};

/// Histogram of zero-copy read request sizes. The GPU coalescing unit can
/// only emit 32/64/96/128-byte requests (Figure 3), but the histogram keeps
/// an `other` bucket so a modelling bug cannot hide.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    /// Counts for 32, 64, 96 and 128-byte requests.
    pub buckets: [u64; 4],
    /// Requests of any other size (always 0 in a correct model).
    pub other: u64,
}

impl SizeHistogram {
    pub fn record(&mut self, size: u32) {
        match size {
            32 => self.buckets[0] += 1,
            64 => self.buckets[1] += 1,
            96 => self.buckets[2] += 1,
            128 => self.buckets[3] += 1,
            _ => self.other += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.other
    }

    /// Fraction of requests in the `size` bucket (32/64/96/128).
    pub fn fraction(&self, size: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let count = match size {
            32 => self.buckets[0],
            64 => self.buckets[1],
            96 => self.buckets[2],
            128 => self.buckets[3],
            _ => self.other,
        };
        count as f64 / total as f64
    }

    pub fn merge(&mut self, other: &SizeHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
        self.other += other.other;
    }
}

/// Bytes moved per fixed time window; used to plot bandwidth over time like
/// the Intel VTune traces in Figure 4.
#[derive(Debug, Clone)]
pub struct BandwidthSeries {
    window_ns: Time,
    windows: Vec<u64>,
}

impl BandwidthSeries {
    pub fn new(window_ns: Time) -> Self {
        assert!(window_ns > 0);
        Self {
            window_ns,
            windows: Vec::new(),
        }
    }

    pub fn record(&mut self, at: Time, bytes: u64) {
        let idx = (at / self.window_ns) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, 0);
        }
        self.windows[idx] += bytes;
    }

    /// (window start time, achieved GB/s) samples.
    pub fn samples(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        let w = self.window_ns;
        self.windows
            .iter()
            .enumerate()
            .map(move |(i, &b)| (i as Time * w, achieved_gbps(b, w)))
    }

    /// Peak single-window bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.windows
            .iter()
            .map(|&b| achieved_gbps(b, self.window_ns))
            .fold(0.0, f64::max)
    }

    pub fn window_ns(&self) -> Time {
        self.window_ns
    }
}

/// Running statistics about the number of in-flight (tagged) requests.
#[derive(Debug, Clone, Default)]
pub struct OutstandingGauge {
    current: u32,
    peak: u32,
    area: f64, // time-weighted sum of `current`
    last_change: Time,
}

impl OutstandingGauge {
    pub fn inc(&mut self, now: Time) {
        self.advance(now);
        self.current += 1;
        self.peak = self.peak.max(self.current);
    }

    pub fn dec(&mut self, now: Time) {
        self.advance(now);
        debug_assert!(self.current > 0, "gauge underflow");
        self.current = self.current.saturating_sub(1);
    }

    fn advance(&mut self, now: Time) {
        // Issues are timestamped at the end of their warp's compute phase,
        // which can sit a few ns past an interleaved completion event;
        // clamp instead of asserting (the time-weighted area is unaffected
        // by a zero-length interval).
        let now = now.max(self.last_change);
        self.area += f64::from(self.current) * (now - self.last_change) as f64;
        self.last_change = now;
    }

    pub fn current(&self) -> u32 {
        self.current
    }

    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Time-weighted average number of outstanding requests over `[0, now]`.
    pub fn average(&self, now: Time) -> f64 {
        if now == 0 {
            return 0.0;
        }
        let area =
            self.area + f64::from(self.current) * (now.saturating_sub(self.last_change)) as f64;
        area / now as f64
    }
}

/// The monitor proper. One per simulated machine; reset between phases.
#[derive(Debug, Clone)]
pub struct TrafficMonitor {
    /// Number of zero-copy read requests observed on the link.
    pub read_requests: u64,
    /// Request-size histogram (Figure 5 / Figure 7 data).
    pub sizes: SizeHistogram,
    /// Payload bytes of zero-copy reads (host→GPU data).
    pub zero_copy_bytes: u64,
    /// Bytes moved by bulk DMA (cudaMemcpy and UVM page migration).
    pub dma_bytes: u64,
    /// Wire bytes including TLP headers, both mechanisms.
    pub wire_bytes: u64,
    /// In-flight request statistics.
    pub outstanding: OutstandingGauge,
    /// Host→GPU payload bandwidth over time.
    pub series: BandwidthSeries,
}

impl TrafficMonitor {
    /// `window_ns` sets the resolution of the bandwidth time series.
    pub fn new(window_ns: Time) -> Self {
        Self {
            read_requests: 0,
            sizes: SizeHistogram::default(),
            zero_copy_bytes: 0,
            dma_bytes: 0,
            wire_bytes: 0,
            outstanding: OutstandingGauge::default(),
            series: BandwidthSeries::new(window_ns),
        }
    }

    /// Record the issue of a zero-copy read request of `size` bytes.
    pub fn on_read_issued(&mut self, now: Time, size: u32) {
        self.read_requests += 1;
        self.sizes.record(size);
        self.outstanding.inc(now);
    }

    /// Record completion of a zero-copy read (payload + header wire cost).
    pub fn on_read_completed(&mut self, now: Time, size: u32, wire: u32) {
        self.outstanding.dec(now);
        self.zero_copy_bytes += u64::from(size);
        self.wire_bytes += u64::from(wire);
        self.series.record(now, u64::from(size));
    }

    /// Record a bulk DMA of `bytes` payload finishing at `now`, having
    /// occupied the wire for `wire` total bytes.
    pub fn on_dma(&mut self, now: Time, bytes: u64, wire: u64) {
        self.dma_bytes += bytes;
        self.wire_bytes += wire;
        self.series.record(now, bytes);
    }

    /// All payload bytes that crossed host→GPU.
    pub fn host_to_gpu_bytes(&self) -> u64 {
        self.zero_copy_bytes + self.dma_bytes
    }

    /// The paper's I/O read amplification metric: bytes moved from host
    /// memory divided by the dataset size (Figure 10).
    pub fn amplification(&self, dataset_bytes: u64) -> f64 {
        if dataset_bytes == 0 {
            return 0.0;
        }
        self.host_to_gpu_bytes() as f64 / dataset_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = SizeHistogram::default();
        for &s in &[32, 64, 96, 128, 128, 40] {
            h.record(s);
        }
        assert_eq!(h.buckets, [1, 1, 1, 2]);
        assert_eq!(h.other, 1);
        assert_eq!(h.total(), 6);
        assert!((h.fraction(128) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = SizeHistogram::default();
        a.record(32);
        let mut b = SizeHistogram::default();
        b.record(128);
        a.merge(&b);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn series_buckets_by_window() {
        let mut s = BandwidthSeries::new(100);
        s.record(10, 1000);
        s.record(90, 1000);
        s.record(150, 500);
        let v: Vec<_> = s.samples().collect();
        assert_eq!(v.len(), 2);
        assert!((v[0].1 - 20.0).abs() < 1e-9); // 2000 B / 100 ns = 20 GB/s
        assert!((v[1].1 - 5.0).abs() < 1e-9);
        assert!((s.peak_gbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_tracks_average_and_peak() {
        let mut g = OutstandingGauge::default();
        g.inc(0);
        g.inc(0);
        g.dec(50);
        g.dec(100);
        // 2 outstanding for 50 ns, then 1 for 50 ns => average 1.5
        assert!((g.average(100) - 1.5).abs() < 1e-12);
        assert_eq!(g.peak(), 2);
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn amplification_uses_all_host_to_gpu_traffic() {
        let mut m = TrafficMonitor::new(1000);
        m.on_read_issued(0, 128);
        m.on_read_completed(10, 128, 148);
        m.on_dma(20, 4096, 4416);
        assert_eq!(m.host_to_gpu_bytes(), 4224);
        assert!((m.amplification(4224) - 1.0).abs() < 1e-12);
        assert_eq!(m.read_requests, 1);
    }
}
