//! Multi-link interconnect model for simulated multi-GPU platforms.
//!
//! EMOGI's multi-GPU evaluation (§5.7) scales because each GPU reads only
//! the edge-list ranges its own frontier shard needs, over its **own**
//! host link — the links do not share bandwidth. An [`Interconnect`]
//! models exactly that: one independent PCIe host link per device (each
//! with its own occupancy and byte accounting) plus an optional
//! NVLink-class inter-GPU peer link for the frontier/status exchange that
//! happens between iterations.
//!
//! The model is deliberately coarser than [`crate::pcie::PcieLink`]: the
//! per-device *kernel* traffic (zero-copy reads, DMA staging) still runs
//! through each device's own `PcieLink` inside its machine; the
//! interconnect accounts for the *inter-device exchange phases*, which
//! are bulk, synchronous transfers between iterations. Each lane is a
//! busy-until wire resource — back-to-back sends serialize, concurrent
//! sends on different lanes overlap — which is the occupancy behaviour
//! that matters at barrier granularity.

use crate::pcie::PcieConfig;
use crate::time::{bytes_over_bandwidth_ns, Time};

/// An NVLink-class point-to-point peer link between GPUs.
#[derive(Debug, Clone)]
pub struct PeerLinkConfig {
    /// Per-direction egress bandwidth of one device's peer port, GB/s.
    pub bandwidth_gbps: f64,
    /// One-way propagation latency, ns.
    pub latency_ns: Time,
}

impl PeerLinkConfig {
    /// V100-era NVLink 2.0: three 25 GB/s links ganged per GPU, sub-µs
    /// latency.
    pub fn nvlink2() -> Self {
        Self {
            bandwidth_gbps: 75.0,
            latency_ns: 500,
        }
    }
}

impl Default for PeerLinkConfig {
    fn default() -> Self {
        Self::nvlink2()
    }
}

/// How to build an [`Interconnect`].
#[derive(Debug, Clone)]
pub struct InterconnectConfig {
    /// Number of devices (one host link each).
    pub links: usize,
    /// The per-device host link (only its bandwidth/latency parameters
    /// are used; tag-level modelling stays in each device's own
    /// [`PcieLink`](crate::pcie::PcieLink)).
    pub host_link: PcieConfig,
    /// Optional inter-GPU peer link; `None` routes exchanges through
    /// host memory over two PCIe hops.
    pub peer: Option<PeerLinkConfig>,
}

/// Lifetime counters of one lane (or an aggregate over lanes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Payload bytes carried.
    pub bytes: u64,
    /// Individual transfers carried.
    pub transfers: u64,
    /// Time the lane spent busy, ns.
    pub busy_ns: u64,
}

impl std::ops::Sub for LinkStats {
    type Output = LinkStats;

    /// Diff two snapshots of the monotonically growing counters.
    fn sub(self, base: LinkStats) -> LinkStats {
        LinkStats {
            bytes: self.bytes - base.bytes,
            transfers: self.transfers - base.transfers,
            busy_ns: self.busy_ns - base.busy_ns,
        }
    }
}

impl std::ops::AddAssign for LinkStats {
    fn add_assign(&mut self, other: LinkStats) {
        self.bytes += other.bytes;
        self.transfers += other.transfers;
        self.busy_ns += other.busy_ns;
    }
}

/// One busy-until wire resource.
#[derive(Debug, Clone, Default)]
struct Lane {
    busy_until: Time,
    stats: LinkStats,
}

impl Lane {
    /// Serialize `bytes` on the lane starting no earlier than `now`;
    /// returns the time the last byte leaves the wire.
    fn carry(&mut self, now: Time, bytes: u64, gbps: f64) -> Time {
        let start = now.max(self.busy_until);
        let end = start + bytes_over_bandwidth_ns(bytes, gbps);
        self.busy_until = end;
        self.stats.bytes += bytes;
        self.stats.transfers += 1;
        self.stats.busy_ns += end - start;
        end
    }
}

/// N independent host links plus an optional per-device peer port.
#[derive(Debug, Clone)]
pub struct Interconnect {
    cfg: InterconnectConfig,
    /// Device-to-host direction of each device's host link.
    host_up: Vec<Lane>,
    /// Host-to-device direction of each device's host link.
    host_down: Vec<Lane>,
    /// Each device's peer-link egress port (empty without a peer link).
    peer_out: Vec<Lane>,
}

impl Interconnect {
    /// Build the lane set for `cfg.links` devices.
    pub fn new(cfg: InterconnectConfig) -> Self {
        assert!(cfg.links >= 1, "an interconnect needs at least one link");
        let peer_lanes = if cfg.peer.is_some() { cfg.links } else { 0 };
        Self {
            host_up: vec![Lane::default(); cfg.links],
            host_down: vec![Lane::default(); cfg.links],
            peer_out: vec![Lane::default(); peer_lanes],
            cfg,
        }
    }

    /// Devices (= host links) in the interconnect.
    pub fn num_links(&self) -> usize {
        self.cfg.links
    }

    /// Whether an inter-GPU peer link is configured.
    pub fn has_peer(&self) -> bool {
        self.cfg.peer.is_some()
    }

    /// The configuration the interconnect was built from.
    pub fn config(&self) -> &InterconnectConfig {
        &self.cfg
    }

    /// Deliver `bytes` from device `src` to device `dst`, starting no
    /// earlier than `now`; returns the delivery time. With a peer link
    /// the transfer serializes on `src`'s peer egress port; without one
    /// it takes two PCIe hops through host memory — up on `src`'s host
    /// link, then down on `dst`'s — each paying the link's propagation
    /// latency.
    pub fn send(&mut self, src: usize, dst: usize, now: Time, bytes: u64) -> Time {
        assert!(src < self.cfg.links && dst < self.cfg.links, "device oob");
        assert_ne!(src, dst, "a device does not send to itself");
        if bytes == 0 {
            return now;
        }
        if let Some(peer) = &self.cfg.peer {
            let end = self.peer_out[src].carry(now, bytes, peer.bandwidth_gbps);
            end + peer.latency_ns
        } else {
            let usable = self.cfg.host_link.usable_gbps();
            let prop = self.cfg.host_link.propagation_ns;
            let up = self.host_up[src].carry(now, bytes, usable);
            let down = self.host_down[dst].carry(up + prop, bytes, usable);
            down + prop
        }
    }

    /// Broadcast `bytes` from device `src` to every other device,
    /// starting no earlier than `now`; returns the last delivery time.
    /// With a peer link this is `links - 1` unicasts serialized on
    /// `src`'s peer egress port (NVLink has no multicast). Without one
    /// the payload is staged in host memory **once** — one upload on
    /// `src`'s host link — and each peer then downloads it over its own
    /// host link, concurrently.
    pub fn broadcast(&mut self, src: usize, now: Time, bytes: u64) -> Time {
        assert!(src < self.cfg.links, "device oob");
        if bytes == 0 || self.cfg.links == 1 {
            return now;
        }
        if let Some(peer) = &self.cfg.peer {
            let mut last = now;
            for _ in 0..self.cfg.links - 1 {
                last = self.peer_out[src].carry(now, bytes, peer.bandwidth_gbps);
            }
            last + peer.latency_ns
        } else {
            let usable = self.cfg.host_link.usable_gbps();
            let prop = self.cfg.host_link.propagation_ns;
            let up = self.host_up[src].carry(now, bytes, usable);
            let mut done = up;
            for dst in 0..self.cfg.links {
                if dst != src {
                    done = done.max(self.host_down[dst].carry(up + prop, bytes, usable) + prop);
                }
            }
            done
        }
    }

    /// Lifetime counters of device `d`'s peer egress port (zeros when no
    /// peer link is configured).
    pub fn peer_stats(&self, d: usize) -> LinkStats {
        self.peer_out.get(d).map(|l| l.stats).unwrap_or_default()
    }

    /// Lifetime counters of device `d`'s host link, both directions
    /// summed (exchange traffic only — kernel traffic lives in the
    /// device's own machine).
    pub fn host_stats(&self, d: usize) -> LinkStats {
        let mut s = self.host_up[d].stats;
        s += self.host_down[d].stats;
        s
    }

    /// Aggregate lifetime exchange counters over every lane. Bytes that
    /// hop twice (host-routed exchanges) count once per hop, mirroring
    /// the wire occupancy they cost.
    pub fn totals(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for l in self
            .host_up
            .iter()
            .chain(&self.host_down)
            .chain(&self.peer_out)
        {
            t += l.stats;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcie::PcieConfig;

    fn rig(links: usize, peer: bool) -> Interconnect {
        Interconnect::new(InterconnectConfig {
            links,
            host_link: PcieConfig::gen3_x16(),
            peer: peer.then(PeerLinkConfig::default),
        })
    }

    #[test]
    fn peer_send_achieves_configured_bandwidth() {
        let mut ic = rig(2, true);
        let bytes = 16 << 20;
        let done = ic.send(0, 1, 0, bytes);
        let gbps = bytes as f64 / done as f64;
        assert!(
            (70.0..76.0).contains(&gbps),
            "peer transfer achieved {gbps} GB/s"
        );
        assert_eq!(ic.peer_stats(0).bytes, bytes);
        assert_eq!(ic.peer_stats(1).bytes, 0, "egress is per-source");
    }

    #[test]
    fn host_routed_send_pays_two_pcie_hops() {
        let mut ic = rig(2, false);
        let bytes = 16 << 20;
        let done = ic.send(0, 1, 0, bytes);
        let gbps = bytes as f64 / done as f64;
        // Two serialized ~14 GB/s hops: end-to-end well under one hop's
        // bandwidth, and both lanes carried the payload.
        assert!(gbps < 12.0, "host-routed exchange too fast: {gbps} GB/s");
        assert_eq!(ic.host_stats(0).bytes, bytes);
        assert_eq!(ic.host_stats(1).bytes, bytes);
        assert_eq!(ic.totals().bytes, 2 * bytes, "one count per hop");
    }

    #[test]
    fn lanes_are_independent_but_serialize_internally() {
        let mut ic = rig(4, true);
        let bytes = 1 << 20;
        // Different sources overlap fully...
        let a = ic.send(0, 1, 0, bytes);
        let b = ic.send(2, 3, 0, bytes);
        assert_eq!(a, b, "distinct egress lanes do not contend");
        // ...while the same source serializes its sends.
        let c = ic.send(0, 2, 0, bytes);
        assert!(c > a, "same egress lane must serialize");
        let lat = PeerLinkConfig::default().latency_ns;
        assert_eq!(c - lat, 2 * (a - lat), "back-to-back wire times add");
    }

    #[test]
    fn host_routed_broadcast_stages_the_upload_once() {
        let mut ic = rig(4, false);
        let bytes = 1 << 20;
        let t = ic.broadcast(0, 0, bytes);
        assert!(t > 0);
        // One upload on the source's host link...
        assert_eq!(ic.host_stats(0).bytes, bytes);
        // ...and one concurrent download per peer.
        for d in 1..4 {
            assert_eq!(ic.host_stats(d).bytes, bytes);
        }
        assert_eq!(ic.totals().bytes, 4 * bytes);
        // The peers download in parallel, so a 3-way broadcast costs
        // barely more than a single point-to-point send.
        let mut solo = rig(4, false);
        let t1 = solo.send(0, 1, 0, bytes);
        assert!(t < t1 + t1 / 4, "broadcast {t} vs unicast {t1}");
    }

    #[test]
    fn peer_broadcast_serializes_on_the_egress_port() {
        let mut ic = rig(4, true);
        let bytes = 1 << 20;
        let t = ic.broadcast(0, 0, bytes);
        assert_eq!(ic.peer_stats(0).bytes, 3 * bytes, "three unicasts");
        let lat = PeerLinkConfig::default().latency_ns;
        let mut solo = rig(4, true);
        let t1 = solo.send(0, 1, 0, bytes);
        assert_eq!(t - lat, 3 * (t1 - lat), "egress wire times add");
    }

    #[test]
    fn zero_byte_send_is_free() {
        let mut ic = rig(2, true);
        assert_eq!(ic.send(0, 1, 1234, 0), 1234);
        assert_eq!(ic.totals(), LinkStats::default());
    }

    #[test]
    fn stats_diff_and_accumulate() {
        let mut ic = rig(2, true);
        ic.send(0, 1, 0, 1000);
        let base = ic.totals();
        ic.send(0, 1, 0, 500);
        let d = ic.totals() - base;
        assert_eq!(d.bytes, 500);
        assert_eq!(d.transfers, 1);
        assert!(d.busy_ns > 0);
    }

    #[test]
    #[should_panic(expected = "does not send to itself")]
    fn self_send_rejected() {
        let mut ic = rig(2, true);
        let _ = ic.send(1, 1, 0, 64);
    }
}
