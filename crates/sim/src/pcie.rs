//! PCIe link model: split transactions, tags, TLP overhead.
//!
//! EMOGI's §3.3 analysis identifies three limiters of zero-copy read
//! bandwidth, all of which this model reproduces mechanically:
//!
//! 1. **Per-TLP header overhead** — every completion carries ~20 bytes of
//!    header/framing, so 32-byte reads waste >36% of the wire while
//!    128-byte reads waste ~12%.
//! 2. **Bounded outstanding requests** — PCIe 3.0's 8-bit tag field allows
//!    at most 256 in-flight reads, capping bandwidth at
//!    `tags × size / round-trip-time` (the paper's 7.63 GB/s upper bound
//!    for 32-byte requests at 1.0 µs RTT falls out of this arithmetic).
//! 3. **Host DRAM granularity** — modelled by [`crate::dram::Dram`].
//!
//! A read holds a tag from issue to completion; requests that cannot get a
//! tag queue inside the link and are released by completions. Completions
//! serialize on the host→GPU half of the link at `raw × efficiency`
//! bandwidth. Bulk DMA (cudaMemcpy, UVM page migration) shares the same
//! downlink resource, which is how UVM traffic and zero-copy traffic would
//! contend if mixed.

use crate::dram::Dram;
use crate::monitor::TrafficMonitor;
use crate::time::{bytes_over_bandwidth_ns, Time};
use std::collections::VecDeque;

/// Identifier the *caller* attaches to a read so it can recognize it when
/// the link reports issue/completion; the link never interprets it.
pub type ReqId = u64;

/// PCIe generation of the x16 slot between GPU and host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// PCIe 3.0 x16 — the V100 / Titan Xp platform of Table 1.
    Gen3x16,
    /// PCIe 4.0 x16 — the DGX A100 platform of §5.5.
    Gen4x16,
}

impl PcieGen {
    pub fn config(self) -> PcieConfig {
        match self {
            PcieGen::Gen3x16 => PcieConfig::gen3_x16(),
            PcieGen::Gen4x16 => PcieConfig::gen4_x16(),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            PcieGen::Gen3x16 => "PCIe 3.0 x16",
            PcieGen::Gen4x16 => "PCIe 4.0 x16",
        }
    }
}

/// Static link parameters. The defaults are calibrated against the
/// measurements reported in the paper (Figure 4 and §5.5): strided 32 B
/// zero-copy ≈ 4.7 GB/s, merged+aligned ≈ 12.2 GB/s, `cudaMemcpy` peak
/// ≈ 12.3 GB/s on gen3 and ≈ 24.6 GB/s on gen4.
#[derive(Debug, Clone)]
pub struct PcieConfig {
    pub gen: PcieGen,
    /// Raw per-direction bandwidth after 128b/130b encoding, GB/s.
    pub raw_gbps: f64,
    /// Protocol efficiency multiplier (DLLPs, flow-control updates, ACKs).
    pub efficiency: f64,
    /// Overhead bytes per completion TLP (header + framing + LCRC).
    pub completion_header_bytes: u32,
    /// Overhead bytes per read-request TLP on the GPU→host direction.
    pub request_header_bytes: u32,
    /// Maximum outstanding read requests (tag field width).
    /// 256 for gen3 (8-bit tags), 512 for gen4 (10-bit extended tags).
    pub max_tags: u32,
    /// One-way propagation latency through root complex + switch, ns.
    /// The paper measured 1.0–1.6 µs GPU↔FPGA round trips.
    pub propagation_ns: Time,
    /// Max payload per TLP for bulk DMA streams.
    pub dma_payload_bytes: u32,
}

impl PcieConfig {
    pub fn gen3_x16() -> Self {
        Self {
            gen: PcieGen::Gen3x16,
            raw_gbps: 15.754,
            efficiency: 0.90,
            completion_header_bytes: 20,
            request_header_bytes: 24,
            max_tags: 256,
            propagation_ns: 780,
            dma_payload_bytes: 128,
        }
    }

    pub fn gen4_x16() -> Self {
        Self {
            gen: PcieGen::Gen4x16,
            raw_gbps: 31.508,
            efficiency: 0.90,
            completion_header_bytes: 20,
            request_header_bytes: 24,
            max_tags: 512,
            propagation_ns: 780,
            dma_payload_bytes: 128,
        }
    }

    /// Usable link bandwidth (raw × efficiency), GB/s.
    #[inline]
    pub fn usable_gbps(&self) -> f64 {
        self.raw_gbps * self.efficiency
    }

    /// Steady-state payload bandwidth for back-to-back reads of `size`
    /// bytes assuming tags are plentiful (wire-limited regime).
    pub fn wire_limit_gbps(&self, size: u32) -> f64 {
        let wire = f64::from(size + self.completion_header_bytes);
        self.usable_gbps() * f64::from(size) / wire
    }

    /// Payload bandwidth ceiling imposed by the tag count at round-trip
    /// latency `rtt_ns` (latency-limited regime; the paper's §3.3
    /// "32B / (1.0us / 256) = 7.63GB/s" calculation).
    pub fn tag_limit_gbps(&self, size: u32, rtt_ns: Time) -> f64 {
        f64::from(self.max_tags) * f64::from(size) / rtt_ns as f64
    }
}

/// Outcome of asking the link to carry a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A tag was available; the read will complete at `complete_at`.
    Issued { complete_at: Time },
    /// All tags in use; the read waits inside the link and will be issued
    /// by a future `complete()` call, which returns it with its own
    /// completion time.
    Queued,
}

#[derive(Debug, Clone, Copy)]
struct WaitingRead {
    id: ReqId,
    addr: u64,
    size: u32,
}

/// The link itself: tag pool + two busy-until wire resources.
#[derive(Debug, Clone)]
pub struct PcieLink {
    cfg: PcieConfig,
    tags_free: u32,
    waiting: VecDeque<WaitingRead>,
    uplink_free: Time,
    downlink_free: Time,
}

impl PcieLink {
    pub fn new(cfg: PcieConfig) -> Self {
        let tags_free = cfg.max_tags;
        Self {
            cfg,
            tags_free,
            waiting: VecDeque::new(),
            uplink_free: 0,
            downlink_free: 0,
        }
    }

    pub fn config(&self) -> &PcieConfig {
        &self.cfg
    }

    pub fn tags_in_use(&self) -> u32 {
        self.cfg.max_tags - self.tags_free
    }

    pub fn queued_reads(&self) -> usize {
        self.waiting.len()
    }

    /// Submit a zero-copy read of `[addr, addr+size)` from host memory.
    pub fn read(
        &mut self,
        now: Time,
        id: ReqId,
        addr: u64,
        size: u32,
        host_dram: &mut Dram,
        monitor: &mut TrafficMonitor,
    ) -> ReadOutcome {
        if self.tags_free == 0 {
            self.waiting.push_back(WaitingRead { id, addr, size });
            return ReadOutcome::Queued;
        }
        let complete_at = self.issue(now, addr, size, host_dram, monitor);
        ReadOutcome::Issued { complete_at }
    }

    /// Retire a completed read of `size` bytes. Frees its tag, records the
    /// completion with the monitor, and issues as many waiting reads as
    /// newly possible; each is appended to `released` with its completion
    /// time so the caller can schedule events for them.
    pub fn complete(
        &mut self,
        now: Time,
        size: u32,
        host_dram: &mut Dram,
        monitor: &mut TrafficMonitor,
        released: &mut Vec<(ReqId, Time)>,
    ) {
        monitor.on_read_completed(now, size, size + self.cfg.completion_header_bytes);
        self.tags_free += 1;
        debug_assert!(self.tags_free <= self.cfg.max_tags, "tag pool overflow");
        while self.tags_free > 0 {
            let Some(w) = self.waiting.pop_front() else {
                break;
            };
            let at = self.issue(now, w.addr, w.size, host_dram, monitor);
            released.push((w.id, at));
        }
    }

    fn issue(
        &mut self,
        now: Time,
        addr: u64,
        size: u32,
        host_dram: &mut Dram,
        monitor: &mut TrafficMonitor,
    ) -> Time {
        debug_assert!(self.tags_free > 0);
        self.tags_free -= 1;
        monitor.on_read_issued(now, size);
        // GPU -> host: request TLP (header only) serializes on the uplink.
        let up_start = now.max(self.uplink_free);
        let up_end = up_start
            + bytes_over_bandwidth_ns(
                u64::from(self.cfg.request_header_bytes),
                self.cfg.usable_gbps(),
            );
        self.uplink_free = up_end;
        monitor.wire_bytes += u64::from(self.cfg.request_header_bytes);
        // Root complex reads host DRAM.
        let arrive = up_end + self.cfg.propagation_ns;
        let data_ready = host_dram.read(arrive, addr, size);
        // host -> GPU: completion TLP serializes on the downlink.
        let down_start = data_ready.max(self.downlink_free);
        let down_end = down_start
            + bytes_over_bandwidth_ns(
                u64::from(size + self.cfg.completion_header_bytes),
                self.cfg.usable_gbps(),
            );
        self.downlink_free = down_end;
        down_end + self.cfg.propagation_ns
    }

    /// Carry a bulk host→GPU DMA of `bytes` (cudaMemcpy, UVM migration).
    /// Occupies the downlink and host DRAM; returns arrival time at the
    /// GPU. Chunked into `dma_payload_bytes` TLPs for header accounting.
    pub fn dma_host_to_gpu(
        &mut self,
        now: Time,
        bytes: u64,
        host_dram: &mut Dram,
        monitor: &mut TrafficMonitor,
    ) -> Time {
        if bytes == 0 {
            return now;
        }
        let chunks = bytes.div_ceil(u64::from(self.cfg.dma_payload_bytes));
        let wire_bytes = bytes + chunks * u64::from(self.cfg.completion_header_bytes);
        let start = now.max(self.downlink_free);
        let dram_done = host_dram.read_bulk(start, bytes);
        let wire_end = start + bytes_over_bandwidth_ns(wire_bytes, self.cfg.usable_gbps());
        // DRAM reads and wire transfer pipeline; the slower one dominates.
        let end = wire_end.max(dram_done);
        self.downlink_free = end;
        monitor.on_dma(end, bytes, wire_bytes);
        end + self.cfg.propagation_ns
    }

    /// Carry a bulk GPU→host DMA (result copy-back). Occupies the uplink.
    pub fn dma_gpu_to_host(
        &mut self,
        now: Time,
        bytes: u64,
        host_dram: &mut Dram,
        monitor: &mut TrafficMonitor,
    ) -> Time {
        if bytes == 0 {
            return now;
        }
        let chunks = bytes.div_ceil(u64::from(self.cfg.dma_payload_bytes));
        let wire_bytes = bytes + chunks * u64::from(self.cfg.completion_header_bytes);
        let start = now.max(self.uplink_free);
        let wire_end = start + bytes_over_bandwidth_ns(wire_bytes, self.cfg.usable_gbps());
        let dram_done = host_dram.write_bulk(start, bytes);
        let end = wire_end.max(dram_done);
        self.uplink_free = end;
        monitor.wire_bytes += wire_bytes;
        end + self.cfg.propagation_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;

    fn rig() -> (PcieLink, Dram, TrafficMonitor) {
        (
            PcieLink::new(PcieConfig::gen3_x16()),
            Dram::new(DramConfig::ddr4_2933_quad()),
            TrafficMonitor::new(10_000),
        )
    }

    #[test]
    fn single_read_latency_is_about_the_measured_rtt() {
        let (mut link, mut dram, mut mon) = rig();
        let ReadOutcome::Issued { complete_at } = link.read(0, 0, 0x1000, 128, &mut dram, &mut mon)
        else {
            panic!("tag must be available on an idle link")
        };
        // The paper measured 1.0–1.6 µs GPU↔FPGA round trips; host DRAM
        // sits a little closer than the FPGA but the same order holds.
        assert!(
            (1_000..=1_800).contains(&complete_at),
            "unloaded RTT {complete_at} ns outside the plausible window"
        );
    }

    #[test]
    fn tags_are_exhausted_then_recycled() {
        let (mut link, mut dram, mut mon) = rig();
        let tags = link.config().max_tags;
        for i in 0..tags {
            match link.read(0, u64::from(i), u64::from(i) * 128, 32, &mut dram, &mut mon) {
                ReadOutcome::Issued { .. } => {}
                ReadOutcome::Queued => panic!("tag {i} should be free"),
            }
        }
        assert_eq!(link.tags_in_use(), tags);
        let outcome = link.read(0, 999, 0, 32, &mut dram, &mut mon);
        assert_eq!(outcome, ReadOutcome::Queued);
        assert_eq!(link.queued_reads(), 1);

        let mut released = Vec::new();
        link.complete(2_000, 32, &mut dram, &mut mon, &mut released);
        assert_eq!(released.len(), 1, "completion must release the queued read");
        assert_eq!(released[0].0, 999);
        assert!(released[0].1 > 2_000);
        assert_eq!(link.tags_in_use(), tags);
    }

    #[test]
    fn completions_serialize_on_the_downlink() {
        let (mut link, mut dram, mut mon) = rig();
        let mut times = Vec::new();
        for i in 0..64u64 {
            if let ReadOutcome::Issued { complete_at } =
                link.read(0, i, i * 128, 128, &mut dram, &mut mon)
            {
                times.push(complete_at);
            }
        }
        // Completion spacing must equal the wire time of one 148-byte TLP.
        let gaps: Vec<_> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let expected = bytes_over_bandwidth_ns(148, link.config().usable_gbps());
        // Allow rounding slack from DRAM interleaving.
        for g in &gaps[4..] {
            assert!(
                (*g as i64 - expected as i64).unsigned_abs() <= 2,
                "steady-state gap {g} vs expected {expected}"
            );
        }
    }

    #[test]
    fn wire_limit_matches_paper_figures() {
        let cfg = PcieConfig::gen3_x16();
        // Merged+aligned regime: ~12.2-12.3 GB/s on PCIe 3.0 x16 (Fig. 4b).
        let bw128 = cfg.wire_limit_gbps(128);
        assert!((12.0..12.6).contains(&bw128), "128B wire limit {bw128}");
        // Gen4 doubles it (§5.5 measured ~24 GB/s).
        let bw4 = PcieConfig::gen4_x16().wire_limit_gbps(128);
        assert!((24.0..25.2).contains(&bw4), "gen4 128B wire limit {bw4}");
    }

    #[test]
    fn tag_limit_matches_paper_arithmetic() {
        let cfg = PcieConfig::gen3_x16();
        // §3.3: "the maximum bandwidth we can achieve with only 32-byte
        // requests and 1.0us of RTT is merely 32B / (1.0us / 256) = 7.63GB/s"
        // (the paper quotes GB/s as GiB-flavoured; we assert the decimal value).
        let bw = cfg.tag_limit_gbps(32, 1_000);
        assert!((8.0..8.4).contains(&bw), "tag limit {bw}");
    }

    #[test]
    fn dma_throughput_matches_measured_memcpy_peak() {
        let (mut link, mut dram, mut mon) = rig();
        let bytes = 64 << 20; // 64 MiB
        let done = link.dma_host_to_gpu(0, bytes, &mut dram, &mut mon);
        let gbps = bytes as f64 / done as f64;
        // cudaMemcpy peak measured in the paper: 12.3 GB/s.
        assert!(
            (11.9..12.7).contains(&gbps),
            "bulk DMA achieved {gbps} GB/s"
        );
        assert_eq!(mon.dma_bytes, bytes);
    }

    #[test]
    fn gen4_dma_doubles_gen3() {
        let mut link = PcieLink::new(PcieConfig::gen4_x16());
        let mut dram = Dram::new(DramConfig::ddr4_3200_octa());
        let mut mon = TrafficMonitor::new(10_000);
        let bytes = 64 << 20;
        let done = link.dma_host_to_gpu(0, bytes, &mut dram, &mut mon);
        let gbps = bytes as f64 / done as f64;
        assert!((23.8..25.4).contains(&gbps), "gen4 bulk DMA {gbps} GB/s");
    }

    #[test]
    fn mixed_sizes_share_the_downlink_fairly() {
        // Interleave 32B and 128B reads; total payload over completion
        // span must stay below the usable wire bandwidth.
        let (mut link, mut dram, mut mon) = rig();
        let mut last = 0;
        let mut bytes = 0u64;
        for i in 0..200u64 {
            let size = if i % 2 == 0 { 32 } else { 128 };
            if let ReadOutcome::Issued { complete_at } =
                link.read(0, i, i * 128, size, &mut dram, &mut mon)
            {
                last = last.max(complete_at);
                bytes += u64::from(size);
            }
        }
        let gbps = bytes as f64 / last as f64;
        assert!(
            gbps < link.config().usable_gbps(),
            "payload {gbps} GB/s exceeds wire"
        );
        assert!(
            gbps > 2.0,
            "interleaved reads should still stream, got {gbps}"
        );
    }

    #[test]
    fn monitor_gauge_tracks_inflight_under_load() {
        let (mut link, mut dram, mut mon) = rig();
        for i in 0..100u64 {
            link.read(0, i, i * 128, 128, &mut dram, &mut mon);
        }
        assert_eq!(mon.outstanding.current(), 100);
        assert_eq!(mon.outstanding.peak(), 100);
        let mut released = Vec::new();
        for t in 0..100u64 {
            link.complete(2_000 + t, 128, &mut dram, &mut mon, &mut released);
        }
        assert_eq!(mon.outstanding.current(), 0);
    }

    #[test]
    fn queued_reads_preserve_fifo_order() {
        let (mut link, mut dram, mut mon) = rig();
        let tags = link.config().max_tags;
        for i in 0..tags + 3 {
            link.read(0, u64::from(i), 0, 32, &mut dram, &mut mon);
        }
        let mut released = Vec::new();
        link.complete(5_000, 32, &mut dram, &mut mon, &mut released);
        link.complete(5_010, 32, &mut dram, &mut mon, &mut released);
        link.complete(5_020, 32, &mut dram, &mut mon, &mut released);
        let ids: Vec<_> = released.iter().map(|(id, _)| *id).collect();
        assert_eq!(
            ids,
            vec![u64::from(tags), u64::from(tags) + 1, u64::from(tags) + 2]
        );
    }
}
