//! A deterministic discrete-event queue.
//!
//! The executor in `emogi-runtime` drives the whole machine from one of
//! these. Ties are broken by insertion order so simulations are
//! bit-reproducible regardless of the event payload type.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: Time,
    seq: u64,
}

/// Min-heap of timestamped events with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let key = Key { at, seq: self.seq };
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.heap.push(Reverse((key, slot)));
    }

    /// Remove and return the earliest event (FIFO among equal timestamps).
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        let ev = self.slots[slot].take().expect("event slot occupied");
        self.free.push(slot);
        Some((key.at, ev))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((k, _))| k.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(5, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..8u64 {
                q.push(round * 10 + i, i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // 8 live slots at most, reused across rounds.
        assert!(q.slots.len() <= 8, "slots grew to {}", q.slots.len());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.pop(), Some((42, ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(5, 0);
        assert_eq!(q.pop(), Some((5, 0)));
        q.push(7, 2);
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((10, 1)));
    }
}
