//! CXL-class external-memory link: microsecond latency, decent bandwidth.
//!
//! The CXL external-memory paper (PAPERS.md: "GPU Graph Processing on
//! CXL-Based Microsecond-Latency External Memory") extends EMOGI's
//! two-level HBM/host hierarchy with a third tier: a memory device behind
//! a CXL.mem-style link whose round trip is microsecond-class — an order
//! of magnitude above HBM, a small factor above the PCIe zero-copy path —
//! but whose bandwidth is still a usable fraction of the host link's.
//! Graphs larger than host DRAM spill their cold edge-list regions there.
//!
//! Deliberately **not** a [`PcieLink`](crate::pcie::PcieLink): CXL.mem is
//! a load/store protocol with flow-controlled flits, so there is no tag
//! pool, no split-transaction queueing and no MSHR interplay to model. A
//! read is synchronous against a single busy-until wire resource: the
//! request pays a fixed one-way latency, the far-memory DRAM services the
//! access at its own granularity, and the response serializes on the wire
//! (per-access flit overhead included) before paying the return latency.
//! The link keeps its own occupancy and byte accounting, reported
//! separately from PCIe traffic.
//!
//! ```
//! use emogi_sim::cxl::{CxlConfig, CxlLink};
//!
//! let mut link = CxlLink::new(CxlConfig::external_x8());
//! // A single 128-byte read pays a microsecond-class round trip ...
//! let done = link.read(0, 0x40, 128);
//! assert!(done > 1_500, "round trip {done} ns should be µs-class");
//! // ... and the link accounts payload and wire bytes separately.
//! assert_eq!(link.bytes_read, 128);
//! assert!(link.wire_bytes > 128, "flit overhead rides on the wire");
//! ```

use crate::dram::{Dram, DramConfig};
use crate::time::{bytes_over_bandwidth_ns, Time};

/// Static parameters of one CXL-class external-memory link.
#[derive(Debug, Clone)]
pub struct CxlConfig {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Raw link bandwidth in GB/s (per direction).
    pub raw_gbps: f64,
    /// Protocol efficiency multiplier (flit framing, credits, CRC).
    pub efficiency: f64,
    /// Overhead bytes per data-carrying flit on the response path.
    pub flit_header_bytes: u32,
    /// Payload bytes per flit for bulk streams (header accounting).
    pub flit_payload_bytes: u32,
    /// One-way request latency through the controller fabric, ns. With
    /// the response latency and the device access this puts the unloaded
    /// round trip in the microsecond class.
    pub request_latency_ns: Time,
    /// One-way response latency back to the GPU, ns.
    pub response_latency_ns: Time,
    /// The far-memory device behind the controller.
    pub dram: DramConfig,
}

impl CxlConfig {
    /// A CXL 2.0 x8-class external-memory expander: ~25 GB/s raw,
    /// microsecond-class unloaded round trip, DDR4-grade media with
    /// elevated controller latency.
    pub fn external_x8() -> Self {
        Self {
            name: "CXL x8 external memory",
            raw_gbps: 25.0,
            efficiency: 0.85,
            flit_header_bytes: 16,
            flit_payload_bytes: 256,
            request_latency_ns: 900,
            response_latency_ns: 900,
            dram: DramConfig {
                name: "CXL far memory (DDR4 media)",
                access_granularity: 64,
                bandwidth_gbps: 38.4,
                latency_ns: 250,
            },
        }
    }

    /// Usable link bandwidth (raw × efficiency), GB/s.
    #[inline]
    pub fn usable_gbps(&self) -> f64 {
        self.raw_gbps * self.efficiency
    }
}

/// The link itself: one busy-until wire in front of the far-memory DRAM,
/// plus cumulative occupancy/byte counters.
#[derive(Debug, Clone)]
pub struct CxlLink {
    cfg: CxlConfig,
    /// Response-path wire occupancy (busy-until).
    wire_free: Time,
    /// The far-memory device.
    dram: Dram,
    /// Demand (load/store-path) reads served.
    pub read_requests: u64,
    /// Payload bytes of demand reads.
    pub bytes_read: u64,
    /// Payload bytes of bulk promotion streams ([`read_bulk`](Self::read_bulk)).
    pub bulk_bytes: u64,
    /// Total response-path wire bytes (payload + flit overhead).
    pub wire_bytes: u64,
}

impl CxlLink {
    /// A fresh, idle link.
    pub fn new(cfg: CxlConfig) -> Self {
        let dram = Dram::new(cfg.dram.clone());
        Self {
            cfg,
            wire_free: 0,
            dram,
            read_requests: 0,
            bytes_read: 0,
            bulk_bytes: 0,
            wire_bytes: 0,
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &CxlConfig {
        &self.cfg
    }

    /// Total payload bytes the tier has served (demand + bulk).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bulk_bytes
    }

    /// Serve a demand read of `[addr, addr + size)` arriving at `now`;
    /// returns the time the data is back at the GPU. Synchronous: request
    /// latency, far-memory access, response serialization on the wire,
    /// response latency. Concurrent reads pipeline on the wire but each
    /// pays the full latency — exactly the regime the CXL paper's
    /// latency-hiding kernels are built for.
    pub fn read(&mut self, now: Time, addr: u64, size: u32) -> Time {
        self.read_requests += 1;
        self.bytes_read += u64::from(size);
        let arrive = now + self.cfg.request_latency_ns;
        let data_ready = self.dram.read(arrive, addr, size);
        let flit = u64::from(size + self.cfg.flit_header_bytes);
        let start = data_ready.max(self.wire_free);
        let wire_end = start + bytes_over_bandwidth_ns(flit, self.cfg.usable_gbps());
        self.wire_free = wire_end;
        self.wire_bytes += flit;
        wire_end + self.cfg.response_latency_ns
    }

    /// Stream `bytes` sequentially out of the tier (a region promotion
    /// into HBM); returns the arrival time of the last byte. Chunked into
    /// `flit_payload_bytes` flits for header accounting; far-memory reads
    /// and wire transfer pipeline, the slower dominates.
    pub fn read_bulk(&mut self, now: Time, bytes: u64) -> Time {
        if bytes == 0 {
            return now;
        }
        self.bulk_bytes += bytes;
        let start = now + self.cfg.request_latency_ns;
        let dram_done = self.dram.read_bulk(start, bytes);
        let chunks = bytes.div_ceil(u64::from(self.cfg.flit_payload_bytes));
        let wire = bytes + chunks * u64::from(self.cfg.flit_header_bytes);
        let wire_start = start.max(self.wire_free);
        let wire_end = wire_start + bytes_over_bandwidth_ns(wire, self.cfg.usable_gbps());
        self.wire_free = wire_end;
        self.wire_bytes += wire;
        wire_end.max(dram_done) + self.cfg.response_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> CxlLink {
        CxlLink::new(CxlConfig::external_x8())
    }

    #[test]
    fn unloaded_round_trip_is_microsecond_class() {
        let mut l = link();
        let done = l.read(0, 0x1000, 128);
        assert!(
            (1_800..=4_000).contains(&done),
            "round trip {done} ns outside the µs-class window"
        );
        // And far above a PCIe-class propagation pair (2 × 780 ns).
        assert!(done > 1_560);
    }

    #[test]
    fn reads_pipeline_on_the_wire_but_each_pays_latency() {
        let mut l = link();
        let mut times = Vec::new();
        for i in 0..32u64 {
            times.push(l.read(0, i * 128, 128));
        }
        // Steady-state spacing equals the wire time of one 144-byte flit,
        // not the full round trip: latency overlaps across reads.
        let gaps: Vec<_> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let expected = bytes_over_bandwidth_ns(144, l.config().usable_gbps());
        for g in &gaps[4..] {
            assert!(
                (*g as i64 - expected as i64).unsigned_abs() <= 2,
                "steady-state gap {g} vs expected {expected}"
            );
        }
    }

    #[test]
    fn bandwidth_is_a_usable_fraction_of_the_host_link() {
        let mut l = link();
        let bytes = 64u64 << 20;
        let done = l.read_bulk(0, bytes);
        let gbps = bytes as f64 / done as f64;
        // Decent but below the PCIe 3.0 x16 cudaMemcpy peak's HBM side;
        // well above zero — the tier is usable, not a tape drive.
        assert!((15.0..25.0).contains(&gbps), "bulk stream {gbps} GB/s");
    }

    #[test]
    fn counters_split_demand_and_bulk_traffic() {
        let mut l = link();
        l.read(0, 0, 128);
        l.read_bulk(0, 4096);
        assert_eq!(l.read_requests, 1);
        assert_eq!(l.bytes_read, 128);
        assert_eq!(l.bulk_bytes, 4096);
        assert_eq!(l.total_bytes(), 128 + 4096);
        assert!(l.wire_bytes > l.total_bytes(), "flit overhead accounted");
    }

    #[test]
    fn zero_byte_bulk_is_free() {
        let mut l = link();
        assert_eq!(l.read_bulk(42, 0), 42);
        assert_eq!(l.wire_bytes, 0);
    }
}
