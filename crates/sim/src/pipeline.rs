//! Asynchronous copy-engine lane for pipelined (double-buffered) staging.
//!
//! Real GPUs expose dedicated copy engines: DMA transfers issued on a
//! separate stream proceed concurrently with kernel compute, and their
//! completions are ordinary events on the device's timeline. This module
//! adds that lane to the discrete-event model. A [`CopyEngine`] owns its
//! own busy-until horizon — submissions serialize against each other but
//! *not* against the kernel's simulated clock — and every submission gets
//! a deterministic completion time computed from the same wire model the
//! synchronous DMA path uses (per-TLP completion headers over the usable
//! link bandwidth, plus the fixed launch overhead).
//!
//! Completions are totally ordered: the lane is FIFO, so `done_at` is
//! non-decreasing in submission order, and ties against kernel events are
//! resolved by the consumer (the transfer planner polls the lane at
//! iteration start, a fixed point in the event order). Nothing in here
//! touches the shared PCIe link state, the host DRAM model or the traffic
//! monitor — the speculative lane models *when* bytes land, while the
//! byte *accounting* stays with the demand path so that pipelined and
//! synchronous runs report identical traffic counters.

use crate::dma::MEMCPY_LAUNCH_OVERHEAD_NS;
use crate::pcie::PcieConfig;
use crate::time::{bytes_over_bandwidth_ns, Time};
use std::collections::VecDeque;

/// Wire-cost parameters of the asynchronous copy lane.
///
/// Deliberately a value type decoupled from [`PcieConfig`]: the lane can
/// be configured independently (e.g. a slower speculative class), but the
/// default [`CopyEngineConfig::from_pcie`] mirrors the synchronous bulk
/// DMA path exactly so hidden latency estimates are apples to apples.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyEngineConfig {
    /// Fixed per-submission launch overhead (driver + doorbell), ns.
    pub launch_overhead_ns: Time,
    /// Usable link bandwidth for the lane, GB/s.
    pub gbps: f64,
    /// Max payload per TLP; bulk copies are chunked at this size.
    pub payload_bytes: u32,
    /// Overhead bytes per completion TLP (header + framing + LCRC).
    pub completion_header_bytes: u32,
}

impl CopyEngineConfig {
    /// Derive the lane from a PCIe configuration, matching the cost
    /// model of the synchronous `DmaEngine` path chunk for chunk.
    pub fn from_pcie(pcie: &PcieConfig) -> Self {
        Self {
            launch_overhead_ns: MEMCPY_LAUNCH_OVERHEAD_NS,
            gbps: pcie.usable_gbps(),
            payload_bytes: pcie.dma_payload_bytes,
            completion_header_bytes: pcie.completion_header_bytes,
        }
    }
}

/// One in-flight (or completed but undrained) copy on the lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyTicket {
    /// Submission-order id, dense from 0.
    pub id: u64,
    /// Bytes carried by this copy.
    pub bytes: u64,
    /// Completion time on the simulated clock. Non-decreasing in `id`.
    pub done_at: Time,
}

/// Monotonic lane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyLaneStats {
    /// Copies submitted.
    pub copies: u64,
    /// Bytes submitted.
    pub bytes: u64,
    /// Total ns the lane spent busy (overhead + wire time).
    pub busy_ns: u64,
}

/// An asynchronous copy lane: FIFO, deterministic, and isolated from the
/// demand-path link state.
#[derive(Debug, Clone)]
pub struct CopyEngine {
    cfg: CopyEngineConfig,
    /// The lane's own busy-until horizon.
    lane_free: Time,
    next_id: u64,
    /// Submitted copies not yet drained, in submission (= completion)
    /// order.
    inflight: VecDeque<CopyTicket>,
    /// Monotonic counters.
    pub stats: CopyLaneStats,
}

impl CopyEngine {
    /// A fresh, idle lane.
    pub fn new(cfg: CopyEngineConfig) -> Self {
        Self {
            cfg,
            lane_free: 0,
            next_id: 0,
            inflight: VecDeque::new(),
            stats: CopyLaneStats::default(),
        }
    }

    /// The lane's configuration.
    pub fn config(&self) -> &CopyEngineConfig {
        &self.cfg
    }

    /// Wire time for `bytes` on this lane: payload plus per-chunk
    /// completion headers over the usable bandwidth.
    pub fn wire_time(&self, bytes: u64) -> Time {
        if bytes == 0 {
            return 0;
        }
        let chunks = bytes.div_ceil(u64::from(self.cfg.payload_bytes));
        let wire = bytes + chunks * u64::from(self.cfg.completion_header_bytes);
        bytes_over_bandwidth_ns(wire, self.cfg.gbps)
    }

    /// Full marginal cost of one submission on an idle lane.
    pub fn cost(&self, bytes: u64) -> Time {
        self.cfg.launch_overhead_ns + self.wire_time(bytes)
    }

    /// Earliest time a new submission could start.
    pub fn lane_free_at(&self) -> Time {
        self.lane_free
    }

    /// Submitted copies not yet drained.
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// Submit a copy at simulated time `at`; returns its ticket. The
    /// copy starts when both the caller's clock and the lane are free,
    /// so back-to-back submissions serialize on the lane only.
    pub fn submit(&mut self, at: Time, bytes: u64) -> CopyTicket {
        let start = at.max(self.lane_free);
        let done_at = start + self.cost(bytes);
        self.lane_free = done_at;
        let ticket = CopyTicket {
            id: self.next_id,
            bytes,
            done_at,
        };
        self.next_id += 1;
        self.inflight.push_back(ticket);
        self.stats.copies += 1;
        self.stats.bytes += bytes;
        self.stats.busy_ns += done_at - start;
        ticket
    }

    /// Pop every copy complete at time `at`, in completion order. The
    /// FIFO lane makes this deterministic: ids and `done_at` values come
    /// out strictly ascending and non-decreasing respectively.
    pub fn drain_completed(&mut self, at: Time) -> Vec<CopyTicket> {
        let mut out = Vec::new();
        while let Some(front) = self.inflight.front() {
            if front.done_at > at {
                break;
            }
            out.push(self.inflight.pop_front().expect("front exists"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane() -> CopyEngine {
        CopyEngine::new(CopyEngineConfig::from_pcie(&PcieConfig::gen3_x16()))
    }

    #[test]
    fn from_pcie_mirrors_the_sync_dma_cost_model() {
        let pcie = PcieConfig::gen3_x16();
        let cfg = CopyEngineConfig::from_pcie(&pcie);
        assert_eq!(cfg.launch_overhead_ns, MEMCPY_LAUNCH_OVERHEAD_NS);
        assert_eq!(cfg.payload_bytes, pcie.dma_payload_bytes);
        assert_eq!(cfg.completion_header_bytes, pcie.completion_header_bytes);
        // One 256 KiB copy: 2048 chunks of 128 B, 20 B header each.
        let e = CopyEngine::new(cfg);
        let bytes = 256u64 << 10;
        let wire = bytes + bytes.div_ceil(128) * 20;
        assert_eq!(
            e.wire_time(bytes),
            bytes_over_bandwidth_ns(wire, pcie.usable_gbps())
        );
    }

    #[test]
    fn submissions_serialize_on_the_lane_not_the_caller_clock() {
        let mut e = lane();
        let a = e.submit(1_000, 64 << 10);
        // Submitted "while the kernel computes" at the same caller time:
        // starts when the lane frees, not at 1 000.
        let b = e.submit(1_000, 64 << 10);
        assert_eq!(a.done_at, 1_000 + e.cost(64 << 10));
        assert_eq!(b.done_at, a.done_at + e.cost(64 << 10));
        assert!(a.id < b.id);
        // An idle lane later starts at the caller clock again.
        let far = b.done_at + 5_000;
        let c = e.submit(far, 64 << 10);
        assert_eq!(c.done_at, far + e.cost(64 << 10));
    }

    #[test]
    fn drain_is_fifo_and_respects_completion_times() {
        let mut e = lane();
        let a = e.submit(0, 4 << 10);
        let b = e.submit(0, 4 << 10);
        let c = e.submit(0, 4 << 10);
        assert_eq!(e.pending(), 3);
        assert!(e.drain_completed(a.done_at - 1).is_empty());
        let first = e.drain_completed(b.done_at);
        assert_eq!(
            first.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![a.id, b.id]
        );
        let rest = e.drain_completed(Time::MAX);
        assert_eq!(rest, vec![c]);
        assert_eq!(e.pending(), 0);
        assert_eq!(e.stats.copies, 3);
        assert_eq!(e.stats.bytes, 3 * (4 << 10));
    }

    #[test]
    fn zero_byte_submission_costs_only_launch_overhead() {
        let mut e = lane();
        let t = e.submit(0, 0);
        assert_eq!(t.done_at, MEMCPY_LAUNCH_OVERHEAD_NS);
    }
}
