//! # emogi-sim — interconnect and memory substrate
//!
//! This crate models the part of the EMOGI (VLDB 2020) evaluation platform
//! that sits *outside* the GPU: the PCIe link between the GPU and the host,
//! the host DRAM behind it, and the FPGA-based PCIe traffic monitor the
//! paper uses to characterize zero-copy access patterns (§3.2).
//!
//! Everything is simulated at *transaction* granularity with a
//! discrete-event model: a read request holds a PCIe tag from issue to
//! completion, crosses the link (paying per-TLP header overhead), is
//! serviced by a DRAM model with 64-byte access granularity, and its
//! completion serializes on the host→GPU half of the link. These are
//! exactly the mechanisms the paper identifies as the performance limiters
//! of zero-copy access (§3.3): bounded outstanding tags, per-request header
//! overhead, and DRAM minimum access size.
//!
//! The crate is deliberately GPU-agnostic; the SIMT side lives in
//! `emogi-gpu` and the two are wired together by `emogi-runtime`.

#![forbid(unsafe_code)]

pub mod cxl;
pub mod dma;
pub mod dram;
pub mod events;
pub mod interconnect;
pub mod monitor;
pub mod pcie;
pub mod pipeline;
pub mod time;

pub use cxl::{CxlConfig, CxlLink};
pub use dma::DmaEngine;
pub use dram::{Dram, DramConfig};
pub use events::EventQueue;
pub use interconnect::{Interconnect, InterconnectConfig, LinkStats, PeerLinkConfig};
pub use monitor::{BandwidthSeries, SizeHistogram, TrafficMonitor};
pub use pcie::{PcieConfig, PcieGen, PcieLink, ReadOutcome, ReqId};
pub use pipeline::{CopyEngine, CopyEngineConfig, CopyLaneStats, CopyTicket};
pub use time::{bytes_over_bandwidth_ns, Time};
