//! Simulation time and bandwidth arithmetic.
//!
//! Time is measured in integer **nanoseconds** so that event ordering is
//! exact and runs are bit-reproducible. Bandwidths are expressed in GB/s,
//! which conveniently equals bytes-per-nanosecond (1 GB/s = 10⁹ B / 10⁹ ns).

/// Simulation timestamp in nanoseconds.
pub type Time = u64;

/// One microsecond in simulation time.
pub const MICROSECOND: Time = 1_000;
/// One millisecond in simulation time.
pub const MILLISECOND: Time = 1_000_000;
/// One second in simulation time.
pub const SECOND: Time = 1_000_000_000;

/// Serialization delay for `bytes` over a link of `gbps` GB/s, rounded up to
/// a whole nanosecond (and at least 1 ns for any non-empty transfer, so a
/// transfer can never be free).
#[inline]
pub fn bytes_over_bandwidth_ns(bytes: u64, gbps: f64) -> Time {
    debug_assert!(gbps > 0.0, "bandwidth must be positive");
    if bytes == 0 {
        return 0;
    }
    let ns = (bytes as f64 / gbps).ceil() as Time;
    ns.max(1)
}

/// Achieved bandwidth in GB/s for `bytes` moved over `elapsed` nanoseconds.
/// Returns 0.0 for an empty interval.
#[inline]
pub fn achieved_gbps(bytes: u64, elapsed: Time) -> f64 {
    if elapsed == 0 {
        0.0
    } else {
        bytes as f64 / elapsed as f64
    }
}

/// Round `addr` down to a multiple of `align` (power of two).
#[inline]
pub fn align_down(addr: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    addr & !(align - 1)
}

/// Round `addr` up to a multiple of `align` (power of two).
#[inline]
pub fn align_up(addr: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (addr + align - 1) & !(align - 1)
}

/// Number of bytes touched when `[addr, addr + size)` is accessed at
/// `granularity`-byte granularity, i.e. the aligned span covering the range.
/// This is how a 32-byte PCIe read turns into 64 bytes of DDR4 traffic
/// (EMOGI §3.3, "the minimum memory access size for DDR4 DRAM is 64-byte").
#[inline]
pub fn aligned_span(addr: u64, size: u32, granularity: u64) -> u64 {
    if size == 0 {
        return 0;
    }
    let start = align_down(addr, granularity);
    let end = align_up(addr + u64::from(size), granularity);
    end - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_bytes_per_ns() {
        // 16 GB/s moves 16 bytes per ns; 1600 bytes take 100 ns.
        assert_eq!(bytes_over_bandwidth_ns(1600, 16.0), 100);
    }

    #[test]
    fn transfer_time_rounds_up_and_is_never_zero() {
        assert_eq!(bytes_over_bandwidth_ns(1, 16.0), 1);
        assert_eq!(bytes_over_bandwidth_ns(17, 16.0), 2);
        assert_eq!(bytes_over_bandwidth_ns(0, 16.0), 0);
    }

    #[test]
    fn achieved_bandwidth_roundtrips() {
        let t = bytes_over_bandwidth_ns(1 << 30, 12.3);
        let bw = achieved_gbps(1 << 30, t);
        assert!((bw - 12.3).abs() < 0.01, "got {bw}");
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(align_down(130, 128), 128);
        assert_eq!(align_up(130, 128), 256);
        assert_eq!(align_down(128, 128), 128);
        assert_eq!(align_up(128, 128), 128);
    }

    #[test]
    fn aligned_span_covers_straddles() {
        // A 32-byte read at offset 48 straddles two 64-byte DRAM words.
        assert_eq!(aligned_span(48, 32, 64), 128);
        // An aligned 32-byte read costs one word.
        assert_eq!(aligned_span(64, 32, 64), 64);
        // A 96-byte read misaligned by 32 spans two words of 64.
        assert_eq!(aligned_span(32, 96, 64), 128);
        assert_eq!(aligned_span(0, 0, 64), 0);
    }
}
