//! Vertex partitioners for sharded multi-GPU traversal.
//!
//! EMOGI's multi-GPU execution assigns each GPU a slice of the vertex
//! set; per iteration a GPU expands only the frontier vertices it owns,
//! reading their neighbour lists over its own host link. Both shipped
//! partitioners produce **contiguous** vertex ranges — contiguity keeps
//! every shard's edge-list reads a dense byte range (good for the hybrid
//! transfer planner) and makes ownership lookup a binary search:
//!
//! * [`PartitionStrategy::Contiguous`] splits the vertex id space into
//!   equal-count ranges — trivial, but skewed graphs concentrate edges
//!   in few vertices, so shard *work* can be wildly unbalanced;
//! * [`PartitionStrategy::DegreeBalanced`] places the split points so
//!   every shard owns roughly the same number of **edges** (the CSR
//!   offset array is the degree prefix sum, so the split is a binary
//!   search per boundary), which is what balances per-iteration PCIe
//!   traffic on power-law graphs.

use crate::csr::CsrGraph;
use crate::VertexId;

/// How to split the vertex set across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionStrategy {
    /// Equal vertex counts per shard.
    Contiguous,
    /// Equal edge counts per shard (balanced CSR offset spans).
    DegreeBalanced,
}

impl PartitionStrategy {
    /// Both shipped strategies.
    pub fn all() -> [PartitionStrategy; 2] {
        [
            PartitionStrategy::Contiguous,
            PartitionStrategy::DegreeBalanced,
        ]
    }

    /// Display name of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::DegreeBalanced => "degree-balanced",
        }
    }

    /// Partition `graph` into `shards` contiguous vertex ranges.
    pub fn partition(self, graph: &CsrGraph, shards: usize) -> VertexPartition {
        match self {
            PartitionStrategy::Contiguous => {
                VertexPartition::contiguous(graph.num_vertices(), shards)
            }
            PartitionStrategy::DegreeBalanced => VertexPartition::degree_balanced(graph, shards),
        }
    }
}

/// A partition of `0..n` into contiguous shard ranges: shard `s` owns
/// vertices `starts[s]..starts[s + 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPartition {
    /// `shards + 1` monotone boundaries, `starts[0] == 0` and
    /// `starts[shards] == n`.
    starts: Vec<VertexId>,
}

impl VertexPartition {
    /// Equal-vertex-count split of `0..n` into `shards` ranges (the
    /// first `n % shards` ranges are one vertex larger).
    pub fn contiguous(n: usize, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        let n = n as u64;
        let s = shards as u64;
        let starts = (0..=s).map(|i| ((n * i) / s) as VertexId).collect();
        Self { starts }
    }

    /// Split placing each boundary where the CSR offset array crosses
    /// the next multiple of `|E| / shards`, so every shard owns about
    /// the same number of edge-list entries. Degenerates to single-
    /// vertex steps around mega-hubs (a range is never empty unless the
    /// graph has fewer vertices than shards).
    pub fn degree_balanced(graph: &CsrGraph, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        let n = graph.num_vertices() as u32;
        let e = graph.num_edges() as u64;
        let mut starts = Vec::with_capacity(shards + 1);
        starts.push(0u32);
        for s in 1..shards {
            let target = e * s as u64 / shards as u64;
            // First vertex whose list starts at or past the target (the
            // offset array is the degree prefix sum).
            let split = graph.offsets().partition_point(|&off| off < target) as u32;
            let prev = *starts.last().unwrap();
            // Monotone, and advance at least one vertex while any remain
            // (mega-hub ranges collapse to single vertices, and graphs
            // with fewer vertices than shards leave trailing ranges
            // empty).
            starts.push(split.max((prev + 1).min(n)).min(n));
        }
        starts.push(n);
        Self { starts }
    }

    /// Shards in the partition.
    pub fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// The contiguous vertex range shard `s` owns.
    pub fn range(&self, s: usize) -> std::ops::Range<VertexId> {
        self.starts[s]..self.starts[s + 1]
    }

    /// The shard owning vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        debug_assert!(v < *self.starts.last().unwrap(), "vertex out of range");
        self.starts.partition_point(|&b| b <= v) - 1
    }

    /// Split a **sorted** vertex list into per-shard position bounds:
    /// shard `s`'s vertices are `sorted[bounds[s].0..bounds[s].1]`.
    pub fn slice_bounds(&self, sorted: &[VertexId]) -> Vec<(usize, usize)> {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
        let mut bounds = Vec::with_capacity(self.num_shards());
        let mut lo = 0usize;
        for s in 0..self.num_shards() {
            let end = self.starts[s + 1];
            let hi = lo + sorted[lo..].partition_point(|&v| v < end);
            bounds.push((lo, hi));
            lo = hi;
        }
        bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn contiguous_splits_cover_without_overlap() {
        let p = VertexPartition::contiguous(10, 3);
        assert_eq!(p.num_shards(), 3);
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(1), 3..6);
        assert_eq!(p.range(2), 6..10);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 1);
        assert_eq!(p.owner(9), 2);
    }

    #[test]
    fn degree_balanced_equalizes_edge_counts_on_skewed_graphs() {
        let g = generators::kronecker(11, 16, 7);
        let e = g.num_edges() as u64;
        for shards in [2usize, 4] {
            let p = VertexPartition::degree_balanced(&g, shards);
            let edges_of = |s: usize| -> u64 {
                let r = p.range(s);
                if r.is_empty() {
                    0
                } else {
                    g.neighbor_end(r.end - 1) - g.neighbor_start(r.start)
                }
            };
            let max = (0..shards).map(edges_of).max().unwrap();
            let sum: u64 = (0..shards).map(edges_of).sum();
            assert_eq!(sum, e, "shards must cover every edge exactly once");
            // Perfect balance is e/shards; allow slack for hub rounding.
            assert!(
                max < 2 * e / shards as u64,
                "{shards} shards: max {max} vs total {e}"
            );

            // Contiguous on the same skewed graph is far worse balanced.
            let c = VertexPartition::contiguous(g.num_vertices(), shards);
            let cmax = (0..shards)
                .map(|s| {
                    let r = c.range(s);
                    g.neighbor_end(r.end - 1) - g.neighbor_start(r.start)
                })
                .max()
                .unwrap();
            assert!(
                max <= cmax,
                "degree-balanced max {max} must not exceed contiguous max {cmax}"
            );
        }
    }

    #[test]
    fn slice_bounds_split_a_sorted_frontier() {
        let p = VertexPartition::contiguous(100, 4);
        let f = vec![0u32, 1, 24, 25, 49, 99];
        let b = p.slice_bounds(&f);
        assert_eq!(b, vec![(0, 3), (3, 5), (5, 5), (5, 6)]);
        for (s, &(lo, hi)) in b.iter().enumerate() {
            for &v in &f[lo..hi] {
                assert_eq!(p.owner(v), s);
            }
        }
    }

    #[test]
    fn more_shards_than_vertices_leaves_trailing_shards_empty() {
        let g = generators::uniform_random(3, 2, 1);
        for strategy in PartitionStrategy::all() {
            let p = strategy.partition(&g, 8);
            assert_eq!(p.num_shards(), 8);
            let total: usize = (0..8).map(|s| p.range(s).len()).sum();
            assert_eq!(total, 3, "{strategy:?}");
            // Every vertex owned exactly once.
            for v in 0..3u32 {
                let o = p.owner(v);
                assert!(p.range(o).contains(&v), "{strategy:?} vertex {v}");
            }
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let g = generators::uniform_random(50, 4, 2);
        for strategy in PartitionStrategy::all() {
            let p = strategy.partition(&g, 1);
            assert_eq!(p.range(0), 0..50);
        }
    }
}
