//! Random graph families.
//!
//! Each generator targets the degree-distribution *shape* of one of the
//! paper's Table 2 graphs, because §5.3 explains every request-size and
//! alignment effect through the degree CDF (Figure 6):
//!
//! * [`uniform_random`] → GAP-urand: "uniformly low degrees varying from
//!   16 to 48", no skew;
//! * [`rmat`] → GAP-kron: "extremely unbalanced" power-law neighbour
//!   lists;
//! * [`social`] → Friendster: power law with moderate skew, shuffled ids;
//! * [`lognormal_dense`] → MOLIERE_2016: avg degree ≈ 222, "nearly no
//!   edges associated with small degree vertices";
//! * [`web_crawl`] → sk-2005 / uk-2007-05: directed, host-local link
//!   structure (consecutive ids link to nearby ids) plus hub pages.
//!
//! All generators are deterministic in their seed.

use crate::builder::EdgeListBuilder;
use crate::csr::CsrGraph;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GAP-urand-like: every vertex draws ~`avg_degree/2` undirected edges to
/// uniform random targets; after symmetrization degrees concentrate in a
/// narrow Poisson band around `avg_degree`.
pub fn uniform_random(n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = avg_degree / 2;
    let mut b = EdgeListBuilder::with_capacity(n, n * half * 2).symmetrize(true);
    for src in 0..n as VertexId {
        for _ in 0..half {
            let dst = rng.gen_range(0..n as VertexId);
            b.push(src, dst);
        }
    }
    b.build()
}

/// R-MAT / Kronecker recursive generator (GAP-kron uses A=0.57, B=C=0.19).
/// `scale` is log2 of the vertex count; `edge_factor` undirected edges are
/// drawn per vertex and symmetrized.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = EdgeListBuilder::with_capacity(n, n * edge_factor * 2).symmetrize(true);
    for _ in 0..n * edge_factor {
        let (mut src, mut dst) = (0u64, 0u64);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (sbit, dbit) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            src = (src << 1) | sbit;
            dst = (dst << 1) | dbit;
        }
        builder.push(src as VertexId, dst as VertexId);
    }
    builder.build()
}

/// GAP-kron parameters.
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

/// Friendster-like social network: R-MAT with milder skew, then the vertex
/// ids are randomly permuted so community structure does not line up with
/// id order (social graphs have no crawl-order locality).
pub fn social(n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    let scale = (n.max(2) as f64).log2().ceil() as u32;
    let g = rmat(scale, avg_degree / 2, 0.45, 0.22, 0.22, seed);
    // Random permutation of ids (Fisher–Yates).
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5f5f_5f5f);
    let nn = g.num_vertices();
    let mut perm: Vec<VertexId> = (0..nn as VertexId).collect();
    for i in (1..nn).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    g.relabel(&perm)
}

/// MOLIERE-like dense graph: per-vertex degree drawn from a log-normal
/// distribution clamped to `[min_degree, ...]`, giving an average around
/// `median_degree * exp(sigma^2 / 2)` and almost no low-degree vertices.
pub fn lognormal_dense(
    n: usize,
    median_degree: f64,
    sigma: f64,
    min_degree: usize,
    seed: u64,
) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mu = median_degree.ln();
    let mut b =
        EdgeListBuilder::with_capacity(n, (n as f64 * median_degree) as usize).symmetrize(true);
    for src in 0..n as VertexId {
        // Box–Muller for a standard normal.
        let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let deg = ((mu + sigma * z).exp() / 2.0).round() as usize;
        let deg = deg.max(min_degree / 2);
        for _ in 0..deg {
            b.push(src, rng.gen_range(0..n as VertexId));
        }
    }
    b.build()
}

/// Web-crawl-like directed graph (sk-2005 / uk-2007-05 stand-in).
///
/// Pages are numbered in crawl order, so most links are *local* (within
/// the same host: small id distance) with a power-law-ish out-degree, and
/// a fraction of links point at global hub pages. The id-space locality is
/// what gives web graphs their page-level locality under UVM and what the
/// HALO-style reordering exploits.
pub fn web_crawl(
    n: usize,
    avg_degree: usize,
    locality_window: usize,
    local_fraction: f64,
    seed: u64,
) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = EdgeListBuilder::with_capacity(n, n * avg_degree);
    // A small set of hubs receives the non-local links, Zipf-weighted.
    let num_hubs = (n / 100).max(1);
    for src in 0..n as VertexId {
        // Out-degree: shifted geometric-ish power law around the average.
        let r: f64 = rng.gen::<f64>().max(1e-9);
        let deg = ((avg_degree as f64) * r.powf(-0.35) * 0.55).round() as usize;
        let deg = deg.clamp(1, n / 2);
        for _ in 0..deg {
            let dst = if rng.gen::<f64>() < local_fraction {
                // Local link: short, sign-symmetric id distance.
                let span = locality_window.max(2) as i64;
                let dist = (rng.gen_range(1..span) as f64 * rng.gen::<f64>().powi(2)) as i64 + 1;
                let dir = if rng.gen::<bool>() { 1 } else { -1 };
                (i64::from(src) + dir * dist).rem_euclid(n as i64) as VertexId
            } else {
                // Hub link: Zipf over the hub set.
                let z: f64 = rng.gen::<f64>().max(1e-9);
                let hub = ((num_hubs as f64).powf(z) - 1.0) as usize % num_hubs;
                (hub * (n / num_hubs)) as VertexId
            };
            b.push(src, dst);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_degree_band() {
        let g = uniform_random(2_000, 32, 7);
        assert_eq!(g.num_vertices(), 2_000);
        let avg = g.average_degree();
        assert!((29.0..33.0).contains(&avg), "avg degree {avg}");
        // The GU property from Figure 6: (almost) all edges on vertices of
        // degree 16..=48.
        let in_band: u64 = (0..2_000u32)
            .map(|v| {
                let d = g.degree(v);
                if (16..=48).contains(&d) {
                    d
                } else {
                    0
                }
            })
            .sum();
        let frac = in_band as f64 / g.num_edges() as f64;
        assert!(frac > 0.97, "only {frac} of edges in the 16..48 band");
    }

    #[test]
    fn kronecker_is_skewed() {
        let g = kronecker(12, 16, 11);
        assert_eq!(g.num_vertices(), 4096);
        // Power-law: the max degree dwarfs the average.
        assert!(g.max_degree() > 20 * g.average_degree() as u64);
        // And many vertices are isolated or near-isolated.
        let low = (0..4096u32).filter(|&v| g.degree(v) < 2).count();
        assert!(low > 400, "expected many low-degree vertices, got {low}");
    }

    #[test]
    fn social_has_no_id_locality() {
        let g = social(4_096, 50, 3);
        let avg = g.average_degree();
        assert!((30.0..60.0).contains(&avg), "avg {avg}");
        // Average id distance of edges should be ~n/3 for shuffled ids.
        let n = g.num_vertices() as f64;
        let mean_dist: f64 = g
            .edge_list()
            .iter()
            .zip(
                (0..g.num_vertices() as u32)
                    .flat_map(|v| std::iter::repeat_n(v, g.degree(v) as usize)),
            )
            .map(|(&d, s)| (f64::from(d) - f64::from(s)).abs())
            .sum::<f64>()
            / g.num_edges() as f64;
        assert!(mean_dist > n / 5.0, "mean id distance {mean_dist}");
    }

    #[test]
    fn lognormal_dense_has_no_small_lists() {
        let g = lognormal_dense(1_000, 190.0, 0.45, 96, 13);
        let avg = g.average_degree();
        assert!((150.0..260.0).contains(&avg), "avg {avg}");
        // Edges living on degree<96 vertices must be rare (Figure 6 ML).
        let small: u64 = (0..1_000u32)
            .map(|v| if g.degree(v) < 96 { g.degree(v) } else { 0 })
            .sum();
        let frac = small as f64 / g.num_edges() as f64;
        assert!(frac < 0.02, "fraction of edges on small lists: {frac}");
    }

    #[test]
    fn web_crawl_is_directed_and_local() {
        let g = web_crawl(10_000, 38, 2_000, 0.85, 17);
        assert!(!g.is_undirected());
        let avg = g.average_degree();
        assert!((25.0..55.0).contains(&avg), "avg {avg}");
        // Most edges stay within the locality window.
        let mut local = 0u64;
        for v in 0..10_000u32 {
            for &d in g.neighbors(v) {
                let dist = (i64::from(d) - i64::from(v)).unsigned_abs();
                if dist <= 2_000 || dist >= 8_000 {
                    local += 1;
                }
            }
        }
        let frac = local as f64 / g.num_edges() as f64;
        assert!(frac > 0.6, "local fraction {frac}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = kronecker(10, 8, 42);
        let b = kronecker(10, 8, 42);
        assert_eq!(a, b);
        let c = kronecker(10, 8, 43);
        assert_ne!(a, c);
    }
}
