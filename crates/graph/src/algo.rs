//! CPU reference implementations of the paper's three traversal
//! applications (§5.1.2): BFS, SSSP and CC.
//!
//! Every simulated engine — EMOGI's three access strategies, the UVM
//! baseline, HALO and Subway — must produce results identical to these.
//! They are deliberately simple and obviously correct rather than fast.

use crate::csr::CsrGraph;
use crate::{VertexId, UNVISITED};
use std::collections::VecDeque;

/// Distance value for unreachable vertices in SSSP results.
pub const UNREACHABLE: u64 = u64::MAX;

/// Breadth-first search levels from `src` (level of `src` is 0;
/// unreachable vertices are [`UNVISITED`]).
pub fn bfs_levels(g: &CsrGraph, src: VertexId) -> Vec<u32> {
    let mut level = vec![UNVISITED; g.num_vertices()];
    let mut queue = VecDeque::new();
    level[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let next = level[v as usize] + 1;
        for &d in g.neighbors(v) {
            if level[d as usize] == UNVISITED {
                level[d as usize] = next;
                queue.push_back(d);
            }
        }
    }
    level
}

/// Dijkstra single-source shortest paths with non-negative edge weights
/// (`weights[i]` belongs to edge-list entry `i`).
pub fn sssp_distances(g: &CsrGraph, weights: &[u32], src: VertexId) -> Vec<u64> {
    assert_eq!(weights.len(), g.num_edges(), "one weight per edge");
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut heap = std::collections::BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(std::cmp::Reverse((0u64, src)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let start = g.neighbor_start(v);
        for (k, &dst) in g.neighbors(v).iter().enumerate() {
            let w = u64::from(weights[start as usize + k]);
            let nd = d + w;
            if nd < dist[dst as usize] {
                dist[dst as usize] = nd;
                heap.push(std::cmp::Reverse((nd, dst)));
            }
        }
    }
    dist
}

/// Connected components by union–find; returns the smallest vertex id in
/// each component as its label (matching the GPU kernels' convergence
/// point). Only meaningful on undirected graphs, which is why the paper
/// skips CC for the directed SK/UK5 (§5.4).
pub fn cc_labels(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for v in 0..n as u32 {
        for &d in g.neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, d));
            if a != b {
                // Union by smaller label so roots are component minima.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// PageRank by damped power iteration (push formulation): per sweep,
/// every vertex pushes `rank[v] / outdeg(v)` along its outgoing edges;
/// dangling vertices (no outgoing edges) redistribute their mass
/// uniformly, so ranks always sum to 1.
///
/// Both floating-point folds — the dangling-mass gather and the
/// per-destination contribution sum — run in **ascending value order**
/// (every addend is positive, so IEEE-754 bit order equals numeric
/// order). That makes each sum a function of its addend *multiset*
/// alone, which a vertex relabeling preserves: the GPU program
/// (`emogi_core::PageRankProgram`) folds the same way, so engine ranks
/// are bit-equal to this reference and invariant under the cache-aware
/// layouts of [`crate::reorder`].
pub fn pagerank(g: &CsrGraph, damping: f64, iterations: u32) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let n = g.num_vertices();
    assert!(n > 0, "PageRank needs a non-empty graph");
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling_bits: Vec<u64> = (0..n as u32)
            .filter(|&v| g.degree(v) == 0)
            .map(|v| rank[v as usize].to_bits())
            .collect();
        dangling_bits.sort_unstable();
        let mut dangling = 0.0;
        for &b in &dangling_bits {
            dangling += f64::from_bits(b);
        }
        let mut addends: Vec<(VertexId, u64)> = Vec::with_capacity(g.num_edges());
        for v in 0..n as u32 {
            let deg = g.degree(v);
            if deg == 0 {
                continue;
            }
            let bits = (rank[v as usize] / deg as f64).to_bits();
            for &dst in g.neighbors(v) {
                addends.push((dst, bits));
            }
        }
        addends.sort_unstable();
        for &(dst, bits) in &addends {
            next[dst as usize] += f64::from_bits(bits);
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for v in 0..n {
            rank[v] = base + damping * next[v];
        }
    }
    rank
}

/// Eccentricity-ish helper: number of BFS levels from `src` (the paper's
/// kernel-launch count for BFS, §4.2).
pub fn bfs_depth(g: &CsrGraph, src: VertexId) -> u32 {
    bfs_levels(g, src)
        .into_iter()
        .filter(|&l| l != UNVISITED)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeListBuilder;
    use crate::generators;

    fn figure1() -> CsrGraph {
        let mut b = EdgeListBuilder::new(5).symmetrize(true);
        for (s, d) in [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
            b.push(s, d);
        }
        b.build()
    }

    #[test]
    fn bfs_on_figure1() {
        let g = figure1();
        assert_eq!(bfs_levels(&g, 4), vec![2, 1, 1, 1, 0]);
        assert_eq!(bfs_depth(&g, 4), 2);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let mut b = EdgeListBuilder::new(4).symmetrize(true);
        b.push(0, 1);
        b.push(2, 3);
        let g = b.build();
        let l = bfs_levels(&g, 0);
        assert_eq!(l[1], 1);
        assert_eq!(l[2], UNVISITED);
    }

    #[test]
    fn sssp_prefers_cheap_detour() {
        // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (2): best 0->1 is 3 via 2.
        let mut b = EdgeListBuilder::new(3);
        b.push(0, 1);
        b.push(0, 2);
        b.push(2, 1);
        let g = b.build();
        // Neighbour lists are sorted, so edge order is (0,1), (0,2), (2,1).
        let w = vec![10, 1, 2];
        let d = sssp_distances(&g, &w, 0);
        assert_eq!(d, vec![0, 3, 1]);
    }

    #[test]
    fn sssp_unreachable() {
        let g = EdgeListBuilder::new(2).build();
        let d = sssp_distances(&g, &[], 0);
        assert_eq!(d, vec![0, UNREACHABLE]);
    }

    #[test]
    fn cc_on_two_components() {
        let mut b = EdgeListBuilder::new(5).symmetrize(true);
        b.push(0, 1);
        b.push(1, 2);
        b.push(3, 4);
        let g = b.build();
        assert_eq!(cc_labels(&g), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn cc_matches_bfs_reachability_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::uniform_random(300, 4, seed);
            let cc = cc_labels(&g);
            let from0 = bfs_levels(&g, 0);
            for v in 0..300 {
                let same_cc = cc[v] == cc[0];
                let reachable = from0[v] != UNVISITED;
                assert_eq!(same_cc, reachable, "vertex {v}, seed {seed}");
            }
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_favors_hubs() {
        // Star graph: 0 <-> everyone. The hub must dominate.
        let mut b = EdgeListBuilder::new(6).symmetrize(true);
        for v in 1..6 {
            b.push(0, v);
        }
        let g = b.build();
        let r = pagerank(&g, 0.85, 30);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
        for v in 1..6 {
            assert!(r[0] > r[v], "hub must outrank leaf {v}");
            assert!((r[v] - r[1]).abs() < 1e-12, "leaves are symmetric");
        }
    }

    #[test]
    fn pagerank_redistributes_dangling_mass() {
        // 0 -> 1, 1 dangling: without redistribution the sum decays.
        let mut b = EdgeListBuilder::new(2);
        b.push(0, 1);
        let g = b.build();
        let r = pagerank(&g, 0.85, 50);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
        assert!(r[1] > r[0], "1 receives 0's mass plus its teleport share");
    }

    #[test]
    fn pagerank_uniform_on_a_cycle() {
        let mut b = EdgeListBuilder::new(5);
        for v in 0..5u32 {
            b.push(v, (v + 1) % 5);
        }
        let g = b.build();
        let r = pagerank(&g, 0.85, 40);
        for &rv in &r {
            assert!((rv - 0.2).abs() < 1e-12, "cycle is rank-uniform, got {rv}");
        }
    }

    #[test]
    fn sssp_distance_never_below_bfs_levels() {
        // With min weight w_min, dist >= level * w_min.
        let g = generators::uniform_random(400, 6, 3);
        let w: Vec<u32> = (0..g.num_edges()).map(|i| 8 + (i as u32 % 65)).collect();
        let lv = bfs_levels(&g, 7);
        let ds = sssp_distances(&g, &w, 7);
        for v in 0..400 {
            if lv[v] != UNVISITED {
                assert!(ds[v] >= u64::from(lv[v]) * 8);
                assert!(ds[v] <= u64::from(lv[v]) * 72);
            } else {
                assert_eq!(ds[v], UNREACHABLE);
            }
        }
    }
}
