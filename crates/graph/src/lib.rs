//! # emogi-graph — graph substrate
//!
//! CSR graphs and everything EMOGI's evaluation needs around them:
//!
//! * [`csr`] — the compressed-sparse-row representation of §2.1 (vertex
//!   list of offsets + edge list of neighbours), with invariant checking;
//! * [`builder`] — edge-list → CSR construction (counting sort,
//!   symmetrization, dedup);
//! * [`generators`] — random graph families (uniform, R-MAT/Kronecker,
//!   log-normal dense, locality web crawl);
//! * [`datasets`] — the six Table 2 stand-ins (GK, GU, FS, ML, SK, UK5),
//!   scaled ~1000× down with matched degree distributions;
//! * [`reorder`] — cache-aware vertex relabelings (degree-sorted,
//!   hub-clustered) with invertible [`LayoutPlan`] result mapping;
//! * [`analysis`] — degree statistics and the edge-count CDF of Figure 6;
//! * [`algo`] — CPU reference BFS / SSSP / CC used to verify every
//!   simulated engine.

//! # Example
//!
//! ```
//! use emogi_graph::{generators, DegreeCdf};
//!
//! let g = generators::kronecker(10, 8, 42);
//! assert!(g.max_degree() > 10 * g.average_degree() as u64); // power law
//! let cdf = DegreeCdf::new(&g, 96);
//! assert!(cdf.cdf_at(96) > 0.99);
//! ```

#![forbid(unsafe_code)]

pub mod algo;
pub mod analysis;
pub mod builder;
pub mod compress;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod partition;
pub mod reorder;

pub use analysis::DegreeCdf;
pub use builder::EdgeListBuilder;
pub use csr::CsrGraph;
pub use datasets::{Dataset, DatasetKey, DatasetSpec};
pub use partition::{PartitionStrategy, VertexPartition};
pub use reorder::LayoutPlan;

/// Vertex identifier. The scaled datasets stay far below `u32::MAX`
/// vertices; the simulated *element size* of the edge list (4 or 8 bytes,
/// §5.6) is a property of the traversal engine, not of this storage type.
pub type VertexId = u32;

/// Marker for an unreached vertex in level/label arrays.
pub const UNVISITED: u32 = u32::MAX;
