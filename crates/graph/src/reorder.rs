//! Cache-aware vertex reordering: degree-sorted and hub-clustered
//! (GraphCage-style cache-segment) layouts.
//!
//! EMOGI runs over whatever vertex order the dataset shipped with, but
//! the simulated L2 cache and coalescer reward locality: destination
//! status gathers hit fewer cache lines — and merge into fewer, larger
//! PCIe/HBM transactions — when the hot (high-degree) vertices sit next
//! to each other in the status array. A [`LayoutPlan`] is a bijective
//! relabeling `perm` (new id = `perm[old id]`) bundled with its inverse
//! so a caller can
//!
//! 1. build a relabeled graph with [`LayoutPlan::apply`] (and remap any
//!    per-edge auxiliary data with [`LayoutPlan::apply_edge_data`]),
//! 2. run any `VertexProgram` over it completely unchanged, and
//! 3. map the per-vertex results back through the inverse with
//!    [`LayoutPlan::unmap_values`] (or [`LayoutPlan::unmap_components`]
//!    for component labels, which are themselves vertex ids).
//!
//! Relabeling is semantics-preserving: neighbour sets and per-edge data
//! multisets are conserved, so BFS levels, SSSP distances and PageRank
//! ranks come back **bit-identical** to an unpermuted run
//! (`tests/layout_differential.rs` pins this for every layout × program
//! × access mode).

use crate::csr::CsrGraph;
use crate::VertexId;

/// Status-array bytes per vertex (the 4-byte level/label/rank-slot
/// entries every shipped program gathers per edge).
const STATUS_BYTES: u64 = 4;

/// A bijective vertex relabeling with its inverse.
///
/// `perm[old] = new` and `inv_perm[new] = old`; composing them either
/// way yields the identity (pinned by unit tests below).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutPlan {
    perm: Vec<VertexId>,
    inv_perm: Vec<VertexId>,
}

impl LayoutPlan {
    /// The identity layout over `n` vertices (the "original order"
    /// baseline of the `layout` experiment).
    pub fn identity(n: usize) -> Self {
        let perm: Vec<VertexId> = (0..n as VertexId).collect();
        Self {
            inv_perm: perm.clone(),
            perm,
        }
    }

    /// Build a plan from an explicit permutation (`perm[old] = new`).
    ///
    /// # Panics
    /// If `perm` is not a bijection of `0..perm.len()`.
    pub fn from_perm(perm: Vec<VertexId>) -> Self {
        let n = perm.len();
        let mut inv_perm = vec![VertexId::MAX; n];
        for (old, &new) in perm.iter().enumerate() {
            assert!(
                (new as usize) < n && inv_perm[new as usize] == VertexId::MAX,
                "perm is not a bijection"
            );
            inv_perm[new as usize] = old as VertexId;
        }
        Self { perm, inv_perm }
    }

    /// Build a plan from a placement order (`order[new] = old`).
    fn from_order(order: Vec<VertexId>) -> Self {
        let mut perm = vec![VertexId::MAX; order.len()];
        for (new, &old) in order.iter().enumerate() {
            assert!(
                perm[old as usize] == VertexId::MAX,
                "order is not a bijection"
            );
            perm[old as usize] = new as VertexId;
        }
        Self {
            perm,
            inv_perm: order,
        }
    }

    /// Degree-sorted layout: vertices relabeled by descending degree
    /// (ties by ascending original id). Hot status entries cluster at
    /// the low end of the status array, where one cache line covers 32
    /// of them.
    pub fn degree_sorted(graph: &CsrGraph) -> Self {
        let mut order: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        Self::from_order(order)
    }

    /// Hub-clustered layout (GraphCage-style): the top-degree *hubs* —
    /// the maximal descending-degree prefix whose edge lists
    /// (`degree × elem_bytes`) and status entries both fit one
    /// `segment_bytes` cache segment — take new ids `0..h`, so they
    /// share a segment. Each hub's still-unplaced neighbours follow
    /// (descending degree, ties ascending id), clustering every hub's
    /// community around it; the remaining vertices trail in descending
    /// degree order.
    ///
    /// # Panics
    /// If `segment_bytes` or `elem_bytes` is zero.
    pub fn hub_clustered(graph: &CsrGraph, segment_bytes: u64, elem_bytes: u64) -> Self {
        assert!(segment_bytes > 0, "segment_bytes must be positive");
        assert!(elem_bytes > 0, "elem_bytes must be positive");
        let n = graph.num_vertices();
        let by_degree = {
            let mut o: Vec<VertexId> = (0..n as VertexId).collect();
            o.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
            o
        };
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Phase 1: the hub prefix. Zero-degree vertices never qualify
        // (an isolated vertex has no edge list to cluster).
        let mut edge_bytes = 0u64;
        for &v in &by_degree {
            let deg = graph.degree(v);
            let next_edges = edge_bytes + deg * elem_bytes;
            let next_status = (order.len() as u64 + 1) * STATUS_BYTES;
            if deg == 0 || next_edges > segment_bytes || next_status > segment_bytes {
                break;
            }
            edge_bytes = next_edges;
            placed[v as usize] = true;
            order.push(v);
        }
        // Phase 2: each hub's unplaced neighbours, hottest first.
        let hubs = order.clone();
        let mut ring: Vec<VertexId> = Vec::new();
        for &h in &hubs {
            ring.clear();
            ring.extend(
                graph
                    .neighbors(h)
                    .iter()
                    .copied()
                    .filter(|&d| !placed[d as usize]),
            );
            ring.sort_unstable_by_key(|&d| (std::cmp::Reverse(graph.degree(d)), d));
            ring.dedup();
            for &d in &ring {
                if !placed[d as usize] {
                    placed[d as usize] = true;
                    order.push(d);
                }
            }
        }
        // Phase 3: everything else, hottest first.
        for &v in &by_degree {
            if !placed[v as usize] {
                placed[v as usize] = true;
                order.push(v);
            }
        }
        Self::from_order(order)
    }

    /// Vertices covered by the plan.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the zero-vertex plan.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// True if the plan leaves every vertex in place.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(v, &p)| v as u32 == p)
    }

    /// The forward permutation (`perm[old] = new`).
    pub fn perm(&self) -> &[VertexId] {
        &self.perm
    }

    /// The inverse permutation (`inv_perm[new] = old`).
    pub fn inv_perm(&self) -> &[VertexId] {
        &self.inv_perm
    }

    /// New id of original vertex `old` (e.g. to translate BFS/SSSP
    /// sources before running over the relabeled graph).
    pub fn map_vertex(&self, old: VertexId) -> VertexId {
        self.perm[old as usize]
    }

    /// Original id of relabeled vertex `new`.
    pub fn unmap_vertex(&self, new: VertexId) -> VertexId {
        self.inv_perm[new as usize]
    }

    /// The relabeled graph. Delegates to [`CsrGraph::relabel`], which
    /// re-validates every CSR invariant and keeps each neighbour list
    /// sorted.
    pub fn apply(&self, graph: &CsrGraph) -> CsrGraph {
        graph.relabel(&self.perm)
    }

    /// Remap a per-edge auxiliary array (e.g. SSSP weights) so entry
    /// `k` of the relabeled graph's edge list carries the datum of the
    /// edge it came from. [`CsrGraph::relabel`] sorts each neighbour
    /// list by new destination id; this mirrors that sort on
    /// `(new_dst, datum)` pairs, so for parallel edges the data
    /// *multiset* per (src, dst) pair is what is preserved — exactly
    /// the property integer shortest paths depend on.
    ///
    /// # Panics
    /// If `data.len()` differs from the graph's edge count.
    pub fn apply_edge_data(&self, graph: &CsrGraph, data: &[u32]) -> Vec<u32> {
        assert_eq!(data.len(), graph.num_edges(), "edge data length mismatch");
        let n = graph.num_vertices();
        assert_eq!(self.perm.len(), n, "plan covers a different vertex count");
        // Same new row offsets `relabel` computes.
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[self.perm[v] as usize + 1] = graph.degree(v as VertexId);
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut out = vec![0u32; data.len()];
        let mut pairs: Vec<(VertexId, u32)> = Vec::new();
        for v in 0..n {
            let s = graph.neighbor_start(v as VertexId) as usize;
            pairs.clear();
            pairs.extend(
                graph
                    .neighbors(v as VertexId)
                    .iter()
                    .enumerate()
                    .map(|(k, &d)| (self.perm[d as usize], data[s + k])),
            );
            pairs.sort_unstable();
            let start = offsets[self.perm[v] as usize] as usize;
            for (k, &(_, w)) in pairs.iter().enumerate() {
                out[start + k] = w;
            }
        }
        out
    }

    /// Map per-vertex results of a relabeled run back to original ids:
    /// `out[old] = new_values[perm[old]]`.
    ///
    /// # Panics
    /// If `new_values.len()` differs from the plan's vertex count.
    pub fn unmap_values<T: Copy>(&self, new_values: &[T]) -> Vec<T> {
        assert_eq!(
            new_values.len(),
            self.perm.len(),
            "value array length mismatch"
        );
        self.perm.iter().map(|&p| new_values[p as usize]).collect()
    }

    /// Map component labels of a relabeled run back to original ids.
    ///
    /// Component labels are vertex ids themselves (the engine converges
    /// each component to its minimum label), so positional unmapping
    /// alone would leave *new*-id labels behind. This canonicalizes
    /// each component to the smallest **original** id it contains —
    /// which is exactly what an unpermuted run converges to, so the
    /// result is bit-comparable with it.
    ///
    /// # Panics
    /// If `comp_new.len()` differs from the plan's vertex count.
    pub fn unmap_components(&self, comp_new: &[u32]) -> Vec<u32> {
        let n = self.perm.len();
        assert_eq!(comp_new.len(), n, "component array length mismatch");
        // canon[new_label] = smallest old id in that component (old ids
        // scan in ascending order, so first write wins).
        let mut canon = vec![u32::MAX; n];
        for old in 0..n {
            let rep = comp_new[self.perm[old] as usize] as usize;
            if canon[rep] == u32::MAX {
                canon[rep] = old as u32;
            }
        }
        (0..n)
            .map(|old| canon[comp_new[self.perm[old] as usize] as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo, generators};

    fn sample() -> CsrGraph {
        generators::kronecker(8, 8, 42)
    }

    fn assert_inverse(plan: &LayoutPlan) {
        let n = plan.len();
        for v in 0..n as VertexId {
            assert_eq!(plan.unmap_vertex(plan.map_vertex(v)), v, "perm ∘ inv");
            assert_eq!(plan.map_vertex(plan.unmap_vertex(v)), v, "inv ∘ perm");
        }
    }

    #[test]
    fn perm_composed_with_inverse_is_identity_for_every_layout() {
        let g = sample();
        assert_inverse(&LayoutPlan::identity(g.num_vertices()));
        assert_inverse(&LayoutPlan::degree_sorted(&g));
        assert_inverse(&LayoutPlan::hub_clustered(&g, 6 << 20, 4));
        assert_inverse(&LayoutPlan::hub_clustered(&g, 256, 4));
        assert!(LayoutPlan::identity(g.num_vertices()).is_identity());
        assert!(!LayoutPlan::degree_sorted(&g).is_identity());
    }

    #[test]
    fn degree_sorted_is_monotonically_non_increasing() {
        let g = sample();
        let plan = LayoutPlan::degree_sorted(&g);
        let r = plan.apply(&g);
        for new in 1..r.num_vertices() as VertexId {
            assert!(
                r.degree(new - 1) >= r.degree(new),
                "degree order broken at new id {new}"
            );
        }
    }

    #[test]
    fn apply_produces_a_well_formed_csr_with_preserved_adjacency() {
        let g = sample();
        for plan in [
            LayoutPlan::degree_sorted(&g),
            LayoutPlan::hub_clustered(&g, 4 << 10, 4),
        ] {
            let r = plan.apply(&g);
            assert_eq!(r.num_vertices(), g.num_vertices());
            assert_eq!(r.num_edges(), g.num_edges());
            // from_parts already re-validated monotone offsets; check
            // the per-list sort and the mapped neighbour sets too.
            for old in 0..g.num_vertices() as VertexId {
                let new = plan.map_vertex(old);
                let got = r.neighbors(new);
                assert!(got.windows(2).all(|w| w[0] <= w[1]), "unsorted list");
                let mut want: Vec<VertexId> = g
                    .neighbors(old)
                    .iter()
                    .map(|&d| plan.map_vertex(d))
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want.as_slice(), "old vertex {old}");
            }
        }
    }

    #[test]
    fn edge_data_stays_aligned_with_its_edges() {
        let g = sample();
        let weights = crate::datasets::generate_weights(g.num_edges(), 7);
        let plan = LayoutPlan::degree_sorted(&g);
        let r = plan.apply(&g);
        let rw = plan.apply_edge_data(&g, &weights);
        assert_eq!(rw.len(), weights.len());
        // Per source vertex, the (dst, weight) multiset is conserved.
        for old in 0..g.num_vertices() as VertexId {
            let new = plan.map_vertex(old);
            let (os, ns) = (g.neighbor_start(old), r.neighbor_start(new));
            let mut want: Vec<(VertexId, u32)> = g
                .neighbors(old)
                .iter()
                .enumerate()
                .map(|(k, &d)| (plan.map_vertex(d), weights[os as usize + k]))
                .collect();
            want.sort_unstable();
            let got: Vec<(VertexId, u32)> = r
                .neighbors(new)
                .iter()
                .enumerate()
                .map(|(k, &d)| (d, rw[ns as usize + k]))
                .collect();
            assert_eq!(got, want, "old vertex {old}");
        }
    }

    #[test]
    fn hub_clustered_places_top_degree_vertices_in_one_cache_segment() {
        let g = sample();
        let segment = 4 << 10;
        let plan = LayoutPlan::hub_clustered(&g, segment, 4);
        // The hottest vertex leads the layout...
        let mut by_degree: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        assert_eq!(plan.map_vertex(by_degree[0]), 0, "hottest vertex leads");
        // ...and every hub the prefix admitted shares status segment 0.
        let mut edge_bytes = 0u64;
        let mut hubs = 0u64;
        for &v in &by_degree {
            let next = edge_bytes + g.degree(v) * 4;
            if g.degree(v) == 0 || next > segment || (hubs + 1) * STATUS_BYTES > segment {
                break;
            }
            edge_bytes = next;
            hubs += 1;
            let new = plan.map_vertex(v);
            assert_eq!(
                u64::from(new) * STATUS_BYTES / segment,
                0,
                "hub {v} left segment 0"
            );
        }
        assert!(hubs >= 2, "test graph must admit several hubs");
    }

    #[test]
    fn unmap_values_inverts_positional_mapping() {
        let g = sample();
        let plan = LayoutPlan::hub_clustered(&g, 1 << 10, 4);
        let old_vals: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v * 3 + 1).collect();
        // A relabeled run would see new_vals[new] = old_vals[old].
        let new_vals: Vec<u32> = plan
            .inv_perm()
            .iter()
            .map(|&o| old_vals[o as usize])
            .collect();
        assert_eq!(plan.unmap_values(&new_vals), old_vals);
    }

    #[test]
    fn unmap_components_restores_min_old_id_labels() {
        let g = sample();
        let want = algo::cc_labels(&g);
        for plan in [
            LayoutPlan::degree_sorted(&g),
            LayoutPlan::hub_clustered(&g, 2 << 10, 4),
        ] {
            let r = plan.apply(&g);
            let comp_new = algo::cc_labels(&r);
            assert_eq!(plan.unmap_components(&comp_new), want);
        }
        // Identity plan on already-canonical labels is a no-op.
        let id = LayoutPlan::identity(g.num_vertices());
        assert_eq!(id.unmap_components(&want), want);
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn from_perm_rejects_non_permutations() {
        let _ = LayoutPlan::from_perm(vec![0, 0, 1]);
    }

    #[test]
    fn empty_and_isolated_graphs_are_handled() {
        let empty = CsrGraph::empty(0);
        assert!(LayoutPlan::degree_sorted(&empty).is_empty());
        let isolated = CsrGraph::empty(5);
        let plan = LayoutPlan::hub_clustered(&isolated, 1 << 10, 4);
        assert_eq!(plan.len(), 5);
        assert_inverse(&plan);
    }
}
