//! Compressed sparse row graphs.
//!
//! The paper's §2.1 storage model: a *vertex list* of `|V| + 1` offsets
//! into an *edge list* holding each vertex's neighbours contiguously.
//! EMOGI keeps the vertex list in GPU memory and the edge list in host
//! memory; this type is the shared in-simulator representation both map
//! their addresses onto.

use crate::VertexId;

/// An immutable CSR graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `edges` with v's neighbour list.
    /// Offsets are `u64` like the paper's 8-byte vertex-list entries.
    offsets: Vec<u64>,
    /// Destination of every edge, grouped by source.
    edges: Vec<VertexId>,
    /// Whether the graph was built symmetrized (affects CC validity).
    undirected: bool,
}

impl CsrGraph {
    /// Build from raw parts, validating every CSR invariant.
    ///
    /// # Panics
    /// If the offsets are not monotonic, do not start at 0 / end at
    /// `edges.len()`, or any destination is out of range.
    pub fn from_parts(offsets: Vec<u64>, edges: Vec<VertexId>, undirected: bool) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold at least [0]");
        assert_eq!(offsets[0], 0, "first offset must be 0");
        assert_eq!(
            *offsets.last().unwrap(),
            edges.len() as u64,
            "last offset must equal the edge count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = (offsets.len() - 1) as u64;
        assert!(
            edges.iter().all(|&d| u64::from(d) < n),
            "edge destination out of range"
        );
        Self {
            offsets,
            edges,
            undirected,
        }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            edges: Vec::new(),
            undirected: true,
        }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edge-list entries (the paper's `|E|`; an
    /// undirected edge counts twice).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn is_undirected(&self) -> bool {
        self.undirected
    }

    /// Start index of `v`'s neighbour list in the edge list.
    #[inline]
    pub fn neighbor_start(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// One-past-the-end index of `v`'s neighbour list.
    #[inline]
    pub fn neighbor_end(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1]
    }

    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.neighbor_end(v) - self.neighbor_start(v)
    }

    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.edges[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The raw edge list (used by engines for address arithmetic).
    #[inline]
    pub fn edge_list(&self) -> &[VertexId] {
        &self.edges
    }

    /// The raw offset array.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Destination of edge-list entry `i`.
    #[inline]
    pub fn edge_dst(&self, i: u64) -> VertexId {
        self.edges[i as usize]
    }

    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_vertices() as f64
    }

    pub fn max_degree(&self) -> u64 {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Edge-list bytes at the given element size — the paper's Table 2
    /// "Size (GB) |E|" column, scaled.
    pub fn edge_list_bytes(&self, element_bytes: u64) -> u64 {
        self.num_edges() as u64 * element_bytes
    }

    /// Vertex-list bytes (8-byte offsets, `|V| + 1` entries).
    pub fn vertex_list_bytes(&self) -> u64 {
        self.offsets.len() as u64 * 8
    }

    /// Relabel vertices by `perm` (new id = `perm[old id]`), preserving
    /// neighbour sets. Used by the HALO-style reordering baseline.
    ///
    /// # Panics
    /// If `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[VertexId]) -> CsrGraph {
        let n = self.num_vertices();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(
                !std::mem::replace(&mut seen[p as usize], true),
                "perm is not a bijection"
            );
        }
        // New degree array, then place each old vertex's list.
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[perm[v] as usize + 1] = self.degree(v as VertexId);
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut edges = vec![0 as VertexId; self.num_edges()];
        for v in 0..n {
            let nv = perm[v] as usize;
            let start = offsets[nv] as usize;
            for (k, &d) in self.neighbors(v as VertexId).iter().enumerate() {
                edges[start + k] = perm[d as usize];
            }
            edges[start..start + self.degree(v as VertexId) as usize].sort_unstable();
        }
        CsrGraph::from_parts(offsets, edges, self.undirected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-vertex example of the paper's Figure 1 (with the offset of
    /// vertex 4 corrected to 11; the paper prints 12, which contradicts
    /// its own edge list).
    pub(crate) fn figure1() -> CsrGraph {
        CsrGraph::from_parts(
            vec![0, 2, 6, 9, 11, 14],
            vec![1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3],
            true,
        )
    }

    #[test]
    fn figure1_shape() {
        let g = figure1();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.neighbors(1), &[0, 2, 3, 4]);
        assert_eq!(g.degree(4), 3);
        assert_eq!(g.neighbor_start(4), 11);
        assert_eq!(g.neighbor_end(4), 14);
        assert!((g.average_degree() - 2.8).abs() < 1e-12);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn byte_accounting() {
        let g = figure1();
        assert_eq!(g.edge_list_bytes(8), 112);
        assert_eq!(g.edge_list_bytes(4), 56);
        assert_eq!(g.vertex_list_bytes(), 48);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_descending_offsets() {
        let _ = CsrGraph::from_parts(vec![0, 3, 1, 4], vec![0, 1, 2, 0], false);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_destination() {
        let _ = CsrGraph::from_parts(vec![0, 1], vec![7], false);
    }

    #[test]
    #[should_panic(expected = "edge count")]
    fn rejects_mismatched_total() {
        let _ = CsrGraph::from_parts(vec![0, 3], vec![0], false);
    }

    #[test]
    fn relabel_preserves_adjacency() {
        let g = figure1();
        // Reverse the vertex ids.
        let perm: Vec<VertexId> = (0..5).rev().collect();
        let r = g.relabel(&perm);
        assert_eq!(r.num_edges(), g.num_edges());
        for v in 0..5u32 {
            let mut want: Vec<VertexId> =
                g.neighbors(v).iter().map(|&d| perm[d as usize]).collect();
            want.sort_unstable();
            assert_eq!(r.neighbors(perm[v as usize]), want.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn relabel_rejects_non_permutation() {
        let g = figure1();
        let _ = g.relabel(&[0, 0, 1, 2, 3]);
    }
}
