//! The six evaluation graphs of Table 2, as scaled synthetic stand-ins.
//!
//! The paper's graphs are 26–50 GB downloads (GAP-kron, GAP-urand,
//! Friendster, MOLIERE_2016, sk-2005, uk-2007-05); none are available
//! here, so each is replaced by a generator that matches its documented
//! degree-distribution shape (Figure 6) and its size *relative to GPU
//! memory* — vertices and edges are scaled ~1000× down, and GPU memory is
//! scaled 16 GB → 16 MiB in `emogi-gpu`, preserving the out-of-memory
//! ratios that drive every experiment. SK remains the one graph that
//! almost fits in device memory, exactly as in the paper (§5.3.3).
//!
//! `generate()` is deterministic per dataset; the same graph is produced
//! for every experiment.

use crate::analysis::DegreeSummary;
use crate::csr::CsrGraph;
use crate::generators;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier for one of the Table 2 graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKey {
    /// GAP-kron: synthetic Kronecker, extremely skewed degrees.
    Gk,
    /// GAP-urand: uniform random, degrees 16–48.
    Gu,
    /// Friendster: social network.
    Fs,
    /// MOLIERE_2016: dense biomedical hypothesis graph, avg degree ≈ 222.
    Ml,
    /// sk-2005: web crawl, directed, almost fits in GPU memory.
    Sk,
    /// uk-2007-05: web crawl, directed.
    Uk5,
}

impl DatasetKey {
    pub fn all() -> [DatasetKey; 6] {
        [
            DatasetKey::Gk,
            DatasetKey::Gu,
            DatasetKey::Fs,
            DatasetKey::Ml,
            DatasetKey::Sk,
            DatasetKey::Uk5,
        ]
    }

    /// The four undirected graphs the paper evaluates CC on (§5.4).
    pub fn undirected() -> [DatasetKey; 4] {
        [
            DatasetKey::Gk,
            DatasetKey::Gu,
            DatasetKey::Fs,
            DatasetKey::Ml,
        ]
    }

    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetKey::Gk => DatasetSpec {
                key: self,
                symbol: "GK",
                name: "GAP-kron (scaled)",
                domain: "synthetic Kronecker",
                undirected: true,
                scaled_vertices: 131_072,
                paper_vertices_m: 134.2,
                paper_edges_b: 4.22,
                paper_edge_gb: 31.5,
                paper_weight_gb: 15.7,
                seed: 0xEE06_0001,
            },
            DatasetKey::Gu => DatasetSpec {
                key: self,
                symbol: "GU",
                name: "GAP-urand (scaled)",
                domain: "synthetic uniform",
                undirected: true,
                scaled_vertices: 134_000,
                paper_vertices_m: 134.2,
                paper_edges_b: 4.29,
                paper_edge_gb: 32.0,
                paper_weight_gb: 16.0,
                seed: 0xEE06_0002,
            },
            DatasetKey::Fs => DatasetSpec {
                key: self,
                symbol: "FS",
                name: "Friendster (scaled)",
                domain: "social network",
                undirected: true,
                scaled_vertices: 65_536,
                paper_vertices_m: 65.6,
                paper_edges_b: 3.61,
                paper_edge_gb: 26.9,
                paper_weight_gb: 13.5,
                seed: 0xEE06_0003,
            },
            DatasetKey::Ml => DatasetSpec {
                key: self,
                symbol: "ML",
                name: "MOLIERE_2016 (scaled)",
                domain: "biomedical",
                undirected: true,
                scaled_vertices: 30_200,
                paper_vertices_m: 30.2,
                paper_edges_b: 6.67,
                paper_edge_gb: 49.7,
                paper_weight_gb: 24.8,
                seed: 0xEE06_0004,
            },
            DatasetKey::Sk => DatasetSpec {
                key: self,
                symbol: "SK",
                name: "sk-2005 (scaled)",
                domain: "web crawl",
                undirected: false,
                scaled_vertices: 50_600,
                paper_vertices_m: 50.6,
                paper_edges_b: 1.95,
                paper_edge_gb: 14.5,
                paper_weight_gb: 7.3,
                seed: 0xEE06_0005,
            },
            DatasetKey::Uk5 => DatasetSpec {
                key: self,
                symbol: "UK5",
                name: "uk-2007-05 (scaled)",
                domain: "web crawl",
                undirected: false,
                scaled_vertices: 105_900,
                paper_vertices_m: 105.9,
                paper_edges_b: 3.74,
                paper_edge_gb: 27.8,
                paper_weight_gb: 13.9,
                seed: 0xEE06_0006,
            },
        }
    }
}

/// Static description of one dataset: paper-reported numbers plus our
/// scaled generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    pub key: DatasetKey,
    pub symbol: &'static str,
    pub name: &'static str,
    pub domain: &'static str,
    pub undirected: bool,
    /// Vertex count of the scaled stand-in (≈ paper / 1000).
    pub scaled_vertices: usize,
    pub paper_vertices_m: f64,
    pub paper_edges_b: f64,
    pub paper_edge_gb: f64,
    pub paper_weight_gb: f64,
    pub seed: u64,
}

impl DatasetSpec {
    /// Generate the full-size stand-in (deterministic).
    pub fn generate(&self) -> Dataset {
        self.generate_scaled(1)
    }

    /// Generate at `1/divisor` of the standard scaled vertex count —
    /// integration tests use small divisors to keep debug builds quick.
    pub fn generate_scaled(&self, divisor: usize) -> Dataset {
        assert!(divisor >= 1);
        let n = (self.scaled_vertices / divisor).max(64);
        let graph = match self.key {
            DatasetKey::Gk => {
                let scale = (n as f64).log2().round() as u32;
                generators::kronecker(scale, 19, self.seed)
            }
            DatasetKey::Gu => generators::uniform_random(n, 32, self.seed),
            DatasetKey::Fs => generators::social(n, 56, self.seed),
            DatasetKey::Ml => generators::lognormal_dense(n, 200.0, 0.45, 96, self.seed),
            DatasetKey::Sk => generators::web_crawl(n, 50, n / 25, 0.85, self.seed),
            DatasetKey::Uk5 => generators::web_crawl(n, 43, n / 25, 0.88, self.seed),
        };
        let weights = generate_weights(graph.num_edges(), self.seed ^ 0xA11C_E5ED);
        Dataset {
            spec: *self,
            graph,
            weights,
        }
    }
}

/// Edge weights "randomly initialized ... from the integer values between
/// 8 to 72", stored 4-byte (§5.2).
pub fn generate_weights(num_edges: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_edges).map(|_| rng.gen_range(8..=72)).collect()
}

/// A generated dataset: graph + edge weights + provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub spec: DatasetSpec,
    pub graph: CsrGraph,
    pub weights: Vec<u32>,
}

impl Dataset {
    /// Pick `n` BFS/SSSP source vertices with outgoing edges, the paper's
    /// §5.2 protocol ("64 random vertices ... reuse the selected vertices
    /// for all measurements", sources without outgoing edges removed).
    pub fn sources(&self, n: usize) -> Vec<VertexId> {
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ 0x50u64);
        let nv = self.graph.num_vertices() as VertexId;
        let mut out = Vec::with_capacity(n);
        let mut guard = 0;
        while out.len() < n && guard < 100_000 {
            guard += 1;
            let v = rng.gen_range(0..nv);
            if self.graph.degree(v) > 0 {
                out.push(v);
            }
        }
        out
    }

    /// Degree summary (Table 2 commentary).
    pub fn degree_summary(&self) -> DegreeSummary {
        DegreeSummary::new(&self.graph)
    }

    /// Scaled edge-list bytes at the given element size.
    pub fn edge_bytes(&self, element_bytes: u64) -> u64 {
        self.graph.edge_list_bytes(element_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scale smoke test of every dataset family. Full-scale size
    /// targets are asserted in the (release-mode) bench harness.
    #[test]
    fn all_datasets_generate_small() {
        for key in DatasetKey::all() {
            let d = key.spec().generate_scaled(16);
            assert!(d.graph.num_vertices() > 0, "{key:?}");
            assert!(d.graph.num_edges() > 0, "{key:?}");
            assert_eq!(d.weights.len(), d.graph.num_edges());
            assert_eq!(d.graph.is_undirected(), key.spec().undirected, "{key:?}");
        }
    }

    #[test]
    fn weights_in_paper_range() {
        let w = generate_weights(10_000, 1);
        assert!(w.iter().all(|&x| (8..=72).contains(&x)));
        assert!(w.iter().any(|&x| x < 20));
        assert!(w.iter().any(|&x| x > 60));
    }

    #[test]
    fn sources_have_outgoing_edges_and_are_deterministic() {
        let d = DatasetKey::Gk.spec().generate_scaled(16);
        let s1 = d.sources(16);
        let s2 = d.sources(16);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 16);
        assert!(s1.iter().all(|&v| d.graph.degree(v) > 0));
    }

    #[test]
    fn ml_is_densest_and_directedness_matches_table2() {
        let ml = DatasetKey::Ml.spec().generate_scaled(16);
        let gu = DatasetKey::Gu.spec().generate_scaled(16);
        assert!(ml.graph.average_degree() > 3.0 * gu.graph.average_degree());
        assert!(!DatasetKey::Sk
            .spec()
            .generate_scaled(16)
            .graph
            .is_undirected());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetKey::Fs.spec().generate_scaled(32);
        let b = DatasetKey::Fs.spec().generate_scaled(32);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.weights, b.weights);
    }
}
