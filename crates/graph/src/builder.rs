//! Edge-list → CSR construction.
//!
//! Two-pass counting sort: O(V + E), no comparison sort of the full edge
//! list. Neighbour lists come out grouped by source; per-list ordering is
//! optionally sorted/deduplicated (the SuiteSparse / LAW graphs the paper
//! uses ship with sorted, duplicate-free adjacencies).

use crate::csr::CsrGraph;
use crate::VertexId;

/// Accumulates directed edges and builds a [`CsrGraph`].
#[derive(Debug, Clone)]
pub struct EdgeListBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    symmetrize: bool,
    dedup: bool,
    drop_self_loops: bool,
}

impl EdgeListBuilder {
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            symmetrize: false,
            dedup: true,
            drop_self_loops: true,
        }
    }

    /// Pre-size the edge buffer.
    pub fn with_capacity(num_vertices: usize, edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(edges);
        b
    }

    /// Also insert the reverse of every edge (undirected graphs; Table 2's
    /// GK/GU/FS/ML are undirected, SK/UK5 are directed).
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Remove duplicate (src, dst) pairs (default true).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Remove self loops (default true).
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!((src as usize) < self.num_vertices);
        debug_assert!((dst as usize) < self.num_vertices);
        self.edges.push((src, dst));
    }

    pub fn extend(&mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) {
        self.edges.extend(it);
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Consume the builder and produce the CSR graph.
    pub fn build(mut self) -> CsrGraph {
        if self.drop_self_loops {
            self.edges.retain(|&(s, d)| s != d);
        }
        if self.symmetrize {
            let fwd = self.edges.len();
            self.edges.reserve(fwd);
            for i in 0..fwd {
                let (s, d) = self.edges[i];
                self.edges.push((d, s));
            }
        }
        let n = self.num_vertices;
        // Counting sort by source.
        let mut offsets = vec![0u64; n + 1];
        for &(s, _) in &self.edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut dsts = vec![0 as VertexId; self.edges.len()];
        for &(s, d) in &self.edges {
            let c = &mut cursor[s as usize];
            dsts[*c as usize] = d;
            *c += 1;
        }
        drop(self.edges);
        // Per-list sort (+ dedup): lists are short on average, so this is
        // cheap relative to the counting passes.
        if self.dedup {
            // Sort each list, then compact unique values in place; the
            // write cursor never overtakes the read cursor.
            let mut new_offsets = vec![0u64; n + 1];
            let mut write = 0usize;
            let mut list_start = 0usize;
            for v in 0..n {
                let end = offsets[v + 1] as usize;
                dsts[list_start..end].sort_unstable();
                let mut prev: Option<VertexId> = None;
                for i in list_start..end {
                    let d = dsts[i];
                    if prev != Some(d) {
                        dsts[write] = d;
                        write += 1;
                        prev = Some(d);
                    }
                }
                new_offsets[v + 1] = write as u64;
                list_start = end;
            }
            dsts.truncate(write);
            CsrGraph::from_parts(new_offsets, dsts, self.symmetrize)
        } else {
            let mut list_start = 0usize;
            for v in 0..n {
                let end = offsets[v + 1] as usize;
                dsts[list_start..end].sort_unstable();
                list_start = end;
            }
            CsrGraph::from_parts(offsets, dsts, self.symmetrize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_figure1_from_undirected_half() {
        // The 7 undirected edges of the paper's Figure 1 graph.
        let mut b = EdgeListBuilder::new(5).symmetrize(true);
        for (s, d) in [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
            b.push(s, d);
        }
        let g = b.build();
        // Note: the paper's printed vertex list reads [0,2,6,9,12,14], but
        // that is inconsistent with its own 14-entry edge list (vertex 3
        // has neighbours {1,4}); the self-consistent offsets are below.
        assert_eq!(g.offsets(), &[0, 2, 6, 9, 11, 14]);
        assert_eq!(g.edge_list(), &[1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3]);
        assert!(g.is_undirected());
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut b = EdgeListBuilder::new(3);
        b.push(0, 1);
        b.push(0, 1);
        b.push(0, 2);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn dedup_disabled_keeps_parallel_edges() {
        let mut b = EdgeListBuilder::new(3);
        b.push(0, 1);
        b.push(0, 1);
        let g = b.dedup(false).build();
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = EdgeListBuilder::new(2);
        b.push(0, 0);
        b.push(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn self_loops_kept_on_request() {
        let mut b = EdgeListBuilder::new(2);
        b.push(0, 0);
        let g = b.drop_self_loops(false).build();
        assert_eq!(g.neighbors(0), &[0]);
    }

    #[test]
    fn directed_build_is_asymmetric() {
        let mut b = EdgeListBuilder::new(3);
        b.push(0, 1);
        b.push(0, 2);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert!(!g.is_undirected());
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let mut b = EdgeListBuilder::new(4);
        for d in [3, 1, 2] {
            b.push(0, d);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = EdgeListBuilder::new(4).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn symmetrize_then_dedup_handles_mutual_edges() {
        // (0,1) and (1,0) both present plus symmetrization: still one
        // edge each way after dedup.
        let mut b = EdgeListBuilder::new(2).symmetrize(true);
        b.push(0, 1);
        b.push(1, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }
}
