//! Degree-distribution analysis.
//!
//! Reproduces the paper's Figure 6: the cumulative fraction of *edges*
//! (not vertices) associated with vertices of degree ≤ d. The paper reads
//! request-size behaviour straight off this CDF — e.g. GU's edges all
//! sitting between degree 16 and 48 explains why alignment barely helps
//! it, while ML's mass above degree 96 explains its 128-byte-dominated
//! request mix.

use crate::csr::CsrGraph;

/// Edge-count CDF over vertex degree.
#[derive(Debug, Clone)]
pub struct DegreeCdf {
    /// `counts[d]` = number of edge endpoints on vertices of degree `d`
    /// (clamped to `max_tracked`).
    counts: Vec<u64>,
    total: u64,
}

impl DegreeCdf {
    /// Build the CDF, tracking degrees up to `max_tracked` (larger degrees
    /// accumulate in the last bucket, like the paper cutting the x-axis
    /// at 96).
    pub fn new(g: &CsrGraph, max_tracked: usize) -> Self {
        let mut counts = vec![0u64; max_tracked + 1];
        for v in 0..g.num_vertices() {
            let d = g.degree(v as u32);
            let bucket = (d as usize).min(max_tracked);
            counts[bucket] += d;
        }
        Self {
            counts,
            total: g.num_edges() as u64,
        }
    }

    /// Fraction of edges on vertices with degree ≤ `d`.
    pub fn cdf_at(&self, d: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto: u64 = self.counts[..=d.min(self.counts.len() - 1)].iter().sum();
        upto as f64 / self.total as f64
    }

    /// Sample the CDF at each degree in `points` (for table output).
    pub fn sample(&self, points: &[usize]) -> Vec<(usize, f64)> {
        points.iter().map(|&d| (d, self.cdf_at(d))).collect()
    }

    /// Smallest degree d with CDF(d) >= 0.5 (median edge's vertex degree).
    pub fn median_degree(&self) -> usize {
        (0..self.counts.len())
            .find(|&d| self.cdf_at(d) >= 0.5)
            .unwrap_or(self.counts.len() - 1)
    }
}

/// Quick summary statistics used in Table 2 output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    pub average: f64,
    pub max: u64,
    pub isolated_vertices: usize,
}

impl DegreeSummary {
    pub fn new(g: &CsrGraph) -> Self {
        let isolated = (0..g.num_vertices())
            .filter(|&v| g.degree(v as u32) == 0)
            .count();
        Self {
            average: g.average_degree(),
            max: g.max_degree(),
            isolated_vertices: isolated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeListBuilder;
    use crate::generators;

    fn star_plus_path() -> CsrGraph {
        // Vertex 0 is a hub of degree 4; vertices 5-6 form one edge.
        let mut b = EdgeListBuilder::new(7).symmetrize(true);
        for d in 1..5 {
            b.push(0, d);
        }
        b.push(5, 6);
        b.build()
    }

    #[test]
    fn cdf_splits_hub_and_leaf_edges() {
        let g = star_plus_path();
        let cdf = DegreeCdf::new(&g, 16);
        // 10 edge endpoints: 4 on the hub (degree 4), 4 on its leaves
        // (degree 1), 2 on the 5-6 pair (degree 1).
        assert!((cdf.cdf_at(1) - 0.6).abs() < 1e-12);
        assert!((cdf.cdf_at(3) - 0.6).abs() < 1e-12);
        assert!((cdf.cdf_at(4) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.median_degree(), 1);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let g = generators::kronecker(10, 8, 5);
        let cdf = DegreeCdf::new(&g, 96);
        let mut prev = 0.0;
        for d in 0..=96 {
            let c = cdf.cdf_at(d);
            assert!(c >= prev - 1e-12, "CDF must be monotone");
            prev = c;
        }
        assert!(
            (cdf.cdf_at(96) - 1.0).abs() < 1e-12,
            "last bucket absorbs the tail"
        );
    }

    #[test]
    fn gu_band_property_shows_in_cdf() {
        let g = generators::uniform_random(2_000, 32, 9);
        let cdf = DegreeCdf::new(&g, 96);
        assert!(cdf.cdf_at(15) < 0.02, "nothing below degree 16");
        assert!(cdf.cdf_at(48) > 0.98, "everything by degree 48");
    }

    #[test]
    fn summary_counts_isolated() {
        let g = star_plus_path();
        let s = DegreeSummary::new(&g);
        assert_eq!(s.max, 4);
        assert_eq!(s.isolated_vertices, 0);
        let empty = CsrGraph::empty(3);
        assert_eq!(DegreeSummary::new(&empty).isolated_vertices, 3);
    }

    #[test]
    fn sample_returns_requested_points() {
        let g = star_plus_path();
        let cdf = DegreeCdf::new(&g, 16);
        let pts = cdf.sample(&[0, 1, 4]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2], (4, 1.0));
    }
}
