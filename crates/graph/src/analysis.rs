//! Degree-distribution analysis.
//!
//! Reproduces the paper's Figure 6: the cumulative fraction of *edges*
//! (not vertices) associated with vertices of degree ≤ d. The paper reads
//! request-size behaviour straight off this CDF — e.g. GU's edges all
//! sitting between degree 16 and 48 explains why alignment barely helps
//! it, while ML's mass above degree 96 explains its 128-byte-dominated
//! request mix.

use crate::csr::CsrGraph;

/// Edge-count CDF over vertex degree.
#[derive(Debug, Clone)]
pub struct DegreeCdf {
    /// `counts[d]` = number of edge endpoints on vertices of degree `d`
    /// (clamped to `max_tracked`).
    counts: Vec<u64>,
    total: u64,
}

impl DegreeCdf {
    /// Build the CDF, tracking degrees up to `max_tracked` (larger degrees
    /// accumulate in the last bucket, like the paper cutting the x-axis
    /// at 96).
    pub fn new(g: &CsrGraph, max_tracked: usize) -> Self {
        let mut counts = vec![0u64; max_tracked + 1];
        for v in 0..g.num_vertices() {
            let d = g.degree(v as u32);
            let bucket = (d as usize).min(max_tracked);
            counts[bucket] += d;
        }
        Self {
            counts,
            total: g.num_edges() as u64,
        }
    }

    /// Fraction of edges on vertices with degree ≤ `d`.
    pub fn cdf_at(&self, d: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto: u64 = self.counts[..=d.min(self.counts.len() - 1)].iter().sum();
        upto as f64 / self.total as f64
    }

    /// Sample the CDF at each degree in `points` (for table output).
    pub fn sample(&self, points: &[usize]) -> Vec<(usize, f64)> {
        points.iter().map(|&d| (d, self.cdf_at(d))).collect()
    }

    /// Smallest degree d with CDF(d) >= 0.5 (median edge's vertex degree).
    pub fn median_degree(&self) -> usize {
        (0..self.counts.len())
            .find(|&d| self.cdf_at(d) >= 0.5)
            .unwrap_or(self.counts.len() - 1)
    }
}

/// Quick summary statistics used in Table 2 output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    pub average: f64,
    pub max: u64,
    pub isolated_vertices: usize,
}

impl DegreeSummary {
    pub fn new(g: &CsrGraph) -> Self {
        let isolated = (0..g.num_vertices())
            .filter(|&v| g.degree(v as u32) == 0)
            .count();
        Self {
            average: g.average_degree(),
            max: g.max_degree(),
            isolated_vertices: isolated,
        }
    }
}

/// A work estimate for one query: expected kernel iterations and the
/// host-link bytes those iterations move. Produced by [`CostModel`],
/// consumed by the serving layer's deadline admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostEstimate {
    /// Expected kernel iterations (BFS levels, relaxation rounds,
    /// full-sweep passes).
    pub iterations: u64,
    /// Expected host→GPU payload bytes across all iterations.
    pub bytes: u64,
}

impl CostEstimate {
    /// Convert the estimate into simulated time: transfer time at
    /// `bytes_per_ns` of link bandwidth plus a fixed `per_iteration_ns`
    /// overhead (launch + vertex scan) per iteration.
    pub fn ns(&self, bytes_per_ns: f64, per_iteration_ns: u64) -> u64 {
        let transfer = if bytes_per_ns > 0.0 {
            (self.bytes as f64 / bytes_per_ns).ceil() as u64
        } else {
            u64::MAX
        };
        transfer.saturating_add(self.iterations.saturating_mul(per_iteration_ns))
    }
}

/// Admission-control cost model: degree-distribution statistics plus a
/// reachable-set heuristic, compressed into per-query work estimates.
///
/// The model is deliberately coarse — it exists to answer "can this
/// query possibly meet its deadline?" *before* running it, not to
/// predict runtimes. Two heuristics drive it:
///
/// * **reachable set** — isolated vertices can never be reached, so a
///   traversal from any connected source is expected to touch the
///   non-isolated vertex set and cross (roughly) every edge once;
/// * **depth** — on a random-ish graph the frontier grows by the
///   average reachable degree per level, so the expected iteration
///   count is `log(reachable) / log(avg_degree)` (plus slack); for
///   near-chain graphs (average degree ≤ the growth threshold) the
///   depth degenerates toward the reachable-vertex count.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    num_edges: u64,
    reachable_vertices: u64,
    est_depth: u64,
}

impl CostModel {
    /// Build the model from one pass over the degree array.
    pub fn new(g: &CsrGraph) -> Self {
        let isolated = (0..g.num_vertices())
            .filter(|&v| g.degree(v as u32) == 0)
            .count() as u64;
        let reachable = g.num_vertices() as u64 - isolated;
        let avg = if reachable == 0 {
            0.0
        } else {
            g.num_edges() as f64 / reachable as f64
        };
        let est_depth = if reachable <= 1 {
            1
        } else if avg > 1.5 {
            ((reachable as f64).ln() / avg.ln()).ceil() as u64 + 2
        } else {
            reachable
        };
        Self {
            num_edges: g.num_edges() as u64,
            reachable_vertices: reachable,
            est_depth: est_depth.clamp(1, reachable.max(1)),
        }
    }

    /// Expected iteration count of a frontier traversal (the depth
    /// heuristic).
    pub fn est_depth(&self) -> u64 {
        self.est_depth
    }

    /// Vertices with at least one edge (the reachable-set heuristic's
    /// upper bound on any traversal).
    pub fn reachable_vertices(&self) -> u64 {
        self.reachable_vertices
    }

    /// Estimate a frontier-driven traversal from a source of degree
    /// `src_degree`, moving `elem_bytes` per edge element: expected
    /// depth iterations crossing the reachable edge set once. An
    /// isolated source terminates after one empty-frontier iteration.
    pub fn frontier_cost(&self, src_degree: u64, elem_bytes: u64) -> CostEstimate {
        if src_degree == 0 {
            return CostEstimate {
                iterations: 1,
                bytes: elem_bytes,
            };
        }
        CostEstimate {
            iterations: self.est_depth,
            bytes: self.num_edges.saturating_mul(elem_bytes),
        }
    }

    /// Estimate a full-sweep analytic: `passes` sweeps over the whole
    /// edge list at `elem_bytes` per element.
    pub fn full_sweep_cost(&self, passes: u64, elem_bytes: u64) -> CostEstimate {
        let passes = passes.max(1);
        CostEstimate {
            iterations: passes,
            bytes: passes.saturating_mul(self.num_edges.saturating_mul(elem_bytes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeListBuilder;
    use crate::generators;

    fn star_plus_path() -> CsrGraph {
        // Vertex 0 is a hub of degree 4; vertices 5-6 form one edge.
        let mut b = EdgeListBuilder::new(7).symmetrize(true);
        for d in 1..5 {
            b.push(0, d);
        }
        b.push(5, 6);
        b.build()
    }

    #[test]
    fn cdf_splits_hub_and_leaf_edges() {
        let g = star_plus_path();
        let cdf = DegreeCdf::new(&g, 16);
        // 10 edge endpoints: 4 on the hub (degree 4), 4 on its leaves
        // (degree 1), 2 on the 5-6 pair (degree 1).
        assert!((cdf.cdf_at(1) - 0.6).abs() < 1e-12);
        assert!((cdf.cdf_at(3) - 0.6).abs() < 1e-12);
        assert!((cdf.cdf_at(4) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.median_degree(), 1);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let g = generators::kronecker(10, 8, 5);
        let cdf = DegreeCdf::new(&g, 96);
        let mut prev = 0.0;
        for d in 0..=96 {
            let c = cdf.cdf_at(d);
            assert!(c >= prev - 1e-12, "CDF must be monotone");
            prev = c;
        }
        assert!(
            (cdf.cdf_at(96) - 1.0).abs() < 1e-12,
            "last bucket absorbs the tail"
        );
    }

    #[test]
    fn gu_band_property_shows_in_cdf() {
        let g = generators::uniform_random(2_000, 32, 9);
        let cdf = DegreeCdf::new(&g, 96);
        assert!(cdf.cdf_at(15) < 0.02, "nothing below degree 16");
        assert!(cdf.cdf_at(48) > 0.98, "everything by degree 48");
    }

    #[test]
    fn summary_counts_isolated() {
        let g = star_plus_path();
        let s = DegreeSummary::new(&g);
        assert_eq!(s.max, 4);
        assert_eq!(s.isolated_vertices, 0);
        let empty = CsrGraph::empty(3);
        assert_eq!(DegreeSummary::new(&empty).isolated_vertices, 3);
    }

    #[test]
    fn cost_model_depth_tracks_graph_shape() {
        // Dense random graph: logarithmic depth, far below n.
        let dense = generators::uniform_random(2_000, 16, 3);
        let m = CostModel::new(&dense);
        assert!(m.est_depth() >= 3, "depth {}", m.est_depth());
        assert!(m.est_depth() < 64, "depth {}", m.est_depth());
        // Below the growth threshold (a perfect matching, average
        // degree 1) the depth degenerates to the reachable-vertex
        // count.
        let mut b = EdgeListBuilder::new(64).symmetrize(true);
        for v in 0..32 {
            b.push(2 * v, 2 * v + 1);
        }
        let sparse = CostModel::new(&b.build());
        assert_eq!(sparse.est_depth(), 64);
    }

    #[test]
    fn cost_model_charges_reachable_edges_and_spares_isolated_sources() {
        let g = star_plus_path();
        let m = CostModel::new(&g);
        assert_eq!(m.reachable_vertices(), 7);
        let c = m.frontier_cost(4, 8);
        assert_eq!(c.bytes, g.num_edges() as u64 * 8);
        assert!(c.iterations >= 1);
        let isolated = m.frontier_cost(0, 8);
        assert_eq!(isolated.iterations, 1);
        assert!(isolated.bytes < c.bytes);
        // Full sweeps scale linearly in passes.
        let one = m.full_sweep_cost(1, 8);
        let five = m.full_sweep_cost(5, 8);
        assert_eq!(five.bytes, one.bytes * 5);
        assert_eq!(five.iterations, 5);
    }

    #[test]
    fn cost_estimate_converts_to_time() {
        let c = CostEstimate {
            iterations: 4,
            bytes: 1_000,
        };
        // 10 bytes/ns → 100 ns transfer + 4 × 50 ns overhead.
        assert_eq!(c.ns(10.0, 50), 300);
        assert_eq!(c.ns(0.0, 50), u64::MAX, "no link, no deadline met");
    }

    #[test]
    fn sample_returns_requested_points() {
        let g = star_plus_path();
        let cdf = DegreeCdf::new(&g, 16);
        let pts = cdf.sample(&[0, 1, 4]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2], (4, 1.0));
    }
}
