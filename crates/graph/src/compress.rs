//! Compressed neighbour lists (the paper's §6 proposal).
//!
//! "EMOGI can potentially directly benefit from compression of input
//! data. ... if each neighbor list can be stored into the host memory in
//! a compressed form, these idling resources can be utilized to
//! decompress the list without any overall performance loss."
//!
//! This module provides the standard delta + varint encoding for sorted
//! adjacency lists (the WebGraph family's first-order technique): each
//! list stores its first destination, then the gaps between consecutive
//! destinations, as LEB128 varints. Web and social graphs with id-space
//! locality compress 2–4×, directly reducing the bytes EMOGI must pull
//! over the interconnect.

use crate::csr::CsrGraph;
use crate::VertexId;

/// A CSR graph with delta-varint-compressed neighbour lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedCsr {
    /// Byte offset of each vertex's compressed list (`|V| + 1` entries).
    byte_offsets: Vec<u64>,
    /// Concatenated compressed lists.
    bytes: Vec<u8>,
    num_edges: usize,
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

impl CompressedCsr {
    /// Compress `graph`'s (sorted) neighbour lists.
    pub fn encode(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut bytes = Vec::with_capacity(graph.num_edges() * 2);
        byte_offsets.push(0);
        for v in 0..n as VertexId {
            let mut prev: Option<VertexId> = None;
            for &d in graph.neighbors(v) {
                match prev {
                    None => push_varint(&mut bytes, u64::from(d)),
                    Some(p) => {
                        debug_assert!(d >= p, "lists must be sorted");
                        push_varint(&mut bytes, u64::from(d - p));
                    }
                }
                prev = Some(d);
            }
            byte_offsets.push(bytes.len() as u64);
        }
        Self {
            byte_offsets,
            bytes,
            num_edges: graph.num_edges(),
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.byte_offsets.len() - 1
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total compressed edge-list bytes.
    pub fn compressed_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Byte range of `v`'s compressed list.
    pub fn byte_range(&self, v: VertexId) -> (u64, u64) {
        (
            self.byte_offsets[v as usize],
            self.byte_offsets[v as usize + 1],
        )
    }

    /// Decode `v`'s neighbour list into `out` (cleared first).
    pub fn decode_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let (start, end) = self.byte_range(v);
        let mut pos = start as usize;
        let mut prev = 0u64;
        let mut first = true;
        while pos < end as usize {
            let x = read_varint(&self.bytes, &mut pos);
            let d = if first { x } else { prev + x };
            first = false;
            prev = d;
            out.push(d as VertexId);
        }
    }

    /// Decompress the whole graph back to CSR (round-trip check).
    pub fn decode(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(self.num_edges);
        offsets.push(0u64);
        let mut scratch = Vec::new();
        for v in 0..n as VertexId {
            self.decode_into(v, &mut scratch);
            edges.extend_from_slice(&scratch);
            offsets.push(edges.len() as u64);
        }
        CsrGraph::from_parts(offsets, edges, false)
    }

    /// Compression ratio relative to `element_bytes`-sized raw elements.
    pub fn ratio(&self, element_bytes: u64) -> f64 {
        (self.num_edges as u64 * element_bytes) as f64 / self.compressed_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64];
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn graph_roundtrip_preserves_adjacency() {
        for (name, g) in [
            ("web", generators::web_crawl(2_000, 12, 100, 0.85, 1)),
            ("uniform", generators::uniform_random(1_000, 8, 2)),
            ("kron", generators::kronecker(10, 8, 3)),
        ] {
            let c = CompressedCsr::encode(&g);
            let back = c.decode();
            assert_eq!(back.num_edges(), g.num_edges(), "{name}");
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(back.neighbors(v), g.neighbors(v), "{name} vertex {v}");
            }
        }
    }

    #[test]
    fn local_graphs_compress_well() {
        // Web crawls (small gaps) must compress much better than 8-byte
        // raw elements; even vs 4-byte they should win.
        let g = generators::web_crawl(5_000, 20, 150, 0.9, 4);
        let c = CompressedCsr::encode(&g);
        assert!(c.ratio(8) > 3.5, "ratio vs 8B: {}", c.ratio(8));
        assert!(c.ratio(4) > 1.7, "ratio vs 4B: {}", c.ratio(4));
    }

    #[test]
    fn empty_lists_are_zero_bytes() {
        let g = CsrGraph::empty(5);
        let c = CompressedCsr::encode(&g);
        assert_eq!(c.compressed_bytes(), 0);
        assert_eq!(c.byte_range(3), (0, 0));
        let mut out = vec![99];
        c.decode_into(3, &mut out);
        assert!(out.is_empty());
    }
}
