//! GPU device presets.
//!
//! Microarchitectural parameters (warp counts, cache geometry, latencies)
//! are taken from the real devices of the paper's Tables 1 and 3, because
//! the effects EMOGI studies are *ratio* effects between those parameters
//! and the interconnect. Device-memory **capacity** is the one scaled
//! quantity: the datasets are generated ~1000× smaller than the paper's
//! (Table 2 stand-ins in `emogi-graph`), so capacities scale GB → MiB to
//! preserve the out-of-memory ratio that drives UVM thrashing.

use emogi_sim::dram::DramConfig;
use emogi_sim::time::Time;

use crate::cache::CacheConfig;

/// Full parameter set for one simulated GPU.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    pub name: &'static str,
    /// Maximum warps resident across all SMs (V100: 80 SMs × 64 warps).
    pub resident_warps: u32,
    /// Per-warp limit on in-flight memory transactions (LSU/MSHR bound).
    /// Interacts with cache capacity to produce the Naive kernel's
    /// eviction-before-reuse behaviour.
    pub max_pending_per_warp: u32,
    /// Unified cache in front of both HBM and the PCIe path (the paper's
    /// "L1/L2" layer in Figure 3).
    pub cache: CacheConfig,
    /// Device memory timing model.
    pub hbm: DramConfig,
    /// Device memory capacity — **scaled** (16 GB → 16 MiB etc.).
    pub mem_bytes: u64,
    /// Fixed issue/ALU cost of one warp step, ns.
    pub step_compute_ns: Time,
}

/// Named presets used across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuPreset {
    /// Tesla V100 SXM2 16 GB — the primary platform (Table 1).
    V100,
    /// A100 40 GB in the DGX A100 — the PCIe 4.0 platform (§5.5).
    A100,
    /// Titan Xp 12 GB — the platform of the HALO comparison (Table 3).
    TitanXp,
}

impl GpuPreset {
    pub fn config(self) -> GpuConfig {
        match self {
            GpuPreset::V100 => GpuConfig {
                name: "Tesla V100 (16 GB scaled to 16 MiB)",
                resident_warps: 5_120,
                max_pending_per_warp: 8,
                cache: CacheConfig {
                    capacity_bytes: 6 << 20,
                    ways: 16,
                    hit_latency_ns: 140,
                },
                hbm: DramConfig::hbm2_v100(),
                mem_bytes: 16 << 20,
                step_compute_ns: 4,
            },
            GpuPreset::A100 => GpuConfig {
                name: "A100 (40 GB scaled to 40 MiB)",
                resident_warps: 6_912,
                max_pending_per_warp: 8,
                cache: CacheConfig {
                    capacity_bytes: 40 << 20,
                    ways: 16,
                    hit_latency_ns: 140,
                },
                hbm: DramConfig::hbm2e_a100(),
                mem_bytes: 40 << 20,
                step_compute_ns: 4,
            },
            GpuPreset::TitanXp => GpuConfig {
                name: "Titan Xp (12 GB scaled to 12 MiB)",
                resident_warps: 1_920,
                max_pending_per_warp: 8,
                cache: CacheConfig {
                    capacity_bytes: 3 << 20,
                    ways: 16,
                    hit_latency_ns: 180,
                },
                hbm: DramConfig::gddr5x_titan_xp(),
                mem_bytes: 12 << 20,
                step_compute_ns: 5,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for preset in [GpuPreset::V100, GpuPreset::A100, GpuPreset::TitanXp] {
            let cfg = preset.config();
            assert!(cfg.resident_warps > 0);
            assert!(cfg.max_pending_per_warp > 0);
            assert!(cfg.cache.capacity_bytes < cfg.mem_bytes << 10);
            assert!(cfg.cache.num_sets() > 0);
            assert!(cfg.hbm.bandwidth_gbps > 100.0);
        }
    }

    #[test]
    fn capacity_ordering_matches_the_paper() {
        let v100 = GpuPreset::V100.config();
        let a100 = GpuPreset::A100.config();
        let xp = GpuPreset::TitanXp.config();
        assert!(xp.mem_bytes < v100.mem_bytes);
        assert!(v100.mem_bytes < a100.mem_bytes);
        // 16 GB -> 16 MiB scaling.
        assert_eq!(v100.mem_bytes, 16 << 20);
    }

    #[test]
    fn a100_is_strictly_bigger_than_v100() {
        let v100 = GpuPreset::V100.config();
        let a100 = GpuPreset::A100.config();
        assert!(a100.resident_warps > v100.resident_warps);
        assert!(a100.cache.capacity_bytes > v100.cache.capacity_bytes);
        assert!(a100.hbm.bandwidth_gbps > v100.hbm.bandwidth_gbps);
    }
}
