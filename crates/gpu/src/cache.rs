//! Sectored, set-associative GPU cache.
//!
//! NVIDIA GPUs cache in 128-byte lines split into four 32-byte sectors;
//! a miss only fetches the missing sectors, which is why the FPGA sees
//! 32-byte-granular PCIe traffic in the first place. EMOGI's §3.3 analysis
//! of the strided pattern hinges on this cache: "these 32-byte data items
//! will likely occupy GPU cache and can be evicted before all elements are
//! traversed due to cache thrashing" — i.e. with tens of thousands of
//! in-flight sectors and bounded capacity, a sector is often gone by the
//! time its warp would have consumed its remaining elements, so the warp
//! fetches the same sector again. The runtime reproduces that re-fetch
//! traffic through this model.
//!
//! The cache is a timing/traffic model only: it tracks presence, not data.

use crate::coalesce::LINE_BYTES;

/// Sectors per 128-byte line.
pub const SECTORS_PER_LINE: usize = 4;

const INVALID: u64 = u64::MAX;

/// Cache geometry and timing.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    pub capacity_bytes: u64,
    pub ways: usize,
    /// Latency to serve a sector already present, ns.
    pub hit_latency_ns: u64,
}

impl CacheConfig {
    /// Number of sets implied by capacity and associativity.
    pub fn num_sets(&self) -> usize {
        let lines = (self.capacity_bytes / LINE_BYTES) as usize;
        (lines / self.ways).max(1)
    }
}

/// Running counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub sector_hits: u64,
    pub sector_misses: u64,
    pub line_evictions: u64,
    pub fills: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.sector_hits + self.sector_misses;
        if total == 0 {
            0.0
        } else {
            self.sector_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    sectors: u8,
    stamp: u64,
}

/// The cache proper.
#[derive(Debug, Clone)]
pub struct SectoredCache {
    ways: usize,
    num_sets: u64,
    slots: Vec<Way>,
    tick: u64,
    pub hit_latency_ns: u64,
    pub stats: CacheStats,
}

impl SectoredCache {
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.num_sets();
        Self {
            ways: cfg.ways,
            num_sets: sets as u64,
            slots: vec![
                Way {
                    tag: INVALID,
                    sectors: 0,
                    stamp: 0,
                };
                sets * cfg.ways
            ],
            tick: 0,
            hit_latency_ns: cfg.hit_latency_ns,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = ((line / LINE_BYTES) % self.num_sets) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Look up `mask` sectors of `line`. Returns the subset of sectors that
    /// hit. Does **not** allocate; fills happen when data arrives.
    pub fn probe(&mut self, line: u64, mask: u8) -> u8 {
        debug_assert_eq!(line % LINE_BYTES, 0);
        self.tick += 1;
        let range = self.set_range(line);
        for way in &mut self.slots[range] {
            if way.tag == line {
                way.stamp = self.tick;
                let hit = way.sectors & mask;
                self.stats.sector_hits += u64::from(hit.count_ones());
                self.stats.sector_misses += u64::from((mask & !hit).count_ones());
                return hit;
            }
        }
        self.stats.sector_misses += u64::from(mask.count_ones());
        0
    }

    /// Install `mask` sectors of `line` (data arrived from memory),
    /// evicting the LRU way of the set if the line is not present.
    pub fn fill(&mut self, line: u64, mask: u8) {
        debug_assert_eq!(line % LINE_BYTES, 0);
        self.tick += 1;
        self.stats.fills += 1;
        let range = self.set_range(line);
        let slots = &mut self.slots[range];
        // Already present: widen the sector mask.
        if let Some(way) = slots.iter_mut().find(|w| w.tag == line) {
            way.sectors |= mask;
            way.stamp = self.tick;
            return;
        }
        // Prefer an invalid way, else evict LRU.
        let victim = slots
            .iter_mut()
            .min_by_key(|w| if w.tag == INVALID { 0 } else { w.stamp })
            .expect("cache sets are never empty");
        if victim.tag != INVALID {
            self.stats.line_evictions += 1;
        }
        *victim = Way {
            tag: line,
            sectors: mask,
            stamp: self.tick,
        };
    }

    /// Drop every line whose address falls in `[start, end)` (page
    /// eviction under UVM invalidates its cached sectors).
    pub fn invalidate_range(&mut self, start: u64, end: u64) {
        for way in &mut self.slots {
            if way.tag != INVALID && way.tag >= start && way.tag < end {
                way.tag = INVALID;
                way.sectors = 0;
            }
        }
    }

    /// Forget everything (between experiment phases).
    pub fn clear(&mut self) {
        for way in &mut self.slots {
            way.tag = INVALID;
            way.sectors = 0;
            way.stamp = 0;
        }
    }

    /// Test/debug helper: are all `mask` sectors of `line` present?
    pub fn contains(&self, line: u64, mask: u8) -> bool {
        let range = self.set_range(line);
        self.slots[range]
            .iter()
            .any(|w| w.tag == line && w.sectors & mask == mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SectoredCache {
        // 2 sets x 2 ways x 128 B = 512 B.
        SectoredCache::new(&CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            hit_latency_ns: 10,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(0, 0b0001), 0);
        c.fill(0, 0b0001);
        assert_eq!(c.probe(0, 0b0001), 0b0001);
        assert_eq!(c.stats.sector_misses, 1);
        assert_eq!(c.stats.sector_hits, 1);
    }

    #[test]
    fn partial_sector_hits() {
        let mut c = tiny();
        c.fill(0, 0b0011);
        assert_eq!(c.probe(0, 0b0110), 0b0010);
    }

    #[test]
    fn fill_widens_existing_line() {
        let mut c = tiny();
        c.fill(128, 0b0001);
        c.fill(128, 0b1000);
        assert!(c.contains(128, 0b1001));
        assert_eq!(c.stats.line_evictions, 0);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 256, 512 all map to set 0 (stride = 2 sets x 128 B).
        c.fill(0, 0b1111);
        c.fill(256, 0b1111);
        c.probe(0, 0b0001); // touch line 0 so 256 is LRU
        c.fill(512, 0b1111);
        assert!(c.contains(0, 0b1111), "recently used line survives");
        assert!(!c.contains(256, 0b1111), "LRU line evicted");
        assert!(c.contains(512, 0b1111));
        assert_eq!(c.stats.line_evictions, 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.fill(0, 0b1111); // set 0
        c.fill(128, 0b1111); // set 1
        c.fill(256, 0b1111); // set 0
        assert!(
            c.contains(128, 0b1111),
            "other set untouched by set-0 fills"
        );
    }

    #[test]
    fn invalidate_range_drops_lines() {
        let mut c = tiny();
        c.fill(0, 0b1111);
        c.fill(128, 0b1111);
        c.invalidate_range(0, 128);
        assert!(!c.contains(0, 0b0001));
        assert!(c.contains(128, 0b1111));
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut c = tiny();
        c.fill(0, 0b1111);
        c.probe(0, 0b1111);
        let hits = c.stats.sector_hits;
        c.clear();
        assert!(!c.contains(0, 0b0001));
        assert_eq!(c.stats.sector_hits, hits);
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            sector_hits: 3,
            sector_misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn non_power_of_two_set_count_works() {
        // V100's 6 MiB L2 with 16 ways gives 3072 sets; indexing is modulo.
        let mut c = SectoredCache::new(&CacheConfig {
            capacity_bytes: 6 << 20,
            ways: 16,
            hit_latency_ns: 1,
        });
        c.fill(0, 0b1111);
        c.fill(3072 * 128, 0b1111); // same set as line 0
        assert!(c.contains(0, 0b1111));
        assert!(c.contains(3072 * 128, 0b1111));
    }
}
