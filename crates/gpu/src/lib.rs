//! # emogi-gpu — SIMT GPU model
//!
//! The GPU-side half of the EMOGI reproduction. It models the pieces of the
//! GPU memory path that the paper's optimizations manipulate:
//!
//! * **warps** — 32 lanes executing in lock-step ([`access`]);
//! * **the coalescing unit** — merges a warp's simultaneous lane accesses
//!   into the 32/64/96/128-byte transactions observed on PCIe in Figure 3
//!   ([`coalesce`]);
//! * **the cache** — a sectored, set-associative cache (128-byte lines of
//!   four 32-byte sectors) whose thrashing behaviour explains the Naive
//!   kernel's read amplification ([`cache`]);
//! * **device presets** — V100, A100 and Titan Xp parameter sets with
//!   device-memory capacity scaled 1000× down alongside the datasets
//!   ([`config`]).
//!
//! The execution loop that drives warps against these models lives in
//! `emogi-runtime`.

#![forbid(unsafe_code)]

pub mod access;
pub mod cache;
pub mod coalesce;
pub mod config;

pub use access::{AccessBatch, LaneAccess, Space, WARP_SIZE};
pub use cache::{CacheConfig, CacheStats, SectoredCache, SECTORS_PER_LINE};
pub use coalesce::{Coalescer, Transaction, LINE_BYTES, SECTOR_BYTES};
pub use config::{GpuConfig, GpuPreset};
