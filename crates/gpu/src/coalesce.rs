//! The memory-access coalescing unit.
//!
//! GPUs service a warp's 32 simultaneous lane accesses by merging them into
//! the minimum number of *transactions*: within each 128-byte cache line,
//! every contiguous run of touched 32-byte sectors becomes one transaction.
//! This is precisely the behaviour EMOGI observed on the FPGA monitor
//! (Figure 3): zero-copy requests only ever appear in 32/64/96/128-byte
//! sizes, strided lane accesses degenerate into per-lane 32-byte requests,
//! warp-contiguous aligned accesses merge into full 128-byte requests, and
//! a 32-byte misalignment splits each line into a 96 + 32 byte pair.

use crate::access::{LaneAccess, Space};

/// Bytes per sector — the smallest external memory request a GPU makes.
pub const SECTOR_BYTES: u64 = 32;
/// Bytes per cache line — the largest single coalesced request.
pub const LINE_BYTES: u64 = 128;
/// Sectors per line.
pub const SECTORS_PER_LINE_U64: u64 = LINE_BYTES / SECTOR_BYTES;

/// A coalesced memory transaction: contiguous sectors within one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    pub addr: u64,
    /// Always a multiple of 32 in `{32, 64, 96, 128}`.
    pub size: u32,
    pub space: Space,
    pub store: bool,
}

impl Transaction {
    /// Address of the 128-byte line this transaction lives in.
    #[inline]
    pub fn line(&self) -> u64 {
        self.addr & !(LINE_BYTES - 1)
    }

    /// Bitmask of the sectors within the line this transaction covers.
    #[inline]
    pub fn sector_mask(&self) -> u8 {
        let first = ((self.addr % LINE_BYTES) / SECTOR_BYTES) as u8;
        let count = (self.size as u64 / SECTOR_BYTES) as u8;
        (((1u16 << count) - 1) << first) as u8
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    space_rank: u8,
    store: bool,
    instr: u8,
    line: u64,
}

fn space_rank(s: Space) -> u8 {
    match s {
        Space::Device => 0,
        Space::HostPinned => 1,
        Space::Managed => 2,
        Space::Cxl => 3,
    }
}

fn rank_space(r: u8) -> Space {
    match r {
        0 => Space::Device,
        1 => Space::HostPinned,
        2 => Space::Managed,
        _ => Space::Cxl,
    }
}

/// The coalescing unit. Holds scratch buffers so per-step coalescing does
/// not allocate; one per executor.
#[derive(Debug, Default)]
pub struct Coalescer {
    entries: Vec<(EntryKey, u8)>,
}

impl Coalescer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Coalesce a warp's lane accesses into transactions, appended to
    /// `out` in deterministic (space, store, address) order.
    pub fn coalesce(&mut self, accesses: &[LaneAccess], out: &mut Vec<Transaction>) {
        self.entries.clear();
        for a in accesses {
            if a.size == 0 {
                continue;
            }
            let first_sector = a.addr / SECTOR_BYTES;
            let last_sector = (a.addr + u64::from(a.size) - 1) / SECTOR_BYTES;
            for s in first_sector..=last_sector {
                let line = (s * SECTOR_BYTES) & !(LINE_BYTES - 1);
                let bit = 1u8 << (s % SECTORS_PER_LINE_U64);
                let key = EntryKey {
                    space_rank: space_rank(a.space),
                    store: a.store,
                    instr: a.instr,
                    line,
                };
                // Fast path: warps usually touch lines in address order,
                // so the previous entry is a frequent match.
                if let Some(last) = self.entries.last_mut() {
                    if last.0 == key {
                        last.1 |= bit;
                        continue;
                    }
                }
                self.entries.push((key, bit));
            }
        }
        if self.entries.is_empty() {
            return;
        }
        self.entries.sort_unstable_by_key(|(k, _)| *k);
        // Merge duplicate lines, then emit contiguous sector runs.
        let mut i = 0;
        while i < self.entries.len() {
            let (key, mut mask) = self.entries[i];
            let mut j = i + 1;
            while j < self.entries.len() && self.entries[j].0 == key {
                mask |= self.entries[j].1;
                j += 1;
            }
            i = j;
            emit_runs(key, mask, out);
        }
    }
}

fn emit_runs(key: EntryKey, mask: u8, out: &mut Vec<Transaction>) {
    debug_assert!(mask != 0 && mask < 16, "line sector mask out of range");
    let mut sector = 0u64;
    let mut m = mask;
    while m != 0 {
        // Skip to the next set bit.
        let skip = m.trailing_zeros() as u64;
        sector += skip;
        m >>= skip;
        // Measure the run of set bits.
        let run = m.trailing_ones() as u64;
        out.push(Transaction {
            addr: key.line + sector * SECTOR_BYTES,
            size: (run * SECTOR_BYTES) as u32,
            space: rank_space(key.space_rank),
            store: key.store,
        });
        sector += run;
        m = m.checked_shr(run as u32).unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBatch;

    fn coalesce(batch: &AccessBatch) -> Vec<Transaction> {
        let mut c = Coalescer::new();
        let mut out = Vec::new();
        c.coalesce(batch.items(), &mut out);
        out
    }

    /// Figure 3(a): each lane scans a different 128-byte block, producing
    /// per-lane 32-byte requests.
    #[test]
    fn strided_lanes_produce_32_byte_requests() {
        let mut b = AccessBatch::new();
        for lane in 0..32u64 {
            b.load(lane * 128, 8, Space::HostPinned);
        }
        let txns = coalesce(&b);
        assert_eq!(txns.len(), 32);
        assert!(txns.iter().all(|t| t.size == 32));
    }

    /// Figure 3(b): 32 lanes reading consecutive 4-byte elements from a
    /// 128-byte-aligned address merge into a single 128-byte request.
    #[test]
    fn aligned_warp_access_merges_to_one_line() {
        let mut b = AccessBatch::new();
        for lane in 0..32u64 {
            b.load(0x8000 + lane * 4, 4, Space::HostPinned);
        }
        let txns = coalesce(&b);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].size, 128);
        assert_eq!(txns[0].addr, 0x8000);
    }

    /// Figure 3(c): the same warp access misaligned by 32 bytes produces a
    /// 96-byte and a 32-byte request.
    #[test]
    fn misaligned_warp_access_splits_96_plus_32() {
        let mut b = AccessBatch::new();
        for lane in 0..32u64 {
            b.load(0x8020 + lane * 4, 4, Space::HostPinned);
        }
        let mut txns = coalesce(&b);
        txns.sort_by_key(|t| t.addr);
        assert_eq!(txns.len(), 2);
        assert_eq!((txns[0].addr, txns[0].size), (0x8020, 96));
        assert_eq!((txns[1].addr, txns[1].size), (0x8080, 32));
    }

    /// EMOGI's 8-byte CSR elements: one warp iteration covers 256 bytes,
    /// i.e. two full 128-byte requests when aligned.
    #[test]
    fn eight_byte_elements_cover_two_lines() {
        let mut b = AccessBatch::new();
        for lane in 0..32u64 {
            b.load(0x1000 + lane * 8, 8, Space::HostPinned);
        }
        let txns = coalesce(&b);
        assert_eq!(txns.len(), 2);
        assert!(txns.iter().all(|t| t.size == 128));
    }

    #[test]
    fn hole_in_sector_mask_splits_runs() {
        let mut b = AccessBatch::new();
        b.load(0, 8, Space::HostPinned); // sector 0
        b.load(64, 8, Space::HostPinned); // sector 2
        let txns = coalesce(&b);
        assert_eq!(txns.len(), 2);
        assert_eq!((txns[0].addr, txns[0].size), (0, 32));
        assert_eq!((txns[1].addr, txns[1].size), (64, 32));
    }

    #[test]
    fn spaces_and_stores_do_not_merge_with_each_other() {
        let mut b = AccessBatch::new();
        b.load(0, 8, Space::Device);
        b.load(8, 8, Space::HostPinned);
        b.store(16, 8, Space::HostPinned);
        let txns = coalesce(&b);
        assert_eq!(txns.len(), 3, "{txns:?}");
    }

    #[test]
    fn access_straddling_sector_boundary_touches_both() {
        let mut b = AccessBatch::new();
        b.load(28, 8, Space::Device); // bytes 28..36: sectors 0 and 1
        let txns = coalesce(&b);
        assert_eq!(txns.len(), 1);
        assert_eq!((txns[0].addr, txns[0].size), (0, 64));
    }

    #[test]
    fn sector_mask_roundtrip() {
        let t = Transaction {
            addr: 0x8020,
            size: 96,
            space: Space::HostPinned,
            store: false,
        };
        assert_eq!(t.line(), 0x8000);
        assert_eq!(t.sector_mask(), 0b1110);
    }

    /// Same-lane loads from different loop iterations (distinct
    /// instructions) must not merge even when byte-adjacent: coalescing
    /// is a per-instruction mechanism.
    #[test]
    fn different_instructions_never_merge() {
        let mut b = AccessBatch::new();
        for k in 0..4u64 {
            b.load_instr(0x1000 + k * 8, 8, Space::HostPinned, k as u8);
        }
        let txns = coalesce(&b);
        assert_eq!(txns.len(), 4, "{txns:?}");
        assert!(txns.iter().all(|t| t.size == 32));
    }

    #[test]
    fn same_instruction_adjacent_sectors_do_merge() {
        let mut b = AccessBatch::new();
        for k in 0..4u64 {
            b.load_instr(0x1000 + k * 32, 8, Space::HostPinned, 7);
        }
        assert_eq!(coalesce(&b).len(), 1);
    }

    #[test]
    fn zero_size_access_is_ignored() {
        let mut b = AccessBatch::new();
        b.load(0, 0, Space::Device);
        assert!(coalesce(&b).is_empty());
    }

    #[test]
    fn unordered_lanes_coalesce_the_same() {
        let mut fwd = AccessBatch::new();
        let mut rev = AccessBatch::new();
        for lane in 0..32u64 {
            fwd.load(0x2000 + lane * 4, 4, Space::HostPinned);
            rev.load(0x2000 + (31 - lane) * 4, 4, Space::HostPinned);
        }
        assert_eq!(coalesce(&fwd), coalesce(&rev));
    }
}
