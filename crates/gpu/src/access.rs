//! Warp-level memory accesses.
//!
//! A kernel step produces one [`AccessBatch`] per warp: the set of loads and
//! stores the warp's 32 lanes issue together, plus the compute time the step
//! consumed. The executor coalesces the batch ([`crate::coalesce`]), prices
//! the resulting transactions, and resumes the warp when they complete —
//! the lock-step load-use model of the paper's Listing 1/2 kernels.

/// Number of lanes per warp. EMOGI deliberately fixes the worker size to a
/// full warp (§4.3.1: "EMOGI always fixes the worker size to an entire
/// warp (i.e., 32 threads)").
pub const WARP_SIZE: usize = 32;

/// Address space targeted by an access. The first three spaces have the
/// three cost models of §2.2/§3: device memory is HBM behind the cache,
/// host pinned memory is zero-copy over PCIe, and managed memory is UVM
/// with page migration. `Cxl` is the microsecond-latency external tier of
/// the CXL follow-up paper — load/store served over a CXL.mem-style link
/// with no PCIe tag semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// GPU device memory (vertex list, status arrays, output buffers).
    Device,
    /// Pinned host memory accessed zero-copy over PCIe (the edge list).
    HostPinned,
    /// UVM-managed memory, resident wherever the driver last put it.
    Managed,
    /// CXL-class external memory: cold edge regions spilled past host DRAM.
    Cxl,
}

/// One lane's memory access within a warp step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAccess {
    pub addr: u64,
    /// Access width in bytes (4 or 8 for CSR elements).
    pub size: u8,
    /// Instruction group: the hardware coalescing unit merges lane
    /// accesses of the *same load instruction*; accesses from different
    /// loop iterations issued together (memory-level parallelism within a
    /// lane) never merge with each other. This is why the Naive kernel's
    /// per-lane sweeps stay 32-byte requests on the wire even though each
    /// lane has several loads in flight.
    pub instr: u8,
    pub space: Space,
    /// `true` for stores; stores are fire-and-forget (they retire through a
    /// write buffer and do not stall the warp) but still cost bandwidth.
    pub store: bool,
}

impl LaneAccess {
    pub fn load(addr: u64, size: u8, space: Space) -> Self {
        Self {
            addr,
            size,
            instr: 0,
            space,
            store: false,
        }
    }

    pub fn store(addr: u64, size: u8, space: Space) -> Self {
        Self {
            addr,
            size,
            instr: 0,
            space,
            store: true,
        }
    }

    pub fn with_instr(mut self, instr: u8) -> Self {
        self.instr = instr;
        self
    }
}

/// The accesses of one warp step. Reused as scratch by the executor —
/// `clear` between steps, push up to a few accesses per lane.
#[derive(Debug, Default, Clone)]
pub struct AccessBatch {
    items: Vec<LaneAccess>,
    /// Compute time consumed by the step before the accesses issue, ns.
    pub compute_ns: u32,
}

impl AccessBatch {
    pub fn new() -> Self {
        Self {
            items: Vec::with_capacity(2 * WARP_SIZE),
            compute_ns: 0,
        }
    }

    pub fn clear(&mut self) {
        self.items.clear();
        self.compute_ns = 0;
    }

    pub fn push(&mut self, access: LaneAccess) {
        self.items.push(access);
    }

    pub fn load(&mut self, addr: u64, size: u8, space: Space) {
        self.push(LaneAccess::load(addr, size, space));
    }

    /// Load belonging to a specific instruction group (loop iteration).
    pub fn load_instr(&mut self, addr: u64, size: u8, space: Space, instr: u8) {
        self.push(LaneAccess::load(addr, size, space).with_instr(instr));
    }

    pub fn store(&mut self, addr: u64, size: u8, space: Space) {
        self.push(LaneAccess::store(addr, size, space));
    }

    pub fn items(&self) -> &[LaneAccess] {
        &self.items
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates_and_clears() {
        let mut b = AccessBatch::new();
        b.load(0x100, 8, Space::HostPinned);
        b.store(0x200, 4, Space::Device);
        b.compute_ns = 7;
        assert_eq!(b.len(), 2);
        assert!(!b.items()[0].store);
        assert!(b.items()[1].store);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.compute_ns, 0);
    }

    #[test]
    fn constructors_set_fields() {
        let l = LaneAccess::load(16, 8, Space::Managed);
        assert_eq!(
            (l.addr, l.size, l.space, l.store),
            (16, 8, Space::Managed, false)
        );
        let s = LaneAccess::store(32, 4, Space::Device);
        assert!(s.store);
    }
}
