//! The compatibility scheduler: group pending queries into batches.
//!
//! A [`QueryBatch`] holds queries that can execute as one
//! [`Engine::run_batch`](emogi_core::Engine::run_batch) call: same
//! program kind — and, because a server owns exactly one engine, the
//! same graph and placement. Scheduling is FIFO-fair and greedy: the
//! oldest pending query anchors the batch, then every other pending
//! query of the same kind joins in submission order until the batch cap
//! is reached. Queries of other kinds keep their queue positions, so a
//! burst of one kind cannot starve the other.

use crate::query::{Query, QueryId, QueryKind};
use std::collections::VecDeque;

/// A group of compatible queries scheduled to execute together.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The common program kind.
    pub kind: QueryKind,
    /// The member queries with their handles, in submission order.
    pub queries: Vec<(QueryId, Query)>,
}

impl QueryBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty (never produced by the scheduler).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Pop the next batch off `queue`: the oldest query plus up to
/// `max_batch - 1` later queries of the same kind, preserving order.
/// Returns `None` when the queue is empty.
pub fn next_batch(queue: &mut VecDeque<(QueryId, Query)>, max_batch: usize) -> Option<QueryBatch> {
    let max_batch = max_batch.max(1);
    let kind = queue.front()?.1.kind();
    let mut queries = Vec::new();
    let mut rest = VecDeque::with_capacity(queue.len());
    while let Some((id, q)) = queue.pop_front() {
        if q.kind() == kind && queries.len() < max_batch {
            queries.push((id, q));
        } else {
            rest.push_back((id, q));
        }
    }
    *queue = rest;
    Some(QueryBatch { kind, queries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn q(id: u64, query: Query) -> (QueryId, Query) {
        (QueryId(id), query)
    }

    fn weights() -> Arc<Vec<u32>> {
        Arc::new(vec![1, 2, 3])
    }

    #[test]
    fn batches_group_by_kind_preserving_fifo_order() {
        let mut queue: VecDeque<_> = vec![
            q(0, Query::bfs(1)),
            q(1, Query::sssp(2, weights())),
            q(2, Query::bfs(3)),
            q(3, Query::bfs(4)),
            q(4, Query::sssp(5, weights())),
        ]
        .into();
        let b = next_batch(&mut queue, 16).unwrap();
        assert_eq!(b.kind, QueryKind::Bfs);
        assert_eq!(
            b.queries.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        let b = next_batch(&mut queue, 16).unwrap();
        assert_eq!(b.kind, QueryKind::Sssp);
        assert_eq!(
            b.queries.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![1, 4]
        );
        assert!(next_batch(&mut queue, 16).is_none());
    }

    #[test]
    fn batch_cap_leaves_overflow_queued_in_order() {
        let mut queue: VecDeque<_> = (0..5).map(|i| q(i, Query::bfs(i as u32))).collect();
        let b = next_batch(&mut queue, 2).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.front().unwrap().0, QueryId(2));
        let b = next_batch(&mut queue, 2).unwrap();
        assert_eq!(
            b.queries.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn saturating_alternating_burst_alternates_batch_kinds() {
        // A saturating burst of strictly alternating kinds: every batch
        // anchors on the globally oldest pending query, so the kinds
        // alternate instead of one kind draining the queue first.
        let mut queue: VecDeque<_> = (0..12u64)
            .map(|i| {
                if i % 2 == 0 {
                    q(i, Query::bfs(i as u32))
                } else {
                    q(i, Query::sssp(i as u32, weights()))
                }
            })
            .collect();
        let mut anchors = Vec::new();
        while let Some(batch) = next_batch(&mut queue, 3) {
            assert!(batch.len() <= 3);
            // FIFO anchoring: the first member is the oldest pending id.
            anchors.push((batch.kind, batch.queries[0].0));
        }
        assert_eq!(
            anchors,
            vec![
                (QueryKind::Bfs, QueryId(0)),
                (QueryKind::Sssp, QueryId(1)),
                (QueryKind::Bfs, QueryId(6)),
                (QueryKind::Sssp, QueryId(7)),
            ],
            "kinds must alternate under a saturating alternating burst"
        );
    }

    #[test]
    fn interleaved_kinds_do_not_starve() {
        let mut queue: VecDeque<_> = vec![
            q(0, Query::sssp(0, weights())),
            q(1, Query::bfs(1)),
            q(2, Query::sssp(2, weights())),
        ]
        .into();
        // The oldest query anchors the batch even when a later kind has
        // more members.
        let b = next_batch(&mut queue, 16).unwrap();
        assert_eq!(b.kind, QueryKind::Sssp);
        assert_eq!(b.len(), 2);
        assert_eq!(queue.front().unwrap().0, QueryId(1));
    }
}
