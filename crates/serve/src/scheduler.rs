//! The compatibility scheduler: group pending queries into batches.
//!
//! Two layers share one batching rule (kind-pure groups, capped size,
//! full-sweep kinds solo):
//!
//! * [`next_batch`] is the original FIFO-fair primitive over a plain
//!   `(QueryId, Query)` queue: the oldest pending query anchors the
//!   batch, then every other pending query of the same kind joins in
//!   submission order until the cap. Queries of other kinds keep their
//!   queue positions, so a burst of one kind cannot starve the other.
//! * [`plan_batches`] is the SLA scheduler the servers run on: it
//!   orders [`Pending`] entries by a deterministic
//!   earliest-deadline-first-within-priority key ([`sched_key`]) —
//!   latency class before bulk, earlier absolute deadline first,
//!   submission id breaking every tie — and forms batches behind each
//!   anchor exactly like repeated [`next_batch`] selection would, in
//!   one `O(n log n)` pass. Under [`SchedPolicy::Fifo`] (or when every
//!   query carries the default QoS) the key degenerates to the
//!   submission id and the plan is exactly the FIFO-fair plan.
//!
//! Both layers are pure functions of queue state: no wall clock, no
//! randomness — deadlines are absolute points on the *server's
//! simulated clock*, assigned at admission. `emogi-lint`'s
//! `ambient-nondet` rule (see `tools/lint/fixtures/deadline_clock_bad.rs`)
//! guards exactly this property.

use crate::query::{Query, QueryId, QueryKind};
use std::collections::VecDeque;

/// A group of compatible queries scheduled to execute together.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The common program kind.
    pub kind: QueryKind,
    /// The member queries with their handles, in submission order.
    pub queries: Vec<(QueryId, Query)>,
}

impl QueryBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty (never produced by the scheduler).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Pop the next batch off `queue`: the oldest query plus up to
/// `max_batch - 1` later queries of the same kind, preserving order.
/// Returns `None` when the queue is empty.
///
/// Single pass: each element is popped once and either joins the batch
/// or rotates back to the queue's tail, so the survivors keep their
/// relative order in place — no rebuild allocation, and a full drain
/// via repeated calls moves each element O(batches-per-drain) times
/// instead of the O(n) per call a rebuild costs.
pub fn next_batch(queue: &mut VecDeque<(QueryId, Query)>, max_batch: usize) -> Option<QueryBatch> {
    let max_batch = max_batch.max(1);
    let kind = queue.front()?.1.kind();
    let mut queries = Vec::new();
    for _ in 0..queue.len() {
        let (id, q) = queue.pop_front().expect("iterating within queue length");
        if q.kind() == kind && queries.len() < max_batch {
            queries.push((id, q));
        } else {
            queue.push_back((id, q));
        }
    }
    Some(QueryBatch { kind, queries })
}

/// How a server orders its pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Earliest-deadline-first within priority class (the default):
    /// latency before bulk, earlier deadline first, submission id
    /// breaking ties. With all-default QoS this is identical to
    /// [`Fifo`](Self::Fifo).
    #[default]
    Edf,
    /// Pure submission order, ignoring priority and deadlines — the
    /// pre-QoS behaviour, kept as the baseline the `sla` bench
    /// experiment compares against.
    Fifo,
}

/// One admitted, not-yet-executed query: the scheduler's unit of work.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The submission handle (also the scheduling tie-breaker).
    pub id: QueryId,
    /// The query itself.
    pub query: Query,
    /// Absolute deadline on the server's simulated clock, ns
    /// (admission clock + the query's budget); `None` = no deadline.
    pub deadline_ns: Option<u64>,
}

/// The deterministic scheduling key: `(priority rank, absolute
/// deadline, submission id)`, compared lexicographically, smaller runs
/// earlier. No-deadline queries sort after every dated one of the same
/// class; under [`SchedPolicy::Fifo`] the first two components collapse
/// so only submission order remains. Ids are unique, so the order is
/// total and scheduling is a pure function of queue state.
pub fn sched_key(policy: SchedPolicy, p: &Pending) -> (u8, u64, u64) {
    match policy {
        SchedPolicy::Fifo => (0, 0, p.id.0),
        SchedPolicy::Edf => (
            p.query.qos.priority.rank(),
            p.deadline_ns.unwrap_or(u64::MAX),
            p.id.0,
        ),
    }
}

/// A planned batch: kind-pure, members in scheduling-key order, first
/// member the anchor.
#[derive(Debug, Clone)]
pub struct SlaBatch {
    /// The common program kind.
    pub kind: QueryKind,
    /// Members in [`sched_key`] order; `entries[0]` is the anchor.
    pub entries: Vec<Pending>,
}

/// Plan a full drain of `pending`: order by [`sched_key`], then chunk
/// each kind's ordered subsequence at the batch cap (1 for
/// non-[`batchable`](QueryKind::batchable) kinds), and emit the batches
/// in anchor-key order.
///
/// This is exactly the plan that repeated anchor selection produces —
/// pick the minimum-key entry, fill behind it with the smallest
/// same-kind keys up to the cap, repeat — computed in one sort + one
/// pass. Invariants (property-tested in `tests/sla_proptests.rs`):
/// batches are kind-pure, respect the cap, anchors appear in
/// non-decreasing key order, members within a batch are in key order,
/// and every input entry lands in exactly one batch.
pub fn plan_batches(
    mut pending: Vec<Pending>,
    policy: SchedPolicy,
    max_batch: usize,
) -> Vec<SlaBatch> {
    let max_batch = max_batch.max(1);
    pending.sort_by_key(|p| sched_key(policy, p));
    let mut open: [Option<usize>; QueryKind::COUNT] = [None; QueryKind::COUNT];
    let mut batches: Vec<SlaBatch> = Vec::new();
    for p in pending {
        let kind = p.query.kind();
        let cap = if kind.batchable() { max_batch } else { 1 };
        let idx = match open[kind.slot()] {
            Some(i) if batches[i].entries.len() < cap => i,
            _ => {
                batches.push(SlaBatch {
                    kind,
                    entries: Vec::with_capacity(cap.min(16)),
                });
                open[kind.slot()] = Some(batches.len() - 1);
                batches.len() - 1
            }
        };
        batches[idx].entries.push(p);
    }
    // Anchor order = execution order: each batch's first member carries
    // its smallest key, and keys are unique, so this matches repeated
    // minimum-key anchor selection.
    batches.sort_by_key(|b| sched_key(policy, &b.entries[0]));
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Priority;
    use std::sync::Arc;

    fn q(id: u64, query: Query) -> (QueryId, Query) {
        (QueryId(id), query)
    }

    fn weights() -> Arc<Vec<u32>> {
        Arc::new(vec![1, 2, 3])
    }

    #[test]
    fn batches_group_by_kind_preserving_fifo_order() {
        let mut queue: VecDeque<_> = vec![
            q(0, Query::bfs(1)),
            q(1, Query::sssp(2, weights())),
            q(2, Query::bfs(3)),
            q(3, Query::bfs(4)),
            q(4, Query::sssp(5, weights())),
        ]
        .into();
        let b = next_batch(&mut queue, 16).unwrap();
        assert_eq!(b.kind, QueryKind::Bfs);
        assert_eq!(
            b.queries.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        let b = next_batch(&mut queue, 16).unwrap();
        assert_eq!(b.kind, QueryKind::Sssp);
        assert_eq!(
            b.queries.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![1, 4]
        );
        assert!(next_batch(&mut queue, 16).is_none());
    }

    #[test]
    fn batch_cap_leaves_overflow_queued_in_order() {
        let mut queue: VecDeque<_> = (0..5).map(|i| q(i, Query::bfs(i as u32))).collect();
        let b = next_batch(&mut queue, 2).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.front().unwrap().0, QueryId(2));
        let b = next_batch(&mut queue, 2).unwrap();
        assert_eq!(
            b.queries.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn saturating_alternating_burst_alternates_batch_kinds() {
        // A saturating burst of strictly alternating kinds: every batch
        // anchors on the globally oldest pending query, so the kinds
        // alternate instead of one kind draining the queue first.
        let mut queue: VecDeque<_> = (0..12u64)
            .map(|i| {
                if i % 2 == 0 {
                    q(i, Query::bfs(i as u32))
                } else {
                    q(i, Query::sssp(i as u32, weights()))
                }
            })
            .collect();
        let mut anchors = Vec::new();
        while let Some(batch) = next_batch(&mut queue, 3) {
            assert!(batch.len() <= 3);
            // FIFO anchoring: the first member is the oldest pending id.
            anchors.push((batch.kind, batch.queries[0].0));
        }
        assert_eq!(
            anchors,
            vec![
                (QueryKind::Bfs, QueryId(0)),
                (QueryKind::Sssp, QueryId(1)),
                (QueryKind::Bfs, QueryId(6)),
                (QueryKind::Sssp, QueryId(7)),
            ],
            "kinds must alternate under a saturating alternating burst"
        );
    }

    #[test]
    fn interleaved_kinds_do_not_starve() {
        let mut queue: VecDeque<_> = vec![
            q(0, Query::sssp(0, weights())),
            q(1, Query::bfs(1)),
            q(2, Query::sssp(2, weights())),
        ]
        .into();
        // The oldest query anchors the batch even when a later kind has
        // more members.
        let b = next_batch(&mut queue, 16).unwrap();
        assert_eq!(b.kind, QueryKind::Sssp);
        assert_eq!(b.len(), 2);
        assert_eq!(queue.front().unwrap().0, QueryId(1));
    }

    fn pending(id: u64, query: Query, deadline_ns: Option<u64>) -> Pending {
        Pending {
            id: QueryId(id),
            query,
            deadline_ns,
        }
    }

    fn ids(b: &SlaBatch) -> Vec<u64> {
        b.entries.iter().map(|p| p.id.0).collect()
    }

    #[test]
    fn edf_orders_by_priority_then_deadline_then_id() {
        // Bulk with an early deadline still yields to latency class;
        // within a class earlier deadlines run first; no-deadline
        // queries run last, in submission order.
        let plan = plan_batches(
            vec![
                pending(0, Query::bfs(0), None),
                pending(1, Query::bfs(1).with_deadline_ns(50), Some(50)),
                pending(
                    2,
                    Query::bfs(2)
                        .with_priority(Priority::Latency)
                        .with_deadline_ns(900),
                    Some(900),
                ),
                pending(3, Query::bfs(3).with_deadline_ns(10), Some(10)),
            ],
            SchedPolicy::Edf,
            2,
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(ids(&plan[0]), vec![2, 3], "latency anchor, then best bulk");
        assert_eq!(ids(&plan[1]), vec![1, 0]);
    }

    #[test]
    fn full_sweep_kinds_never_share_a_batch() {
        let plan = plan_batches(
            vec![
                pending(0, Query::cc(), None),
                pending(1, Query::cc(), None),
                pending(2, Query::pagerank(0.85, 3), None),
                pending(3, Query::bfs(0), None),
                pending(4, Query::bfs(1), None),
            ],
            SchedPolicy::Edf,
            16,
        );
        let sizes: Vec<(QueryKind, usize)> =
            plan.iter().map(|b| (b.kind, b.entries.len())).collect();
        assert_eq!(
            sizes,
            vec![
                (QueryKind::Cc, 1),
                (QueryKind::Cc, 1),
                (QueryKind::PageRank, 1),
                (QueryKind::Bfs, 2),
            ]
        );
    }

    #[test]
    fn fifo_plan_matches_repeated_next_batch_on_a_large_mixed_queue() {
        // Dedicated regression test for the quadratic-drain fix: the
        // one-pass plan must equal the batch sequence the original
        // repeated-selection primitive produces, on a queue large
        // enough that a rebuild-per-call drain would be visibly
        // quadratic.
        let n = 4_096u64;
        let entries: Vec<Pending> = (0..n)
            .map(|i| {
                let query = match i % 3 {
                    0 => Query::bfs((i % 97) as u32),
                    1 => Query::sssp((i % 89) as u32, weights()),
                    _ => Query::bfs((i % 53) as u32),
                };
                pending(i, query, None)
            })
            .collect();
        let mut queue: VecDeque<(QueryId, Query)> =
            entries.iter().map(|p| (p.id, p.query.clone())).collect();
        let plan = plan_batches(entries, SchedPolicy::Fifo, 7);
        let mut i = 0;
        while let Some(b) = next_batch(&mut queue, 7) {
            assert_eq!(b.kind, plan[i].kind, "batch {i} kind");
            assert_eq!(
                b.queries.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
                ids(&plan[i]),
                "batch {i} members"
            );
            i += 1;
        }
        assert_eq!(i, plan.len(), "same number of batches");
    }

    #[test]
    fn default_qos_edf_plan_equals_fifo_plan() {
        let entries: Vec<Pending> = (0..64u64)
            .map(|i| {
                let query = if i % 2 == 0 {
                    Query::bfs(i as u32)
                } else {
                    Query::sssp(i as u32, weights())
                };
                pending(i, query, None)
            })
            .collect();
        let edf = plan_batches(entries.clone(), SchedPolicy::Edf, 5);
        let fifo = plan_batches(entries, SchedPolicy::Fifo, 5);
        let shape = |plan: &[SlaBatch]| -> Vec<(QueryKind, Vec<u64>)> {
            plan.iter().map(|b| (b.kind, ids(b))).collect()
        };
        assert_eq!(shape(&edf), shape(&fifo));
    }
}
