//! # emogi-serve — concurrent query serving over a shared placement
//!
//! EMOGI ([`emogi_core`]) makes every PCIe cache line count; this crate
//! makes *concurrent* queries share those cache lines. A [`QueryServer`]
//! fronts one place-once [`Engine`](emogi_core::Engine):
//!
//! * **admission control** — [`QueryServer::submit`] bounds the pending
//!   queue and validates queries up front ([`SubmitError`]);
//! * **scheduling** — [`scheduler::next_batch`] groups compatible
//!   pending queries (same program kind, same graph by construction)
//!   into a [`QueryBatch`], FIFO-fair across kinds;
//! * **batched execution** — each batch runs as one
//!   [`Engine::run_batch`](emogi_core::Engine::run_batch) call: per
//!   iteration the queries' frontiers merge and each edge-list region
//!   crosses PCIe once, serving every query that touches it.
//!
//! Batched results are bit-identical — outputs *and* iteration counts —
//! to running the same queries sequentially; per-query
//! [`RunStats`](emogi_runtime::RunStats) stay attributable, with shared
//! iteration traffic flagged via
//! [`shared_fetch`](emogi_runtime::RunStats::shared_fetch). The
//! `serve` experiment in `emogi_bench` measures the payoff: fewer total
//! PCIe bytes and higher queries/sec than sequential execution on
//! overlapping-frontier workloads.
//!
//! The **device-group path** ([`ShardedServer`]) serves the same query
//! types over a multi-GPU [`ShardedEngine`](emogi_core::ShardedEngine):
//! identical admission control and scheduler grouping, but each query's
//! iterations shard across every device instead of sharing fetches with
//! its batch — the latency-oriented counterpart to the
//! throughput-oriented batched path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;
pub mod scheduler;
pub mod server;
pub mod sharded;

pub use query::{Query, QueryId, QueryKind, QueryResult, SubmitError};
pub use scheduler::{next_batch, QueryBatch};
pub use server::{QueryServer, ServerConfig, ServerStats};
pub use sharded::ShardedServer;
