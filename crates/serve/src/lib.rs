//! # emogi-serve — SLA-aware concurrent query serving over a shared placement
//!
//! EMOGI ([`emogi_core`]) makes every PCIe cache line count; this crate
//! makes *concurrent* queries share those cache lines — under service
//! level objectives. One generic [`Server`] core fronts either backend
//! (see [`ServeBackend`]):
//!
//! * **admission control** — [`Server::submit`] bounds *outstanding*
//!   queries (pending + unredeemed results), validates queries up front
//!   ([`SubmitError`]), and runs a cost model
//!   ([`emogi_graph::analysis::CostModel`]) against each query's
//!   deadline budget, rejecting certain misses with
//!   [`SubmitError::OverBudget`];
//! * **QoS scheduling** — every [`Query`] carries a [`QoS`]
//!   (priority class + optional deadline);
//!   [`scheduler::plan_batches`] orders the queue
//!   earliest-deadline-first within priority (deterministically — ties
//!   break by submission id) and groups compatible same-kind queries
//!   into kind-pure batches ([`SlaBatch`]);
//! * **batched execution** — each frontier-driven batch runs as one
//!   [`Engine::run_batch`](emogi_core::Engine::run_batch) call: per
//!   iteration the queries' frontiers merge and each edge-list region
//!   crosses PCIe once, serving every query that touches it. Full-sweep
//!   analytics ([`Query::cc`], [`Query::pagerank`]) run solo through
//!   the same lifecycle;
//! * **lifecycle** — [`Server::cancel`] revokes pending queries;
//!   queries that complete past their deadline are marked
//!   [`QueryOutcome::DeadlineMissed`] rather than served silently, and
//!   queries whose deadline expires while queued are
//!   [`QueryOutcome::DeadlineCancelled`] without executing.
//!
//! Batched results are bit-identical — outputs *and* iteration counts —
//! to running the same queries sequentially; per-query
//! [`RunStats`](emogi_runtime::RunStats) stay attributable, with shared
//! iteration traffic flagged via
//! [`shared_fetch`](emogi_runtime::RunStats::shared_fetch). The `serve`
//! and `sla` experiments in `emogi_bench` measure the payoff: fewer
//! total PCIe bytes and higher queries/sec than sequential execution,
//! and a higher deadline-hit rate under EDF than FIFO on mixed
//! bulk/latency bursts — with served outputs digest-equal across
//! schedulers.
//!
//! The **device-group path** ([`ShardedServer`]) serves the same query
//! types over a multi-GPU
//! [`ShardedEngine`](emogi_core::sharded::ShardedEngine): identical
//! admission, QoS and lifecycle machinery (it *is* the same [`Server`]
//! type), but each query's iterations shard across every device instead
//! of sharing fetches with its batch — the latency-oriented counterpart
//! to the throughput-oriented batched path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod query;
pub mod scheduler;
pub mod server;
pub mod sharded;

pub use backend::{ExecutedBatch, ServeBackend};
pub use query::{
    Priority, QoS, Query, QueryId, QueryKind, QueryOutcome, QueryResult, QuerySpec, SubmitError,
};
pub use scheduler::{
    next_batch, plan_batches, sched_key, Pending, QueryBatch, SchedPolicy, SlaBatch,
};
pub use server::{QueryServer, Server, ServerConfig, ServerStats, ShardedServer};
