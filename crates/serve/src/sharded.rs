//! The device-group-aware serving path: queries over a
//! [`ShardedEngine`].
//!
//! [`QueryServer`](crate::QueryServer) accelerates concurrent queries by
//! *batching* them on one device (overlapping frontiers share PCIe cache
//! lines); a [`ShardedServer`] instead accelerates **each** query by
//! sharding its iterations across every device of a group — the right
//! trade when individual query latency matters, or when one GPU's link
//! is the bottleneck. Admission control ([`SubmitError`]) and the
//! FIFO-fair compatibility scheduler ([`next_batch`]) are shared with
//! the single-device server, so a workload can move between the two
//! paths without changing its submission code: scheduler groups form
//! exactly the same way, and each group's queries execute back-to-back
//! on the sharded engine.
//!
//! Results are bit-identical — outputs and iteration counts — to solo
//! [`Engine`](emogi_core::Engine) runs of the same queries, because
//! sharded execution itself is (see [`emogi_core::sharded`]).

use crate::query::{Query, QueryId, QueryResult, SubmitError};
use crate::scheduler::next_batch;
use crate::server::{ServerConfig, ServerStats};
use emogi_core::sharded::ShardedEngine;
use emogi_core::Run;
use std::collections::{BTreeMap, VecDeque};

/// A concurrent-query front end over one sharded multi-GPU engine.
///
/// ```
/// use emogi_core::sharded::{ShardedConfig, ShardedEngine};
/// use emogi_graph::{algo, generators};
/// use emogi_serve::{Query, ServerConfig, ShardedServer};
///
/// let graph = generators::kronecker(9, 8, 21);
/// let engine = ShardedEngine::load(ShardedConfig::emogi_v100(2), &graph);
/// let mut server = ShardedServer::new(ServerConfig::default(), engine);
///
/// let id = server.submit(Query::bfs(1)).unwrap();
/// assert_eq!(server.run_pending(), 1);
/// let run = server.take(id).unwrap().into_bfs();
/// assert_eq!(run.levels, algo::bfs_levels(&graph, 1));
/// ```
pub struct ShardedServer<'g> {
    engine: ShardedEngine<'g>,
    cfg: ServerConfig,
    next_id: u64,
    pending: VecDeque<(QueryId, Query)>,
    results: BTreeMap<QueryId, QueryResult>,
    stats: ServerStats,
}

impl<'g> ShardedServer<'g> {
    /// Wrap an already-loaded sharded engine; its device group is the
    /// shared resource every accepted query runs across.
    pub fn new(cfg: ServerConfig, engine: ShardedEngine<'g>) -> Self {
        Self {
            engine,
            cfg,
            next_id: 0,
            pending: VecDeque::new(),
            results: BTreeMap::new(),
            stats: ServerStats::default(),
        }
    }

    /// Submit a query; identical admission control to
    /// [`QueryServer::submit`](crate::QueryServer::submit).
    pub fn submit(&mut self, query: Query) -> Result<QueryId, SubmitError> {
        match crate::query::admit(
            self.engine.graph(),
            self.pending.len(),
            self.cfg.queue_capacity,
            &query,
        ) {
            Ok(()) => {
                let id = QueryId(self.next_id);
                self.next_id += 1;
                self.pending.push_back((id, query));
                self.stats.submitted += 1;
                Ok(id)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Queries waiting for execution.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Drain the pending queue. The scheduler forms the same FIFO-fair,
    /// kind-pure groups as the single-device server; each group's
    /// queries then run back-to-back, every one sharded across the full
    /// device group (so [`ServerStats::batched_queries`] stays zero —
    /// this path shares devices, not fetches). Returns the number of
    /// queries served.
    pub fn run_pending(&mut self) -> usize {
        let mut served = 0;
        while let Some(batch) = next_batch(&mut self.pending, self.cfg.max_batch) {
            for (id, query) in batch.queries {
                let result = match query {
                    Query::Bfs { src } => {
                        let r = self.engine.bfs(src);
                        self.stats.busy_ns += r.stats.elapsed_ns;
                        self.stats.host_bytes += r.stats.host_bytes;
                        QueryResult::Bfs(Run {
                            output: r.output,
                            stats: r.stats,
                        })
                    }
                    Query::Sssp { src, weights } => {
                        let r = self.engine.sssp(&weights, src);
                        self.stats.busy_ns += r.stats.elapsed_ns;
                        self.stats.host_bytes += r.stats.host_bytes;
                        QueryResult::Sssp(Run {
                            output: r.output,
                            stats: r.stats,
                        })
                    }
                };
                self.results.insert(id, result);
                self.stats.served += 1;
                served += 1;
            }
            self.stats.batches += 1;
        }
        served
    }

    /// Redeem a finished query's result; `None` while pending or
    /// already taken.
    pub fn take(&mut self, id: QueryId) -> Option<QueryResult> {
        self.results.remove(&id)
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The wrapped sharded engine.
    pub fn engine(&self) -> &ShardedEngine<'g> {
        &self.engine
    }

    /// Mutable access to the wrapped engine (e.g. for running full-sweep
    /// analytics across the same device group).
    pub fn engine_mut(&mut self) -> &mut ShardedEngine<'g> {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_core::sharded::ShardedConfig;
    use emogi_core::{Engine, EngineConfig};
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};
    use std::sync::Arc;

    #[test]
    fn sharded_server_matches_solo_engine_runs() {
        let g = generators::kronecker(9, 8, 11);
        let w = Arc::new(generate_weights(g.num_edges(), 11));
        let engine = ShardedEngine::load(ShardedConfig::emogi_v100(2), &g);
        let mut server = ShardedServer::new(ServerConfig::default(), engine);

        let b = server.submit(Query::bfs(0)).unwrap();
        let s = server.submit(Query::sssp(3, Arc::clone(&w))).unwrap();
        assert_eq!(server.run_pending(), 2);
        assert_eq!(server.stats().batches, 2, "kind-pure groups");
        assert_eq!(server.stats().batched_queries, 0, "no fetch sharing");

        let mut solo = Engine::load(EngineConfig::emogi_v100(), &g);
        let bfs = server.take(b).unwrap().into_bfs();
        let want = solo.bfs(0);
        assert_eq!(bfs.levels, want.levels);
        assert_eq!(bfs.stats.kernel_launches, want.stats.kernel_launches);
        let sssp = server.take(s).unwrap().into_sssp();
        let want = solo.sssp(&w, 3);
        assert_eq!(sssp.dist, want.dist);
        assert_eq!(sssp.stats.kernel_launches, want.stats.kernel_launches);
    }

    #[test]
    fn sharded_server_admission_mirrors_the_single_device_server() {
        let g = generators::uniform_random(100, 4, 1);
        let engine = ShardedEngine::load(ShardedConfig::emogi_v100(2), &g);
        let mut server = ShardedServer::new(
            ServerConfig {
                queue_capacity: 1,
                ..ServerConfig::default()
            },
            engine,
        );
        assert_eq!(
            server.submit(Query::bfs(100)),
            Err(SubmitError::SourceOutOfRange {
                src: 100,
                num_vertices: 100
            })
        );
        assert!(matches!(
            server.submit(Query::sssp(0, Arc::new(vec![1, 2]))),
            Err(SubmitError::WeightCountMismatch { got: 2, .. })
        ));
        server.submit(Query::bfs(0)).unwrap();
        assert_eq!(
            server.submit(Query::bfs(1)),
            Err(SubmitError::QueueFull { capacity: 1 })
        );
        assert_eq!(server.stats().rejected, 3);
        assert_eq!(server.run_pending(), 1);
        assert_eq!(algo::bfs_levels(&g, 0).len(), 100);
    }
}
