//! The device-group-aware serving path: queries over a
//! [`ShardedEngine`](emogi_core::sharded::ShardedEngine).
//!
//! [`QueryServer`](crate::QueryServer) accelerates concurrent queries by
//! *batching* them on one device (overlapping frontiers share PCIe cache
//! lines); a [`ShardedServer`](crate::ShardedServer) instead accelerates
//! **each** query by sharding its iterations across every device of a
//! group — the right trade when individual query latency matters, or
//! when one GPU's link is the bottleneck.
//!
//! Both front ends are the *same* [`Server`](crate::Server) type over
//! different [`ServeBackend`](crate::ServeBackend)s, so admission
//! control, QoS scheduling, cancellation, deadlines and accounting are
//! literally shared code — a workload moves between the two paths
//! without changing its submission logic, and scheduler groups form
//! exactly the same way. Each group's queries execute back-to-back on
//! the sharded engine (sharing devices, not fetches).
//!
//! Results are bit-identical — outputs and iteration counts — to solo
//! [`Engine`](emogi_core::Engine) runs of the same queries, because
//! sharded execution itself is (see [`emogi_core::sharded`]).
//!
//! ```
//! use emogi_core::sharded::{ShardedConfig, ShardedEngine};
//! use emogi_graph::{algo, generators};
//! use emogi_serve::{Query, ServerConfig, ShardedServer};
//!
//! let graph = generators::kronecker(9, 8, 21);
//! let engine = ShardedEngine::load(ShardedConfig::emogi_v100(2), &graph);
//! let mut server = ShardedServer::new(ServerConfig::default(), engine);
//!
//! let id = server.submit(Query::bfs(1)).unwrap();
//! assert_eq!(server.run_pending(), 1);
//! let run = server.take(id).unwrap().into_bfs();
//! assert_eq!(run.levels, algo::bfs_levels(&graph, 1));
//! ```
//!
//! The `ShardedServer` alias itself lives in [`crate::server`]; this
//! module keeps the sharded-specific behavioural tests.

#[cfg(test)]
mod tests {
    use crate::query::{Query, SubmitError};
    use crate::server::{ServerConfig, ShardedServer};
    use emogi_core::sharded::{ShardedConfig, ShardedEngine};
    use emogi_core::{Engine, EngineConfig};
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};
    use std::sync::Arc;

    #[test]
    fn sharded_server_matches_solo_engine_runs() {
        let g = generators::kronecker(9, 8, 11);
        let w = Arc::new(generate_weights(g.num_edges(), 11));
        let engine = ShardedEngine::load(ShardedConfig::emogi_v100(2), &g);
        let mut server = ShardedServer::new(ServerConfig::default(), engine);

        let b = server.submit(Query::bfs(0)).unwrap();
        let s = server.submit(Query::sssp(3, Arc::clone(&w))).unwrap();
        assert_eq!(server.run_pending(), 2);
        assert_eq!(server.stats().batches, 2, "kind-pure groups");
        assert_eq!(server.stats().batched_queries, 0, "no fetch sharing");

        let mut solo = Engine::load(EngineConfig::emogi_v100(), &g);
        let bfs = server.take(b).unwrap().into_bfs();
        let want = solo.bfs(0);
        assert_eq!(bfs.levels, want.levels);
        assert_eq!(bfs.stats.kernel_launches, want.stats.kernel_launches);
        let sssp = server.take(s).unwrap().into_sssp();
        let want = solo.sssp(&w, 3);
        assert_eq!(sssp.dist, want.dist);
        assert_eq!(sssp.stats.kernel_launches, want.stats.kernel_launches);
    }

    #[test]
    fn sharded_server_serves_full_sweeps_across_the_group() {
        let g = generators::uniform_random(500, 6, 17);
        let engine = ShardedEngine::load(ShardedConfig::emogi_v100(2), &g);
        let mut server = ShardedServer::new(ServerConfig::default(), engine);
        let cc = server.submit(Query::cc()).unwrap();
        let pr = server.submit(Query::pagerank(0.85, 4)).unwrap();
        assert_eq!(server.run_pending(), 2);

        let mut solo = Engine::load(EngineConfig::emogi_v100(), &g);
        let got = server.take(cc).unwrap().into_cc();
        assert_eq!(got.output.comp, solo.cc().output.comp);
        let got = server.take(pr).unwrap().into_pagerank();
        let want = solo.pagerank(0.85, 4);
        assert_eq!(got.output.ranks, want.output.ranks);
    }

    #[test]
    fn sharded_server_admission_mirrors_the_single_device_server() {
        let g = generators::uniform_random(100, 4, 1);
        let engine = ShardedEngine::load(ShardedConfig::emogi_v100(2), &g);
        let mut server = ShardedServer::new(
            ServerConfig {
                queue_capacity: 1,
                ..ServerConfig::default()
            },
            engine,
        );
        assert_eq!(
            server.submit(Query::bfs(100)),
            Err(SubmitError::SourceOutOfRange {
                src: 100,
                num_vertices: 100
            })
        );
        assert!(matches!(
            server.submit(Query::sssp(0, Arc::new(vec![1, 2]))),
            Err(SubmitError::WeightCountMismatch { got: 2, .. })
        ));
        let a = server.submit(Query::bfs(0)).unwrap();
        assert_eq!(
            server.submit(Query::bfs(1)),
            Err(SubmitError::QueueFull { capacity: 1 })
        );
        assert_eq!(server.stats().rejected, 3);
        assert_eq!(server.run_pending(), 1);
        // The unredeemed outcome still holds the only slot.
        assert_eq!(
            server.submit(Query::bfs(1)),
            Err(SubmitError::QueueFull { capacity: 1 })
        );
        server.take(a).unwrap();
        server.submit(Query::bfs(1)).unwrap();
        assert_eq!(algo::bfs_levels(&g, 0).len(), 100);
    }

    #[test]
    fn both_front_ends_normalize_max_batch_identically() {
        // Regression test: ShardedServer::new used to store the config
        // verbatim while QueryServer::new clamped max_batch — the shared
        // constructor normalizes both the same way.
        let g = generators::uniform_random(100, 4, 1);
        let wild = ServerConfig {
            max_batch: 0,
            ..ServerConfig::default()
        };
        let mut sharded = ShardedServer::new(
            wild.clone(),
            ShardedEngine::load(ShardedConfig::emogi_v100(2), &g),
        );
        let mut single =
            crate::server::QueryServer::new(wild, Engine::load(EngineConfig::emogi_v100(), &g));
        // max_batch 0 would make the scheduler plan empty batches
        // forever; clamping to 1 keeps both paths serving.
        for server_runs in [
            {
                sharded.submit(Query::bfs(0)).unwrap();
                sharded.run_pending()
            },
            {
                single.submit(Query::bfs(0)).unwrap();
                single.run_pending()
            },
        ] {
            assert_eq!(server_runs, 1);
        }
        let huge = ServerConfig {
            max_batch: usize::MAX,
            ..ServerConfig::default()
        };
        let mut sharded =
            ShardedServer::new(huge, ShardedEngine::load(ShardedConfig::emogi_v100(2), &g));
        sharded.submit(Query::bfs(0)).unwrap();
        assert_eq!(sharded.run_pending(), 1, "oversized cap clamps, not panics");
    }
}
