//! Execution backends: the one trait both server front ends share.
//!
//! [`Server`](crate::Server) owns the whole submit / schedule /
//! deadline / redeem lifecycle once; a [`ServeBackend`] only answers
//! "what graph is placed" and "execute this kind-pure batch". Two
//! backends ship:
//!
//! * [`Engine`] — the single-device batched path: frontier-driven
//!   batches run as one [`Engine::run_batch`] call (merged frontiers,
//!   shared fetches); full-sweep queries run solo on the same
//!   placement.
//! * [`ShardedEngine`] — the device-group path: every query runs solo
//!   but sharded across all devices (shares devices, not fetches).
//!
//! Both execute queries in the exact order the scheduler planned and
//! report simulated elapsed time, so the server's clock — and with it
//! every deadline decision — is a pure function of the submitted
//! workload.

use crate::query::{QueryKind, QueryResult, QuerySpec};
use crate::scheduler::Pending;
use emogi_core::sharded::ShardedEngine;
use emogi_core::{BfsProgram, Engine, Run, SsspProgram};
use emogi_graph::CsrGraph;

/// The result of executing one kind-pure batch: per-query results in
/// batch order plus the batch-level accounting the server folds into
/// its clock and [`ServerStats`](crate::ServerStats).
#[derive(Debug)]
pub struct ExecutedBatch {
    /// One result per batch member, in the batch's order.
    pub results: Vec<QueryResult>,
    /// Simulated time the batch took, ns (advances the server clock).
    pub elapsed_ns: u64,
    /// Host→GPU payload bytes (shared fetches counted once).
    pub host_bytes: u64,
    /// Whether the members shared fetches (one merged-frontier kernel
    /// run); drives [`ServerStats::batched_queries`](crate::ServerStats::batched_queries).
    pub shared: bool,
}

/// What a server needs from an execution engine. Implementations must
/// execute the batch deterministically and return exactly one result
/// per entry, in order.
pub trait ServeBackend {
    /// The placed graph every admitted query runs against.
    fn graph(&self) -> &CsrGraph;

    /// Effective host-link payload bandwidth in bytes per simulated ns,
    /// used by cost-model admission to convert estimated traffic into
    /// time.
    fn link_bytes_per_ns(&self) -> f64;

    /// Execute one kind-pure batch planned by the scheduler.
    fn execute(&mut self, kind: QueryKind, entries: &[Pending]) -> ExecutedBatch;
}

fn bfs_src(p: &Pending) -> u32 {
    match &p.query.spec {
        QuerySpec::Bfs { src } => *src,
        other => unreachable!("BFS batch holds {other:?}"),
    }
}

fn sssp_parts(p: &Pending) -> (u32, &std::sync::Arc<Vec<u32>>) {
    match &p.query.spec {
        QuerySpec::Sssp { src, weights } => (*src, weights),
        other => unreachable!("SSSP batch holds {other:?}"),
    }
}

impl<'g> ServeBackend for Engine<'g> {
    fn graph(&self) -> &CsrGraph {
        Engine::graph(self)
    }

    fn link_bytes_per_ns(&self) -> f64 {
        Engine::link_bytes_per_ns(self)
    }

    fn execute(&mut self, kind: QueryKind, entries: &[Pending]) -> ExecutedBatch {
        let graph = Engine::graph(self);
        match kind {
            QueryKind::Bfs => {
                let programs: Vec<BfsProgram> = entries
                    .iter()
                    .map(|p| BfsProgram::new(graph, bfs_src(p)))
                    .collect();
                let out = self.run_batch(programs);
                ExecutedBatch {
                    results: out.runs.into_iter().map(QueryResult::Bfs).collect(),
                    elapsed_ns: out.stats.elapsed_ns,
                    host_bytes: out.stats.host_bytes,
                    shared: true,
                }
            }
            QueryKind::Sssp => {
                let programs: Vec<SsspProgram> = entries
                    .iter()
                    .map(|p| {
                        let (src, weights) = sssp_parts(p);
                        SsspProgram::new(graph, weights, src)
                    })
                    .collect();
                let out = self.run_batch(programs);
                ExecutedBatch {
                    results: out.runs.into_iter().map(QueryResult::Sssp).collect(),
                    elapsed_ns: out.stats.elapsed_ns,
                    host_bytes: out.stats.host_bytes,
                    shared: true,
                }
            }
            // Full-sweep kinds arrive in batches of one (the scheduler
            // never groups them), but executing each entry solo keeps
            // this correct for any batch shape.
            QueryKind::Cc | QueryKind::PageRank => solo_sweeps(entries, |spec| match spec {
                QuerySpec::Cc => QueryResult::Cc(self.cc()),
                QuerySpec::PageRank {
                    damping,
                    iterations,
                } => QueryResult::PageRank(self.pagerank(*damping, *iterations)),
                other => unreachable!("full-sweep batch holds {other:?}"),
            }),
        }
    }
}

impl<'g> ServeBackend for ShardedEngine<'g> {
    fn graph(&self) -> &CsrGraph {
        ShardedEngine::graph(self)
    }

    fn link_bytes_per_ns(&self) -> f64 {
        ShardedEngine::link_bytes_per_ns(self)
    }

    /// Every query runs solo, sharded across the full device group —
    /// this path shares devices, not fetches, so `shared` stays false
    /// and [`ServerStats::batched_queries`](crate::ServerStats::batched_queries)
    /// stays zero.
    fn execute(&mut self, _kind: QueryKind, entries: &[Pending]) -> ExecutedBatch {
        solo_sweeps(entries, |spec| match spec {
            QuerySpec::Bfs { src } => {
                let r = self.bfs(*src);
                QueryResult::Bfs(Run {
                    output: r.output,
                    stats: r.stats,
                })
            }
            QuerySpec::Sssp { src, weights } => {
                let r = self.sssp(weights, *src);
                QueryResult::Sssp(Run {
                    output: r.output,
                    stats: r.stats,
                })
            }
            QuerySpec::Cc => {
                let r = self.cc();
                QueryResult::Cc(Run {
                    output: r.output,
                    stats: r.stats,
                })
            }
            QuerySpec::PageRank {
                damping,
                iterations,
            } => {
                let r = self.pagerank(*damping, *iterations);
                QueryResult::PageRank(Run {
                    output: r.output,
                    stats: r.stats,
                })
            }
        })
    }
}

/// Run each entry solo through `run_one`, summing elapsed time and
/// traffic into one back-to-back batch record.
fn solo_sweeps(
    entries: &[Pending],
    mut run_one: impl FnMut(&QuerySpec) -> QueryResult,
) -> ExecutedBatch {
    let mut results = Vec::with_capacity(entries.len());
    let mut elapsed_ns = 0u64;
    let mut host_bytes = 0u64;
    for p in entries {
        let r = run_one(&p.query.spec);
        elapsed_ns += r.stats().elapsed_ns;
        host_bytes += r.stats().host_bytes;
        results.push(r);
    }
    ExecutedBatch {
        results,
        elapsed_ns,
        host_bytes,
        shared: false,
    }
}
