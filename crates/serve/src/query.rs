//! Query descriptions, handles and results.

use emogi_core::{BfsOutput, Run, SsspOutput};
use emogi_graph::VertexId;
use std::sync::Arc;

/// Opaque handle returned by
/// [`QueryServer::submit`](crate::QueryServer::submit); redeem it with
/// [`QueryServer::take`](crate::QueryServer::take) once the query ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub(crate) u64);

/// A frontier-driven query against the server's shared placement.
///
/// Only frontier-driven programs batch (their per-iteration frontiers
/// merge); full-sweep analytics (CC, PageRank) read the whole edge list
/// every launch anyway and run solo via
/// [`Engine`](emogi_core::Engine) directly.
#[derive(Debug, Clone)]
pub enum Query {
    /// Breadth-first search from a source vertex.
    Bfs {
        /// The BFS root.
        src: VertexId,
    },
    /// Single-source shortest paths from a source vertex with one 4-byte
    /// weight per edge.
    Sssp {
        /// The SSSP root.
        src: VertexId,
        /// Per-edge weights, shared cheaply between queries over the
        /// same weight assignment.
        weights: Arc<Vec<u32>>,
    },
}

impl Query {
    /// A BFS query from `src`.
    pub fn bfs(src: VertexId) -> Self {
        Query::Bfs { src }
    }

    /// An SSSP query from `src` over `weights`.
    pub fn sssp(src: VertexId, weights: Arc<Vec<u32>>) -> Self {
        Query::Sssp { src, weights }
    }

    /// The compatibility kind the scheduler groups by.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Bfs { .. } => QueryKind::Bfs,
            Query::Sssp { .. } => QueryKind::Sssp,
        }
    }

    /// The query's source vertex.
    pub fn src(&self) -> VertexId {
        match self {
            Query::Bfs { src } | Query::Sssp { src, .. } => *src,
        }
    }
}

/// Program type of a query — the scheduler's compatibility key: only
/// queries of the same kind (and, by construction of a server, the same
/// graph and placement) share a [`QueryBatch`](crate::QueryBatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
}

impl QueryKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Bfs => "BFS",
            QueryKind::Sssp => "SSSP",
        }
    }
}

/// A finished query: the program output plus the run's measurements.
///
/// Stats of batched queries are flagged
/// [`shared_fetch`](emogi_runtime::RunStats::shared_fetch): their PCIe
/// counters describe iteration traffic that also served the other
/// queries of the batch.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A finished BFS.
    Bfs(Run<BfsOutput>),
    /// A finished SSSP.
    Sssp(Run<SsspOutput>),
}

impl QueryResult {
    /// The kind of query this result came from.
    pub fn kind(&self) -> QueryKind {
        match self {
            QueryResult::Bfs(_) => QueryKind::Bfs,
            QueryResult::Sssp(_) => QueryKind::Sssp,
        }
    }

    /// The run's measurements, whichever program produced them.
    pub fn stats(&self) -> &emogi_runtime::RunStats {
        match self {
            QueryResult::Bfs(r) => &r.stats,
            QueryResult::Sssp(r) => &r.stats,
        }
    }

    /// Unwrap a BFS result; panics on a different kind.
    pub fn into_bfs(self) -> Run<BfsOutput> {
        match self {
            QueryResult::Bfs(r) => r,
            other => panic!("expected a BFS result, got {:?}", other.kind()),
        }
    }

    /// Unwrap an SSSP result; panics on a different kind.
    pub fn into_sssp(self) -> Run<SsspOutput> {
        match self {
            QueryResult::Sssp(r) => r,
            other => panic!("expected an SSSP result, got {:?}", other.kind()),
        }
    }
}

/// Why the server refused a submission (admission control).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at its configured capacity; retry after
    /// [`run_pending`](crate::QueryServer::run_pending).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The query's source vertex is not in the graph.
    SourceOutOfRange {
        /// The offending source.
        src: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// An SSSP query's weight array does not have one weight per edge.
    WeightCountMismatch {
        /// Weights provided.
        got: usize,
        /// Edges in the graph.
        want: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "pending queue full ({capacity} queries)")
            }
            SubmitError::SourceOutOfRange { src, num_vertices } => {
                write!(
                    f,
                    "source {src} out of range (graph has {num_vertices} vertices)"
                )
            }
            SubmitError::WeightCountMismatch { got, want } => {
                write!(f, "got {got} weights for {want} edges")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Shared admission control for every server front end: bound the
/// pending queue, check the source range, and require one weight per
/// edge for SSSP. `pending` is the queue depth *before* this query.
pub(crate) fn admit(
    graph: &emogi_graph::CsrGraph,
    pending: usize,
    capacity: usize,
    query: &Query,
) -> Result<(), SubmitError> {
    if pending >= capacity {
        return Err(SubmitError::QueueFull { capacity });
    }
    let nv = graph.num_vertices();
    if query.src() as usize >= nv {
        return Err(SubmitError::SourceOutOfRange {
            src: query.src(),
            num_vertices: nv,
        });
    }
    if let Query::Sssp { weights, .. } = query {
        let want = graph.num_edges();
        if weights.len() != want {
            return Err(SubmitError::WeightCountMismatch {
                got: weights.len(),
                want,
            });
        }
    }
    Ok(())
}
