//! Query descriptions, QoS classes, handles, results and outcomes.

use emogi_core::{BfsOutput, CcOutput, PageRankOutput, Run, SsspOutput};
use emogi_graph::VertexId;
use std::sync::Arc;

/// Opaque handle returned by
/// [`Server::submit`](crate::Server::submit); redeem it with
/// [`Server::take`](crate::Server::take) once the query ran, or revoke
/// it with [`Server::cancel`](crate::Server::cancel) while it is still
/// pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub(crate) u64);

impl QueryId {
    /// Build a handle from its raw submission number. Handles are plain
    /// sequence numbers, not capabilities; this exists so the standalone
    /// scheduler ([`plan_batches`](crate::scheduler::plan_batches)) can
    /// be driven — and property-tested — outside the server.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw submission number (0 for a server's first admitted
    /// query, then counting up).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Scheduling class of a query. The scheduler never lets a [`Bulk`]
/// query delay a [`Latency`] one: priority is compared before any
/// deadline.
///
/// [`Bulk`]: Priority::Bulk
/// [`Latency`]: Priority::Latency
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Interactive traffic: scheduled ahead of all bulk work.
    Latency,
    /// Throughput traffic (the default): scheduled after latency work,
    /// earliest deadline first.
    #[default]
    Bulk,
}

impl Priority {
    /// Scheduling rank; lower runs earlier.
    pub(crate) fn rank(self) -> u8 {
        match self {
            Priority::Latency => 0,
            Priority::Bulk => 1,
        }
    }
}

/// Per-query quality-of-service contract.
///
/// `deadline_ns` is a *budget on the server's simulated clock*, counted
/// from admission: a query submitted at simulated time `t` with budget
/// `d` must complete by `t + d`. A query that overruns is not silently
/// served late — it ends [`QueryOutcome::DeadlineMissed`] (it ran, too
/// late) or [`QueryOutcome::DeadlineCancelled`] (it expired while still
/// queued and never ran). The default QoS (bulk, no deadline) schedules
/// exactly like the pre-QoS FIFO server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QoS {
    /// Scheduling class.
    pub priority: Priority,
    /// Completion budget on the simulated clock, ns from admission;
    /// `None` means the query may take arbitrarily long (subject to the
    /// server-wide [`query_budget_ns`](crate::ServerConfig::query_budget_ns)).
    pub deadline_ns: Option<u64>,
}

/// What a query computes: a frontier-driven traversal from a source, or
/// a solo full-sweep analytic over the whole graph.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// Breadth-first search from a source vertex.
    Bfs {
        /// The BFS root.
        src: VertexId,
    },
    /// Single-source shortest paths from a source vertex with one 4-byte
    /// weight per edge.
    Sssp {
        /// The SSSP root.
        src: VertexId,
        /// Per-edge weights, shared cheaply between queries over the
        /// same weight assignment.
        weights: Arc<Vec<u32>>,
    },
    /// Connected components over the whole graph (full sweep, runs
    /// solo).
    Cc,
    /// PageRank over the whole graph (full sweep, runs solo).
    PageRank {
        /// Damping factor (the usual 0.85).
        damping: f64,
        /// Power iterations to run.
        iterations: u32,
    },
}

/// A query against the server's shared placement: a [`QuerySpec`] plus
/// its [`QoS`] contract.
///
/// Only frontier-driven specs (BFS, SSSP) batch — their per-iteration
/// frontiers merge into one [`Engine::run_batch`](emogi_core::Engine::run_batch)
/// call. Full-sweep analytics (CC, PageRank) read the whole edge list
/// every launch anyway, so the scheduler runs them solo, but they pass
/// through the same admission, accounting and deadline machinery.
#[derive(Debug, Clone)]
pub struct Query {
    /// What to compute.
    pub spec: QuerySpec,
    /// How urgently to compute it.
    pub qos: QoS,
}

impl Query {
    /// A BFS query from `src` with default QoS (bulk, no deadline).
    pub fn bfs(src: VertexId) -> Self {
        Self {
            spec: QuerySpec::Bfs { src },
            qos: QoS::default(),
        }
    }

    /// An SSSP query from `src` over `weights` with default QoS.
    pub fn sssp(src: VertexId, weights: Arc<Vec<u32>>) -> Self {
        Self {
            spec: QuerySpec::Sssp { src, weights },
            qos: QoS::default(),
        }
    }

    /// A connected-components query with default QoS.
    pub fn cc() -> Self {
        Self {
            spec: QuerySpec::Cc,
            qos: QoS::default(),
        }
    }

    /// A PageRank query with default QoS.
    pub fn pagerank(damping: f64, iterations: u32) -> Self {
        Self {
            spec: QuerySpec::PageRank {
                damping,
                iterations,
            },
            qos: QoS::default(),
        }
    }

    /// Replace the whole QoS contract.
    pub fn with_qos(mut self, qos: QoS) -> Self {
        self.qos = qos;
        self
    }

    /// Set the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.qos.priority = priority;
        self
    }

    /// Set the completion budget (simulated ns from admission).
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.qos.deadline_ns = Some(deadline_ns);
        self
    }

    /// The compatibility kind the scheduler groups by.
    pub fn kind(&self) -> QueryKind {
        match &self.spec {
            QuerySpec::Bfs { .. } => QueryKind::Bfs,
            QuerySpec::Sssp { .. } => QueryKind::Sssp,
            QuerySpec::Cc => QueryKind::Cc,
            QuerySpec::PageRank { .. } => QueryKind::PageRank,
        }
    }

    /// The query's source vertex; `None` for full-sweep analytics.
    pub fn src(&self) -> Option<VertexId> {
        match &self.spec {
            QuerySpec::Bfs { src } | QuerySpec::Sssp { src, .. } => Some(*src),
            QuerySpec::Cc | QuerySpec::PageRank { .. } => None,
        }
    }
}

/// Program type of a query — the scheduler's compatibility key: only
/// queries of the same kind (and, by construction of a server, the same
/// graph and placement) share a batch, and only
/// [`batchable`](Self::batchable) kinds share at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// Connected components (full sweep).
    Cc,
    /// PageRank (full sweep).
    PageRank,
}

impl QueryKind {
    /// Number of kinds (array-index bound for per-kind scheduler state).
    pub(crate) const COUNT: usize = 4;

    /// Dense index for per-kind scheduler state.
    pub(crate) fn slot(self) -> usize {
        match self {
            QueryKind::Bfs => 0,
            QueryKind::Sssp => 1,
            QueryKind::Cc => 2,
            QueryKind::PageRank => 3,
        }
    }

    /// Whether queries of this kind share a batch. Frontier-driven
    /// kinds batch (their frontiers merge); full-sweep kinds run solo.
    pub fn batchable(self) -> bool {
        match self {
            QueryKind::Bfs | QueryKind::Sssp => true,
            QueryKind::Cc | QueryKind::PageRank => false,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Bfs => "BFS",
            QueryKind::Sssp => "SSSP",
            QueryKind::Cc => "CC",
            QueryKind::PageRank => "PageRank",
        }
    }
}

/// A finished query: the program output plus the run's measurements.
///
/// Stats of batched queries are flagged
/// [`shared_fetch`](emogi_runtime::RunStats::shared_fetch): their PCIe
/// counters describe iteration traffic that also served the other
/// queries of the batch.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A finished BFS.
    Bfs(Run<BfsOutput>),
    /// A finished SSSP.
    Sssp(Run<SsspOutput>),
    /// A finished connected-components sweep.
    Cc(Run<CcOutput>),
    /// A finished PageRank sweep.
    PageRank(Run<PageRankOutput>),
}

impl QueryResult {
    /// The kind of query this result came from.
    pub fn kind(&self) -> QueryKind {
        match self {
            QueryResult::Bfs(_) => QueryKind::Bfs,
            QueryResult::Sssp(_) => QueryKind::Sssp,
            QueryResult::Cc(_) => QueryKind::Cc,
            QueryResult::PageRank(_) => QueryKind::PageRank,
        }
    }

    /// The run's measurements, whichever program produced them.
    pub fn stats(&self) -> &emogi_runtime::RunStats {
        match self {
            QueryResult::Bfs(r) => &r.stats,
            QueryResult::Sssp(r) => &r.stats,
            QueryResult::Cc(r) => &r.stats,
            QueryResult::PageRank(r) => &r.stats,
        }
    }

    /// Unwrap a BFS result; panics on a different kind.
    pub fn into_bfs(self) -> Run<BfsOutput> {
        match self {
            QueryResult::Bfs(r) => r,
            other => panic!("expected a BFS result, got {:?}", other.kind()),
        }
    }

    /// Unwrap an SSSP result; panics on a different kind.
    pub fn into_sssp(self) -> Run<SsspOutput> {
        match self {
            QueryResult::Sssp(r) => r,
            other => panic!("expected an SSSP result, got {:?}", other.kind()),
        }
    }

    /// Unwrap a connected-components result; panics on a different kind.
    pub fn into_cc(self) -> Run<CcOutput> {
        match self {
            QueryResult::Cc(r) => r,
            other => panic!("expected a CC result, got {:?}", other.kind()),
        }
    }

    /// Unwrap a PageRank result; panics on a different kind.
    pub fn into_pagerank(self) -> Run<PageRankOutput> {
        match self {
            QueryResult::PageRank(r) => r,
            other => panic!("expected a PageRank result, got {:?}", other.kind()),
        }
    }
}

/// Terminal state of an admitted query, redeemed once via
/// [`Server::take`](crate::Server::take).
///
/// The full lifecycle is: `submitted → pending → {served | deadline
/// missed | deadline cancelled}`, or `pending → cancelled` via an
/// explicit [`Server::cancel`](crate::Server::cancel) (which frees the
/// queue slot immediately and stores no outcome).
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The query ran and completed within its deadline (or had none).
    Served {
        /// The program output and run measurements.
        result: QueryResult,
        /// Simulated server-clock time at completion, ns.
        completed_ns: u64,
    },
    /// The query ran but completed after its deadline had passed.
    DeadlineMissed {
        /// The (still correct) program output and run measurements.
        result: QueryResult,
        /// Simulated server-clock time at completion, ns.
        completed_ns: u64,
        /// The absolute deadline it missed, ns on the server clock.
        deadline_ns: u64,
    },
    /// The query's deadline expired while it was still queued; it never
    /// ran and has no result.
    DeadlineCancelled {
        /// The absolute deadline that expired, ns on the server clock.
        deadline_ns: u64,
    },
}

impl QueryOutcome {
    /// Whether the query completed within its contract.
    pub fn is_served(&self) -> bool {
        matches!(self, QueryOutcome::Served { .. })
    }

    /// The result, if the query executed (served or late); `None` for a
    /// deadline-cancelled query.
    pub fn result(&self) -> Option<&QueryResult> {
        match self {
            QueryOutcome::Served { result, .. } | QueryOutcome::DeadlineMissed { result, .. } => {
                Some(result)
            }
            QueryOutcome::DeadlineCancelled { .. } => None,
        }
    }

    /// Consume into the result, if the query executed.
    pub fn into_result(self) -> Option<QueryResult> {
        match self {
            QueryOutcome::Served { result, .. } | QueryOutcome::DeadlineMissed { result, .. } => {
                Some(result)
            }
            QueryOutcome::DeadlineCancelled { .. } => None,
        }
    }

    /// Simulated completion time, ns; `None` if the query never ran.
    pub fn completed_ns(&self) -> Option<u64> {
        match self {
            QueryOutcome::Served { completed_ns, .. }
            | QueryOutcome::DeadlineMissed { completed_ns, .. } => Some(*completed_ns),
            QueryOutcome::DeadlineCancelled { .. } => None,
        }
    }

    /// The executed run's measurements; panics if the query was
    /// deadline-cancelled before running.
    pub fn stats(&self) -> &emogi_runtime::RunStats {
        self.result()
            .expect("deadline-cancelled query has no run stats")
            .stats()
    }

    /// Unwrap an executed BFS run; panics on a different kind or a
    /// deadline-cancelled query.
    pub fn into_bfs(self) -> Run<BfsOutput> {
        self.into_result()
            .expect("deadline-cancelled query has no result")
            .into_bfs()
    }

    /// Unwrap an executed SSSP run; panics on a different kind or a
    /// deadline-cancelled query.
    pub fn into_sssp(self) -> Run<SsspOutput> {
        self.into_result()
            .expect("deadline-cancelled query has no result")
            .into_sssp()
    }

    /// Unwrap an executed connected-components run; panics on a
    /// different kind or a deadline-cancelled query.
    pub fn into_cc(self) -> Run<CcOutput> {
        self.into_result()
            .expect("deadline-cancelled query has no result")
            .into_cc()
    }

    /// Unwrap an executed PageRank run; panics on a different kind or a
    /// deadline-cancelled query.
    pub fn into_pagerank(self) -> Run<PageRankOutput> {
        self.into_result()
            .expect("deadline-cancelled query has no result")
            .into_pagerank()
    }
}

/// Why the server refused a submission (admission control).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Outstanding queries (pending + unredeemed results) are at the
    /// configured capacity; retry after
    /// [`run_pending`](crate::Server::run_pending) **and** redeeming
    /// finished queries with [`take`](crate::Server::take).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The query's source vertex is not in the graph.
    SourceOutOfRange {
        /// The offending source.
        src: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// An SSSP query's weight array does not have one weight per edge.
    WeightCountMismatch {
        /// Weights provided.
        got: usize,
        /// Edges in the graph.
        want: usize,
    },
    /// The cost model's work estimate for the query exceeds its
    /// deadline budget: it would be admitted only to miss. Raise the
    /// budget or drop the deadline.
    OverBudget {
        /// Estimated completion time, simulated ns.
        estimated_ns: u64,
        /// The query's budget (its own deadline, or the server-wide
        /// default), simulated ns.
        budget_ns: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "outstanding queries at capacity ({capacity})")
            }
            SubmitError::SourceOutOfRange { src, num_vertices } => {
                write!(
                    f,
                    "source {src} out of range (graph has {num_vertices} vertices)"
                )
            }
            SubmitError::WeightCountMismatch { got, want } => {
                write!(f, "got {got} weights for {want} edges")
            }
            SubmitError::OverBudget {
                estimated_ns,
                budget_ns,
            } => {
                write!(
                    f,
                    "estimated {estimated_ns} ns exceeds deadline budget {budget_ns} ns"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Shared structural admission control for every server front end:
/// bound the outstanding queries (pending **plus** unredeemed results —
/// `outstanding` is that total *before* this query), check the source
/// range, and require one weight per edge for SSSP. Deadline-budget
/// admission is layered on top by [`Server::submit`](crate::Server::submit).
pub(crate) fn admit(
    graph: &emogi_graph::CsrGraph,
    outstanding: usize,
    capacity: usize,
    query: &Query,
) -> Result<(), SubmitError> {
    if outstanding >= capacity {
        return Err(SubmitError::QueueFull { capacity });
    }
    let nv = graph.num_vertices();
    if let Some(src) = query.src() {
        if src as usize >= nv {
            return Err(SubmitError::SourceOutOfRange {
                src,
                num_vertices: nv,
            });
        }
    }
    if let QuerySpec::Sssp { weights, .. } = &query.spec {
        let want = graph.num_edges();
        if weights.len() != want {
            return Err(SubmitError::WeightCountMismatch {
                got: weights.len(),
                want,
            });
        }
    }
    Ok(())
}
