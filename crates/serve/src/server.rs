//! The query server: admission control, SLA scheduling, batched
//! execution, and the query lifecycle (serve / cancel / deadline).

use crate::backend::ServeBackend;
use crate::query::{self, Query, QueryId, QueryOutcome, SubmitError};
use crate::scheduler::{plan_batches, Pending, SchedPolicy};
use emogi_core::sharded::ShardedEngine;
use emogi_core::Engine;
use emogi_graph::analysis::{CostEstimate, CostModel};
use std::collections::BTreeMap;

/// Fixed per-iteration overhead the cost model charges on top of
/// transfer time: kernel launch plus the frontier/vertex scan.
const EST_ITERATION_OVERHEAD_NS: u64 = 2_000;

/// How a [`Server`] admits, orders and batches queries.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queries per batch; clamped to
    /// `[1, `[`MAX_BATCH_QUERIES`](emogi_core::MAX_BATCH_QUERIES)`]` by
    /// the shared constructor. A batch of one runs exactly like a solo
    /// [`Engine::run`](emogi_core::Engine) call.
    pub max_batch: usize,
    /// Admission control: *outstanding* queries — pending plus finished
    ///-but-unredeemed — beyond this are rejected with
    /// [`SubmitError::QueueFull`] until the queue drains **and**
    /// results are [`take`](Server::take)n. Counting unredeemed results
    /// keeps a submit-heavy client that never redeems from growing the
    /// results map without bound.
    pub queue_capacity: usize,
    /// How the pending queue is ordered; [`SchedPolicy::Edf`] by
    /// default (identical to FIFO while every query carries the
    /// default QoS).
    pub policy: SchedPolicy,
    /// Server-wide completion budget applied to queries that carry no
    /// deadline of their own, simulated ns from admission; `None` (the
    /// default) leaves undated queries unbounded.
    pub query_budget_ns: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            queue_capacity: 1024,
            policy: SchedPolicy::Edf,
            query_budget_ns: None,
        }
    }
}

impl ServerConfig {
    /// The shared normalization every front end's constructor applies —
    /// one code path, so the single-device and sharded servers cannot
    /// drift.
    fn normalized(self) -> Self {
        Self {
            max_batch: self.max_batch.clamp(1, emogi_core::MAX_BATCH_QUERIES),
            ..self
        }
    }
}

/// Cumulative serving counters, kept since server construction. Every
/// admitted query ends in exactly one of [`served`](Self::served),
/// [`deadline_missed`](Self::deadline_missed),
/// [`deadline_cancelled`](Self::deadline_cancelled) or
/// [`cancelled`](Self::cancelled).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Queries accepted by [`Server::submit`].
    pub submitted: u64,
    /// Submissions refused by admission control (including
    /// [`SubmitError::OverBudget`]).
    pub rejected: u64,
    /// Queries executed to completion within their contract (on time,
    /// or with no deadline).
    pub served: u64,
    /// Queries that executed but completed past their deadline.
    pub deadline_missed: u64,
    /// Queries whose deadline expired while still queued; never ran.
    pub deadline_cancelled: u64,
    /// Queries revoked by [`Server::cancel`] while still pending.
    pub cancelled: u64,
    /// Deadline-carrying queries that completed on time (the
    /// numerator of a deadline-hit rate whose denominator is
    /// `deadline_met + deadline_missed + deadline_cancelled`).
    pub deadline_met: u64,
    /// Batches executed (a solo query still counts as one batch).
    pub batches: u64,
    /// Queries that shared their batch with at least one other query.
    pub batched_queries: u64,
    /// Simulated time spent executing batches, ns.
    pub busy_ns: u64,
    /// Host→GPU bytes moved while serving (batch-level totals, each
    /// shared fetch counted once).
    pub host_bytes: u64,
}

impl ServerStats {
    /// Serving throughput over the simulated busy time: executed
    /// queries (served + late) per second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            (self.served + self.deadline_missed) as f64 / (self.busy_ns as f64 * 1e-9)
        }
    }

    /// Fraction of deadline-carrying, uncancelled queries that
    /// completed on time; 1.0 when no query carried a deadline.
    pub fn deadline_hit_rate(&self) -> f64 {
        let with_deadline = self.deadline_met + self.deadline_missed + self.deadline_cancelled;
        if with_deadline == 0 {
            1.0
        } else {
            self.deadline_met as f64 / with_deadline as f64
        }
    }
}

/// An SLA-aware concurrent-query front end over one execution backend.
///
/// One implementation serves both shipped backends —
/// [`QueryServer`] batches frontier-driven queries on a single
/// [`Engine`] (overlapping frontiers share PCIe cache lines), while
/// [`ShardedServer`] runs every query sharded across a device group —
/// so admission, QoS scheduling, cancellation, deadlines and
/// accounting cannot drift between the two paths.
///
/// **Lifecycle.** [`submit`](Self::submit) validates the query
/// (structure, capacity, and — when it carries a deadline — the cost
/// model's work estimate) and queues it.
/// [`run_pending`](Self::run_pending) plans the whole queue with the
/// deterministic EDF-within-priority scheduler
/// ([`plan_batches`]), expires entries
/// whose deadline already passed on the simulated clock, executes each
/// batch, and records one terminal [`QueryOutcome`] per executed or
/// expired query. [`cancel`](Self::cancel) revokes a still-pending
/// query and frees its slot immediately. [`take`](Self::take) redeems
/// an outcome exactly once.
///
/// **Determinism.** The server clock is simulated time accumulated from
/// batch execution; deadlines are absolute points on that clock fixed
/// at admission. Scheduling, expiry and outcomes are pure functions of
/// the submitted workload — no wall clock, no randomness (enforced by
/// `emogi-lint`'s `ambient-nondet` rule).
///
/// ```
/// use emogi_core::{Engine, EngineConfig};
/// use emogi_graph::{algo, generators};
/// use emogi_serve::{Query, QueryServer, ServerConfig};
///
/// let graph = generators::uniform_random(1_000, 8, 7);
/// let engine = Engine::load(EngineConfig::emogi_v100(), &graph);
/// let mut server = QueryServer::new(ServerConfig::default(), engine);
///
/// let a = server.submit(Query::bfs(0)).unwrap();
/// let b = server.submit(Query::bfs(42)).unwrap();
/// assert_eq!(server.run_pending(), 2);
///
/// let run = server.take(a).unwrap().into_bfs();
/// assert_eq!(run.levels, algo::bfs_levels(&graph, 0));
/// assert!(server.take(b).is_some());
/// assert_eq!(server.stats().batches, 1, "both queries shared one batch");
/// ```
pub struct Server<B: ServeBackend> {
    backend: B,
    cfg: ServerConfig,
    cost: CostModel,
    next_id: u64,
    pending: Vec<Pending>,
    outcomes: BTreeMap<QueryId, QueryOutcome>,
    stats: ServerStats,
    clock_ns: u64,
}

/// The single-device batched front end: a [`Server`] over an
/// [`Engine`]. Frontier-driven batches run as one
/// [`Engine::run_batch`](emogi_core::Engine::run_batch) call; results
/// are bit-identical — outputs and iteration counts — to running the
/// same queries one at a time.
///
/// Pipelined execution is configured on the engine, not the server:
/// wrap an engine loaded with
/// [`EngineConfig::pipelined`](emogi_core::EngineConfig::pipelined) (or
/// the `pipelined_v100` preset) and every batch the server executes
/// overlaps its DMA staging with kernel compute. Serving results stay
/// bit-identical to a synchronous server's; only the wall clock and the
/// [`prefetch`](emogi_runtime::RunStats::prefetch) counters differ.
pub type QueryServer<'g> = Server<Engine<'g>>;

/// The device-group front end: a [`Server`] over a
/// [`ShardedEngine`]. Each query
/// runs solo but sharded across every device — the latency-oriented
/// counterpart to the throughput-oriented batched path, behind the
/// same admission, QoS and lifecycle machinery.
pub type ShardedServer<'g> = Server<ShardedEngine<'g>>;

impl<B: ServeBackend> Server<B> {
    /// Wrap an already-loaded backend. The backend's placement is the
    /// shared resource every accepted query runs against; the config
    /// passes through one shared normalization (`max_batch` clamped to
    /// `[1, MAX_BATCH_QUERIES]`) for every front end.
    pub fn new(cfg: ServerConfig, backend: B) -> Self {
        let cost = CostModel::new(backend.graph());
        Self {
            backend,
            cfg: cfg.normalized(),
            cost,
            next_id: 0,
            pending: Vec::new(),
            outcomes: BTreeMap::new(),
            stats: ServerStats::default(),
            clock_ns: 0,
        }
    }

    /// Submit a query. Admission control may refuse it: outstanding
    /// queries (pending + unredeemed) are bounded, sources must be in
    /// range, SSSP weights must have one entry per edge, and a
    /// deadline-carrying query whose cost-model estimate already
    /// exceeds its budget is rejected [`SubmitError::OverBudget`]
    /// rather than admitted to certainly miss. On success the returned
    /// handle redeems the outcome via [`take`](Self::take) after a
    /// [`run_pending`](Self::run_pending).
    pub fn submit(&mut self, query: Query) -> Result<QueryId, SubmitError> {
        match self.admit(&query) {
            Ok(deadline_ns) => {
                let id = QueryId(self.next_id);
                self.next_id += 1;
                self.pending.push(Pending {
                    id,
                    query,
                    deadline_ns,
                });
                self.stats.submitted += 1;
                Ok(id)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Full admission: structural checks, then the deadline budget
    /// check. Returns the query's *absolute* deadline on the server
    /// clock, if any.
    fn admit(&self, query: &Query) -> Result<Option<u64>, SubmitError> {
        query::admit(
            self.backend.graph(),
            self.outstanding(),
            self.cfg.queue_capacity,
            query,
        )?;
        let budget = query.qos.deadline_ns.or(self.cfg.query_budget_ns);
        match budget {
            None => Ok(None),
            Some(budget_ns) => {
                let estimated_ns = self.estimate_ns(query);
                if estimated_ns > budget_ns {
                    return Err(SubmitError::OverBudget {
                        estimated_ns,
                        budget_ns,
                    });
                }
                Ok(Some(self.clock_ns.saturating_add(budget_ns)))
            }
        }
    }

    /// The cost model's completion estimate for `query` if it ran
    /// alone, simulated ns: `iterations × frontier-bytes` from the
    /// graph's degree distribution and reachable-set heuristic,
    /// converted to time over the backend's link bandwidth. Useful for
    /// picking deadline budgets that admission will accept.
    pub fn estimate_ns(&self, query: &Query) -> u64 {
        let est = match &query.spec {
            crate::query::QuerySpec::Bfs { src } => self
                .cost
                .frontier_cost(self.backend.graph().degree(*src), 8),
            crate::query::QuerySpec::Sssp { src, .. } => {
                // Weighted relaxation converges in more rounds than BFS
                // and streams the 4-byte weight beside each 8-byte edge
                // element.
                let base = self
                    .cost
                    .frontier_cost(self.backend.graph().degree(*src), 12);
                CostEstimate {
                    iterations: base.iterations.saturating_mul(2),
                    bytes: base.bytes.saturating_mul(2),
                }
            }
            crate::query::QuerySpec::Cc => self.cost.full_sweep_cost(self.cost.est_depth(), 8),
            crate::query::QuerySpec::PageRank { iterations, .. } => {
                self.cost.full_sweep_cost(u64::from(*iterations), 8)
            }
        };
        est.ns(self.backend.link_bytes_per_ns(), EST_ITERATION_OVERHEAD_NS)
    }

    /// Queries waiting for execution.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Queries counted against [`queue_capacity`](ServerConfig::queue_capacity):
    /// pending plus finished-but-unredeemed.
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.outcomes.len()
    }

    /// The server's simulated clock: time accumulated executing
    /// batches, ns. Deadlines are absolute points on this clock.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Revoke a still-pending query, freeing its queue slot
    /// immediately. Returns `true` if the query was pending (it will
    /// never run and stores no outcome); `false` if the handle is
    /// unknown, already executed, or already cancelled.
    pub fn cancel(&mut self, id: QueryId) -> bool {
        match self.pending.iter().position(|p| p.id == id) {
            Some(i) => {
                self.pending.remove(i);
                self.stats.cancelled += 1;
                true
            }
            None => false,
        }
    }

    /// Drain the pending queue: plan it with the configured scheduler,
    /// expire queries whose deadline already passed on the simulated
    /// clock, and execute each planned batch. Returns the number of
    /// queries executed (on time or late); deadline-cancelled queries
    /// are not executed and not counted.
    pub fn run_pending(&mut self) -> usize {
        let plan = plan_batches(
            std::mem::take(&mut self.pending),
            self.cfg.policy,
            self.cfg.max_batch,
        );
        let mut executed = 0;
        for batch in plan {
            let mut live = Vec::with_capacity(batch.entries.len());
            for p in batch.entries {
                match p.deadline_ns {
                    Some(d) if d < self.clock_ns => {
                        self.outcomes
                            .insert(p.id, QueryOutcome::DeadlineCancelled { deadline_ns: d });
                        self.stats.deadline_cancelled += 1;
                    }
                    _ => live.push(p),
                }
            }
            if live.is_empty() {
                continue;
            }
            let exec = self.backend.execute(batch.kind, &live);
            debug_assert_eq!(exec.results.len(), live.len(), "one result per entry");
            self.clock_ns += exec.elapsed_ns;
            self.stats.batches += 1;
            self.stats.busy_ns += exec.elapsed_ns;
            self.stats.host_bytes += exec.host_bytes;
            if exec.shared && live.len() > 1 {
                self.stats.batched_queries += live.len() as u64;
            }
            let completed_ns = self.clock_ns;
            for (p, result) in live.into_iter().zip(exec.results) {
                executed += 1;
                match p.deadline_ns {
                    Some(deadline_ns) if completed_ns > deadline_ns => {
                        self.outcomes.insert(
                            p.id,
                            QueryOutcome::DeadlineMissed {
                                result,
                                completed_ns,
                                deadline_ns,
                            },
                        );
                        self.stats.deadline_missed += 1;
                    }
                    deadline => {
                        self.outcomes.insert(
                            p.id,
                            QueryOutcome::Served {
                                result,
                                completed_ns,
                            },
                        );
                        self.stats.served += 1;
                        if deadline.is_some() {
                            self.stats.deadline_met += 1;
                        }
                    }
                }
            }
        }
        executed
    }

    /// Redeem a finished query's outcome; `None` while it is still
    /// pending (or if the handle was already taken or cancelled).
    pub fn take(&mut self, id: QueryId) -> Option<QueryOutcome> {
        self.outcomes.remove(&id)
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The wrapped backend (e.g. for reading machine counters).
    pub fn engine(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the wrapped backend (e.g. for running solo
    /// programs against the same placement).
    pub fn engine_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Priority, QueryResult};
    use emogi_core::EngineConfig;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};
    use std::sync::Arc;

    fn server(g: &emogi_graph::CsrGraph, cfg: ServerConfig) -> QueryServer<'_> {
        QueryServer::new(cfg, Engine::load(EngineConfig::emogi_v100(), g))
    }

    #[test]
    fn serves_a_mixed_workload_correctly() {
        let g = generators::uniform_random(500, 6, 11);
        let w = Arc::new(generate_weights(g.num_edges(), 11));
        let mut s = server(&g, ServerConfig::default());
        let b0 = s.submit(Query::bfs(0)).unwrap();
        let s0 = s.submit(Query::sssp(3, Arc::clone(&w))).unwrap();
        let b1 = s.submit(Query::bfs(9)).unwrap();
        assert_eq!(s.pending(), 3);
        assert_eq!(s.run_pending(), 3);
        assert_eq!(s.pending(), 0);

        let r = s.take(b0).unwrap().into_bfs();
        assert_eq!(r.levels, algo::bfs_levels(&g, 0));
        let r = s.take(b1).unwrap().into_bfs();
        assert_eq!(r.levels, algo::bfs_levels(&g, 9));
        let r = s.take(s0).unwrap().into_sssp();
        let want = algo::sssp_distances(&g, &w, 3);
        for (v, &expect) in want.iter().enumerate() {
            let got = if r.dist[v] == u32::MAX {
                algo::UNREACHABLE
            } else {
                u64::from(r.dist[v])
            };
            assert_eq!(got, expect, "vertex {v}");
        }

        // Two batches: {bfs 0, bfs 9} and {sssp 3}.
        assert_eq!(s.stats().batches, 2);
        assert_eq!(s.stats().served, 3);
        assert_eq!(s.stats().batched_queries, 2);
        assert!(s.stats().queries_per_sec() > 0.0);
    }

    #[test]
    fn admission_rejects_bad_queries_and_full_queues() {
        let g = generators::uniform_random(100, 4, 1);
        let mut s = server(
            &g,
            ServerConfig {
                queue_capacity: 2,
                ..ServerConfig::default()
            },
        );
        assert_eq!(
            s.submit(Query::bfs(1_000)),
            Err(SubmitError::SourceOutOfRange {
                src: 1_000,
                num_vertices: 100
            })
        );
        let short = Arc::new(vec![1u32; 3]);
        assert!(matches!(
            s.submit(Query::sssp(0, short)),
            Err(SubmitError::WeightCountMismatch { got: 3, .. })
        ));
        let a = s.submit(Query::bfs(0)).unwrap();
        let b = s.submit(Query::bfs(1)).unwrap();
        assert_eq!(
            s.submit(Query::bfs(2)),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(s.stats().rejected, 3);
        assert_eq!(s.run_pending(), 2);
        // Executed but unredeemed results still hold their slots.
        assert_eq!(
            s.submit(Query::bfs(2)),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        s.take(a).unwrap();
        s.take(b).unwrap();
        // Redeemed: admission opens again.
        s.submit(Query::bfs(2)).unwrap();
    }

    #[test]
    fn unredeemed_results_count_against_capacity() {
        // Regression test for the unbounded results-map leak: a
        // submit-heavy client that never takes its results must hit
        // admission control instead of growing the results map forever.
        let g = generators::uniform_random(100, 4, 5);
        let cap = 4;
        let mut s = server(
            &g,
            ServerConfig {
                queue_capacity: cap,
                ..ServerConfig::default()
            },
        );
        let mut admitted = 0usize;
        for round in 0..10 {
            loop {
                match s.submit(Query::bfs((admitted % 100) as u32)) {
                    Ok(_) => admitted += 1,
                    Err(SubmitError::QueueFull { capacity }) => {
                        assert_eq!(capacity, cap);
                        break;
                    }
                    Err(e) => panic!("unexpected rejection: {e}"),
                }
            }
            s.run_pending();
            assert!(
                s.outstanding() <= cap,
                "round {round}: outstanding {} exceeds capacity {cap}",
                s.outstanding()
            );
        }
        assert_eq!(
            admitted, cap,
            "without redeeming, exactly one capacity's worth is ever admitted"
        );
    }

    #[test]
    fn results_are_taken_once_and_ids_are_unique() {
        let g = generators::uniform_random(200, 4, 2);
        let mut s = server(&g, ServerConfig::default());
        let a = s.submit(Query::bfs(0)).unwrap();
        let b = s.submit(Query::bfs(0)).unwrap();
        assert_ne!(a, b, "identical queries still get distinct handles");
        s.run_pending();
        assert!(s.take(a).is_some());
        assert!(s.take(a).is_none(), "a result is redeemed once");
        assert!(s.take(b).is_some());
    }

    #[test]
    fn batched_stats_are_flagged_shared_and_solo_ones_are_not() {
        let g = generators::uniform_random(300, 6, 3);
        let mut s = server(&g, ServerConfig::default());
        let a = s.submit(Query::bfs(0)).unwrap();
        let b = s.submit(Query::bfs(7)).unwrap();
        s.run_pending();
        assert!(s.take(a).unwrap().stats().shared_fetch);
        assert!(s.take(b).unwrap().stats().shared_fetch);
        let c = s.submit(Query::bfs(9)).unwrap();
        s.run_pending();
        assert!(
            !s.take(c).unwrap().stats().shared_fetch,
            "a batch of one shares its fetches with nobody"
        );
    }

    #[test]
    fn a_pipelined_engine_serves_bit_identically_to_a_synchronous_one() {
        let g = generators::uniform_random(400, 8, 13);
        let mut results: Vec<Vec<QueryResult>> = Vec::new();
        for cfg in [EngineConfig::hybrid_v100(), EngineConfig::pipelined_v100()] {
            let mut s = QueryServer::new(ServerConfig::default(), Engine::load(cfg, &g));
            let ids: Vec<_> = [0u32, 7, 42, 301]
                .iter()
                .map(|&v| s.submit(Query::bfs(v)).unwrap())
                .collect();
            assert_eq!(s.run_pending(), 4);
            results.push(
                ids.into_iter()
                    .map(|id| s.take(id).unwrap().into_result().unwrap())
                    .collect(),
            );
        }
        let (sync, pipe) = (&results[0], &results[1]);
        for (a, b) in sync.iter().zip(pipe) {
            assert_eq!(a.stats().kernel_launches, b.stats().kernel_launches);
            assert_eq!(a.stats().host_bytes, b.stats().host_bytes);
        }
        for (a, b) in sync.iter().zip(pipe.iter().cloned()) {
            if let QueryResult::Bfs(want) = a {
                assert_eq!(want.levels, b.into_bfs().levels);
            }
        }
    }

    #[test]
    fn max_batch_splits_a_burst_into_several_batches() {
        let g = generators::uniform_random(300, 6, 4);
        let mut s = server(
            &g,
            ServerConfig {
                max_batch: 3,
                ..ServerConfig::default()
            },
        );
        let ids: Vec<_> = (0..7)
            .map(|i| s.submit(Query::bfs(i as u32)).unwrap())
            .collect();
        assert_eq!(s.run_pending(), 7);
        assert_eq!(s.stats().batches, 3, "7 queries at cap 3 → 3+3+1");
        assert_eq!(s.stats().batched_queries, 6);
        for id in ids {
            assert!(s.take(id).is_some());
        }
    }

    #[test]
    fn full_sweep_queries_serve_solo_through_the_same_lifecycle() {
        let g = generators::uniform_random(300, 6, 9);
        let mut s = server(&g, ServerConfig::default());
        let cc = s.submit(Query::cc()).unwrap();
        let pr = s.submit(Query::pagerank(0.85, 5)).unwrap();
        let bfs = s.submit(Query::bfs(0)).unwrap();
        assert_eq!(s.run_pending(), 3);
        assert_eq!(
            s.stats().batches,
            3,
            "full sweeps never share, BFS alone in its batch"
        );
        assert_eq!(s.stats().batched_queries, 0);

        let mut solo = Engine::load(EngineConfig::emogi_v100(), &g);
        let got = s.take(cc).unwrap().into_cc();
        assert_eq!(got.output.comp, solo.cc().output.comp);
        let got = s.take(pr).unwrap().into_pagerank();
        let want = solo.pagerank(0.85, 5);
        assert_eq!(got.output.ranks, want.output.ranks);
        assert_eq!(got.output.iterations, want.output.iterations);
        assert!(s.take(bfs).unwrap().is_served());
    }

    #[test]
    fn cancel_frees_the_slot_and_cancelled_queries_never_run() {
        let g = generators::uniform_random(200, 4, 3);
        let mut s = server(
            &g,
            ServerConfig {
                queue_capacity: 2,
                ..ServerConfig::default()
            },
        );
        let a = s.submit(Query::bfs(0)).unwrap();
        let b = s.submit(Query::bfs(1)).unwrap();
        assert!(matches!(
            s.submit(Query::bfs(2)),
            Err(SubmitError::QueueFull { .. })
        ));
        assert!(s.cancel(a), "pending query cancels");
        let c = s.submit(Query::bfs(2)).expect("cancel freed the slot");
        assert!(!s.cancel(a), "a handle cancels once");
        assert_eq!(s.run_pending(), 2, "cancelled query never executes");
        assert!(s.take(a).is_none(), "no outcome for a cancelled query");
        assert!(s.take(b).is_some());
        assert!(s.take(c).is_some());
        assert!(!s.cancel(b), "executed queries cannot be cancelled");
        assert_eq!(s.stats().cancelled, 1);
    }

    #[test]
    fn deadlines_mark_late_queries_instead_of_serving_them_silently() {
        let g = generators::uniform_random(400, 8, 7);
        let mut s = server(&g, ServerConfig::default());
        // A deadline one bulk sweep blows: admit a BFS whose budget
        // covers most — but not all — of the PageRank it is forced to
        // wait behind under FIFO order, so it executes and completes
        // late (rather than expiring unexecuted).
        let mut fifo = server(
            &g,
            ServerConfig {
                policy: SchedPolicy::Fifo,
                ..ServerConfig::default()
            },
        );
        let mut solo = Engine::load(EngineConfig::emogi_v100(), &g);
        let pr_ns = solo.pagerank(0.85, 50).stats.elapsed_ns;
        let bfs_ns = solo.bfs(0).stats.elapsed_ns;
        let budget = pr_ns + bfs_ns / 2;
        let probe = Query::bfs(0);
        let pr = fifo.submit(Query::pagerank(0.85, 50)).unwrap();
        let late = fifo.submit(Query::bfs(0).with_deadline_ns(budget)).unwrap();
        assert_eq!(fifo.run_pending(), 2);
        let outcome = fifo.take(late).unwrap();
        assert!(
            matches!(outcome, QueryOutcome::DeadlineMissed { .. }),
            "FIFO runs the sweep first, the dated BFS completes late: {outcome:?}"
        );
        assert_eq!(fifo.stats().deadline_missed, 1);
        assert!(fifo.take(pr).unwrap().is_served());

        // The same workload under EDF: the dated query runs first and
        // meets its deadline.
        let own = s.estimate_ns(&probe);
        let pr = s.submit(Query::pagerank(0.85, 50)).unwrap();
        let tight = s
            .submit(Query::bfs(0).with_deadline_ns(own.saturating_mul(2)))
            .unwrap();
        assert_eq!(s.run_pending(), 2);
        assert!(s.take(tight).unwrap().is_served());
        assert!(s.take(pr).unwrap().is_served());
        assert_eq!(s.stats().deadline_met, 1);
        assert!((s.stats().deadline_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expired_queries_are_deadline_cancelled_not_executed() {
        let g = generators::uniform_random(300, 6, 5);
        // FIFO so the dated query is scheduled behind the sweeps and
        // its deadline expires before its batch starts.
        let mut s = server(
            &g,
            ServerConfig {
                policy: SchedPolicy::Fifo,
                max_batch: 1,
                ..ServerConfig::default()
            },
        );
        let own = s.estimate_ns(&Query::bfs(0));
        let a = s.submit(Query::pagerank(0.85, 60)).unwrap();
        let b = s.submit(Query::pagerank(0.85, 60)).unwrap();
        let dated = s
            .submit(Query::bfs(0).with_deadline_ns(own.saturating_mul(2)))
            .unwrap();
        // Two separate drains: the first runs the sweeps past the
        // deadline, the second finds the dated query expired.
        assert_eq!(s.run_pending(), 3 - 1, "dated query expired unexecuted");
        let outcome = s.take(dated).unwrap();
        assert!(
            matches!(outcome, QueryOutcome::DeadlineCancelled { .. }),
            "{outcome:?}"
        );
        assert!(outcome.result().is_none());
        assert_eq!(s.stats().deadline_cancelled, 1);
        assert!(s.take(a).unwrap().is_served());
        assert!(s.take(b).unwrap().is_served());
    }

    #[test]
    fn over_budget_submissions_are_rejected_up_front() {
        let g = generators::uniform_random(400, 8, 7);
        let mut s = server(&g, ServerConfig::default());
        let err = s.submit(Query::bfs(0).with_deadline_ns(1)).unwrap_err();
        assert!(
            matches!(err, SubmitError::OverBudget { budget_ns: 1, .. }),
            "{err:?}"
        );
        assert_eq!(s.stats().rejected, 1);
        // The server-wide budget applies to undated queries too.
        let mut tight = server(
            &g,
            ServerConfig {
                query_budget_ns: Some(1),
                ..ServerConfig::default()
            },
        );
        assert!(matches!(
            tight.submit(Query::bfs(0)),
            Err(SubmitError::OverBudget { .. })
        ));
        // A generous estimate-derived budget is accepted.
        let q = Query::bfs(0);
        let est = s.estimate_ns(&q);
        s.submit(q.with_deadline_ns(est)).unwrap();
    }

    #[test]
    fn latency_class_preempts_bulk_queries_of_every_kind() {
        let g = generators::uniform_random(300, 6, 2);
        let mut s = server(&g, ServerConfig::default());
        let bulk = s.submit(Query::bfs(0)).unwrap();
        let urgent = s
            .submit(Query::bfs(5).with_priority(Priority::Latency))
            .unwrap();
        s.run_pending();
        // Same kind: they share one batch, anchored by the latency
        // query (observable through completion times being equal and
        // the batch count).
        assert_eq!(s.stats().batches, 1);
        let (u, b) = (s.take(urgent).unwrap(), s.take(bulk).unwrap());
        assert_eq!(u.completed_ns(), b.completed_ns());
    }
}
