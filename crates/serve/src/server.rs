//! The query server: admission control, scheduling, batched execution.

use crate::query::{Query, QueryId, QueryKind, QueryResult, SubmitError};
use crate::scheduler::{next_batch, QueryBatch};
use emogi_core::{BfsProgram, Engine, SsspProgram};
use std::collections::{BTreeMap, VecDeque};

/// How a [`QueryServer`] admits and batches queries.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queries per [`QueryBatch`]; clamped to
    /// [`MAX_BATCH_QUERIES`](emogi_core::MAX_BATCH_QUERIES). A batch of
    /// one runs exactly like a solo [`Engine::run`](emogi_core::Engine)
    /// call.
    pub max_batch: usize,
    /// Admission control: pending queries beyond this are rejected with
    /// [`SubmitError::QueueFull`] until the queue drains.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            queue_capacity: 1024,
        }
    }
}

/// Cumulative serving counters, kept since server construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Queries accepted by [`QueryServer::submit`].
    pub submitted: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Queries executed to completion.
    pub served: u64,
    /// Batches executed (a solo query still counts as one batch).
    pub batches: u64,
    /// Queries that shared their batch with at least one other query.
    pub batched_queries: u64,
    /// Simulated time spent executing batches, ns.
    pub busy_ns: u64,
    /// Host→GPU bytes moved while serving (batch-level totals, each
    /// shared fetch counted once).
    pub host_bytes: u64,
}

impl ServerStats {
    /// Serving throughput over the simulated busy time, queries/second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.served as f64 / (self.busy_ns as f64 * 1e-9)
        }
    }
}

/// A concurrent-query front end over one place-once [`Engine`].
///
/// Submissions pass admission control (queue bound, source range, weight
/// arity) and queue FIFO; [`run_pending`](Self::run_pending) lets the
/// scheduler group compatible queries into batches and executes each
/// batch as one [`Engine::run_batch`] call, so overlapping frontiers
/// share PCIe cache lines. Results are redeemed by handle and are
/// bit-identical — outputs and iteration counts — to running the same
/// queries one at a time.
///
/// Pipelined execution is configured on the engine, not the server:
/// wrap an engine loaded with
/// [`EngineConfig::pipelined`](emogi_core::EngineConfig::pipelined) (or
/// the `pipelined_v100` preset) and every batch the server executes
/// overlaps its DMA staging with kernel compute. Serving results stay
/// bit-identical to a synchronous server's; only the wall clock and the
/// [`prefetch`](emogi_runtime::RunStats::prefetch) counters differ.
///
/// ```
/// use emogi_core::{Engine, EngineConfig};
/// use emogi_graph::{algo, generators};
/// use emogi_serve::{Query, QueryServer, ServerConfig};
///
/// let graph = generators::uniform_random(1_000, 8, 7);
/// let engine = Engine::load(EngineConfig::emogi_v100(), &graph);
/// let mut server = QueryServer::new(ServerConfig::default(), engine);
///
/// let a = server.submit(Query::bfs(0)).unwrap();
/// let b = server.submit(Query::bfs(42)).unwrap();
/// assert_eq!(server.run_pending(), 2);
///
/// let run = server.take(a).unwrap().into_bfs();
/// assert_eq!(run.levels, algo::bfs_levels(&graph, 0));
/// assert!(server.take(b).is_some());
/// assert_eq!(server.stats().batches, 1, "both queries shared one batch");
/// ```
pub struct QueryServer<'g> {
    engine: Engine<'g>,
    cfg: ServerConfig,
    next_id: u64,
    pending: VecDeque<(QueryId, Query)>,
    results: BTreeMap<QueryId, QueryResult>,
    stats: ServerStats,
}

impl<'g> QueryServer<'g> {
    /// Wrap an already-loaded engine. The engine's placement is the
    /// shared resource every accepted query runs against.
    pub fn new(cfg: ServerConfig, engine: Engine<'g>) -> Self {
        let cfg = ServerConfig {
            max_batch: cfg.max_batch.clamp(1, emogi_core::MAX_BATCH_QUERIES),
            ..cfg
        };
        Self {
            engine,
            cfg,
            next_id: 0,
            pending: VecDeque::new(),
            results: BTreeMap::new(),
            stats: ServerStats::default(),
        }
    }

    /// Submit a query. Admission control may refuse it: the pending
    /// queue is bounded, sources must be in range and SSSP weights must
    /// have one entry per edge. On success the returned handle redeems
    /// the result via [`take`](Self::take) after a
    /// [`run_pending`](Self::run_pending).
    pub fn submit(&mut self, query: Query) -> Result<QueryId, SubmitError> {
        let admitted = self.admit(&query);
        match admitted {
            Ok(()) => {
                let id = QueryId(self.next_id);
                self.next_id += 1;
                self.pending.push_back((id, query));
                self.stats.submitted += 1;
                Ok(id)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    fn admit(&self, query: &Query) -> Result<(), SubmitError> {
        crate::query::admit(
            self.engine.graph(),
            self.pending.len(),
            self.cfg.queue_capacity,
            query,
        )
    }

    /// Queries waiting for execution.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Drain the pending queue: schedule compatible queries into batches
    /// and execute each as one batched run. Returns the number of
    /// queries served.
    pub fn run_pending(&mut self) -> usize {
        let mut served = 0;
        while let Some(batch) = next_batch(&mut self.pending, self.cfg.max_batch) {
            served += batch.len();
            self.execute(batch);
        }
        served
    }

    fn execute(&mut self, batch: QueryBatch) {
        let graph = self.engine.graph();
        let n = batch.len();
        let batch_stats = match batch.kind {
            QueryKind::Bfs => {
                let programs: Vec<BfsProgram> = batch
                    .queries
                    .iter()
                    .map(|(_, q)| BfsProgram::new(graph, q.src()))
                    .collect();
                let out = self.engine.run_batch(programs);
                for ((id, _), run) in batch.queries.iter().zip(out.runs) {
                    self.results.insert(*id, QueryResult::Bfs(run));
                }
                out.stats
            }
            QueryKind::Sssp => {
                let programs: Vec<SsspProgram> = batch
                    .queries
                    .iter()
                    .map(|(_, q)| match q {
                        Query::Sssp { src, weights } => SsspProgram::new(graph, weights, *src),
                        Query::Bfs { .. } => unreachable!("scheduler groups by kind"),
                    })
                    .collect();
                let out = self.engine.run_batch(programs);
                for ((id, _), run) in batch.queries.iter().zip(out.runs) {
                    self.results.insert(*id, QueryResult::Sssp(run));
                }
                out.stats
            }
        };
        self.stats.served += n as u64;
        self.stats.batches += 1;
        if n > 1 {
            self.stats.batched_queries += n as u64;
        }
        self.stats.busy_ns += batch_stats.elapsed_ns;
        self.stats.host_bytes += batch_stats.host_bytes;
    }

    /// Redeem a finished query's result; `None` while it is still
    /// pending (or if the handle was already taken).
    pub fn take(&mut self, id: QueryId) -> Option<QueryResult> {
        self.results.remove(&id)
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The wrapped engine (e.g. for running solo full-sweep analytics
    /// against the same placement).
    pub fn engine_mut(&mut self) -> &mut Engine<'g> {
        &mut self.engine
    }

    /// Read access to the wrapped engine.
    pub fn engine(&self) -> &Engine<'g> {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_core::EngineConfig;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};
    use std::sync::Arc;

    fn server(g: &emogi_graph::CsrGraph, cfg: ServerConfig) -> QueryServer<'_> {
        QueryServer::new(cfg, Engine::load(EngineConfig::emogi_v100(), g))
    }

    #[test]
    fn serves_a_mixed_workload_correctly() {
        let g = generators::uniform_random(500, 6, 11);
        let w = Arc::new(generate_weights(g.num_edges(), 11));
        let mut s = server(&g, ServerConfig::default());
        let b0 = s.submit(Query::bfs(0)).unwrap();
        let s0 = s.submit(Query::sssp(3, Arc::clone(&w))).unwrap();
        let b1 = s.submit(Query::bfs(9)).unwrap();
        assert_eq!(s.pending(), 3);
        assert_eq!(s.run_pending(), 3);
        assert_eq!(s.pending(), 0);

        let r = s.take(b0).unwrap().into_bfs();
        assert_eq!(r.levels, algo::bfs_levels(&g, 0));
        let r = s.take(b1).unwrap().into_bfs();
        assert_eq!(r.levels, algo::bfs_levels(&g, 9));
        let r = s.take(s0).unwrap().into_sssp();
        let want = algo::sssp_distances(&g, &w, 3);
        for (v, &expect) in want.iter().enumerate() {
            let got = if r.dist[v] == u32::MAX {
                algo::UNREACHABLE
            } else {
                u64::from(r.dist[v])
            };
            assert_eq!(got, expect, "vertex {v}");
        }

        // Two batches: {bfs 0, bfs 9} and {sssp 3}.
        assert_eq!(s.stats().batches, 2);
        assert_eq!(s.stats().served, 3);
        assert_eq!(s.stats().batched_queries, 2);
        assert!(s.stats().queries_per_sec() > 0.0);
    }

    #[test]
    fn admission_rejects_bad_queries_and_full_queues() {
        let g = generators::uniform_random(100, 4, 1);
        let mut s = server(
            &g,
            ServerConfig {
                queue_capacity: 2,
                ..ServerConfig::default()
            },
        );
        assert_eq!(
            s.submit(Query::bfs(1_000)),
            Err(SubmitError::SourceOutOfRange {
                src: 1_000,
                num_vertices: 100
            })
        );
        let short = Arc::new(vec![1u32; 3]);
        assert!(matches!(
            s.submit(Query::sssp(0, short)),
            Err(SubmitError::WeightCountMismatch { got: 3, .. })
        ));
        s.submit(Query::bfs(0)).unwrap();
        s.submit(Query::bfs(1)).unwrap();
        assert_eq!(
            s.submit(Query::bfs(2)),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(s.stats().rejected, 3);
        assert_eq!(s.run_pending(), 2);
        // Queue drained: admission opens again.
        s.submit(Query::bfs(2)).unwrap();
    }

    #[test]
    fn results_are_taken_once_and_ids_are_unique() {
        let g = generators::uniform_random(200, 4, 2);
        let mut s = server(&g, ServerConfig::default());
        let a = s.submit(Query::bfs(0)).unwrap();
        let b = s.submit(Query::bfs(0)).unwrap();
        assert_ne!(a, b, "identical queries still get distinct handles");
        s.run_pending();
        assert!(s.take(a).is_some());
        assert!(s.take(a).is_none(), "a result is redeemed once");
        assert!(s.take(b).is_some());
    }

    #[test]
    fn batched_stats_are_flagged_shared_and_solo_ones_are_not() {
        let g = generators::uniform_random(300, 6, 3);
        let mut s = server(&g, ServerConfig::default());
        let a = s.submit(Query::bfs(0)).unwrap();
        let b = s.submit(Query::bfs(7)).unwrap();
        s.run_pending();
        assert!(s.take(a).unwrap().stats().shared_fetch);
        assert!(s.take(b).unwrap().stats().shared_fetch);
        let c = s.submit(Query::bfs(9)).unwrap();
        s.run_pending();
        assert!(
            !s.take(c).unwrap().stats().shared_fetch,
            "a batch of one shares its fetches with nobody"
        );
    }

    #[test]
    fn a_pipelined_engine_serves_bit_identically_to_a_synchronous_one() {
        let g = generators::uniform_random(400, 8, 13);
        let mut results: Vec<Vec<QueryResult>> = Vec::new();
        for cfg in [EngineConfig::hybrid_v100(), EngineConfig::pipelined_v100()] {
            let mut s = QueryServer::new(ServerConfig::default(), Engine::load(cfg, &g));
            let ids: Vec<_> = [0u32, 7, 42, 301]
                .iter()
                .map(|&v| s.submit(Query::bfs(v)).unwrap())
                .collect();
            assert_eq!(s.run_pending(), 4);
            results.push(ids.into_iter().map(|id| s.take(id).unwrap()).collect());
        }
        let (sync, pipe) = (&results[0], &results[1]);
        for (a, b) in sync.iter().zip(pipe) {
            assert_eq!(a.stats().kernel_launches, b.stats().kernel_launches);
            assert_eq!(a.stats().host_bytes, b.stats().host_bytes);
        }
        for (a, b) in sync.iter().zip(pipe.iter().cloned()) {
            if let QueryResult::Bfs(want) = a {
                assert_eq!(want.levels, b.into_bfs().levels);
            }
        }
    }

    #[test]
    fn max_batch_splits_a_burst_into_several_batches() {
        let g = generators::uniform_random(300, 6, 4);
        let mut s = server(
            &g,
            ServerConfig {
                max_batch: 3,
                ..ServerConfig::default()
            },
        );
        let ids: Vec<_> = (0..7)
            .map(|i| s.submit(Query::bfs(i as u32)).unwrap())
            .collect();
        assert_eq!(s.run_pending(), 7);
        assert_eq!(s.stats().batches, 3, "7 queries at cap 3 → 3+3+1");
        assert_eq!(s.stats().batched_queries, 6);
        for id in ids {
            assert!(s.take(id).is_some());
        }
    }
}
