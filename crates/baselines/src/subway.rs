//! Subway-style out-of-GPU-memory traversal (EuroSys 2020, the paper's
//! reference \[45\]).
//!
//! Subway never reads the edge list from the GPU. Each iteration it
//! (1) determines the active vertices, (2) *generates a subgraph* — the
//! active vertices' neighbour lists packed into a contiguous buffer —
//! (3) `cudaMemcpy`s the subgraph to device memory, and (4) runs the
//! iteration's kernel entirely out of device memory. The asynchronous
//! flavour overlaps the next iteration's subgraph generation with the
//! current kernel.
//!
//! Modelling note: the device-side kernel streams the subgraph at HBM
//! speed (~75× the interconnect), so its time is charged analytically
//! (`hbm.read_bulk`) rather than simulated warp by warp; at the paper's
//! measured bandwidths the kernel is a few percent of iteration time,
//! dominated by subgraph generation + transfer — which are fully
//! modelled. Matching the public implementation, Subway uses **4-byte**
//! edge elements and cannot run graphs with more than 2³² edges (§5.6);
//! the paper therefore re-evaluates EMOGI at 4 bytes when comparing.

use emogi_core::bfs::BfsOutput;
use emogi_core::cc::CcOutput;
use emogi_core::sssp::SsspOutput;
use emogi_core::sssp::INF;
use emogi_core::{BfsRun, CcRun, SsspRun};
use emogi_graph::{CsrGraph, VertexId, UNVISITED};
use emogi_runtime::machine::MachineConfig;
use emogi_runtime::Machine;
use emogi_sim::time::Time;

/// Sync or async subgraph pipeline (§5.6 uses Subway-async, the faster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubwayMode {
    Sync,
    Async,
}

/// Cost knobs of the subgraph generator (scaled like the rest of the
/// machine: these correspond to tens of milliseconds per iteration at the
/// paper's graph sizes).
#[derive(Debug, Clone)]
pub struct SubwayCosts {
    /// Per-vertex activeness scan (flag check + prefix-sum share), ns.
    pub scan_ns_per_vertex: f64,
    /// Per-active-vertex gather bookkeeping (offset rewrite), ns.
    pub gather_ns_per_vertex: f64,
    /// Effective bandwidth of gathering scattered neighbour lists into
    /// the packed buffer, GB/s. Far below DRAM peak: the lists are short
    /// and scattered, so the copy is cache-miss-bound (the paper's
    /// Subway timings imply a few GB/s at their scale).
    pub gather_gbps: f64,
}

impl Default for SubwayCosts {
    fn default() -> Self {
        Self {
            scan_ns_per_vertex: 1.0,
            gather_ns_per_vertex: 18.0,
            gather_gbps: 4.0,
        }
    }
}

/// The Subway-like engine bound to one graph.
pub struct SubwaySystem<'g> {
    machine: Machine,
    graph: &'g CsrGraph,
    weights: Option<&'g [u32]>,
    mode: SubwayMode,
    costs: SubwayCosts,
    /// 4-byte edge elements (the public implementation's format).
    elem_bytes: u64,
}

impl<'g> SubwaySystem<'g> {
    pub fn new(
        machine: MachineConfig,
        graph: &'g CsrGraph,
        weights: Option<&'g [u32]>,
        mode: SubwayMode,
    ) -> Self {
        assert!(
            (graph.num_edges() as u64) < u32::MAX as u64,
            "Subway supports at most 2^32 edges (the paper hits this on ML)"
        );
        Self {
            machine: Machine::new(machine),
            graph,
            weights,
            mode,
            costs: SubwayCosts::default(),
            elem_bytes: 4,
        }
    }

    /// Edge-list bytes in Subway's 4-byte format (+weights if present).
    pub fn dataset_bytes(&self) -> u64 {
        let mut b = self.graph.num_edges() as u64 * self.elem_bytes;
        if self.weights.is_some() {
            b += self.graph.num_edges() as u64 * 4;
        }
        b
    }

    /// Subgraph bytes for one active set.
    fn subgraph_bytes(&self, active: &[VertexId]) -> u64 {
        let per_edge = self.elem_bytes + if self.weights.is_some() { 4 } else { 0 };
        let edges: u64 = active.iter().map(|&v| self.graph.degree(v)).sum();
        // Packed lists + a (vertex, offset, degree) triple per active vertex.
        edges * per_edge + active.len() as u64 * 12
    }

    /// Charge one iteration's subgraph generation; returns its duration.
    fn generation_time(&mut self, active: &[VertexId], bytes: u64) -> Time {
        let scan = (self.graph.num_vertices() as f64 * self.costs.scan_ns_per_vertex) as Time;
        let gather = (active.len() as f64 * self.costs.gather_ns_per_vertex) as Time;
        // The generator gathers the active lists out of host DRAM into
        // the packed buffer; the scattered copy, not DRAM peak bandwidth,
        // sets the pace.
        let t0 = self.machine.now;
        let dram_done = self.machine.host_dram.read_bulk(t0, bytes);
        let copy = emogi_sim::time::bytes_over_bandwidth_ns(bytes, self.costs.gather_gbps);
        (dram_done - t0).max(copy) + scan + gather
    }

    /// One iteration: generate, transfer, run on device. Advances the
    /// machine clock according to the sync/async pipeline.
    fn iteration(&mut self, active: &[VertexId], prev_kernel_ns: Time) -> Time {
        let bytes = self.subgraph_bytes(active);
        let gen = self.generation_time(active, bytes);
        match self.mode {
            SubwayMode::Sync => self.machine.now += gen,
            SubwayMode::Async => {
                // Generation overlapped with the previous kernel.
                self.machine.now += gen.saturating_sub(prev_kernel_ns);
            }
        }
        self.machine.memcpy_to_device(bytes);
        // Device kernel: stream the subgraph + status-array traffic.
        let t0 = self.machine.now;
        let kernel_done = self.machine.hbm.read_bulk(t0, bytes + bytes / 2);
        self.machine.now = kernel_done + self.machine.kernel_launch_ns;
        kernel_done - t0
    }

    /// BFS per Subway: the frontier's lists move to the GPU each level.
    pub fn bfs(&mut self, src: VertexId) -> BfsRun {
        let snap = self.machine.snapshot();
        let n = self.graph.num_vertices();
        let mut levels = vec![UNVISITED; n];
        levels[src as usize] = 0;
        let mut frontier = vec![src];
        let mut launches = 0;
        let mut prev_kernel = 0;
        while !frontier.is_empty() {
            prev_kernel = self.iteration(&frontier, prev_kernel);
            launches += 1;
            let mut next = Vec::new();
            let cur = levels[frontier[0] as usize];
            for &v in &frontier {
                for &d in self.graph.neighbors(v) {
                    if levels[d as usize] == UNVISITED {
                        levels[d as usize] = cur + 1;
                        next.push(d);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        BfsRun {
            output: BfsOutput { levels },
            stats: self.machine.finish_run(&snap, launches),
        }
    }

    /// SSSP per Subway (Bellman-Ford rounds over active subgraphs).
    pub fn sssp(&mut self, src: VertexId) -> SsspRun {
        let weights = self.weights.expect("SSSP needs weights");
        let snap = self.machine.snapshot();
        let n = self.graph.num_vertices();
        let mut dist = vec![INF; n];
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        let mut launches = 0;
        let mut prev_kernel = 0;
        while !frontier.is_empty() {
            prev_kernel = self.iteration(&frontier, prev_kernel);
            launches += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                let start = self.graph.neighbor_start(v);
                for (k, &d) in self.graph.neighbors(v).iter().enumerate() {
                    let nd = dist[v as usize].saturating_add(weights[start as usize + k]);
                    if nd < dist[d as usize] {
                        dist[d as usize] = nd;
                        next.push(d);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        SsspRun {
            output: SsspOutput { dist },
            stats: self.machine.finish_run(&snap, launches),
        }
    }

    /// CC per Subway: every vertex active each pass until stable.
    pub fn cc(&mut self) -> CcRun {
        assert!(self.graph.is_undirected(), "CC needs an undirected graph");
        let snap = self.machine.snapshot();
        let n = self.graph.num_vertices();
        let mut comp: Vec<u32> = (0..n as u32).collect();
        let all: Vec<u32> = (0..n as u32).collect();
        let mut launches = 0;
        let mut passes = 0;
        let mut prev_kernel = 0;
        loop {
            prev_kernel = self.iteration(&all, prev_kernel);
            launches += 1;
            passes += 1;
            let mut changed = false;
            for v in 0..n as u32 {
                for &d in self.graph.neighbors(v) {
                    if comp[d as usize] < comp[v as usize] {
                        comp[v as usize] = comp[d as usize];
                        changed = true;
                    }
                }
            }
            emogi_core::cc::shortcut(&mut comp);
            if !changed {
                break;
            }
        }
        CcRun {
            output: CcOutput {
                comp,
                hook_passes: passes,
            },
            stats: self.machine.finish_run(&snap, launches),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};

    fn v100() -> MachineConfig {
        MachineConfig::v100_gen3()
    }

    #[test]
    fn bfs_matches_reference() {
        let g = generators::uniform_random(500, 6, 4);
        let mut s = SubwaySystem::new(v100(), &g, None, SubwayMode::Async);
        let run = s.bfs(3);
        assert_eq!(run.levels, algo::bfs_levels(&g, 3));
        assert!(run.stats.elapsed_ns > 0);
    }

    #[test]
    fn sssp_matches_reference() {
        let g = generators::uniform_random(300, 6, 5);
        let w = generate_weights(g.num_edges(), 5);
        let mut s = SubwaySystem::new(v100(), &g, Some(&w), SubwayMode::Async);
        let run = s.sssp(2);
        let expect = algo::sssp_distances(&g, &w, 2);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }
    }

    #[test]
    fn cc_matches_reference() {
        let g = generators::uniform_random(300, 4, 6);
        let mut sys = SubwaySystem::new(v100(), &g, None, SubwayMode::Sync);
        let run = sys.cc();
        assert_eq!(run.comp, algo::cc_labels(&g));
    }

    #[test]
    fn traffic_is_memcpy_not_zero_copy_or_uvm() {
        let g = generators::uniform_random(400, 8, 7);
        let mut s = SubwaySystem::new(v100(), &g, None, SubwayMode::Async);
        let run = s.bfs(0);
        assert_eq!(run.stats.pcie_read_requests, 0);
        assert_eq!(run.stats.page_faults, 0);
        assert!(run.stats.host_bytes >= g.num_edges() as u64 * 4);
    }

    #[test]
    fn async_beats_sync() {
        let g = generators::uniform_random(3_000, 16, 8);
        let mut sync = SubwaySystem::new(v100(), &g, None, SubwayMode::Sync);
        let mut asyn = SubwaySystem::new(v100(), &g, None, SubwayMode::Async);
        let a = sync.bfs(0).stats.elapsed_ns;
        let b = asyn.bfs(0).stats.elapsed_ns;
        assert!(b < a, "async {b} must beat sync {a}");
    }

    #[test]
    fn transfers_scale_with_touched_edges() {
        // Subway moves every activated vertex's list exactly once per
        // activation — for BFS that is the whole reachable edge list.
        let g = generators::uniform_random(500, 8, 9);
        let mut s = SubwaySystem::new(v100(), &g, None, SubwayMode::Sync);
        let run = s.bfs(1);
        let reachable_edges: u64 = (0..500u32)
            .filter(|&v| run.levels[v as usize] != UNVISITED)
            .map(|v| g.degree(v))
            .sum();
        assert!(run.stats.host_bytes >= reachable_edges * 4);
        // And not wildly more (metadata + flag scans only).
        assert!(run.stats.host_bytes < reachable_edges * 4 + 500 * 16 * run.stats.kernel_launches);
    }
}
