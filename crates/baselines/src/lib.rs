//! # emogi-baselines — the systems EMOGI is compared against
//!
//! * **UVM** (§5.1.2(a)) — the optimized UVM baseline is simply
//!   `emogi_core::TraversalConfig::uvm_v100()`: the same kernels with the
//!   edge list in managed memory and `cudaMemAdviseSetReadMostly`. This
//!   crate adds nothing for it.
//! * **HALO-like** ([`halo`], Table 3 upper half) — Gera et al.'s
//!   locality-enhancing CSR reordering, then UVM traversal. Since HALO's
//!   source is unavailable (the paper compares against published numbers),
//!   we implement the published mechanism: relabel vertices so that
//!   vertices activated together hold adjacent neighbour lists, which
//!   packs each BFS level's reads onto contiguous pages.
//! * **Subway-like** ([`subway`], Table 3 lower half) — Sabet et al.'s
//!   per-iteration subgraph extraction: gather the active vertices'
//!   neighbour lists into a compact buffer, `cudaMemcpy` it to the GPU,
//!   and run the iteration entirely from device memory (sync and async
//!   flavours).

#![forbid(unsafe_code)]

pub mod halo;
pub mod subway;

pub use halo::HaloSystem;
pub use subway::{SubwayMode, SubwaySystem};
