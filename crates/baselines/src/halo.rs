//! HALO-style locality-enhancing reordering + UVM traversal.
//!
//! HALO ("Traversing Large Graphs on GPUs with Unified Memory", VLDB 2020,
//! the paper's reference \[21\]) keeps the UVM machinery but *reorders the CSR* so that vertices
//! that are traversed together store their neighbour lists on the same
//! pages, cutting page thrashing. Its source is not public; the paper
//! compares against published numbers (Table 3). We reproduce the
//! published mechanism with a BFS-rank relabeling from a high-degree
//! root: a BFS level's vertices receive consecutive ids, so a level's
//! edge reads walk contiguous pages instead of spraying across the edge
//! list.
//!
//! Preprocessing time is *not* charged to traversal, matching how such
//! systems report results (EMOGI's §5.6 measurement includes only kernel
//! and data-movement time for HALO).

use emogi_core::bfs::BfsOutput;
use emogi_core::{BfsRun, Engine, EngineConfig};
use emogi_graph::{algo, CsrGraph, VertexId, UNVISITED};

/// Compute the HALO-style permutation: `perm[old] = new`.
///
/// BFS ranks from the highest-degree vertex; remaining components are
/// appended in discovery order from their own highest-degree roots.
pub fn locality_reorder(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut perm = vec![UNVISITED; n];
    let mut next_id: u32 = 0;
    // Roots in decreasing degree order.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut queue = std::collections::VecDeque::new();
    for root in by_degree {
        if perm[root as usize] != UNVISITED {
            continue;
        }
        perm[root as usize] = next_id;
        next_id += 1;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &d in g.neighbors(v) {
                if perm[d as usize] == UNVISITED {
                    perm[d as usize] = next_id;
                    next_id += 1;
                    queue.push_back(d);
                }
            }
        }
    }
    debug_assert_eq!(next_id as usize, n);
    perm
}

/// A graph pre-processed with the locality reordering, traversed via UVM.
pub struct HaloSystem {
    reordered: CsrGraph,
    perm: Vec<VertexId>,
    weights: Option<Vec<u32>>,
    cfg: EngineConfig,
}

impl HaloSystem {
    /// Reorder `graph` (preprocessing) and prepare a UVM traversal
    /// configuration on the given machine.
    pub fn new(cfg: EngineConfig, graph: &CsrGraph, weights: Option<&[u32]>) -> Self {
        let perm = locality_reorder(graph);
        let reordered = graph.relabel(&perm);
        // Weights follow their edges: rebuild per reordered edge. The
        // relabel sorts neighbour lists, so recover the mapping by
        // matching (src, dst) pairs through the permutation.
        let weights = weights.map(|w| {
            let mut out = vec![0u32; w.len()];
            for v in 0..graph.num_vertices() as u32 {
                let nv = perm[v as usize];
                let new_start = reordered.neighbor_start(nv);
                // Old neighbours mapped to new ids, with their weights.
                let start = graph.neighbor_start(v);
                let mut pairs: Vec<(u32, u32)> = graph
                    .neighbors(v)
                    .iter()
                    .enumerate()
                    .map(|(k, &d)| (perm[d as usize], w[start as usize + k]))
                    .collect();
                pairs.sort_unstable_by_key(|&(d, _)| d);
                for (k, (_, wt)) in pairs.into_iter().enumerate() {
                    out[new_start as usize + k] = wt;
                }
            }
            out
        });
        Self {
            reordered,
            perm,
            weights,
            cfg,
        }
    }

    pub fn reordered_graph(&self) -> &CsrGraph {
        &self.reordered
    }

    /// The weight array in reordered edge space (when built with one).
    pub fn reordered_weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Run BFS from `src` (an *original* vertex id); levels come back in
    /// original id space.
    pub fn bfs(&self, src: VertexId) -> BfsRun {
        let mut engine = Engine::load(self.cfg.clone(), &self.reordered);
        let run = engine.bfs(self.perm[src as usize]);
        let levels = (0..self.perm.len())
            .map(|v| run.levels[self.perm[v] as usize])
            .collect();
        BfsRun {
            output: BfsOutput { levels },
            stats: run.stats,
        }
    }

    /// Check the reordering preserved reachability (test helper).
    pub fn verify_against(&self, original: &CsrGraph, src: VertexId) -> bool {
        self.bfs(src).levels == algo::bfs_levels(original, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_core::EdgePlacement;
    use emogi_graph::generators;

    fn uvm_cfg() -> EngineConfig {
        EngineConfig::uvm_v100()
    }

    #[test]
    fn reorder_is_a_permutation() {
        let g = generators::web_crawl(500, 8, 50, 0.8, 3);
        let perm = locality_reorder(&g);
        let mut seen = vec![false; 500];
        for &p in &perm {
            assert!(!std::mem::replace(&mut seen[p as usize], true));
        }
    }

    #[test]
    fn bfs_results_map_back_to_original_ids() {
        let g = generators::uniform_random(400, 6, 9);
        let halo = HaloSystem::new(uvm_cfg(), &g, None);
        assert!(halo.verify_against(&g, 7));
    }

    #[test]
    fn reordering_improves_frontier_locality() {
        // HALO's claim: vertices *activated together* (one BFS level from
        // the traversal root) hold adjacent neighbour lists after the
        // relabeling. Measure the page footprint of every BFS level from
        // the reorder root, before and after: the randomly-permuted
        // social graph sprays each level across the edge list, the
        // reordered one packs levels into consecutive pages.
        let g = generators::social(4_096, 6, 5);
        // Pick the root exactly as locality_reorder does (same sort, first
        // entry), so a degree tie cannot make us measure levels from a
        // different vertex than the one the relabeling clustered around.
        let root = {
            let mut by_degree: Vec<u32> = (0..g.num_vertices() as u32).collect();
            by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            by_degree[0]
        };
        let levels = emogi_graph::algo::bfs_levels(&g, root);
        let pages = |g: &CsrGraph, members: &[u32]| {
            let mut p: Vec<u64> = members
                .iter()
                .flat_map(|&v| {
                    let s = g.neighbor_start(v) * 8 / 4096;
                    let e = (g.neighbor_end(v).max(g.neighbor_start(v) + 1) - 1) * 8 / 4096;
                    s..=e
                })
                .collect();
            p.sort_unstable();
            p.dedup();
            p.len()
        };
        let halo = HaloSystem::new(uvm_cfg(), &g, None);
        let perm = locality_reorder(&g);
        let max_level = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap();
        let (mut before, mut after) = (0usize, 0usize);
        for lvl in 1..=max_level {
            let members: Vec<u32> = (0..g.num_vertices() as u32)
                .filter(|&v| levels[v as usize] == lvl)
                .collect();
            let mapped: Vec<u32> = members.iter().map(|&v| perm[v as usize]).collect();
            before += pages(&g, &members);
            after += pages(halo.reordered_graph(), &mapped);
        }
        assert!(
            after < before,
            "reordering should shrink the per-level page footprint: {after} vs {before}"
        );
    }

    #[test]
    fn weights_follow_their_edges() {
        let g = generators::uniform_random(200, 4, 11);
        let w = emogi_graph::datasets::generate_weights(g.num_edges(), 11);
        let cfg = EngineConfig::uvm_v100();
        let halo = HaloSystem::new(cfg, &g, Some(&w));
        let perm = locality_reorder(&g);
        let rg = halo.reordered_graph();
        let rw = halo.reordered_weights().unwrap();
        // Edge (v, d) with weight x must appear as (perm[v], perm[d], x).
        for v in 0..200u32 {
            let start = g.neighbor_start(v) as usize;
            for (k, &d) in g.neighbors(v).iter().enumerate() {
                let nv = perm[v as usize];
                let nd = perm[d as usize];
                let pos = rg
                    .neighbors(nv)
                    .iter()
                    .position(|&x| x == nd)
                    .expect("edge preserved");
                let nstart = rg.neighbor_start(nv) as usize;
                assert_eq!(rw[nstart + pos], w[start + k]);
            }
        }
    }

    #[test]
    fn halo_uses_uvm_not_zero_copy() {
        let g = generators::uniform_random(300, 6, 2);
        let halo = HaloSystem::new(uvm_cfg(), &g, None);
        let run = halo.bfs(0);
        assert_eq!(run.stats.pcie_read_requests, 0);
        assert!(run.stats.pages_migrated > 0);
        assert_eq!(halo.cfg.placement, EdgePlacement::Uvm);
    }
}
