//! Result tables: terminal rendering and markdown export for
//! EXPERIMENTS.md.

use std::fmt;

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Stable identifier ("fig9", "table3", ...).
    pub id: &'static str,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper reference values, modelling caveats).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Markdown rendering (used to build EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {}\n", n));
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== [{}] {} ==", self.id, self.title)?;
        let w = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Format a float with sensible precision for table cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a fraction as a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format nanoseconds as milliseconds.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_markdown() {
        let mut t = Table::new("figX", "demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let txt = t.to_string();
        assert!(txt.contains("figX"));
        assert!(txt.contains("hello"));
        let md = t.to_markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("> hello"));
    }

    #[test]
    fn float_formatting_adapts_precision() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(4.567), "4.57");
        assert_eq!(f(31.41), "31.4");
        assert_eq!(f(314.1), "314");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(ms(2_500_000), "2.50");
    }
}
