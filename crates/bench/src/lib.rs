//! # emogi-bench — the experiment harness
//!
//! Regenerates every table and figure of the EMOGI paper's evaluation
//! (§3.3 and §5) on the simulated platform. The entry point is the
//! `repro` binary:
//!
//! ```text
//! cargo run --release -p emogi_bench --bin repro -- all
//! cargo run --release -p emogi_bench --bin repro -- fig9 --sources 8
//! ```
//!
//! Figures that share measurements are derived from one run matrix (the
//! BFS case study behind Figures 5, 7, 8, 9, 10 runs each graph × engine
//! combination once). Criterion micro-benchmarks for the simulator's own
//! components live in `benches/`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod store;
pub mod table;

pub use store::DatasetStore;
pub use table::Table;

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct Context {
    /// BFS/SSSP sources per (graph, engine) cell. The paper uses 64;
    /// the default here trades precision for wall-clock time and is
    /// configurable via `--sources`.
    pub sources: usize,
    /// Dataset scale divisor (1 = the standard ~1/1000-of-paper scale).
    pub scale: usize,
    pub store: DatasetStore,
}

impl Context {
    pub fn new(sources: usize, scale: usize) -> Self {
        Self {
            sources,
            scale,
            store: DatasetStore::new(scale),
        }
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::new(3, 1)
    }
}
