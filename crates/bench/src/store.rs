//! Lazy, cached dataset generation shared across experiments.

use emogi_graph::{Dataset, DatasetKey};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Generates each Table 2 dataset at most once per harness run.
#[derive(Debug, Clone)]
pub struct DatasetStore {
    scale: usize,
    cache: Rc<RefCell<HashMap<DatasetKey, Rc<Dataset>>>>,
}

impl DatasetStore {
    pub fn new(scale: usize) -> Self {
        Self {
            scale,
            cache: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Fetch (generating on first use) one dataset.
    pub fn get(&self, key: DatasetKey) -> Rc<Dataset> {
        if let Some(d) = self.cache.borrow().get(&key) {
            return Rc::clone(d);
        }
        let d = Rc::new(key.spec().generate_scaled(self.scale));
        self.cache.borrow_mut().insert(key, Rc::clone(&d));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_generates_once_and_shares() {
        let store = DatasetStore::new(64);
        let a = store.get(DatasetKey::Gu);
        let b = store.get(DatasetKey::Gu);
        assert!(Rc::ptr_eq(&a, &b), "second fetch must reuse the first");
    }

    #[test]
    fn scale_divisor_shrinks_graphs() {
        let big = DatasetStore::new(32).get(DatasetKey::Gu);
        let small = DatasetStore::new(64).get(DatasetKey::Gu);
        assert!(small.graph.num_vertices() < big.graph.num_vertices());
    }
}
