//! The `layout` experiment: cache-aware vertex reordering on GK — the
//! skewed Table 2 graph whose hubs dominate traffic — across all four
//! vertex programs.
//!
//! Each cell places a *relabeled* copy of GK (identity, degree-sorted,
//! or hub-clustered — see [`emogi_graph::reorder`]) on the same scaled
//! V100 and runs the same queries, mapping sources into the relabeled
//! id space and results back out through the plan's inverse. Outputs
//! are bit-identical across layouts by construction
//! (`tests/layout_differential.rs` pins every layout × program × mode
//! combination); this experiment measures the two things allowed to
//! move — the L2 sector hit rate and the coalescing efficiency of the
//! kernels' lane requests. Clustering hot vertices at low ids packs
//! their 4-byte status entries into few cache lines, so the dst-status
//! gathers of a skewed frontier hit resident sectors more often and
//! merge into fewer, fuller transactions.

use super::scaled_machine;
use crate::table::{f, ms, pct};
use crate::{Context, Table};
use emogi_core::{Engine, EngineConfig};
use emogi_graph::reorder::LayoutPlan;
use emogi_graph::{CsrGraph, DatasetKey};

/// Sources per BFS/SSSP cell (multi-query, like the `overlap`
/// experiment, so frontier reuse resembles a serving workload).
const SOURCES: usize = 4;

/// Power iterations and damping for the PageRank cell.
const PR_ITERATIONS: u32 = 10;
const PR_DAMPING: f64 = 0.85;

/// Simulated edge element size (4, matching the other GK experiments).
const ELEM_BYTES: u64 = 4;

/// One program × layout measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub program: &'static str,
    pub layout: &'static str,
    /// L2 sectors that hit, summed over the cell's runs.
    pub l2_hits: u64,
    /// L2 sectors that missed.
    pub l2_misses: u64,
    /// Lane-requested bytes before coalescing.
    pub lane_bytes: u64,
    /// Bytes the coalesced transactions moved.
    pub txn_bytes: u64,
    /// Total simulated wall time of the cell, ns.
    pub elapsed_ns: u64,
}

impl Measurement {
    /// Fraction of probed L2 sectors that hit.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Requested bytes over moved bytes; 1.0 means no overfetch.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.txn_bytes == 0 {
            0.0
        } else {
            self.lane_bytes as f64 / self.txn_bytes as f64
        }
    }
}

/// All measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct LayoutResults {
    pub rows: Vec<Measurement>,
}

impl LayoutResults {
    /// Look up one cell; panics naming the cells that exist.
    pub fn get(&self, program: &str, layout: &str) -> &Measurement {
        self.rows
            .iter()
            .find(|m| m.program == program && m.layout == layout)
            .unwrap_or_else(|| {
                let have: Vec<(&str, &str)> =
                    self.rows.iter().map(|m| (m.program, m.layout)).collect();
                panic!("no layout measurement for {program:?}/{layout:?}; measured: {have:?}")
            })
    }
}

/// Order-sensitive digest of an output sequence: position-mixed FNV-ish
/// fold, so two layouts agree iff their *unmapped* outputs agree
/// element for element.
fn digest(values: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn fold(m: &mut Measurement, stats: &emogi_runtime::RunStats) {
    m.l2_hits += stats.l2_sector_hits;
    m.l2_misses += stats.l2_sector_misses;
    m.lane_bytes += stats.lane_bytes;
    m.txn_bytes += stats.txn_bytes;
    m.elapsed_ns += stats.elapsed_ns;
}

/// The three layouts under comparison, built for `graph` with cache
/// segments of `segment_bytes`.
fn plans(graph: &CsrGraph, segment_bytes: u64) -> [(&'static str, LayoutPlan); 3] {
    [
        ("original", LayoutPlan::identity(graph.num_vertices())),
        ("degree-sorted", LayoutPlan::degree_sorted(graph)),
        (
            "hub-clustered",
            LayoutPlan::hub_clustered(graph, segment_bytes, ELEM_BYTES),
        ),
    ]
}

/// Run every program over every layout of GK on the same platform.
pub fn measure(ctx: &Context) -> LayoutResults {
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(SOURCES);
    let mut machine = scaled_machine(ctx.scale);
    // The paper's regime: the graph's working set oversubscribes the L2.
    // At reduced scale the status array would fit the scaled cache whole
    // (hiding any layout effect), so pin the cache to a quarter of it —
    // only a layout that concentrates the hot entries into few lines
    // keeps them resident under the edge stream's eviction pressure.
    let status_bytes = gk.graph.num_vertices() as u64 * 4;
    machine.gpu.cache.capacity_bytes = (status_bytes / 4).max(4 << 10);
    let segment_bytes = machine.gpu.cache.capacity_bytes;
    let mut rows = Vec::new();

    for program in ["multi-bfs", "multi-sssp", "cc", "pagerank"] {
        let mut outputs: Vec<(&'static str, u64)> = Vec::new();
        for (layout_name, plan) in plans(&gk.graph, segment_bytes) {
            eprintln!("  [layout] {program} GK / {layout_name} ...");
            let graph = plan.apply(&gk.graph);
            let cfg = EngineConfig::emogi_v100()
                .with_machine(machine.clone())
                .with_elem_bytes(ELEM_BYTES);
            let mut engine = Engine::load(cfg, &graph);
            let mut m = Measurement {
                program,
                layout: layout_name,
                l2_hits: 0,
                l2_misses: 0,
                lane_bytes: 0,
                txn_bytes: 0,
                elapsed_ns: 0,
            };
            let out = match program {
                "multi-bfs" => {
                    let mut d = 0u64;
                    for &s in &sources {
                        let run = engine.bfs(plan.map_vertex(s));
                        fold(&mut m, &run.stats);
                        let levels = plan.unmap_values(&run.levels);
                        d ^= digest(
                            std::iter::once(run.stats.kernel_launches)
                                .chain(levels.iter().map(|&l| u64::from(l))),
                        );
                    }
                    d
                }
                "multi-sssp" => {
                    let weights = plan.apply_edge_data(&gk.graph, &gk.weights);
                    let mut d = 0u64;
                    for &s in &sources {
                        let run = engine.sssp(&weights, plan.map_vertex(s));
                        fold(&mut m, &run.stats);
                        let dist = plan.unmap_values(&run.dist);
                        d ^= digest(
                            std::iter::once(run.stats.kernel_launches)
                                .chain(dist.iter().map(|&x| u64::from(x))),
                        );
                    }
                    d
                }
                "cc" => {
                    // Hook-pass counts are layout-dependent (CC labels
                    // are vertex ids), so only the canonically unmapped
                    // components enter the digest.
                    let run = engine.cc();
                    fold(&mut m, &run.stats);
                    let comp = plan.unmap_components(&run.comp);
                    digest(comp.iter().map(|&c| u64::from(c)))
                }
                _ => {
                    let run = engine.pagerank(PR_DAMPING, PR_ITERATIONS);
                    fold(&mut m, &run.stats);
                    let ranks = plan.unmap_values(&run.ranks);
                    digest(
                        std::iter::once(run.stats.kernel_launches)
                            .chain(ranks.iter().map(|&r| r.to_bits())),
                    )
                }
            };
            outputs.push((layout_name, out));
            rows.push(m);
        }
        let (_, base) = outputs[0];
        for &(name, d) in &outputs[1..] {
            assert_eq!(
                d, base,
                "{program}: {name} output diverged from the original layout"
            );
        }
    }
    LayoutResults { rows }
}

/// The printable table.
pub fn layout(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "layout",
        "Cache-aware vertex reordering (degree-sorted, hub-clustered) vs original ids on GK",
        &[
            "program",
            "layout",
            "L2 hit rate",
            "coalescing eff",
            "lane MiB",
            "txn MiB",
            "time (ms)",
        ],
    );
    let mib = |b: u64| f(b as f64 / (1 << 20) as f64);
    for m in &r.rows {
        t.row(vec![
            m.program.into(),
            m.layout.into(),
            pct(m.l2_hit_rate()),
            f(m.coalescing_efficiency()),
            mib(m.lane_bytes),
            mib(m.txn_bytes),
            ms(m.elapsed_ns),
        ]);
    }
    t.note(
        "each layout runs the same queries on a relabeled copy of GK, sources mapped in \
         and results mapped back through the plan's inverse permutation — outputs are \
         bit-identical across layouts (pinned by tests/layout_differential.rs); packing \
         hot vertices at low ids concentrates their status entries into few cache lines, \
         raising the L2 sector hit rate and merging dst-status gathers into fewer, \
         fuller transactions",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "measured")]
    fn missing_cell_lookup_names_the_cell_and_the_available_rows() {
        let r = LayoutResults { rows: Vec::new() };
        let _ = r.get("cc", "original");
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(digest([1, 2].into_iter()), digest([2, 1].into_iter()));
        assert_eq!(digest([1, 2].into_iter()), digest([1, 2].into_iter()));
    }

    #[test]
    fn reordering_improves_cache_behavior_for_every_program() {
        let ctx = Context::new(1, 32);
        let r = measure(&ctx);
        for program in ["multi-bfs", "multi-sssp", "cc", "pagerank"] {
            let base = r.get(program, "original");
            let improved = ["degree-sorted", "hub-clustered"].iter().any(|layout| {
                let m = r.get(program, layout);
                m.l2_hit_rate() > base.l2_hit_rate()
                    && m.coalescing_efficiency() > base.coalescing_efficiency()
            });
            assert!(
                improved,
                "{program}: no reordered layout beat the original on both metrics; \
                 original hit {:.4} eff {:.4}, degree-sorted hit {:.4} eff {:.4}, \
                 hub-clustered hit {:.4} eff {:.4}",
                base.l2_hit_rate(),
                base.coalescing_efficiency(),
                r.get(program, "degree-sorted").l2_hit_rate(),
                r.get(program, "degree-sorted").coalescing_efficiency(),
                r.get(program, "hub-clustered").l2_hit_rate(),
                r.get(program, "hub-clustered").coalescing_efficiency(),
            );
        }
    }
}
