//! One module per group of related experiments; `run` dispatches on the
//! experiment id used by the `repro` binary.

pub mod ablations;
pub mod apps;
pub mod case_study;
pub mod hybrid;
pub mod layout;
pub mod matrix;
pub mod misc;
pub mod overlap;
pub mod pagerank;
pub mod prior;
pub mod scaling;
pub mod serve;
pub mod sla;
pub mod tiering;
pub mod toy;

use crate::{Context, Table};
use emogi_runtime::MachineConfig;

/// V100 machine with cache and device memory divided by the context's
/// scale divisor, like the datasets themselves, so the edge-list : cache
/// : device-memory ratios that drive transport trade-offs survive
/// reduced-scale runs. Shared by the `hybrid` and `pagerank` experiments.
pub(crate) fn scaled_machine(scale: usize) -> MachineConfig {
    let mut m = MachineConfig::v100_gen3();
    let s = scale.max(1) as u64;
    m.gpu.cache.capacity_bytes = (m.gpu.cache.capacity_bytes / s).max(32 << 10);
    m.gpu.mem_bytes = (m.gpu.mem_bytes / s).max(256 << 10);
    m
}

/// All experiment ids: the paper's, in paper order, then this repo's own
/// extensions.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table3",
    "ablations",
    "hybrid",
    "pagerank",
    "overlap",
    "layout",
    "serve",
    "sla",
    "scaling",
    "tiering",
];

/// Run one experiment by id. The BFS case-study figures (5, 7–10) share
/// one measurement matrix; when invoked individually each recomputes it.
pub fn run(id: &str, ctx: &Context) -> Vec<Table> {
    match id {
        "table1" => vec![misc::table1()],
        "table2" => vec![misc::table2(ctx)],
        "fig3" => vec![toy::fig3(ctx)],
        "fig4" => vec![toy::fig4(ctx)],
        "fig6" => vec![misc::fig6(ctx)],
        "fig5" | "fig7" | "fig8" | "fig9" | "fig10" => {
            let m = matrix::BfsMatrix::compute(ctx);
            vec![match id {
                "fig5" => case_study::fig5(&m),
                "fig7" => case_study::fig7(&m),
                "fig8" => case_study::fig8(ctx, &m),
                "fig9" => case_study::fig9(&m),
                _ => case_study::fig10(&m),
            }]
        }
        "fig11" => vec![apps::fig11(ctx)],
        "fig12" => vec![apps::fig12(ctx)],
        "table3" => vec![prior::table3(ctx)],
        "ablations" => ablations::all(ctx),
        "hybrid" => vec![hybrid::hybrid(ctx)],
        "pagerank" => vec![pagerank::pagerank(ctx)],
        "overlap" => vec![overlap::overlap(ctx)],
        "layout" => vec![layout::layout(ctx)],
        "serve" => vec![serve::serve(ctx)],
        "sla" => vec![sla::sla(ctx)],
        "scaling" => vec![scaling::scaling(ctx)],
        "tiering" => vec![tiering::tiering(ctx)],
        other => panic!("unknown experiment id {other:?} (known: {ALL_IDS:?})"),
    }
}

/// Run the full evaluation, computing the shared matrix once.
pub fn run_all(ctx: &Context) -> Vec<Table> {
    let mut out = vec![
        misc::table1(),
        misc::table2(ctx),
        toy::fig3(ctx),
        toy::fig4(ctx),
    ];
    let m = matrix::BfsMatrix::compute(ctx);
    out.push(case_study::fig5(&m));
    out.push(misc::fig6(ctx));
    out.push(case_study::fig7(&m));
    out.push(case_study::fig8(ctx, &m));
    out.push(case_study::fig9(&m));
    out.push(case_study::fig10(&m));
    out.push(apps::fig11_with_bfs(ctx, Some(&m)));
    out.push(apps::fig12(ctx));
    out.push(prior::table3(ctx));
    out.extend(ablations::all(ctx));
    out.push(hybrid::hybrid(ctx));
    out.push(pagerank::pagerank(ctx));
    out.push(overlap::overlap(ctx));
    out.push(layout::layout(ctx));
    out.push(serve::serve(ctx));
    out.push(sla::sla(ctx));
    out.push(scaling::scaling(ctx));
    out.push(tiering::tiering(ctx));
    out
}
