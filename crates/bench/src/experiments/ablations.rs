//! Ablation sweeps over the design parameters DESIGN.md calls out.
//!
//! These go beyond the paper's figures: they quantify how the simulated
//! machine's key parameters produce the paper's effects, which doubles as
//! a sensitivity analysis of the reproduction.

use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_core::toy::{self, ToyPattern};
use emogi_core::{AccessStrategy, Engine, EngineConfig};
use emogi_graph::DatasetKey;
use emogi_runtime::MachineConfig;

pub fn all(ctx: &Context) -> Vec<Table> {
    vec![
        mshr_sweep(ctx),
        cache_sweep(ctx),
        tag_sweep(ctx),
        rtt_sweep(ctx),
        compression(ctx),
    ]
}

/// §6 extension: delta-varint-compressed edge lists vs raw 8-byte
/// elements (BFS over the two web crawls, where id locality makes gaps
/// small).
pub fn compression(ctx: &Context) -> Table {
    use emogi_core::compressed::CompressedBfs;
    use emogi_graph::compress::CompressedCsr;
    let mut t = Table::new(
        "abl-compress",
        "Extension (paper §6): compressed neighbour lists (BFS)",
        &[
            "graph",
            "ratio",
            "raw MB moved",
            "comp MB moved",
            "raw ms",
            "comp ms",
        ],
    );
    for key in [DatasetKey::Sk, DatasetKey::Uk5, DatasetKey::Fs] {
        let d = ctx.store.get(key);
        let src = d.sources(1)[0];
        let mut raw = Engine::load(EngineConfig::emogi_v100(), &d.graph);
        let raw_run = raw.bfs(src);
        let c = CompressedCsr::encode(&d.graph);
        let mut comp = CompressedBfs::new(MachineConfig::v100_gen3(), &c);
        let (levels, comp_stats) = comp.bfs(src);
        assert_eq!(levels, raw_run.levels, "compressed BFS must agree");
        t.row(vec![
            d.spec.symbol.into(),
            f(c.ratio(8)),
            f(raw_run.stats.host_bytes as f64 / 1e6),
            f(comp_stats.host_bytes as f64 / 1e6),
            ms(raw_run.stats.elapsed_ns),
            ms(comp_stats.elapsed_ns),
        ]);
    }
    t.note("§6: \"EMOGI can potentially directly benefit from compression of input data\" — idle lanes absorb the decode cost while the interconnect moves several times fewer bytes");
    t
}

/// Per-warp in-flight read limit: EMOGI's §4.3.1 argument that worker
/// tuning cannot help when the interconnect is saturated.
pub fn mshr_sweep(ctx: &Context) -> Table {
    let mut t = Table::new(
        "abl-mshr",
        "Ablation: per-warp in-flight read limit (GK BFS)",
        &["limit", "Merged+Aligned (ms)", "Naive (ms)"],
    );
    let d = ctx.store.get(DatasetKey::Gk);
    let src = d.sources(1)[0];
    for limit in [2u32, 4, 8, 16] {
        let run = |strategy| {
            let mut cfg = EngineConfig::emogi_v100().with_strategy(strategy);
            cfg.machine.gpu.max_pending_per_warp = limit;
            let mut engine = Engine::load(cfg, &d.graph);
            engine.bfs(src).stats.elapsed_ns
        };
        t.row(vec![
            limit.to_string(),
            ms(run(AccessStrategy::MergedAligned)),
            ms(run(AccessStrategy::Naive)),
        ]);
    }
    t.note("merged kernels issue at most 3 reads per step and are insensitive; the naive kernel's per-lane parallelism depends directly on this limit");
    t
}

/// GPU cache capacity: the naive kernel's thrashing lever (§3.3).
pub fn cache_sweep(ctx: &Context) -> Table {
    let mut t = Table::new(
        "abl-cache",
        "Ablation: GPU cache capacity (GK BFS, Naive strategy)",
        &["cache MiB", "time (ms)", "amplification"],
    );
    let d = ctx.store.get(DatasetKey::Gk);
    let src = d.sources(1)[0];
    for mib in [1u64, 3, 6, 24] {
        let mut cfg = EngineConfig::emogi_v100().with_strategy(AccessStrategy::Naive);
        cfg.machine.gpu.cache.capacity_bytes = mib << 20;
        let mut engine = Engine::load(cfg, &d.graph);
        let dataset = engine.dataset_bytes();
        let run = engine.bfs(src);
        t.row(vec![
            mib.to_string(),
            ms(run.stats.elapsed_ns),
            f(run.stats.amplification(dataset)),
        ]);
    }
    t.note("finding: with MSHR merging of same-sector loads, Naive's amplification stays near 1 at every cache size — its slowness is per-lane concurrency, not re-fetch; the cache mainly serves the vertex/status arrays");
    t
}

/// PCIe tag count: the outstanding-request bound of §3.3.
pub fn tag_sweep(ctx: &Context) -> Table {
    let bytes = (8u64 << 20) / ctx.scale as u64;
    let mut t = Table::new(
        "abl-tags",
        "Ablation: PCIe outstanding-request tags (toy patterns, GB/s)",
        &["tags", "Strided", "Merged+Aligned"],
    );
    for tags in [64u32, 128, 256, 512] {
        let mut cfg = MachineConfig::v100_gen3();
        cfg.pcie.max_tags = tags;
        let s = toy::run_zero_copy(cfg.clone(), ToyPattern::Strided, bytes);
        let a = toy::run_zero_copy(cfg, ToyPattern::MergedAligned, bytes);
        t.row(vec![tags.to_string(), f(s.pcie_gbps), f(a.pcie_gbps)]);
    }
    t.note("32-byte requests are tag-limited (bandwidth ~ tags x 32B / RTT); 128-byte requests saturate the wire long before the tag pool");
    t
}

/// Round-trip latency: the other §3.3 bound.
pub fn rtt_sweep(ctx: &Context) -> Table {
    let bytes = (8u64 << 20) / ctx.scale as u64;
    let mut t = Table::new(
        "abl-rtt",
        "Ablation: interconnect one-way latency (toy patterns, GB/s)",
        &["propagation ns", "Strided", "Merged+Aligned"],
    );
    for prop in [400u64, 780, 1200, 1600] {
        let mut cfg = MachineConfig::v100_gen3();
        cfg.pcie.propagation_ns = prop;
        let s = toy::run_zero_copy(cfg.clone(), ToyPattern::Strided, bytes);
        let a = toy::run_zero_copy(cfg, ToyPattern::MergedAligned, bytes);
        t.row(vec![prop.to_string(), f(s.pcie_gbps), f(a.pcie_gbps)]);
    }
    t.note("the paper measured 1.0-1.6 us GPU-FPGA round trips; strided bandwidth is inversely proportional to RTT while merged traffic hides it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_sweep_shows_tag_limit_on_strided_only() {
        let ctx = Context::new(1, 16);
        let t = tag_sweep(&ctx);
        let strided: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let aligned: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            strided[3] > 1.8 * strided[0],
            "strided scales with tags: {strided:?}"
        );
        let rel = (aligned[3] - aligned[1]).abs() / aligned[1];
        assert!(rel < 0.25, "aligned mostly insensitive: {aligned:?}");
    }

    #[test]
    fn rtt_sweep_hurts_strided_most() {
        let ctx = Context::new(1, 16);
        let t = rtt_sweep(&ctx);
        let strided: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(strided[0] > 1.5 * strided[3], "{strided:?}");
    }

    #[test]
    fn cache_sweep_amplification_monotone_decreasing() {
        let ctx = Context::new(1, 16);
        let t = cache_sweep(&ctx);
        let amp: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            amp[0] >= amp[3] - 0.05,
            "smaller cache cannot amplify less: {amp:?}"
        );
    }
}
