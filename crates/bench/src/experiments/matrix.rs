//! The BFS case-study measurement matrix behind Figures 5, 7, 8, 9, 10:
//! every Table 2 graph × every engine (UVM baseline, Naive, Merged,
//! Merged+Aligned), averaged over the context's source vertices.

use crate::Context;
use emogi_core::{AccessStrategy, Engine, EngineConfig};
use emogi_graph::DatasetKey;
use emogi_sim::monitor::SizeHistogram;
use std::collections::HashMap;

/// One engine column of the §5.3 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    Uvm,
    Naive,
    Merged,
    MergedAligned,
}

impl EngineKind {
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::Uvm,
            EngineKind::Naive,
            EngineKind::Merged,
            EngineKind::MergedAligned,
        ]
    }

    /// The three zero-copy implementations (Figure 5/7 columns).
    pub fn zero_copy() -> [EngineKind; 3] {
        [
            EngineKind::Naive,
            EngineKind::Merged,
            EngineKind::MergedAligned,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Uvm => "UVM",
            EngineKind::Naive => "Naive",
            EngineKind::Merged => "Merged",
            EngineKind::MergedAligned => "Merged+Aligned",
        }
    }

    pub fn config(self) -> EngineConfig {
        match self {
            EngineKind::Uvm => EngineConfig::uvm_v100(),
            EngineKind::Naive => EngineConfig::emogi_v100().with_strategy(AccessStrategy::Naive),
            EngineKind::Merged => EngineConfig::emogi_v100().with_strategy(AccessStrategy::Merged),
            EngineKind::MergedAligned => EngineConfig::emogi_v100(),
        }
    }
}

/// Averaged measurements of one (graph, engine) cell.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    pub avg_ns: f64,
    pub avg_pcie_gbps: f64,
    pub avg_amplification: f64,
    /// Total zero-copy read requests across all sources.
    pub requests: u64,
    pub sizes: SizeHistogram,
}

/// The full matrix.
#[derive(Debug)]
pub struct BfsMatrix {
    pub cells: HashMap<(DatasetKey, EngineKind), Cell>,
    pub sources: usize,
}

impl BfsMatrix {
    pub fn get(&self, g: DatasetKey, e: EngineKind) -> &Cell {
        &self.cells[&(g, e)]
    }

    /// Speedup of `e` over the UVM baseline on `g` (Figure 9's metric).
    pub fn speedup_vs_uvm(&self, g: DatasetKey, e: EngineKind) -> f64 {
        self.get(g, EngineKind::Uvm).avg_ns / self.get(g, e).avg_ns
    }

    pub fn compute(ctx: &Context) -> BfsMatrix {
        let mut cells = HashMap::new();
        for key in DatasetKey::all() {
            let d = ctx.store.get(key);
            let sources = d.sources(ctx.sources);
            for engine in EngineKind::all() {
                eprintln!("  [matrix] BFS {} / {} ...", d.spec.symbol, engine.name());
                let mut eng = Engine::load(engine.config(), &d.graph);
                let dataset = eng.dataset_bytes();
                let mut cell = Cell::default();
                for &s in &sources {
                    let run = eng.bfs(s);
                    cell.avg_ns += run.stats.elapsed_ns as f64;
                    cell.avg_pcie_gbps += run.stats.avg_pcie_gbps;
                    cell.avg_amplification += run.stats.amplification(dataset);
                    cell.requests += run.stats.pcie_read_requests;
                    cell.sizes.merge(&run.stats.request_sizes);
                }
                let n = sources.len() as f64;
                cell.avg_ns /= n;
                cell.avg_pcie_gbps /= n;
                cell.avg_amplification /= n;
                cells.insert((key, engine), cell);
            }
        }
        BfsMatrix {
            cells,
            sources: ctx.sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_cells_and_orders_engines() {
        let ctx = Context::new(1, 32);
        let m = BfsMatrix::compute(&ctx);
        assert_eq!(m.cells.len(), 24);
        // On tiny scaled graphs the absolute ratios shift, but the merged
        // engines must still beat the naive one everywhere.
        for g in DatasetKey::all() {
            let naive = m.get(g, EngineKind::Naive).avg_ns;
            let merged = m.get(g, EngineKind::MergedAligned).avg_ns;
            assert!(merged < naive, "{g:?}: merged {merged} vs naive {naive}");
        }
    }
}
