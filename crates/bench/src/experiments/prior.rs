//! Table 3: comparison with HALO (Titan Xp) and Subway (V100, 4-byte
//! elements), row-for-row with the paper.

use super::apps::App;
use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_baselines::{HaloSystem, SubwayMode, SubwaySystem};
use emogi_core::EngineConfig;
use emogi_graph::DatasetKey;
use emogi_runtime::MachineConfig;

/// Paper-reported (work, app, graph, their time s, EMOGI time s, speedup).
const PAPER_ROWS: &[(&str, &str, &str, f64, f64, f64)] = &[
    ("HALO", "BFS", "ML", 9.54, 4.43, 2.15),
    ("HALO", "BFS", "FS", 8.27, 2.59, 3.19),
    ("HALO", "BFS", "SK", 2.17, 1.62, 1.34),
    ("HALO", "BFS", "UK5", 6.03, 4.00, 1.51),
    ("Subway", "SSSP", "GK", 20.96, 7.94, 2.64),
    ("Subway", "SSSP", "FS", 14.95, 6.97, 2.14),
    ("Subway", "SSSP", "SK", 8.99, 3.92, 2.30),
    ("Subway", "SSSP", "UK5", 25.78, 8.08, 3.19),
    ("Subway", "BFS", "GK", 6.88, 1.66, 4.14),
    ("Subway", "BFS", "FS", 4.22, 1.49, 2.83),
    ("Subway", "BFS", "SK", 1.69, 0.85, 1.99),
    ("Subway", "BFS", "UK5", 8.75, 1.85, 4.73),
    ("Subway", "CC", "GK", 6.34, 3.11, 2.04),
    ("Subway", "CC", "FS", 4.31, 2.75, 1.57),
];

fn key_of(sym: &str) -> DatasetKey {
    match sym {
        "GK" => DatasetKey::Gk,
        "GU" => DatasetKey::Gu,
        "FS" => DatasetKey::Fs,
        "ML" => DatasetKey::Ml,
        "SK" => DatasetKey::Sk,
        "UK5" => DatasetKey::Uk5,
        other => panic!("unknown dataset symbol {other}"),
    }
}

fn app_of(name: &str) -> App {
    match name {
        "BFS" => App::Bfs,
        "SSSP" => App::Sssp,
        "CC" => App::Cc,
        other => panic!("unknown app {other}"),
    }
}

/// Table 3, regenerated: same rows, our measured times and speedups next
/// to the paper's.
pub fn table3(ctx: &Context) -> Table {
    let mut t = Table::new(
        "table3",
        "Comparison with HALO (Titan Xp) and Subway (V100, 4-byte)",
        &[
            "work",
            "app",
            "graph",
            "theirs (ms)",
            "EMOGI (ms)",
            "speedup",
            "paper speedup",
        ],
    );
    for &(work, app_name, sym, _pt, _pe, pspeed) in PAPER_ROWS {
        let key = key_of(sym);
        let app = app_of(app_name);
        let d = ctx.store.get(key);
        eprintln!("  [table3] {work} {app_name} {sym} ...");
        let (their_ns, emogi_ns) = if work == "HALO" {
            // HALO rows run on the Titan Xp with 8-byte elements; both
            // sides re-measured on that GPU (§5.6).
            let halo = HaloSystem::new(
                EngineConfig::uvm_v100().with_machine(MachineConfig::titan_xp_gen3()),
                &d.graph,
                None,
            );
            let sources = d.sources(ctx.sources);
            let ht: u64 = sources.iter().map(|&s| halo.bfs(s).stats.elapsed_ns).sum();
            let cfg = EngineConfig::emogi_v100().with_machine(MachineConfig::titan_xp_gen3());
            let et = super::apps::run_app(cfg, &d, app, ctx.sources);
            (ht as f64 / sources.len() as f64, et)
        } else {
            // Subway rows: V100 with 4-byte elements on both sides.
            let weights = matches!(app, App::Sssp).then_some(d.weights.as_slice());
            let mut sub = SubwaySystem::new(
                MachineConfig::v100_gen3(),
                &d.graph,
                weights,
                SubwayMode::Async,
            );
            let st = match app {
                App::Cc => sub.cc().stats.elapsed_ns as f64,
                _ => {
                    let sources = d.sources(ctx.sources);
                    let total: u64 = sources
                        .iter()
                        .map(|&s| match app {
                            App::Bfs => sub.bfs(s).stats.elapsed_ns,
                            _ => sub.sssp(s).stats.elapsed_ns,
                        })
                        .sum();
                    total as f64 / sources.len() as f64
                }
            };
            let cfg = EngineConfig::emogi_v100().with_elem_bytes(4);
            let et = super::apps::run_app(cfg, &d, app, ctx.sources);
            (st, et)
        };
        t.row(vec![
            work.into(),
            app_name.into(),
            sym.into(),
            ms(their_ns as u64),
            ms(emogi_ns as u64),
            f(their_ns / emogi_ns),
            f(pspeed),
        ]);
    }
    t.note("paper: EMOGI is 1.34x-4.73x faster than the state of the art; HALO compared via published numbers (source unavailable), Subway re-run. Subway cannot run GU (OOM) or ML (>2^32 edges), so those rows do not exist");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_match_paper_layout_and_emogi_wins() {
        let ctx = Context::new(1, 32);
        let t = table3(&ctx);
        assert_eq!(t.rows.len(), PAPER_ROWS.len());
        for row in &t.rows {
            let speedup: f64 = row[5].parse().unwrap();
            assert!(
                speedup > 1.0,
                "EMOGI must beat {} on {} {} (got {speedup})",
                row[0],
                row[1],
                row[2]
            );
        }
    }
}
