//! The `overlap` experiment: pipelined (overlapped DMA/kernel) hybrid
//! execution against the synchronous hybrid baseline, on GK — the
//! skewed Table 2 graph whose recurring regions give the ski-rental
//! policy something to stage — across all four vertex programs.
//!
//! The pipelined engine predicts next iteration's stageable regions
//! from iteration-start state and streams them over an asynchronous
//! copy lane while the current kernel computes. A correct prediction
//! turns a synchronous bulk-copy wait into overlap (the staging latency
//! is *hidden*); a late one costs only the residual in-flight wait (a
//! *stall*); a wrong one costs only wasted speculative bytes. Outputs,
//! iteration counts and every traffic counter are bit-identical to the
//! synchronous path (`tests/pipeline_differential.rs` pins that); this
//! experiment measures the one thing allowed to change — wall time —
//! and reports how much staging latency the copy lane hid.
//!
//! The machine is scaled like the `hybrid` experiment so the edge list
//! oversubscribes cache and device memory even at reduced scale.

use super::scaled_machine;
use crate::table::{f, ms, pct};
use crate::{Context, Table};
use emogi_core::{Engine, EngineConfig};
use emogi_graph::DatasetKey;
use emogi_runtime::{PrefetchStats, RunStats};

/// Sources per BFS/SSSP cell: traversal programs only re-read regions
/// across runs, so each cell is a small multi-query scenario (the same
/// cross-traversal reuse pattern as the `hybrid` experiment).
const SOURCES: usize = 4;

/// Power iterations for the PageRank cell (matches the `pagerank`
/// experiment's damping).
const PR_ITERATIONS: u32 = 10;
const PR_DAMPING: f64 = 0.85;

/// One program's synchronous-vs-pipelined measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub program: &'static str,
    /// Total wall time of the synchronous hybrid runs, ns.
    pub sync_ns: u64,
    /// Total wall time of the pipelined hybrid runs, ns.
    pub pipe_ns: u64,
    /// Prefetch counters accumulated over the pipelined runs.
    pub prefetch: PrefetchStats,
}

impl Measurement {
    /// Synchronous time over pipelined time; > 1 means overlap won.
    pub fn speedup(&self) -> f64 {
        self.sync_ns as f64 / self.pipe_ns as f64
    }

    /// Fraction of the adopted stagings' copy latency that the copy
    /// lane hid behind kernel compute (the rest surfaced as residual
    /// in-flight stalls).
    pub fn hidden_frac(&self) -> f64 {
        let total = self.prefetch.hidden_ns + self.prefetch.stall_ns;
        if total == 0 {
            0.0
        } else {
            self.prefetch.hidden_ns as f64 / total as f64
        }
    }
}

/// All measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct OverlapResults {
    pub rows: Vec<Measurement>,
}

impl OverlapResults {
    /// Look up one program's row; panics naming the rows that exist.
    pub fn get(&self, program: &str) -> &Measurement {
        self.rows
            .iter()
            .find(|m| m.program == program)
            .unwrap_or_else(|| {
                let have: Vec<&str> = self.rows.iter().map(|m| m.program).collect();
                panic!("no overlap measurement for program {program:?}; measured: {have:?}")
            })
    }
}

fn cfg(ctx: &Context, pipelined: bool) -> EngineConfig {
    let c = EngineConfig::hybrid_v100()
        .with_machine(scaled_machine(ctx.scale))
        .with_elem_bytes(4);
    if pipelined {
        c.pipelined()
    } else {
        c
    }
}

/// Fold one run's stats into a cell total, asserting along the way that
/// the pipelined path moved exactly the bytes the synchronous one did
/// (the determinism contract this experiment rides on).
fn fold(total_ns: &mut u64, prefetch: &mut PrefetchStats, stats: &RunStats) {
    *total_ns += stats.elapsed_ns;
    *prefetch += stats.prefetch;
}

/// Run every program twice — synchronous hybrid, then pipelined hybrid —
/// on the same GK placement protocol.
pub fn measure(ctx: &Context) -> OverlapResults {
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(SOURCES);
    let mut rows = Vec::new();

    for program in ["multi-bfs", "multi-sssp", "cc", "pagerank"] {
        eprintln!("  [overlap] {program} GK ...");
        let mut cell = [
            (0u64, PrefetchStats::default()),
            (0u64, PrefetchStats::default()),
        ];
        let mut outputs: Vec<String> = Vec::new();
        for (i, pipelined) in [false, true].into_iter().enumerate() {
            let (total_ns, prefetch) = &mut cell[i];
            let mut engine = Engine::load(cfg(ctx, pipelined), &gk.graph);
            match program {
                "multi-bfs" => {
                    let mut digest = Vec::new();
                    for &s in &sources {
                        let run = engine.bfs(s);
                        fold(total_ns, prefetch, &run.stats);
                        digest.push(run.levels.iter().map(|&l| u64::from(l)).sum::<u64>());
                    }
                    outputs.push(format!("{digest:?}"));
                }
                "multi-sssp" => {
                    let mut digest = Vec::new();
                    for &s in &sources {
                        let run = engine.sssp(&gk.weights, s);
                        fold(total_ns, prefetch, &run.stats);
                        digest.push(run.dist.iter().map(|&d| u64::from(d)).sum::<u64>());
                    }
                    outputs.push(format!("{digest:?}"));
                }
                "cc" => {
                    let run = engine.cc();
                    fold(total_ns, prefetch, &run.stats);
                    outputs.push(format!("{:?}/{}", run.hook_passes, run.comp.len()));
                }
                _ => {
                    let run = engine.pagerank(PR_DAMPING, PR_ITERATIONS);
                    fold(total_ns, prefetch, &run.stats);
                    outputs.push(format!("{:?}", run.ranks.iter().sum::<f64>().to_bits()));
                }
            }
        }
        assert_eq!(
            outputs[0], outputs[1],
            "{program}: pipelined output diverged from synchronous"
        );
        rows.push(Measurement {
            program,
            sync_ns: cell[0].0,
            pipe_ns: cell[1].0,
            prefetch: cell[1].1,
        });
    }
    OverlapResults { rows }
}

/// The printable table.
pub fn overlap(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "overlap",
        "Pipelined (overlapped DMA/kernel) vs synchronous hybrid on GK",
        &[
            "program",
            "sync (ms)",
            "pipelined (ms)",
            "speedup",
            "prefetched MiB",
            "hit MiB",
            "wasted MiB",
            "latency hidden",
        ],
    );
    let mib = |b: u64| f(b as f64 / (1 << 20) as f64);
    for m in &r.rows {
        t.row(vec![
            m.program.into(),
            ms(m.sync_ns),
            ms(m.pipe_ns),
            f(m.speedup()),
            mib(m.prefetch.prefetched_bytes),
            mib(m.prefetch.hit_bytes),
            mib(m.prefetch.wasted_bytes),
            pct(m.hidden_frac()),
        ]);
    }
    t.note(
        "outputs, iteration counts and traffic counters are bit-identical between the \
         two columns (pinned by tests/pipeline_differential.rs); the pipelined engine \
         streams next iteration's predicted regions over an asynchronous copy lane \
         while the kernel computes, so adopted stagings cost only their un-hidden \
         residual instead of the full synchronous bulk-copy wait",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "measured")]
    fn missing_row_lookup_names_the_program_and_the_available_rows() {
        let r = OverlapResults { rows: Vec::new() };
        let _ = r.get("cc");
    }

    #[test]
    fn pipelining_beats_synchronous_staging_on_reuse() {
        let ctx = Context::new(1, 32);
        let r = measure(&ctx);

        // The tentpole claim: at least one reuse scenario must show a
        // real end-to-end win, and no program may get slower.
        let best = r
            .rows
            .iter()
            .map(|m| m.speedup())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best > 1.0,
            "no program sped up: {:?}",
            r.rows
                .iter()
                .map(|m| (m.program, m.speedup()))
                .collect::<Vec<_>>()
        );
        for m in &r.rows {
            assert!(
                m.pipe_ns <= m.sync_ns,
                "{}: pipelined {} ns slower than synchronous {} ns",
                m.program,
                m.pipe_ns,
                m.sync_ns
            );
        }

        // The win must come from actual adopted speculation, with some
        // staging latency genuinely hidden behind kernel compute.
        let winner = r
            .rows
            .iter()
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .unwrap();
        assert!(winner.prefetch.hit_regions > 0, "winner never adopted");
        assert!(winner.prefetch.hidden_ns > 0, "winner hid no latency");
        assert!(winner.hidden_frac() > 0.0);
    }
}
