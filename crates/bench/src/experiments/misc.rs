//! Tables 1 and 2 and Figure 6: platform configuration, datasets, and
//! degree CDFs.

use crate::table::{f, pct};
use crate::{Context, Table};
use emogi_gpu::GpuPreset;
use emogi_graph::{DatasetKey, DegreeCdf};
use emogi_sim::pcie::PcieGen;

/// Table 1: the simulated evaluation platform.
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        "Simulated evaluation platform (paper Table 1, scaled)",
        &["component", "simulated configuration"],
    );
    let v100 = GpuPreset::V100.config();
    let pcie = PcieGen::Gen3x16.config();
    t.row(vec!["GPU".into(), v100.name.into()]);
    t.row(vec![
        "GPU cache".into(),
        format!(
            "{} KiB, {}-way, 128 B lines / 32 B sectors",
            v100.cache.capacity_bytes >> 10,
            v100.cache.ways
        ),
    ]);
    t.row(vec![
        "Resident warps".into(),
        format!(
            "{} (x{} in-flight reads each)",
            v100.resident_warps, v100.max_pending_per_warp
        ),
    ]);
    t.row(vec![
        "Interconnect".into(),
        format!(
            "{} ({} tags, {} GB/s usable)",
            pcie.gen.name(),
            pcie.max_tags,
            f(pcie.usable_gbps())
        ),
    ]);
    t.row(vec![
        "Host memory".into(),
        "DDR4-2933 quad-channel, 64 B access granularity".into(),
    ]);
    t.row(vec![
        "UVM".into(),
        "4 KiB pages, 256-fault batches, density prefetch, block eviction".into(),
    ]);
    t.note("paper platform: dual Xeon Gold 6230, 256 GB DDR4-2933, Tesla V100 16 GB, PCIe 3.0; capacities here are scaled 1000x with the datasets");
    t
}

/// Table 2: the evaluation datasets (scaled stand-ins).
pub fn table2(ctx: &Context) -> Table {
    let mut t = Table::new(
        "table2",
        "Graph datasets (scaled stand-ins for paper Table 2)",
        &[
            "sym",
            "domain",
            "|V|",
            "|E|",
            "avg deg",
            "|E| MB",
            "|w| MB",
            "paper |E| GB",
            "dir",
        ],
    );
    for key in DatasetKey::all() {
        let d = ctx.store.get(key);
        t.row(vec![
            d.spec.symbol.into(),
            d.spec.domain.into(),
            d.graph.num_vertices().to_string(),
            d.graph.num_edges().to_string(),
            f(d.graph.average_degree()),
            f(d.graph.edge_list_bytes(8) as f64 / 1e6),
            f(d.graph.num_edges() as f64 * 4.0 / 1e6),
            f(d.spec.paper_edge_gb),
            if d.spec.undirected { "undir" } else { "dir" }.into(),
        ]);
    }
    t.note("GPU memory is scaled 16 GB -> 16 MiB alongside, so the out-of-memory ratios match the paper; SK remains the one graph that (almost) fits");
    t
}

/// Figure 6: number-of-edges CDF over vertex degree.
pub fn fig6(ctx: &Context) -> Table {
    let points = [8usize, 16, 32, 48, 64, 96];
    let headers: Vec<String> = std::iter::once("graph".to_string())
        .chain(points.iter().map(|p| format!("<= {p}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig6", "Edge-count CDF vs vertex degree", &hdr_refs);
    for key in DatasetKey::all() {
        let d = ctx.store.get(key);
        let cdf = DegreeCdf::new(&d.graph, 96);
        let mut row = vec![d.spec.symbol.to_string()];
        for &p in &points {
            row.push(pct(cdf.cdf_at(p)));
        }
        t.row(row);
    }
    t.note("paper: GU's edges all sit between degree 16 and 48; ML has nearly no edges below 96; GK is extremely skewed");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_platform() {
        let t = table1();
        assert!(t.rows.len() >= 5);
        assert!(t.to_string().contains("V100"));
    }

    #[test]
    fn table2_has_six_rows_with_ml_densest() {
        let ctx = Context::new(1, 16);
        let t = table2(&ctx);
        assert_eq!(t.rows.len(), 6);
        let deg: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        let ml = deg[3];
        assert!(deg.iter().all(|&d| d <= ml), "ML must be densest: {deg:?}");
    }

    #[test]
    fn fig6_gu_band_property() {
        let ctx = Context::new(1, 16);
        let t = fig6(&ctx);
        // GU row: <=8 tiny, <=48 near 100%.
        let gu = &t.rows[1];
        let at8: f64 = gu[1].trim_end_matches('%').parse().unwrap();
        let at48: f64 = gu[4].trim_end_matches('%').parse().unwrap();
        assert!(at8 < 5.0, "GU <=8: {at8}");
        assert!(at48 > 90.0, "GU <=48: {at48}");
    }
}
