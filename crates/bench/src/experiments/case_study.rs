//! Figures 5, 7, 8, 9, 10 — the §5.3 BFS case study, all derived from the
//! shared [`BfsMatrix`].

use super::matrix::{BfsMatrix, EngineKind};
use crate::table::{f, ms, pct};
use crate::{Context, Table};
use emogi_core::toy;
use emogi_graph::DatasetKey;
use emogi_runtime::MachineConfig;

/// Figure 5: distribution of PCIe read request sizes in BFS.
pub fn fig5(m: &BfsMatrix) -> Table {
    let mut t = Table::new(
        "fig5",
        "PCIe read request size distribution in BFS",
        &["graph", "impl", "32B", "64B", "96B", "128B"],
    );
    for g in DatasetKey::all() {
        for e in EngineKind::zero_copy() {
            let h = &m.get(g, e).sizes;
            t.row(vec![
                g.spec().symbol.into(),
                e.name().into(),
                pct(h.fraction(32)),
                pct(h.fraction(64)),
                pct(h.fraction(96)),
                pct(h.fraction(128)),
            ]);
        }
    }
    t.note("paper: Naive is ~all 32B; Merged reaches ~40% 128B on average (46.7% on ML); +Aligned raises the 128B share further except on GU (uniform low degrees cannot amortize the alignment fix)");
    t
}

/// Figure 7: total number of PCIe read requests in BFS.
pub fn fig7(m: &BfsMatrix) -> Table {
    let mut t = Table::new(
        "fig7",
        "Total PCIe read requests in BFS (all sources)",
        &[
            "graph",
            "Naive",
            "Merged",
            "Merged+Aligned",
            "merge cut",
            "align cut",
        ],
    );
    for g in DatasetKey::all() {
        let n = m.get(g, EngineKind::Naive).requests;
        let mg = m.get(g, EngineKind::Merged).requests;
        let al = m.get(g, EngineKind::MergedAligned).requests;
        t.row(vec![
            g.spec().symbol.into(),
            n.to_string(),
            mg.to_string(),
            al.to_string(),
            pct(1.0 - mg as f64 / n as f64),
            pct(1.0 - al as f64 / mg as f64),
        ]);
    }
    t.note("paper: merging cuts requests by up to 83.3% vs Naive; alignment by up to a further 28.8% (ML)");
    t
}

/// Figure 8: average PCIe bandwidth during BFS.
pub fn fig8(ctx: &Context, m: &BfsMatrix) -> Table {
    let mut t = Table::new(
        "fig8",
        "Average PCIe bandwidth during BFS (GB/s)",
        &["graph", "UVM", "Naive", "Merged", "Merged+Aligned"],
    );
    for g in DatasetKey::all() {
        t.row(vec![
            g.spec().symbol.into(),
            f(m.get(g, EngineKind::Uvm).avg_pcie_gbps),
            f(m.get(g, EngineKind::Naive).avg_pcie_gbps),
            f(m.get(g, EngineKind::Merged).avg_pcie_gbps),
            f(m.get(g, EngineKind::MergedAligned).avg_pcie_gbps),
        ]);
    }
    let peak = toy::run_memcpy_reference(MachineConfig::v100_gen3(), (64 << 20) / ctx.scale as u64);
    t.note(format!(
        "cudaMemcpy peak on this link: {} GB/s (paper: 12.3)",
        f(peak)
    ));
    t.note("paper: UVM ~9, Naive up to 4.7, Merged ~11, +Aligned adds 0.5-1 GB/s; averages at 1/1000 scale sit lower because short kernel launches leave latency-bound phases unamortized");
    t
}

/// Figure 9: BFS performance normalized to the UVM baseline.
pub fn fig9(m: &BfsMatrix) -> Table {
    let mut t = Table::new(
        "fig9",
        "BFS speedup over UVM baseline",
        &[
            "graph",
            "Naive",
            "Merged",
            "Merged+Aligned",
            "time UVM (ms)",
            "time M+A (ms)",
        ],
    );
    let mut avg = [0.0f64; 3];
    for g in DatasetKey::all() {
        let s: Vec<f64> = EngineKind::zero_copy()
            .iter()
            .map(|&e| m.speedup_vs_uvm(g, e))
            .collect();
        for (a, v) in avg.iter_mut().zip(&s) {
            *a += v;
        }
        t.row(vec![
            g.spec().symbol.into(),
            f(s[0]),
            f(s[1]),
            f(s[2]),
            ms(m.get(g, EngineKind::Uvm).avg_ns as u64),
            ms(m.get(g, EngineKind::MergedAligned).avg_ns as u64),
        ]);
    }
    let n = DatasetKey::all().len() as f64;
    t.row(vec![
        "Avg".into(),
        f(avg[0] / n),
        f(avg[1] / n),
        f(avg[2] / n),
        "-".into(),
        "-".into(),
    ]);
    t.note("paper averages: Naive 0.73x, Merged 3.24x, Merged+Aligned 3.56x; SK stands out low because it almost fits in GPU memory");
    t
}

/// Figure 10: I/O read amplification, UVM vs EMOGI.
pub fn fig10(m: &BfsMatrix) -> Table {
    let mut t = Table::new(
        "fig10",
        "I/O read amplification in BFS (host bytes moved / dataset size)",
        &["graph", "UVM", "EMOGI (Merged+Aligned)"],
    );
    for g in DatasetKey::all() {
        t.row(vec![
            g.spec().symbol.into(),
            f(m.get(g, EngineKind::Uvm).avg_amplification),
            f(m.get(g, EngineKind::MergedAligned).avg_amplification),
        ]);
    }
    t.note("paper: UVM up to 5.16x (FS), 2.28x on ML, 1.14x on SK (almost fits); EMOGI never exceeds 1.31x. Scaled graphs have shallower BFS trees, so UVM re-migration (and thus its amplification) is milder here — the UVM baseline is, if anything, flattered");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_tables_have_expected_shape() {
        let ctx = Context::new(1, 32);
        let m = BfsMatrix::compute(&ctx);
        assert_eq!(fig5(&m).rows.len(), 18);
        assert_eq!(fig7(&m).rows.len(), 6);
        assert_eq!(fig8(&ctx, &m).rows.len(), 6);
        assert_eq!(fig9(&m).rows.len(), 7); // 6 graphs + average
        assert_eq!(fig10(&m).rows.len(), 6);
    }

    #[test]
    fn emogi_amplification_stays_low_even_at_tiny_scale() {
        let ctx = Context::new(1, 32);
        let m = BfsMatrix::compute(&ctx);
        for g in DatasetKey::all() {
            let amp = m.get(g, EngineKind::MergedAligned).avg_amplification;
            assert!(amp < 2.0, "{g:?} amplification {amp}");
        }
    }
}
