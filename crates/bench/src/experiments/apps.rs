//! Figures 11 and 12: beyond BFS (SSSP, CC) and PCIe 4.0 scaling.

use super::matrix::{BfsMatrix, EngineKind};
use crate::table::f;
use crate::{Context, Table};
use emogi_core::{Engine, EngineConfig};
use emogi_graph::{Dataset, DatasetKey};
use emogi_runtime::MachineConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    Sssp,
    Bfs,
    Cc,
}

impl App {
    pub fn name(self) -> &'static str {
        match self {
            App::Sssp => "SSSP",
            App::Bfs => "BFS",
            App::Cc => "CC",
        }
    }

    /// The graphs the paper evaluates this app on (§5.4: CC skips the
    /// directed SK/UK5).
    pub fn graphs(self) -> Vec<DatasetKey> {
        match self {
            App::Cc => DatasetKey::undirected().to_vec(),
            _ => DatasetKey::all().to_vec(),
        }
    }
}

/// Average elapsed ns of `app` on `d` under `cfg` over `n` sources. The
/// graph is placed once; every source reuses the placement.
pub fn run_app(cfg: EngineConfig, d: &Dataset, app: App, n: usize) -> f64 {
    let mut engine = Engine::load(cfg, &d.graph);
    match app {
        App::Cc => engine.cc().stats.elapsed_ns as f64,
        App::Bfs | App::Sssp => {
            let sources = d.sources(n);
            let total: u64 = sources
                .iter()
                .map(|&s| match app {
                    App::Bfs => engine.bfs(s).stats.elapsed_ns,
                    _ => engine.sssp(&d.weights, s).stats.elapsed_ns,
                })
                .sum();
            total as f64 / sources.len() as f64
        }
    }
}

/// Figure 11: EMOGI vs UVM across SSSP / BFS / CC.
pub fn fig11(ctx: &Context) -> Table {
    fig11_with_bfs(ctx, None)
}

/// Like [`fig11`], reusing an already-computed BFS matrix if available.
pub fn fig11_with_bfs(ctx: &Context, bfs: Option<&BfsMatrix>) -> Table {
    let mut t = Table::new(
        "fig11",
        "EMOGI speedup over UVM across applications",
        &["app", "graph", "UVM (ms)", "EMOGI (ms)", "speedup"],
    );
    let mut total = 0.0;
    let mut count = 0usize;
    for app in [App::Sssp, App::Bfs, App::Cc] {
        for g in app.graphs() {
            let d = ctx.store.get(g);
            let (uvm_ns, emogi_ns) = match (app, bfs) {
                (App::Bfs, Some(m)) => (
                    m.get(g, EngineKind::Uvm).avg_ns,
                    m.get(g, EngineKind::MergedAligned).avg_ns,
                ),
                _ => {
                    eprintln!("  [fig11] {} / {} ...", app.name(), d.spec.symbol);
                    (
                        run_app(EngineConfig::uvm_v100(), &d, app, ctx.sources),
                        run_app(EngineConfig::emogi_v100(), &d, app, ctx.sources),
                    )
                }
            };
            let speedup = uvm_ns / emogi_ns;
            total += speedup;
            count += 1;
            t.row(vec![
                app.name().into(),
                g.spec().symbol.into(),
                f(uvm_ns / 1e6),
                f(emogi_ns / 1e6),
                f(speedup),
            ]);
        }
    }
    t.row(vec![
        "Avg".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f(total / count as f64),
    ]);
    t.note("paper: EMOGI is 2.92x faster than UVM on average; CC gains least because streaming the whole edge list gives UVM spatial locality too");
    t
}

/// Figure 12: PCIe 3.0 vs 4.0 on the A100 platform, UVM vs EMOGI,
/// normalized to UVM+PCIe3.0 per (app, graph).
pub fn fig12(ctx: &Context) -> Table {
    fig12_inner(ctx).0
}

/// Implementation that also returns the (UVM, EMOGI) gen3→gen4 scaling
/// factors for assertions.
pub fn fig12_inner(ctx: &Context) -> (Table, f64, f64) {
    let mut t = Table::new(
        "fig12",
        "PCIe 3.0 vs 4.0 scaling on A100 (normalized to UVM+3.0)",
        &[
            "app",
            "graph",
            "UVM 3.0",
            "EMOGI 3.0",
            "UVM 4.0",
            "EMOGI 4.0",
        ],
    );
    let mut uvm_scale = 0.0;
    let mut emogi_scale = 0.0;
    let mut count = 0usize;
    for app in [App::Sssp, App::Bfs, App::Cc] {
        for g in app.graphs() {
            let d = ctx.store.get(g);
            eprintln!("  [fig12] {} / {} ...", app.name(), d.spec.symbol);
            let run = |machine: MachineConfig, uvm: bool| {
                let cfg = if uvm {
                    EngineConfig::uvm_v100().with_machine(machine)
                } else {
                    EngineConfig::emogi_v100().with_machine(machine)
                };
                run_app(cfg, &d, app, ctx.sources)
            };
            let u3 = run(MachineConfig::a100_gen3(), true);
            let e3 = run(MachineConfig::a100_gen3(), false);
            let u4 = run(MachineConfig::a100_gen4(), true);
            let e4 = run(MachineConfig::a100_gen4(), false);
            uvm_scale += u3 / u4;
            emogi_scale += e3 / e4;
            count += 1;
            t.row(vec![
                app.name().into(),
                g.spec().symbol.into(),
                f(1.0),
                f(u3 / e3),
                f(u3 / u4),
                f(u3 / e4),
            ]);
        }
    }
    let n = count as f64;
    let (u, e) = (uvm_scale / n, emogi_scale / n);
    t.note(format!(
        "measured gen3→gen4 scaling: UVM {}x, EMOGI {}x (paper: UVM 1.53x — fault handler bound; EMOGI 1.9x — scales with the link)",
        f(u),
        f(e)
    ));
    (t, u, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_has_16_combos_plus_average() {
        let ctx = Context::new(1, 32);
        let t = fig11(&ctx);
        assert_eq!(t.rows.len(), 6 + 6 + 4 + 1);
        // EMOGI wins on average even at tiny scale.
        let avg: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(avg > 1.0, "average speedup {avg}");
    }

    #[test]
    fn fig12_produces_positive_scaling_factors() {
        // At 1/32 scale every graph fits in the A100 pool, so the
        // absolute factors are not meaningful; the full-scale numbers are
        // asserted by the release-mode repro run. Here: shape + sanity.
        let ctx = Context::new(1, 32);
        let (t, u, e) = fig12_inner(&ctx);
        assert_eq!(t.rows.len(), 16);
        assert!(u > 0.8, "UVM scaling {u}");
        assert!(e > 0.8, "EMOGI scaling {e}");
    }
}
