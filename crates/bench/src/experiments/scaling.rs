//! The `scaling` experiment: sharded multi-GPU BFS on the skewed GK
//! graph — the shape of the paper's multi-GPU figure (§5.7).
//!
//! A burst of BFS traversals runs on 1, 2 and 4 simulated GPUs under
//! both vertex partitioners. Each device expands only the frontier
//! vertices it owns, reading their neighbour lists over its own PCIe
//! link; between iterations the devices exchange activated
//! `(vertex, level)` pairs over the NVLink-class peer link. Zero-copy
//! traversal keeps scaling because the per-link traffic shrinks with
//! the shard — near-linearly when the degree-balanced partitioner
//! equalizes per-shard edge counts and mega-hub lists are expanded
//! cooperatively ([`emogi_core::sharded::HUB_SPLIT_DEGREE`]), visibly
//! worse under the contiguous partitioner on this skewed graph.
//!
//! Every sharded run's levels are asserted bit-identical to the CPU
//! reference, per source, on every invocation.

use super::scaled_machine;
use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_core::sharded::{ShardedConfig, ShardedEngine};
use emogi_graph::{algo, DatasetKey, PartitionStrategy};

/// BFS traversals per (devices, partitioner) cell.
const BURST: usize = 4;

/// Simulated GPU counts, the paper's 1/2/4 sweep.
pub const DEVICE_COUNTS: &[usize] = &[1, 2, 4];

/// One (devices, partitioner) measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Simulated GPUs.
    pub devices: usize,
    /// Partitioner display name.
    pub partition: &'static str,
    /// Total simulated time for the burst, ns (barrier-aligned wall
    /// clock per traversal, summed over the burst).
    pub total_ns: u64,
    /// Host→GPU payload bytes summed over every device's link.
    pub host_bytes: u64,
    /// Busiest single link's payload bytes (the imbalance witness).
    pub max_link_bytes: u64,
    /// Inter-device exchange bytes over the burst.
    pub exchange_bytes: u64,
}

/// All measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct ScalingResults {
    /// Every (devices, partitioner) cell.
    pub rows: Vec<Measurement>,
}

impl ScalingResults {
    /// Look up one cell; panics with the missing key *and* the available
    /// cells so a bench failure is diagnosable at a glance.
    pub fn get(&self, devices: usize, partition: &str) -> &Measurement {
        self.rows
            .iter()
            .find(|m| m.devices == devices && m.partition == partition)
            .unwrap_or_else(|| {
                let have: Vec<String> = self
                    .rows
                    .iter()
                    .map(|m| format!("{}x/{}", m.devices, m.partition))
                    .collect();
                panic!(
                    "no scaling measurement for {devices} devices / partitioner \
                     {partition:?}; measured cells: {have:?}"
                )
            })
    }

    /// Burst speedup of `devices` GPUs over the same partitioner's
    /// single-GPU baseline.
    pub fn speedup(&self, devices: usize, partition: &str) -> f64 {
        let base = self.get(1, partition).total_ns;
        base as f64 / self.get(devices, partition).total_ns as f64
    }
}

/// Run every (devices, partitioner) cell, asserting output bit-identity
/// against the CPU reference as it goes.
pub fn measure(ctx: &Context) -> ScalingResults {
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(BURST);
    let mut rows = Vec::new();
    for &devices in DEVICE_COUNTS {
        for strategy in PartitionStrategy::all() {
            eprintln!(
                "  [scaling] {} device(s), {} partition ...",
                devices,
                strategy.name()
            );
            let cfg = ShardedConfig::emogi_v100(devices)
                .with_machine(scaled_machine(ctx.scale))
                .with_partition(strategy);
            let mut engine = ShardedEngine::load(cfg, &gk.graph);
            let mut total_ns = 0u64;
            let mut host_bytes = 0u64;
            let mut per_link = vec![0u64; devices];
            let mut exchange_bytes = 0u64;
            for &s in &sources {
                let run = engine.bfs(s);
                assert_eq!(
                    run.levels,
                    algo::bfs_levels(&gk.graph, s),
                    "sharded BFS from {s} on {devices} devices diverged"
                );
                total_ns += run.stats.elapsed_ns;
                host_bytes += run.stats.host_bytes;
                for (d, stats) in run.per_device.iter().enumerate() {
                    per_link[d] += stats.host_bytes;
                }
                exchange_bytes += run.exchange.bytes;
            }
            rows.push(Measurement {
                devices,
                partition: strategy.name(),
                total_ns,
                host_bytes,
                max_link_bytes: per_link.iter().copied().max().unwrap_or(0),
                exchange_bytes,
            });
        }
    }
    ScalingResults { rows }
}

/// The printable table.
pub fn scaling(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "scaling",
        "Multi-GPU sharded BFS on GK: 1/2/4 simulated V100s, both partitioners",
        &[
            "devices",
            "partition",
            "time (ms)",
            "speedup",
            "PCIe MB (all links)",
            "busiest link MB",
            "exchange MB",
        ],
    );
    for m in &r.rows {
        t.row(vec![
            m.devices.to_string(),
            m.partition.into(),
            ms(m.total_ns),
            f(r.speedup(m.devices, m.partition)),
            format!("{:.2}", m.host_bytes as f64 / 1e6),
            format!("{:.2}", m.max_link_bytes as f64 / 1e6),
            format!("{:.2}", m.exchange_bytes as f64 / 1e6),
        ]);
    }
    t.note(
        "each device reads only its frontier shard's neighbour lists over its own \
         PCIe link and exchanges activated (vertex, level) pairs over the peer link \
         between iterations; degree-balanced sharding equalizes per-link traffic on \
         the skewed graph, which is what keeps the scaling near-linear; outputs are \
         asserted bit-identical to the CPU reference on every invocation",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_scales_near_linearly_with_degree_balanced_shards() {
        let ctx = Context::new(1, 32);
        let r = measure(&ctx); // bit-identity asserted inside
        let db = PartitionStrategy::DegreeBalanced.name();
        let s2 = r.speedup(2, db);
        let s4 = r.speedup(4, db);
        assert!(s2 >= 1.6, "2-device speedup {s2:.2} below the 1.6x bar");
        assert!(s4 >= 2.5, "4-device speedup {s4:.2} below the 2.5x bar");
        assert!(s4 > s2, "scaling must keep improving with devices");
        // The exchange is the price of sharding: present, but small
        // relative to the edge-list traffic it parallelizes.
        let m4 = r.get(4, db);
        assert!(m4.exchange_bytes > 0);
        assert!(m4.exchange_bytes < m4.host_bytes / 2);
    }

    #[test]
    fn degree_balanced_beats_contiguous_on_the_skewed_graph() {
        let ctx = Context::new(1, 32);
        let r = measure(&ctx);
        let db = PartitionStrategy::DegreeBalanced.name();
        let ct = PartitionStrategy::Contiguous.name();
        // The busiest link carries less of the load when shards are
        // edge-balanced rather than vertex-balanced.
        assert!(
            r.get(4, db).max_link_bytes <= r.get(4, ct).max_link_bytes,
            "degree-balanced busiest link must not exceed contiguous"
        );
        assert!(
            r.speedup(4, db) >= r.speedup(4, ct),
            "degree-balanced speedup {:.2} vs contiguous {:.2}",
            r.speedup(4, db),
            r.speedup(4, ct)
        );
    }

    #[test]
    #[should_panic(expected = "measured cells")]
    fn missing_cell_lookup_names_the_key_and_the_available_cells() {
        let r = ScalingResults { rows: Vec::new() };
        let _ = r.get(2, "degree-balanced");
    }
}
