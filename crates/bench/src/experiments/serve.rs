//! The `serve` experiment: batched multi-query serving vs sequential
//! execution of the same queries on the same shared placement.
//!
//! The workload is the analytics-service pattern the `emogi_serve`
//! crate exists for: a burst of N concurrent frontier-driven queries
//! (BFS and SSSP) against one placed graph. Sequential execution runs
//! them one at a time on one engine (so it still enjoys the warm cache
//! and, in hybrid mode, previously staged regions); batched execution
//! submits the burst to a [`QueryServer`], whose scheduler groups the
//! compatible queries into one [`emogi_core::BatchKernel`] run per
//! iteration — each edge-list region crosses PCIe once and serves every
//! query touching it.
//!
//! The skewed GK graph makes the case: after a level or two every BFS
//! frontier contains the same hub vertices, so the union fetch is much
//! smaller than N solo fetches. Measured: total PCIe bytes (saved),
//! wall time and queries/second — with per-query results asserted
//! bit-identical between the two executions on every run.

use super::scaled_machine;
use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_core::{AccessMode, Engine, EngineConfig};
use emogi_graph::DatasetKey;
use emogi_runtime::RunStats;
use emogi_serve::{Query, QueryServer, ServerConfig};
use std::sync::Arc;

/// Queries per burst.
const BURST: usize = 8;

/// EMOGI-family engines of this experiment.
const MODES: &[(&str, AccessMode)] = &[
    ("Merged+Aligned", AccessMode::MergedAligned),
    ("Hybrid", AccessMode::Hybrid),
];

/// One (scenario, mode, execution) measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name (`bfs-burst`, `sssp-burst`).
    pub scenario: &'static str,
    /// Engine mode name.
    pub mode: &'static str,
    /// `Sequential` or `Batched`.
    pub execution: &'static str,
    /// Queries in the burst.
    pub queries: usize,
    /// Total simulated time serving the burst, ns.
    pub total_ns: u64,
    /// Host→GPU payload bytes (shared fetches counted once).
    pub host_bytes: u64,
    /// Zero-copy PCIe read requests.
    pub pcie_read_requests: u64,
}

impl Measurement {
    /// Serving throughput, queries per simulated second.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / (self.total_ns as f64 * 1e-9)
    }
}

/// All measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct ServeResults {
    /// Every (scenario, mode, execution) cell.
    pub rows: Vec<Measurement>,
}

impl ServeResults {
    /// Look up one cell; panics naming the missing
    /// scenario/mode/execution *and* the cells that were measured, so a
    /// bench failure is diagnosable at a glance.
    pub fn get(&self, scenario: &str, mode: &str, execution: &str) -> &Measurement {
        self.rows
            .iter()
            .find(|m| m.scenario == scenario && m.mode == mode && m.execution == execution)
            .unwrap_or_else(|| {
                let have: Vec<String> = self
                    .rows
                    .iter()
                    .map(|m| format!("{}/{}/{}", m.scenario, m.mode, m.execution))
                    .collect();
                panic!(
                    "no serve measurement for scenario {scenario:?} / mode {mode:?} / \
                     execution {execution:?}; measured cells: {have:?}"
                )
            })
    }
}

fn cfg(ctx: &Context, mode: AccessMode) -> EngineConfig {
    EngineConfig::emogi_v100()
        .with_mode(mode)
        .with_machine(scaled_machine(ctx.scale))
}

/// Run every (scenario, mode, execution) cell, asserting per-query
/// bit-identity between sequential and batched execution as it goes.
pub fn measure(ctx: &Context) -> ServeResults {
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(BURST);
    let weights = Arc::new(gk.weights.clone());
    let mut rows = Vec::new();

    for &(mode_name, mode) in MODES {
        let engine_cfg = cfg(ctx, mode);
        measure_scenario(
            Cell {
                scenario: "bfs-burst",
                mode: mode_name,
                engine_cfg: engine_cfg.clone(),
                graph: &gk.graph,
                sources: &sources,
            },
            &mut rows,
            |engine, s| {
                let run = engine.bfs(s);
                (run.output.levels, run.stats)
            },
            |server, s| server.submit(Query::bfs(s)).expect("admission"),
            |result| {
                let run = result.into_bfs();
                (run.output.levels, run.stats)
            },
        );
        let w = Arc::clone(&weights);
        measure_scenario(
            Cell {
                scenario: "sssp-burst",
                mode: mode_name,
                engine_cfg,
                graph: &gk.graph,
                sources: &sources,
            },
            &mut rows,
            |engine, s| {
                let run = engine.sssp(&weights, s);
                (run.output.dist, run.stats)
            },
            |server, s| {
                server
                    .submit(Query::sssp(s, Arc::clone(&w)))
                    .expect("admission")
            },
            |result| {
                let run = result.into_sssp();
                (run.output.dist, run.stats)
            },
        );
    }
    ServeResults { rows }
}

/// One (scenario, mode) cell's fixed inputs.
struct Cell<'a> {
    scenario: &'static str,
    mode: &'static str,
    engine_cfg: EngineConfig,
    graph: &'a emogi_graph::CsrGraph,
    sources: &'a [emogi_graph::VertexId],
}

/// Measure one cell: the burst sequentially on a fresh engine, then
/// batched on a fresh [`QueryServer`], asserting per-query bit-identity
/// (output vector and iteration count) between the two. The three
/// closures are the only program-kind-specific parts: run one query
/// solo, submit one query, and unwrap one result — both programs reduce
/// to a `Vec<u32>` output (levels / distances).
fn measure_scenario<'g>(
    cell: Cell<'g>,
    rows: &mut Vec<Measurement>,
    mut solo: impl FnMut(&mut Engine<'g>, emogi_graph::VertexId) -> (Vec<u32>, RunStats),
    mut submit: impl FnMut(&mut QueryServer<'g>, emogi_graph::VertexId) -> emogi_serve::QueryId,
    mut take: impl FnMut(emogi_serve::QueryOutcome) -> (Vec<u32>, RunStats),
) {
    eprintln!(
        "  [serve] {} {} ({} queries) ...",
        cell.scenario,
        cell.mode,
        cell.sources.len()
    );
    let mut seq = Engine::load(cell.engine_cfg.clone(), cell.graph);
    let mut seq_ns = 0u64;
    let mut seq_bytes = 0u64;
    let mut seq_reqs = 0u64;
    let seq_runs: Vec<(Vec<u32>, RunStats)> = cell
        .sources
        .iter()
        .map(|&s| {
            let (out, stats) = solo(&mut seq, s);
            seq_ns += stats.elapsed_ns;
            seq_bytes += stats.host_bytes;
            seq_reqs += stats.pcie_read_requests;
            (out, stats)
        })
        .collect();
    rows.push(Measurement {
        scenario: cell.scenario,
        mode: cell.mode,
        execution: "Sequential",
        queries: cell.sources.len(),
        total_ns: seq_ns,
        host_bytes: seq_bytes,
        pcie_read_requests: seq_reqs,
    });

    let mut server = QueryServer::new(
        ServerConfig {
            max_batch: BURST,
            ..ServerConfig::default()
        },
        Engine::load(cell.engine_cfg, cell.graph),
    );
    let ids: Vec<_> = cell
        .sources
        .iter()
        .map(|&s| submit(&mut server, s))
        .collect();
    server.run_pending();
    for (id, (want, want_stats)) in ids.into_iter().zip(&seq_runs) {
        let (got, got_stats) = take(server.take(id).expect("served"));
        assert_eq!(
            &got, want,
            "{}/{}: batched result must be bit-identical",
            cell.scenario, cell.mode
        );
        assert_eq!(got_stats.kernel_launches, want_stats.kernel_launches);
    }
    let st = server.stats();
    // The server's engine is fresh and served only this burst, so its
    // lifetime monitor equals the burst's request count.
    let reqs = server.engine().machine.monitor.read_requests;
    rows.push(Measurement {
        scenario: cell.scenario,
        mode: cell.mode,
        execution: "Batched",
        queries: cell.sources.len(),
        total_ns: st.busy_ns,
        host_bytes: st.host_bytes,
        pcie_read_requests: reqs,
    });
}

/// The printable table.
pub fn serve(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "serve",
        "Concurrent query serving: batched multi-query execution vs sequential (GK burst)",
        &[
            "scenario",
            "mode",
            "execution",
            "queries",
            "time (ms)",
            "queries/s",
            "PCIe MB",
            "PCIe bytes saved",
        ],
    );
    for m in &r.rows {
        let seq_bytes = r.get(m.scenario, m.mode, "Sequential").host_bytes;
        let saved = if m.execution == "Batched" && seq_bytes > 0 {
            format!(
                "{:.1}%",
                100.0 * (seq_bytes.saturating_sub(m.host_bytes)) as f64 / seq_bytes as f64
            )
        } else {
            "—".to_string()
        };
        t.row(vec![
            m.scenario.into(),
            m.mode.into(),
            m.execution.into(),
            m.queries.to_string(),
            ms(m.total_ns),
            f(m.queries_per_sec()),
            format!("{:.2}", m.host_bytes as f64 / 1e6),
            saved,
        ]);
    }
    t.note(
        "batched execution merges the per-iteration frontiers of all queries in a batch, \
         so each edge-list region crosses PCIe once and serves every query touching it; \
         per-query results are asserted bit-identical to the sequential runs on every \
         invocation of this experiment",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "measured cells")]
    fn missing_cell_lookup_names_the_key_and_the_available_cells() {
        let r = ServeResults { rows: Vec::new() };
        let _ = r.get("bfs-burst", "Hybrid", "Batched");
    }

    #[test]
    fn batching_saves_pcie_bytes_and_raises_throughput() {
        let ctx = Context::new(1, 32);
        let r = measure(&ctx); // bit-identity asserted inside
        for &(mode_name, _) in MODES {
            for scenario in ["bfs-burst", "sssp-burst"] {
                let seq = r.get(scenario, mode_name, "Sequential");
                let bat = r.get(scenario, mode_name, "Batched");
                assert!(
                    bat.host_bytes < seq.host_bytes,
                    "{scenario}/{mode_name}: batched {} bytes must beat sequential {}",
                    bat.host_bytes,
                    seq.host_bytes
                );
                assert!(
                    bat.total_ns < seq.total_ns,
                    "{scenario}/{mode_name}: batched {} ns must beat sequential {}",
                    bat.total_ns,
                    seq.total_ns
                );
                assert!(bat.queries_per_sec() > seq.queries_per_sec());
            }
        }
    }
}
