//! The `tiering` experiment: a bigger-than-host-DRAM graph served from
//! the three-tier memory hierarchy (HBM staging pool / pinned host DRAM
//! / CXL-class external memory) against the naive host-spill baseline.
//!
//! Host capacity is capped at ~60% of GK's edge list (aligned to the
//! spill granule), so the cold tail of the edge list homes in the CXL
//! tier. Repeated BFS traversals — the place-once, query-many pattern —
//! then compare:
//!
//! * **host-spill** — pure Merged+Aligned zero-copy: host-homed edges
//!   read over PCIe, spilled edges read in place over the µs-latency
//!   CXL link on *every* traversal;
//! * **three-tier** — the hybrid engine's N-tier ski-rental policy:
//!   recurring spilled regions are bulk-promoted into the HBM pool over
//!   the CXL link once and re-read at HBM speed, host-homed regions
//!   stage or rent per the two-tier policy;
//! * **two-tier (unbounded host)** — reference: the same traversals with
//!   host DRAM big enough to hold everything, i.e. what losing host
//!   capacity costs in the first place.
//!
//! Every engine's BFS levels are folded into an FNV-1a digest and the
//! digests are asserted equal in-run: tier placement may move bytes,
//! never results.

use super::scaled_machine;
use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_core::layout::SPILL_ALIGN;
use emogi_core::{AccessMode, Engine, EngineConfig};
use emogi_graph::DatasetKey;
use emogi_sim::CxlConfig;

/// Sources per engine: the scenario is about cross-traversal reuse of
/// promoted regions, so it is fixed rather than taken from the context.
const SOURCES: usize = 4;

/// One engine's measurement over the whole traversal series.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub engine: &'static str,
    pub total_ns: u64,
    /// Zero-copy + DMA payload bytes over the PCIe lane.
    pub pcie_bytes: u64,
    /// Demand reads + bulk promotions served by the CXL tier.
    pub cxl_bytes: u64,
    /// Regions the transfer manager staged into the HBM pool.
    pub staged_regions: u64,
    /// FNV-1a digest of every BFS level array, in source order.
    pub digest: u64,
}

/// All measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct TieringResults {
    /// Bytes of the edge list homed in pinned host DRAM.
    pub host_home_bytes: u64,
    /// Bytes of the edge list spilled to the CXL tier.
    pub cxl_home_bytes: u64,
    pub rows: Vec<Measurement>,
}

impl TieringResults {
    /// Look up one engine's row; panics naming the rows that exist.
    pub fn get(&self, engine: &str) -> &Measurement {
        self.rows
            .iter()
            .find(|m| m.engine == engine)
            .unwrap_or_else(|| {
                let have: Vec<&str> = self.rows.iter().map(|m| m.engine).collect();
                panic!("no tiering measurement for engine {engine:?}; have {have:?}")
            })
    }
}

fn fnv1a(digest: &mut u64, words: &[u32]) {
    for &w in words {
        *digest ^= w as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn run_series(mut engine: Engine, sources: &[u32]) -> Measurement {
    let mut total_ns = 0u64;
    let mut pcie_bytes = 0u64;
    let mut cxl_bytes = 0u64;
    let mut staged = 0u64;
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for &s in sources {
        let run = engine.bfs(s);
        total_ns += run.stats.elapsed_ns;
        pcie_bytes += run.stats.host_bytes;
        cxl_bytes += run.stats.cxl_bytes;
        staged += run.stats.transfer.staged_regions;
        fnv1a(&mut digest, &run.levels);
    }
    Measurement {
        engine: "",
        total_ns,
        pcie_bytes,
        cxl_bytes,
        staged_regions: staged,
        digest,
    }
}

/// Run every engine over the same traversal series and check the
/// digests agree.
pub fn measure(ctx: &Context) -> TieringResults {
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(SOURCES);
    let edge_bytes = gk.graph.num_edges() as u64 * 8;

    // Cap host DRAM at ~60% of the edge list, aligned to the spill
    // granule, so a real tail lands in the CXL tier.
    let host_cap = (edge_bytes * 3 / 5 / SPILL_ALIGN * SPILL_ALIGN).max(SPILL_ALIGN);
    assert!(
        host_cap < edge_bytes,
        "GK at scale {} fits in the capped host DRAM; nothing would spill",
        ctx.scale
    );
    let spilled = scaled_machine(ctx.scale)
        .with_cxl(CxlConfig::external_x8())
        .with_host_capacity(host_cap);

    eprintln!(
        "  [tiering] GK, {:.1} MiB edges, host cap {:.1} MiB, {} sources ...",
        edge_bytes as f64 / (1 << 20) as f64,
        host_cap as f64 / (1 << 20) as f64,
        sources.len()
    );

    let mut rows = Vec::new();

    let baseline_cfg = EngineConfig::emogi_v100()
        .with_mode(AccessMode::MergedAligned)
        .with_machine(spilled.clone());
    let mut m = run_series(Engine::load(baseline_cfg, &gk.graph), &sources);
    m.engine = "host-spill";
    rows.push(m);

    let tiered_cfg = EngineConfig::emogi_v100()
        .with_mode(AccessMode::Hybrid)
        .with_machine(spilled);
    let mut m = run_series(Engine::load(tiered_cfg, &gk.graph), &sources);
    m.engine = "three-tier";
    rows.push(m);

    let two_tier_cfg = EngineConfig::emogi_v100()
        .with_mode(AccessMode::MergedAligned)
        .with_machine(scaled_machine(ctx.scale));
    let mut m = run_series(Engine::load(two_tier_cfg, &gk.graph), &sources);
    m.engine = "two-tier (unbounded)";
    rows.push(m);

    let digest = rows[0].digest;
    for m in &rows {
        assert_eq!(
            m.digest, digest,
            "{} produced different BFS levels than the baseline",
            m.engine
        );
    }

    TieringResults {
        host_home_bytes: host_cap.min(edge_bytes),
        cxl_home_bytes: edge_bytes - host_cap.min(edge_bytes),
        rows,
    }
}

/// The printable table.
pub fn tiering(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "tiering",
        "Three-tier memory (HBM / host / CXL) vs naive host-spill, GK multi-BFS",
        &[
            "engine",
            "time (ms)",
            "speedup vs host-spill",
            "PCIe MiB",
            "CXL MiB",
            "staged regions",
            "output digest",
        ],
    );
    let base_ns = r.get("host-spill").total_ns;
    let mib = |b: u64| f(b as f64 / (1 << 20) as f64);
    for m in &r.rows {
        t.row(vec![
            m.engine.into(),
            ms(m.total_ns),
            f(base_ns as f64 / m.total_ns as f64),
            mib(m.pcie_bytes),
            mib(m.cxl_bytes),
            m.staged_regions.to_string(),
            format!("{:016x}", m.digest),
        ]);
    }
    t.note(format!(
        "edge list homes: {:.1} MiB pinned host + {:.1} MiB CXL; the three-tier \
         engine bulk-promotes recurring spilled regions into the HBM pool over \
         the CXL link, the host-spill baseline re-reads them over the µs-latency \
         link every traversal; digests are asserted equal in-run",
        r.host_home_bytes as f64 / (1 << 20) as f64,
        r.cxl_home_bytes as f64 / (1 << 20) as f64,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "no tiering measurement")]
    fn missing_engine_lookup_names_the_available_rows() {
        let r = TieringResults {
            host_home_bytes: 0,
            cxl_home_bytes: 0,
            rows: Vec::new(),
        };
        let _ = r.get("three-tier");
    }
}
