//! The `hybrid` experiment: the hybrid zero-copy/DMA transfer manager
//! against pure Merged+Aligned zero-copy, the UVM baseline and
//! Subway-async, on the Table 2 generators.
//!
//! Three scenarios span the transport trade-off space:
//!
//! * **reuse-cc** (ML, the dense graph) — CC hook passes sweep the whole
//!   edge list every pass: dense *and* recurring, the best case for bulk
//!   staging;
//! * **reuse-multi-bfs** (GK, the skewed graph) — several BFS traversals
//!   share one engine, the analytics-service pattern the place-once,
//!   query-many API exists for: regions recur across traversals and
//!   cross the policy's ski-rental point;
//! * **sparse-bfs** (GU, the uniform graph) — a single sparse traversal:
//!   no region recurs, so hybrid must degenerate to pure zero-copy and
//!   tie it exactly.
//!
//! Everything runs with 4-byte edge elements, the §5.6 protocol for
//! comparisons that include Subway. The cache and device capacities are
//! divided by the context's scale divisor, like the datasets themselves,
//! so the edge-list : cache : device-memory ratios that drive the
//! trade-off survive reduced-scale runs.

use super::scaled_machine;
use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_baselines::{SubwayMode, SubwaySystem};
use emogi_core::{AccessMode, Engine, EngineConfig};
use emogi_graph::DatasetKey;
use emogi_runtime::TransferStats;

/// Sources per reuse-multi-bfs cell (the scenario is about cross-
/// traversal reuse, so it is fixed rather than taken from the context).
const MULTI_BFS_SOURCES: usize = 4;

/// One (scenario, engine) measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub scenario: &'static str,
    pub graph: &'static str,
    pub engine: &'static str,
    pub total_ns: u64,
    /// Transfer counters accumulated over the scenario's runs (each run
    /// carries its own diff in `RunStats::transfer`); zero for
    /// non-hybrid engines.
    pub transfer: TransferStats,
}

/// All measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct HybridResults {
    pub rows: Vec<Measurement>,
}

impl HybridResults {
    /// Look up one cell; panics naming the missing scenario/engine
    /// *and* the cells that were measured, so a bench failure is
    /// diagnosable at a glance.
    pub fn get(&self, scenario: &str, engine: &str) -> &Measurement {
        self.rows
            .iter()
            .find(|m| m.scenario == scenario && m.engine == engine)
            .unwrap_or_else(|| {
                let have: Vec<String> = self
                    .rows
                    .iter()
                    .map(|m| format!("{}/{}", m.scenario, m.engine))
                    .collect();
                panic!(
                    "no hybrid measurement for scenario {scenario:?} / engine \
                     {engine:?}; measured cells: {have:?}"
                )
            })
    }
}

/// EMOGI-family engines of this experiment (Subway is driven separately).
const MODES: &[(&str, AccessMode)] = &[
    ("Hybrid", AccessMode::Hybrid),
    ("Merged+Aligned", AccessMode::MergedAligned),
];

fn emogi_cfg(ctx: &Context, mode: AccessMode) -> EngineConfig {
    EngineConfig::emogi_v100()
        .with_mode(mode)
        .with_machine(scaled_machine(ctx.scale))
        .with_elem_bytes(4)
}

fn uvm_cfg(ctx: &Context) -> EngineConfig {
    EngineConfig::uvm_v100()
        .with_machine(scaled_machine(ctx.scale))
        .with_elem_bytes(4)
}

fn push(
    rows: &mut Vec<Measurement>,
    scenario: &'static str,
    graph: &'static str,
    engine: &'static str,
    total_ns: u64,
    transfer: TransferStats,
) {
    rows.push(Measurement {
        scenario,
        graph,
        engine,
        total_ns,
        transfer,
    });
}

/// Run every (scenario, engine) cell.
pub fn measure(ctx: &Context) -> HybridResults {
    let mut rows = Vec::new();

    // --- reuse-cc on ML --------------------------------------------------
    let ml = ctx.store.get(DatasetKey::Ml);
    eprintln!("  [hybrid] reuse-cc ML ...");
    for &(name, mode) in MODES {
        let mut engine = Engine::load(emogi_cfg(ctx, mode), &ml.graph);
        let run = engine.cc();
        push(
            &mut rows,
            "reuse-cc",
            "ML",
            name,
            run.stats.elapsed_ns,
            run.stats.transfer,
        );
    }
    {
        let mut engine = Engine::load(uvm_cfg(ctx), &ml.graph);
        let ns = engine.cc().stats.elapsed_ns;
        push(
            &mut rows,
            "reuse-cc",
            "ML",
            "UVM",
            ns,
            TransferStats::default(),
        );
    }
    {
        // ML is one of the undirected Table 2 graphs (SubwaySystem::cc
        // asserts this itself).
        let mut sub = SubwaySystem::new(
            scaled_machine(ctx.scale),
            &ml.graph,
            None,
            SubwayMode::Async,
        );
        let ns = sub.cc().stats.elapsed_ns;
        push(
            &mut rows,
            "reuse-cc",
            "ML",
            "Subway-async",
            ns,
            TransferStats::default(),
        );
    }

    // --- reuse-multi-bfs on GK -------------------------------------------
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(MULTI_BFS_SOURCES);
    eprintln!(
        "  [hybrid] reuse-multi-bfs GK ({} sources) ...",
        sources.len()
    );
    for &(name, mode) in MODES {
        let mut engine = Engine::load(emogi_cfg(ctx, mode), &gk.graph);
        let mut ns = 0u64;
        let mut transfer = TransferStats::default();
        for &s in &sources {
            let run = engine.bfs(s);
            ns += run.stats.elapsed_ns;
            transfer += run.stats.transfer;
        }
        push(&mut rows, "reuse-multi-bfs", "GK", name, ns, transfer);
    }
    {
        let mut engine = Engine::load(uvm_cfg(ctx), &gk.graph);
        let ns: u64 = sources
            .iter()
            .map(|&s| engine.bfs(s).stats.elapsed_ns)
            .sum();
        push(
            &mut rows,
            "reuse-multi-bfs",
            "GK",
            "UVM",
            ns,
            TransferStats::default(),
        );
    }
    {
        let mut sub = SubwaySystem::new(
            scaled_machine(ctx.scale),
            &gk.graph,
            None,
            SubwayMode::Async,
        );
        let ns: u64 = sources.iter().map(|&s| sub.bfs(s).stats.elapsed_ns).sum();
        push(
            &mut rows,
            "reuse-multi-bfs",
            "GK",
            "Subway-async",
            ns,
            TransferStats::default(),
        );
    }

    // --- sparse-bfs on GU -------------------------------------------------
    let gu = ctx.store.get(DatasetKey::Gu);
    let src = gu.sources(1)[0];
    eprintln!("  [hybrid] sparse-bfs GU ...");
    for &(name, mode) in MODES {
        let mut engine = Engine::load(emogi_cfg(ctx, mode), &gu.graph);
        let run = engine.bfs(src);
        push(
            &mut rows,
            "sparse-bfs",
            "GU",
            name,
            run.stats.elapsed_ns,
            run.stats.transfer,
        );
    }
    {
        let mut engine = Engine::load(uvm_cfg(ctx), &gu.graph);
        let ns = engine.bfs(src).stats.elapsed_ns;
        push(
            &mut rows,
            "sparse-bfs",
            "GU",
            "UVM",
            ns,
            TransferStats::default(),
        );
    }
    {
        let mut sub = SubwaySystem::new(
            scaled_machine(ctx.scale),
            &gu.graph,
            None,
            SubwayMode::Async,
        );
        let ns = sub.bfs(src).stats.elapsed_ns;
        push(
            &mut rows,
            "sparse-bfs",
            "GU",
            "Subway-async",
            ns,
            TransferStats::default(),
        );
    }

    HybridResults { rows }
}

/// The printable table.
pub fn hybrid(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "hybrid",
        "Hybrid zero-copy/DMA vs Merged+Aligned vs UVM vs Subway (4-byte elements)",
        &[
            "scenario",
            "graph",
            "engine",
            "time (ms)",
            "vs hybrid",
            "staged regions",
            "pool fallbacks",
        ],
    );
    for m in &r.rows {
        let hybrid_ns = r.get(m.scenario, "Hybrid").total_ns;
        t.row(vec![
            m.scenario.into(),
            m.graph.into(),
            m.engine.into(),
            ms(m.total_ns),
            f(m.total_ns as f64 / hybrid_ns as f64),
            m.transfer.staged_regions.to_string(),
            m.transfer.pool_fallbacks.to_string(),
        ]);
    }
    t.note(
        "reuse scenarios: dense / recurring regions are bulk-staged into device memory \
         (DMA) and re-read at HBM speed; sparse-bfs: nothing recurs, the policy stages \
         nothing and hybrid ties pure zero-copy tick for tick",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "measured cells")]
    fn missing_cell_lookup_names_the_key_and_the_available_cells() {
        let r = HybridResults { rows: Vec::new() };
        let _ = r.get("reuse-cc", "Hybrid");
    }

    #[test]
    fn hybrid_wins_reuse_and_ties_sparse() {
        let ctx = Context::new(1, 32);
        let r = measure(&ctx);

        // Dense + recurring: hybrid must beat pure zero-copy outright.
        let hy_cc = r.get("reuse-cc", "Hybrid").total_ns;
        let zc_cc = r.get("reuse-cc", "Merged+Aligned").total_ns;
        assert!(
            hy_cc < zc_cc,
            "reuse-cc: hybrid {hy_cc} vs zero-copy {zc_cc}"
        );
        assert!(r.get("reuse-cc", "Hybrid").transfer.staged_regions > 0);

        // Recurring across traversals: hybrid must beat zero-copy too.
        let hy_mb = r.get("reuse-multi-bfs", "Hybrid").total_ns;
        let zc_mb = r.get("reuse-multi-bfs", "Merged+Aligned").total_ns;
        assert!(
            hy_mb < zc_mb,
            "multi-bfs: hybrid {hy_mb} vs zero-copy {zc_mb}"
        );

        // Sparse one-shot: no staging, and never worse than the better of
        // zero-copy and Subway.
        let hy_sp = r.get("sparse-bfs", "Hybrid");
        let zc_sp = r.get("sparse-bfs", "Merged+Aligned").total_ns;
        let sub_sp = r.get("sparse-bfs", "Subway-async").total_ns;
        assert_eq!(
            hy_sp.transfer.staged_regions, 0,
            "sparse case must not stage"
        );
        assert!(
            hy_sp.total_ns <= zc_sp.min(sub_sp),
            "sparse: hybrid {} vs zero-copy {zc_sp} / subway {sub_sp}",
            hy_sp.total_ns
        );
    }
}
