//! The `hybrid` experiment: the hybrid zero-copy/DMA transfer manager
//! against pure Merged+Aligned zero-copy, the UVM baseline and
//! Subway-async, on the Table 2 generators.
//!
//! Three scenarios span the transport trade-off space:
//!
//! * **reuse-cc** (ML, the dense graph) — CC hook passes sweep the whole
//!   edge list every pass: dense *and* recurring, the best case for bulk
//!   staging;
//! * **reuse-multi-bfs** (GK, the skewed graph) — several BFS traversals
//!   share one machine, the analytics-service pattern: regions recur
//!   across traversals and cross the policy's ski-rental point;
//! * **sparse-bfs** (GU, the uniform graph) — a single sparse traversal:
//!   no region recurs, so hybrid must degenerate to pure zero-copy and
//!   tie it exactly.
//!
//! Everything runs with 4-byte edge elements, the §5.6 protocol for
//! comparisons that include Subway. The cache and device capacities are
//! divided by the context's scale divisor, like the datasets themselves,
//! so the edge-list : cache : device-memory ratios that drive the
//! trade-off survive reduced-scale runs.

use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_baselines::{SubwayMode, SubwaySystem};
use emogi_core::{AccessMode, TraversalConfig, TraversalSystem};
use emogi_graph::DatasetKey;
use emogi_runtime::MachineConfig;

/// Sources per reuse-multi-bfs cell (the scenario is about cross-
/// traversal reuse, so it is fixed rather than taken from the context).
const MULTI_BFS_SOURCES: usize = 4;

/// One (scenario, engine) measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub scenario: &'static str,
    pub graph: &'static str,
    pub engine: &'static str,
    pub total_ns: u64,
    /// Transfer-manager counters; zero for non-hybrid engines.
    pub staged_regions: u64,
    pub pool_fallbacks: u64,
}

/// All measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct HybridResults {
    pub rows: Vec<Measurement>,
}

impl HybridResults {
    pub fn get(&self, scenario: &str, engine: &str) -> &Measurement {
        self.rows
            .iter()
            .find(|m| m.scenario == scenario && m.engine == engine)
            .unwrap_or_else(|| panic!("no measurement for {scenario}/{engine}"))
    }
}

/// V100 machine with cache and device memory scaled down with the
/// datasets, preserving the out-of-cache / out-of-memory ratios.
fn scaled_machine(scale: usize) -> MachineConfig {
    let mut m = MachineConfig::v100_gen3();
    let s = scale.max(1) as u64;
    m.gpu.cache.capacity_bytes = (m.gpu.cache.capacity_bytes / s).max(32 << 10);
    m.gpu.mem_bytes = (m.gpu.mem_bytes / s).max(256 << 10);
    m
}

/// EMOGI-family engines of this experiment (Subway is driven separately).
const MODES: &[(&str, AccessMode)] = &[
    ("Hybrid", AccessMode::Hybrid),
    ("Merged+Aligned", AccessMode::MergedAligned),
];

fn emogi_cfg(ctx: &Context, mode: AccessMode) -> TraversalConfig {
    TraversalConfig::emogi_v100()
        .with_mode(mode)
        .with_machine(scaled_machine(ctx.scale))
        .with_elem_bytes(4)
}

fn uvm_cfg(ctx: &Context) -> TraversalConfig {
    TraversalConfig::uvm_v100()
        .with_machine(scaled_machine(ctx.scale))
        .with_elem_bytes(4)
}

fn push(rows: &mut Vec<Measurement>, scenario: &'static str, graph: &'static str,
        engine: &'static str, total_ns: u64, sys: Option<&TraversalSystem>) {
    let stats = sys.and_then(|s| s.transfer_stats());
    rows.push(Measurement {
        scenario,
        graph,
        engine,
        total_ns,
        staged_regions: stats.map_or(0, |s| s.staged_regions),
        pool_fallbacks: stats.map_or(0, |s| s.pool_fallbacks),
    });
}

/// Run every (scenario, engine) cell.
pub fn measure(ctx: &Context) -> HybridResults {
    let mut rows = Vec::new();

    // --- reuse-cc on ML --------------------------------------------------
    let ml = ctx.store.get(DatasetKey::Ml);
    eprintln!("  [hybrid] reuse-cc ML ...");
    for &(name, mode) in MODES {
        let mut sys = TraversalSystem::new(emogi_cfg(ctx, mode), &ml.graph, None);
        let ns = sys.cc().stats.elapsed_ns;
        push(&mut rows, "reuse-cc", "ML", name, ns, Some(&sys));
    }
    {
        let mut sys = TraversalSystem::new(uvm_cfg(ctx), &ml.graph, None);
        let ns = sys.cc().stats.elapsed_ns;
        push(&mut rows, "reuse-cc", "ML", "UVM", ns, None);
    }
    {
        // ML is one of the undirected Table 2 graphs (SubwaySystem::cc
        // asserts this itself).
        let mut sub =
            SubwaySystem::new(scaled_machine(ctx.scale), &ml.graph, None, SubwayMode::Async);
        let ns = sub.cc().stats.elapsed_ns;
        push(&mut rows, "reuse-cc", "ML", "Subway-async", ns, None);
    }

    // --- reuse-multi-bfs on GK -------------------------------------------
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(MULTI_BFS_SOURCES);
    eprintln!("  [hybrid] reuse-multi-bfs GK ({} sources) ...", sources.len());
    for &(name, mode) in MODES {
        let mut sys = TraversalSystem::new(emogi_cfg(ctx, mode), &gk.graph, None);
        let ns: u64 = sources.iter().map(|&s| sys.bfs(s).stats.elapsed_ns).sum();
        push(&mut rows, "reuse-multi-bfs", "GK", name, ns, Some(&sys));
    }
    {
        let mut sys = TraversalSystem::new(uvm_cfg(ctx), &gk.graph, None);
        let ns: u64 = sources.iter().map(|&s| sys.bfs(s).stats.elapsed_ns).sum();
        push(&mut rows, "reuse-multi-bfs", "GK", "UVM", ns, None);
    }
    {
        let mut sub =
            SubwaySystem::new(scaled_machine(ctx.scale), &gk.graph, None, SubwayMode::Async);
        let ns: u64 = sources.iter().map(|&s| sub.bfs(s).stats.elapsed_ns).sum();
        push(&mut rows, "reuse-multi-bfs", "GK", "Subway-async", ns, None);
    }

    // --- sparse-bfs on GU -------------------------------------------------
    let gu = ctx.store.get(DatasetKey::Gu);
    let src = gu.sources(1)[0];
    eprintln!("  [hybrid] sparse-bfs GU ...");
    for &(name, mode) in MODES {
        let mut sys = TraversalSystem::new(emogi_cfg(ctx, mode), &gu.graph, None);
        let ns = sys.bfs(src).stats.elapsed_ns;
        push(&mut rows, "sparse-bfs", "GU", name, ns, Some(&sys));
    }
    {
        let mut sys = TraversalSystem::new(uvm_cfg(ctx), &gu.graph, None);
        let ns = sys.bfs(src).stats.elapsed_ns;
        push(&mut rows, "sparse-bfs", "GU", "UVM", ns, None);
    }
    {
        let mut sub =
            SubwaySystem::new(scaled_machine(ctx.scale), &gu.graph, None, SubwayMode::Async);
        let ns = sub.bfs(src).stats.elapsed_ns;
        push(&mut rows, "sparse-bfs", "GU", "Subway-async", ns, None);
    }

    HybridResults { rows }
}

/// The printable table.
pub fn hybrid(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "hybrid",
        "Hybrid zero-copy/DMA vs Merged+Aligned vs UVM vs Subway (4-byte elements)",
        &["scenario", "graph", "engine", "time (ms)", "vs hybrid", "staged regions", "pool fallbacks"],
    );
    for m in &r.rows {
        let hybrid_ns = r.get(m.scenario, "Hybrid").total_ns;
        t.row(vec![
            m.scenario.into(),
            m.graph.into(),
            m.engine.into(),
            ms(m.total_ns),
            f(m.total_ns as f64 / hybrid_ns as f64),
            m.staged_regions.to_string(),
            m.pool_fallbacks.to_string(),
        ]);
    }
    t.note(
        "reuse scenarios: dense / recurring regions are bulk-staged into device memory \
         (DMA) and re-read at HBM speed; sparse-bfs: nothing recurs, the policy stages \
         nothing and hybrid ties pure zero-copy tick for tick",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_wins_reuse_and_ties_sparse() {
        let ctx = Context::new(1, 32);
        let r = measure(&ctx);

        // Dense + recurring: hybrid must beat pure zero-copy outright.
        let hy_cc = r.get("reuse-cc", "Hybrid").total_ns;
        let zc_cc = r.get("reuse-cc", "Merged+Aligned").total_ns;
        assert!(hy_cc < zc_cc, "reuse-cc: hybrid {hy_cc} vs zero-copy {zc_cc}");
        assert!(r.get("reuse-cc", "Hybrid").staged_regions > 0);

        // Recurring across traversals: hybrid must beat zero-copy too.
        let hy_mb = r.get("reuse-multi-bfs", "Hybrid").total_ns;
        let zc_mb = r.get("reuse-multi-bfs", "Merged+Aligned").total_ns;
        assert!(hy_mb < zc_mb, "multi-bfs: hybrid {hy_mb} vs zero-copy {zc_mb}");

        // Sparse one-shot: no staging, and never worse than the better of
        // zero-copy and Subway.
        let hy_sp = r.get("sparse-bfs", "Hybrid");
        let zc_sp = r.get("sparse-bfs", "Merged+Aligned").total_ns;
        let sub_sp = r.get("sparse-bfs", "Subway-async").total_ns;
        assert_eq!(hy_sp.staged_regions, 0, "sparse case must not stage");
        assert!(
            hy_sp.total_ns <= zc_sp.min(sub_sp),
            "sparse: hybrid {} vs zero-copy {zc_sp} / subway {sub_sp}",
            hy_sp.total_ns
        );
    }
}
