//! The `sla` experiment: deadline scheduling under a mixed GK burst —
//! EDF-within-priority vs plain FIFO on the same workload.
//!
//! The workload is the worst case for a FIFO server: a bulk analytics
//! prefix (batched BFS plus full-sweep CC and PageRank, no deadlines)
//! submitted just before a latency-class suffix of deadline-carrying
//! traversals. FIFO serves in arrival order, so the dated queries wait
//! behind every bulk sweep and blow their deadlines; EDF-within-priority
//! reorders them to the front and meets the same deadlines on the same
//! engine.
//!
//! Scheduling must never change answers: for every executed query, of
//! either policy, this experiment folds the output into an FNV-1a
//! digest and asserts it equal to a solo run of the same query on a
//! fresh engine — so the two schedulers' served outputs are
//! digest-equal by transitivity, checked on every invocation.

use super::scaled_machine;
use crate::table::{f, ms};
use crate::{Context, Table};
use emogi_core::{AccessMode, Engine, EngineConfig};
use emogi_graph::DatasetKey;
use emogi_serve::{
    Priority, Query, QueryOutcome, QueryResult, QueryServer, SchedPolicy, ServerConfig,
};
use std::sync::Arc;

/// Bulk-class BFS queries in the prefix (they share one batch).
const BULK_BFS: usize = 6;
/// PageRank iterations in the bulk prefix — the sweep the dated
/// queries wait behind under FIFO.
const BULK_PR_ITERS: u32 = 40;
/// Latency-class sources in the suffix (3 BFS + 1 SSSP).
const LATENCY_BFS: usize = 3;

/// One policy's serving outcome over the shared workload.
#[derive(Debug, Clone)]
pub struct PolicyMeasurement {
    /// Scheduler name (`FIFO`, `EDF`).
    pub policy: &'static str,
    /// Queries admitted.
    pub queries: usize,
    /// Deadline-carrying queries that completed on time.
    pub deadline_met: u64,
    /// Deadline-carrying queries that executed but finished late.
    pub deadline_missed: u64,
    /// Deadline-carrying queries that expired in the queue, unexecuted.
    pub deadline_cancelled: u64,
    /// p99 completion latency over executed queries, ns (simulated,
    /// from submission at clock zero).
    pub p99_latency_ns: u64,
    /// Simulated time the engine spent executing batches, ns.
    pub busy_ns: u64,
}

impl PolicyMeasurement {
    /// Fraction of deadline-carrying queries that met their deadline.
    pub fn hit_rate(&self) -> f64 {
        let total = self.deadline_met + self.deadline_missed + self.deadline_cancelled;
        if total == 0 {
            1.0
        } else {
            self.deadline_met as f64 / total as f64
        }
    }
}

/// Both policies' measurements over the identical workload.
#[derive(Debug, Clone)]
pub struct SlaResults {
    /// One row per scheduling policy.
    pub rows: Vec<PolicyMeasurement>,
}

impl SlaResults {
    /// Look up one policy's measurement by name.
    pub fn get(&self, policy: &str) -> &PolicyMeasurement {
        self.rows
            .iter()
            .find(|m| m.policy == policy)
            .unwrap_or_else(|| panic!("no sla measurement for policy {policy:?}"))
    }
}

fn fold(h: &mut u64, w: u64) {
    *h ^= w;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// FNV-1a over a result's output words (f64 ranks folded by bit
/// pattern), so "same answer" is a single comparable number.
fn digest(r: &QueryResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    match r {
        QueryResult::Bfs(run) => run
            .output
            .levels
            .iter()
            .for_each(|&w| fold(&mut h, w.into())),
        QueryResult::Sssp(run) => run.output.dist.iter().for_each(|&w| fold(&mut h, w.into())),
        QueryResult::Cc(run) => run.output.comp.iter().for_each(|&w| fold(&mut h, w.into())),
        QueryResult::PageRank(run) => run
            .output
            .ranks
            .iter()
            .for_each(|&w| fold(&mut h, w.to_bits())),
    }
    h
}

/// The mixed burst, in submission order: bulk prefix then latency
/// suffix. Returns `(query, is_latency_class)` pairs; deadlines are
/// attached later from measured solo costs.
fn workload(sources: &[u32], weights: &Arc<Vec<u32>>) -> Vec<(Query, bool)> {
    let mut q: Vec<(Query, bool)> = Vec::new();
    for &s in &sources[..BULK_BFS] {
        q.push((Query::bfs(s), false));
    }
    q.push((Query::cc(), false));
    q.push((Query::pagerank(0.85, BULK_PR_ITERS), false));
    for (i, &s) in sources[BULK_BFS..].iter().enumerate() {
        let query = if i < LATENCY_BFS {
            Query::bfs(s)
        } else {
            Query::sssp(s, Arc::clone(weights))
        };
        q.push((query.with_priority(Priority::Latency), true));
    }
    q
}

/// Run the identical workload under FIFO and EDF, asserting every
/// executed output digest-equal to a solo run as it goes.
pub fn measure(ctx: &Context) -> SlaResults {
    let gk = ctx.store.get(DatasetKey::Gk);
    let sources = gk.sources(BULK_BFS + LATENCY_BFS + 1);
    let weights = Arc::new(gk.weights.clone());
    let cfg = EngineConfig::emogi_v100()
        .with_mode(AccessMode::Hybrid)
        .with_machine(scaled_machine(ctx.scale));

    // Solo reference runs: per-query digests (the bit-identity oracle)
    // and elapsed times (the deadline calibration).
    let mut solo = Engine::load(cfg.clone(), &gk.graph);
    let mut solo_digest = Vec::new();
    let mut latency_solo_ns = 0u64;
    for (query, is_latency) in workload(&sources, &weights) {
        let result = match &query.spec {
            emogi_serve::QuerySpec::Bfs { src } => QueryResult::Bfs(solo.bfs(*src)),
            emogi_serve::QuerySpec::Sssp { src, weights } => {
                QueryResult::Sssp(solo.sssp(weights, *src))
            }
            emogi_serve::QuerySpec::Cc => QueryResult::Cc(solo.cc()),
            emogi_serve::QuerySpec::PageRank {
                damping,
                iterations,
            } => QueryResult::PageRank(solo.pagerank(*damping, *iterations)),
        };
        solo_digest.push(digest(&result));
        if is_latency {
            latency_solo_ns += result.stats().elapsed_ns;
        }
    }
    // A budget the latency class can only meet if scheduled first:
    // twice the class's total solo time — generous for an EDF server
    // that runs it up front, hopeless behind the bulk sweeps.
    let budget_ns = latency_solo_ns * 2;

    let mut rows = Vec::new();
    for (name, policy) in [("FIFO", SchedPolicy::Fifo), ("EDF", SchedPolicy::Edf)] {
        eprintln!("  sla: serving mixed burst under {name}");
        let mut server = QueryServer::new(
            ServerConfig {
                policy,
                ..ServerConfig::default()
            },
            Engine::load(cfg.clone(), &gk.graph),
        );
        let ids: Vec<_> = workload(&sources, &weights)
            .into_iter()
            .map(|(query, is_latency)| {
                let query = if is_latency {
                    // Never below the admission estimate, so every
                    // latency query is accepted under both policies.
                    let deadline = server.estimate_ns(&query).max(budget_ns);
                    query.with_deadline_ns(deadline)
                } else {
                    query
                };
                server.submit(query).expect("workload query admitted")
            })
            .collect();
        server.run_pending();

        let mut completions = Vec::new();
        for (i, id) in ids.into_iter().enumerate() {
            let outcome = server
                .take(id)
                .expect("every admitted query has an outcome");
            if let Some(ns) = outcome.completed_ns() {
                completions.push(ns);
            }
            if let QueryOutcome::DeadlineCancelled { .. } = outcome {
                continue;
            }
            let result = outcome.result().expect("executed queries carry results");
            assert_eq!(
                digest(result),
                solo_digest[i],
                "{name}: query {i} output diverged from its solo run"
            );
        }
        completions.sort_unstable();
        let p99 = completions[((completions.len() * 99).div_ceil(100)).saturating_sub(1)];
        let st = server.stats();
        rows.push(PolicyMeasurement {
            policy: name,
            queries: st.submitted as usize,
            deadline_met: st.deadline_met,
            deadline_missed: st.deadline_missed,
            deadline_cancelled: st.deadline_cancelled,
            p99_latency_ns: p99,
            busy_ns: st.busy_ns,
        });
    }
    SlaResults { rows }
}

/// The printable table.
pub fn sla(ctx: &Context) -> Table {
    let r = measure(ctx);
    let mut t = Table::new(
        "sla",
        "SLA scheduling: deadline-hit rate and p99 latency, EDF vs FIFO (mixed GK burst)",
        &[
            "policy",
            "queries",
            "deadlines met",
            "missed",
            "expired",
            "hit rate",
            "p99 latency (ms)",
            "busy (ms)",
        ],
    );
    for m in &r.rows {
        t.row(vec![
            m.policy.into(),
            m.queries.to_string(),
            m.deadline_met.to_string(),
            m.deadline_missed.to_string(),
            m.deadline_cancelled.to_string(),
            f(m.hit_rate()),
            ms(m.p99_latency_ns),
            ms(m.busy_ns),
        ]);
    }
    t.note(
        "identical workload and engine under both policies: a bulk prefix (batched BFS, \
         CC, PageRank) ahead of a latency-class deadline-carrying suffix; EDF-within-\
         priority reorders the dated queries to the front, FIFO serves them late; every \
         executed output is asserted digest-equal to a solo run on every invocation",
    );
    t
}
