//! The `pagerank` experiment: the generality proof for the vertex-program
//! engine. PageRank — a program the original paper never implemented —
//! runs through the *same* driver, generic kernel and transfer planner as
//! BFS/SSSP/CC, across every access mode, and is verified cell-by-cell
//! against the CPU reference.
//!
//! Full-sweep iteration makes PageRank the hybrid transport's best case:
//! every launch reads the whole edge list, so the ski-rental policy
//! stages everything early and later sweeps run at HBM speed. The
//! machine is scaled like the `hybrid` experiment so the edge list
//! oversubscribes cache and device memory even at reduced scale.

use super::scaled_machine;
use crate::table::ms;
use crate::{Context, Table};
use emogi_core::{AccessMode, Engine, EngineConfig};
use emogi_graph::{algo, DatasetKey};

/// Power iterations per cell (enough to spread rank mass a few hops).
const ITERATIONS: u32 = 10;
const DAMPING: f64 = 0.85;

/// One (graph, mode) measurement.
#[derive(Debug, Clone)]
pub struct PrMeasurement {
    pub graph: &'static str,
    pub mode: AccessMode,
    pub total_ns: u64,
    pub staged_regions: u64,
    /// Largest absolute rank deviation from the CPU reference.
    pub max_abs_err: f64,
}

/// Run PageRank on the skewed (GK) and dense (ML) graphs under all four
/// access modes, verifying every cell against [`algo::pagerank`].
pub fn measure(ctx: &Context) -> Vec<PrMeasurement> {
    let mut rows = Vec::new();
    for key in [DatasetKey::Gk, DatasetKey::Ml] {
        let d = ctx.store.get(key);
        let want = algo::pagerank(&d.graph, DAMPING, ITERATIONS);
        for mode in AccessMode::all() {
            eprintln!("  [pagerank] {} / {} ...", d.spec.symbol, mode.name());
            let cfg = EngineConfig::emogi_v100()
                .with_mode(mode)
                .with_machine(scaled_machine(ctx.scale));
            let mut engine = Engine::load(cfg, &d.graph);
            let run = engine.pagerank(DAMPING, ITERATIONS);
            let max_abs_err = run
                .ranks
                .iter()
                .zip(&want)
                .map(|(&g, &w)| (g - w).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_abs_err < 1e-9,
                "{} / {}: max abs err {max_abs_err}",
                d.spec.symbol,
                mode.name()
            );
            rows.push(PrMeasurement {
                graph: d.spec.symbol,
                mode,
                total_ns: run.stats.elapsed_ns,
                staged_regions: run.stats.transfer.staged_regions,
                max_abs_err,
            });
        }
    }
    rows
}

/// The printable table.
pub fn pagerank(ctx: &Context) -> Table {
    let rows = measure(ctx);
    let mut t = Table::new(
        "pagerank",
        "PageRank through the vertex-program engine (10 iterations, verified vs CPU)",
        &["graph", "mode", "time (ms)", "staged regions", "max |err|"],
    );
    for m in &rows {
        t.row(vec![
            m.graph.into(),
            m.mode.name().into(),
            ms(m.total_ns),
            m.staged_regions.to_string(),
            format!("{:.1e}", m.max_abs_err),
        ]);
    }
    t.note(format!(
        "a fourth vertex program with zero driver/kernel/transfer-planner changes; \
         full sweeps every iteration make it the hybrid transport's best case \
         (damping {DAMPING}, every cell checked against the CPU reference)"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_verified_and_hybrid_stages() {
        let ctx = Context::new(1, 32);
        let rows = measure(&ctx);
        assert_eq!(rows.len(), 2 * AccessMode::all().len());
        for m in &rows {
            assert!(m.max_abs_err < 1e-9, "{} / {}", m.graph, m.mode.name());
            if m.mode.is_hybrid() {
                assert!(
                    m.staged_regions > 0,
                    "{}: full sweeps must stage on the oversubscribed machine",
                    m.graph
                );
            } else {
                assert_eq!(m.staged_regions, 0);
            }
        }
        // Hybrid must beat pure zero-copy on repeated full sweeps.
        for graph in ["GK", "ML"] {
            let ns = |mode: AccessMode| {
                rows.iter()
                    .find(|m| m.graph == graph && m.mode == mode)
                    .unwrap()
                    .total_ns
            };
            assert!(
                ns(AccessMode::Hybrid) < ns(AccessMode::MergedAligned),
                "{graph}: hybrid must win repeated sweeps"
            );
        }
    }
}
