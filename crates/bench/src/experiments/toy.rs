//! Figures 3 and 4: the §3.3 zero-copy toy experiment.

use crate::table::{f, pct};
use crate::{Context, Table};
use emogi_core::toy::{self, ToyPattern};
use emogi_runtime::MachineConfig;

/// Toy array size at standard scale (scaled with the datasets).
const ARRAY_BYTES: u64 = 16 << 20;

fn array_bytes(ctx: &Context) -> u64 {
    (ARRAY_BYTES / ctx.scale as u64).max(1 << 20)
}

/// Figure 3: PCIe request patterns per access arrangement.
pub fn fig3(ctx: &Context) -> Table {
    let mut t = Table::new(
        "fig3",
        "GPU PCIe memory request patterns (toy 1D traversal)",
        &["pattern", "requests", "32B", "64B", "96B", "128B"],
    );
    for p in ToyPattern::all() {
        let r = toy::run_zero_copy(MachineConfig::v100_gen3(), p, array_bytes(ctx));
        let h = &r.stats.request_sizes;
        t.row(vec![
            p.name().into(),
            r.stats.pcie_read_requests.to_string(),
            pct(h.fraction(32)),
            pct(h.fraction(64)),
            pct(h.fraction(96)),
            pct(h.fraction(128)),
        ]);
    }
    t.note("paper: strided -> per-lane 32B; merged+aligned -> single 128B; misaligned -> 96B + 32B per warp (Figure 3)");
    t
}

/// Figure 4: average PCIe and host-DRAM bandwidth per pattern, with the
/// UVM and cudaMemcpy references.
pub fn fig4(ctx: &Context) -> Table {
    let bytes = array_bytes(ctx);
    let mut t = Table::new(
        "fig4",
        "PCIe / DRAM bandwidth of zero-copy access patterns (GB/s)",
        &[
            "configuration",
            "PCIe GB/s",
            "DRAM GB/s",
            "paper PCIe",
            "paper DRAM",
        ],
    );
    let paper = [
        (ToyPattern::Strided, 4.74, 9.40),
        (ToyPattern::MergedAligned, 12.23, 12.36),
        (ToyPattern::MergedMisaligned, 9.61, 14.26),
    ];
    for (p, ppcie, pdram) in paper {
        let r = toy::run_zero_copy(MachineConfig::v100_gen3(), p, bytes);
        t.row(vec![
            p.name().into(),
            f(r.pcie_gbps),
            f(r.dram_gbps),
            f(ppcie),
            f(pdram),
        ]);
    }
    let u = toy::run_uvm_reference(MachineConfig::v100_gen3(), bytes);
    t.row(vec![
        "UVM reference".into(),
        f(u.pcie_gbps),
        f(u.dram_gbps),
        "9.11-9.26".into(),
        "-".into(),
    ]);
    let m = toy::run_memcpy_reference(MachineConfig::v100_gen3(), bytes * 4);
    t.row(vec![
        "cudaMemcpy peak".into(),
        f(m),
        "-".into(),
        f(12.3),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Context {
        Context::new(1, 16)
    }

    #[test]
    fn fig3_shapes_match_paper() {
        let t = fig3(&quick());
        assert_eq!(t.rows.len(), 3);
        // Strided row: dominated by 32-byte requests.
        assert!(t.rows[0][2].trim_end_matches('%').parse::<f64>().unwrap() > 95.0);
        // Aligned row: dominated by 128-byte requests.
        assert!(t.rows[1][5].trim_end_matches('%').parse::<f64>().unwrap() > 95.0);
    }

    #[test]
    fn fig4_bandwidth_ordering() {
        let t = fig4(&quick());
        let bw: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // strided < misaligned < aligned <= memcpy
        assert!(bw[0] < bw[2]);
        assert!(bw[2] < bw[1]);
        assert!(bw[1] <= bw[4] + 0.5);
    }
}
