//! Criterion micro-benchmarks of the simulator's building blocks: the
//! hot paths every experiment spends its wall-clock time in.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emogi_gpu::access::{AccessBatch, Space};
use emogi_gpu::cache::{CacheConfig, SectoredCache};
use emogi_gpu::coalesce::Coalescer;
use emogi_sim::dram::{Dram, DramConfig};
use emogi_sim::events::EventQueue;
use emogi_sim::monitor::TrafficMonitor;
use emogi_sim::pcie::{PcieConfig, PcieLink, ReadOutcome};

fn bench_coalescer(c: &mut Criterion) {
    let mut g = c.benchmark_group("coalescer");
    for (name, mk) in [("merged_aligned", false), ("strided", true)] {
        let mut batch = AccessBatch::new();
        for lane in 0..32u64 {
            if mk {
                batch.load(lane * 128, 8, Space::HostPinned);
            } else {
                batch.load(0x1000 + lane * 8, 8, Space::HostPinned);
            }
        }
        g.throughput(Throughput::Elements(32));
        g.bench_function(name, |b| {
            let mut co = Coalescer::new();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                co.coalesce(black_box(batch.items()), &mut out);
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let cfg = CacheConfig {
        capacity_bytes: 6 << 20,
        ways: 16,
        hit_latency_ns: 140,
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("probe_hit", |b| {
        let mut cache = SectoredCache::new(&cfg);
        cache.fill(0x1000, 0xF);
        b.iter(|| black_box(cache.probe(0x1000, 0xF)));
    });
    g.bench_function("probe_miss_fill", |b| {
        let mut cache = SectoredCache::new(&cfg);
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(128);
            cache.probe(line, 0xF);
            cache.fill(line, 0xF);
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(i.wrapping_mul(2654435761) % n, i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum = sum.wrapping_add(v);
                }
                black_box(sum)
            });
        });
    }
    g.finish();
}

fn bench_pcie_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("pcie_link");
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_complete_cycle", |b| {
        let mut link = PcieLink::new(PcieConfig::gen3_x16());
        let mut dram = Dram::new(DramConfig::ddr4_2933_quad());
        let mut mon = TrafficMonitor::new(1 << 20);
        let mut now = 0u64;
        let mut released = Vec::new();
        b.iter(|| {
            now += 10;
            if let ReadOutcome::Issued { complete_at } =
                link.read(now, 0, now % (1 << 20), 128, &mut dram, &mut mon)
            {
                link.complete(complete_at, 128, &mut dram, &mut mon, &mut released);
                released.clear();
            }
            black_box(link.tags_in_use())
        });
    });
    g.finish();
}

fn bench_graph_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.bench_function("kronecker_s14", |b| {
        b.iter(|| black_box(emogi_graph::generators::kronecker(14, 16, 1).num_edges()));
    });
    g.bench_function("uniform_16k", |b| {
        b.iter(|| black_box(emogi_graph::generators::uniform_random(16_384, 32, 1).num_edges()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_coalescer,
    bench_cache,
    bench_event_queue,
    bench_pcie_link,
    bench_graph_generation
);
criterion_main!(benches);
