//! Criterion benches that exercise each paper experiment end-to-end at
//! reduced scale — one bench per table/figure family. These measure the
//! simulator's wall-clock cost per experiment; the *simulated* results
//! themselves are produced by the `repro` binary at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use emogi_bench::{experiments, Context};

fn ctx() -> Context {
    Context::new(1, 16)
}

fn bench_toy_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_request_patterns", |b| {
        b.iter(|| experiments::run("fig3", &ctx()));
    });
    g.bench_function("fig4_toy_bandwidth", |b| {
        b.iter(|| experiments::run("fig4", &ctx()));
    });
    g.bench_function("fig6_degree_cdf", |b| {
        b.iter(|| experiments::run("fig6", &ctx()));
    });
    g.finish();
}

fn bench_case_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("case_study");
    g.sample_size(10);
    // One matrix drives figs 5/7/8/9/10; benchmark its computation.
    g.bench_function("bfs_matrix_fig5_7_8_9_10", |b| {
        b.iter(|| experiments::matrix::BfsMatrix::compute(&ctx()));
    });
    g.finish();
}

fn bench_apps_and_prior(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps");
    g.sample_size(10);
    g.bench_function("fig11_three_apps", |b| {
        b.iter(|| experiments::run("fig11", &ctx()));
    });
    g.bench_function("fig12_pcie4_scaling", |b| {
        b.iter(|| experiments::run("fig12", &ctx()));
    });
    g.bench_function("table3_halo_subway", |b| {
        b.iter(|| experiments::run("table3", &ctx()));
    });
    g.finish();
}

fn bench_engines_single_bfs(c: &mut Criterion) {
    use emogi_core::{AccessStrategy, Engine, EngineConfig};
    let g_data = emogi_graph::DatasetKey::Gu.spec().generate_scaled(16);
    let mut g = c.benchmark_group("engine_bfs");
    g.sample_size(10);
    for (name, cfg) in [
        ("uvm", EngineConfig::uvm_v100()),
        (
            "naive",
            EngineConfig::emogi_v100().with_strategy(AccessStrategy::Naive),
        ),
        (
            "merged",
            EngineConfig::emogi_v100().with_strategy(AccessStrategy::Merged),
        ),
        ("merged_aligned", EngineConfig::emogi_v100()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = Engine::load(cfg.clone(), &g_data.graph);
                engine.bfs(0).stats.elapsed_ns
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_toy_figures,
    bench_case_study,
    bench_apps_and_prior,
    bench_engines_single_bfs
);
criterion_main!(benches);
