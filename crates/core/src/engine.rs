//! The place-once, query-many traversal engine.
//!
//! One [`Engine`] owns a simulated machine with a graph placed on it
//! (§4.2's layout) and runs any [`VertexProgram`] against it, launching
//! one kernel per iteration — BFS level, SSSP relaxation round, CC hook
//! pass, PageRank power iteration — mirroring the paper's execution
//! structure. The graph is placed **once** at [`Engine::load`]; every
//! subsequent [`Engine::run`] reuses the placement, the warmed cache and
//! (in hybrid mode) the already-staged regions, which is what makes
//! multi-query scenarios (analytics serving, multi-source BFS) cheap.
//!
//! Between launches the engine charges the device-side vertex scan that
//! selects active vertices (the kernels iterate over all vertices and
//! test their status, §2.1 Algorithm 1), plans hybrid transfers from the
//! program's declared [`AccessPattern`] — frontier-driven programs
//! predict exactly the neighbour lists the next launch reads, full-sweep
//! programs the whole edge list — and applies the program's device-side
//! inter-launch work (CC's pointer-jumping shortcut).

use crate::batch::BatchRun;
use crate::bfs::{BfsOutput, BfsProgram};
use crate::cc::{CcOutput, CcProgram};
use crate::kernel::{ProgramKernel, WorkList};
use crate::layout::{EdgePlacement, GraphLayout};
use crate::pagerank::{PageRankOutput, PageRankProgram};
use crate::program::{AccessPattern, DeviceWork, VertexProgram};
use crate::sssp::{SsspOutput, SsspProgram};
use crate::strategy::{AccessMode, AccessStrategy};
use emogi_graph::{CsrGraph, VertexId};
use emogi_runtime::exec::run_kernel;
use emogi_runtime::machine::MachineConfig;
use emogi_runtime::report::RunStats;
use emogi_runtime::{Machine, PrefetchConfig, Prefetcher, TransferConfig, TransferManager};
use emogi_sim::pipeline::CopyEngineConfig;

/// How to build an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The simulated platform (GPU, PCIe link, host DRAM, UVM template).
    pub machine: MachineConfig,
    /// Kernel-level access strategy (Naive / Merged / Merged+Aligned).
    pub strategy: AccessStrategy,
    /// Where the edge list lives (pinned host vs managed memory).
    pub placement: EdgePlacement,
    /// Simulated edge element size: 8 by default, 4 for the Subway
    /// comparison (§5.6).
    pub elem_bytes: u64,
    /// Hybrid mode: stage hot edge-list regions into device memory via
    /// the runtime's transfer manager. Requires `ZeroCopyHost` placement.
    pub transfer: Option<TransferConfig>,
    /// Pipelined execution: overlap hybrid staging DMA with kernel
    /// compute by speculatively prefetching predicted-reuse regions onto
    /// an asynchronous copy lane. Inert unless `transfer` is also set —
    /// the knob can therefore stay on while sweeping access modes, and
    /// only the hybrid mode pipelines. Outputs, iteration counts and
    /// traffic counters are bit-identical to the synchronous path; only
    /// elapsed time (and the [`RunStats::prefetch`] counters) change.
    pub pipeline: Option<PrefetchConfig>,
    /// Frontier access reordering: sort each iteration's work by the
    /// cache segment (one L2 capacity's worth of edge-list bytes) its
    /// first edge-list access lands in, grouping warps whose reads share
    /// lines. A pure function of iteration-start state (see
    /// [`crate::reorder`]), so outputs and iteration counts are
    /// bit-identical with the knob on or off; traffic statistics and
    /// timing may differ. Off by default.
    pub frontier_reorder: bool,
}

/// Pre-redesign name of [`EngineConfig`], kept for downstream code.
pub type TraversalConfig = EngineConfig;

impl EngineConfig {
    /// EMOGI as evaluated: V100, PCIe 3.0, merged + aligned zero-copy.
    pub fn emogi_v100() -> Self {
        Self {
            machine: MachineConfig::v100_gen3(),
            strategy: AccessStrategy::MergedAligned,
            placement: EdgePlacement::ZeroCopyHost,
            elem_bytes: 8,
            transfer: None,
            pipeline: None,
            frontier_reorder: false,
        }
    }

    /// The paper's optimized UVM baseline: same kernels, edge list in
    /// managed memory with read-duplication (§5.1.2 (a)).
    pub fn uvm_v100() -> Self {
        Self {
            machine: MachineConfig::v100_gen3(),
            strategy: AccessStrategy::Merged,
            placement: EdgePlacement::Uvm,
            elem_bytes: 8,
            transfer: None,
            pipeline: None,
            frontier_reorder: false,
        }
    }

    /// Hybrid transport on the V100 platform: merged + aligned kernels,
    /// with dense / recurring edge-list regions bulk-staged into device
    /// memory and the rest read zero-copy.
    pub fn hybrid_v100() -> Self {
        Self::emogi_v100().with_mode(AccessMode::Hybrid)
    }

    /// Pipelined hybrid transport on the V100 platform:
    /// [`hybrid_v100`](Self::hybrid_v100) with staging DMA overlapped
    /// behind kernel compute via the default prefetcher.
    pub fn pipelined_v100() -> Self {
        Self::hybrid_v100().with_pipeline(PrefetchConfig::default())
    }

    /// Replace only the kernel-level access strategy.
    pub fn with_strategy(mut self, s: AccessStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Select a full access mode. A mode bundles kernel strategy *and*
    /// transport, so this always sets `ZeroCopyHost` placement —
    /// overwriting a previously configured UVM placement — and clears
    /// any transfer manager for the three pure zero-copy modes;
    /// `Hybrid` installs the default one. To vary only the kernel
    /// strategy of a UVM configuration, use
    /// [`with_strategy`](Self::with_strategy) instead.
    pub fn with_mode(mut self, mode: AccessMode) -> Self {
        self.strategy = mode.strategy();
        self.placement = EdgePlacement::ZeroCopyHost;
        self.transfer = mode.is_hybrid().then(TransferConfig::default);
        self
    }

    /// Install a custom hybrid transfer configuration.
    pub fn with_transfer(mut self, transfer: TransferConfig) -> Self {
        self.transfer = Some(transfer);
        self
    }

    /// Enable pipelined execution with `pipeline` (see
    /// [`EngineConfig::pipeline`]; inert unless a transfer manager is
    /// configured too). [`with_mode`](Self::with_mode) does not clear
    /// this knob, so it composes with mode sweeps.
    pub fn with_pipeline(mut self, pipeline: PrefetchConfig) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Enable pipelined execution with the default prefetcher.
    pub fn pipelined(self) -> Self {
        self.with_pipeline(PrefetchConfig::default())
    }

    /// Toggle frontier access reordering (see
    /// [`EngineConfig::frontier_reorder`]).
    pub fn with_frontier_reorder(mut self, on: bool) -> Self {
        self.frontier_reorder = on;
        self
    }

    /// Replace the simulated platform.
    pub fn with_machine(mut self, m: MachineConfig) -> Self {
        self.machine = m;
        self
    }

    /// Set the simulated edge element size (8, or 4 for §5.6 protocols).
    pub fn with_elem_bytes(mut self, b: u64) -> Self {
        self.elem_bytes = b;
        self
    }
}

/// Build the hybrid transfer manager for a placed edge list, if the
/// configuration asks for one. Shared by the single-device and sharded
/// engines so the placement discipline can never diverge between them.
/// The layout's host/CXL split becomes the manager's tier homes, so a
/// spilled tail is promoted over the CXL link rather than the PCIe lane.
pub(crate) fn build_transfer(
    machine: &Machine,
    graph: &CsrGraph,
    elem_bytes: u64,
    placement: EdgePlacement,
    layout: &GraphLayout,
    cfg: Option<TransferConfig>,
) -> Option<TransferManager> {
    cfg.map(|tcfg| {
        assert_eq!(
            placement,
            EdgePlacement::ZeroCopyHost,
            "hybrid transfers manage the pinned-host edge list"
        );
        TransferManager::with_tiers(
            machine,
            graph.edge_list_bytes(elem_bytes),
            layout.host_edge_bytes,
            tcfg,
        )
    })
}

/// Build the speculative prefetcher for a pipelined engine, if both the
/// pipeline knob and a transfer manager are present (the knob is inert
/// without one — there is nothing to stage asynchronously). The copy
/// lane defaults to the machine's PCIe cost model so hidden-latency
/// estimates match the synchronous DMA path. Shared by the
/// single-device and sharded engines.
pub(crate) fn build_prefetcher(
    machine: &Machine,
    transfer: Option<&TransferManager>,
    cfg: Option<PrefetchConfig>,
) -> Option<Prefetcher> {
    match (transfer, cfg) {
        (Some(tm), Some(pcfg)) => {
            let copy = pcfg
                .copy
                .clone()
                .unwrap_or_else(|| CopyEngineConfig::from_pcie(&machine.cfg.pcie));
            Some(Prefetcher::new(tm.num_regions(), pcfg, copy))
        }
        _ => None,
    }
}

/// Place the auxiliary 4-byte-per-edge data array in the edge list's
/// space, if not already placed. The edge-space bump allocator is
/// independent of the device one, so the array lands at the same
/// address it would have at load time. Shared by the single-device and
/// sharded engines.
pub(crate) fn ensure_edge_data(
    machine: &mut Machine,
    layout: &mut GraphLayout,
    graph: &CsrGraph,
    placement: EdgePlacement,
) {
    if layout.weight_base.is_some() {
        return;
    }
    let bytes = graph.num_edges() as u64 * 4;
    let base = match placement {
        EdgePlacement::ZeroCopyHost => machine.alloc_host_pinned(bytes),
        EdgePlacement::Uvm => {
            assert!(
                machine.uvm.is_none(),
                "place edge data before the first managed kernel runs \
                 (the UVM driver's span is fixed at initialization)"
            );
            machine.alloc_managed(bytes)
        }
    };
    layout.weight_base = Some(base);
}

/// Charge the device-side active-vertex scan before a launch (the
/// kernels iterate over all vertices and test their status, §2.1
/// Algorithm 1). Shared by the single-device and sharded engines.
pub(crate) fn charge_vertex_scan(machine: &mut Machine, num_vertices: usize) {
    let bytes = num_vertices as u64 * 4;
    machine.now = machine.hbm.read_bulk(machine.now, bytes);
}

/// Result of one program execution: the program's output plus the run's
/// measurements (which carry their own transfer counters — hybrid runs
/// fill [`RunStats::transfer`], everything else leaves it zeroed).
///
/// `Run` derefs to the output, so `run.levels` / `run.dist` / `run.comp`
/// read exactly like the pre-redesign result structs.
#[derive(Debug, Clone)]
pub struct Run<O> {
    /// The program's output (levels, distances, labels, ranks, ...).
    pub output: O,
    /// The run's measurements.
    pub stats: RunStats,
}

impl<O> std::ops::Deref for Run<O> {
    type Target = O;

    fn deref(&self) -> &O {
        &self.output
    }
}

/// Result of one full BFS.
pub type BfsRun = Run<BfsOutput>;
/// Result of one full SSSP.
pub type SsspRun = Run<SsspOutput>;
/// Result of one full CC.
pub type CcRun = Run<CcOutput>;
/// Result of one full PageRank.
pub type PageRankRun = Run<PageRankOutput>;

/// A graph placed on a machine, ready to run any [`VertexProgram`].
///
/// ```
/// use emogi_core::{BfsProgram, Engine, EngineConfig};
/// use emogi_graph::{algo, generators};
///
/// let graph = generators::uniform_random(2_000, 8, 7);
/// // Place the graph once ...
/// let mut engine = Engine::load(EngineConfig::emogi_v100(), &graph);
/// // ... then serve as many queries as you like against the placement.
/// for src in [0u32, 17, 99] {
///     let run = engine.run(BfsProgram::new(&graph, src));
///     assert_eq!(run.levels, algo::bfs_levels(&graph, src));
///     assert!(run.stats.elapsed_ns > 0);
/// }
/// ```
pub struct Engine<'g> {
    /// The simulated machine the graph is placed on.
    pub machine: Machine,
    graph: &'g CsrGraph,
    layout: GraphLayout,
    strategy: AccessStrategy,
    placement: EdgePlacement,
    /// Hybrid mode: the per-region zero-copy / DMA transfer manager.
    transfer: Option<TransferManager>,
    /// Pipelined execution: the speculative prefetcher feeding the
    /// asynchronous copy lane (present only when `transfer` is too).
    prefetcher: Option<Prefetcher>,
    /// Frontier access reordering: segment size to sort each iteration's
    /// work by, or `None` when the knob is off.
    reorder_segment: Option<u64>,
    /// Device status arrays for batched multi-query execution, one per
    /// query slot, allocated on first use and reused across batches.
    batch_status: Vec<u64>,
}

impl<'g> Engine<'g> {
    /// Place `graph` on a machine built from `cfg`. Auxiliary edge data
    /// (SSSP's weight array) is placed on demand by the first program
    /// that declares it — weights are a program input, not an engine
    /// field.
    pub fn load(cfg: EngineConfig, graph: &'g CsrGraph) -> Self {
        let reorder_segment = cfg
            .frontier_reorder
            .then_some(cfg.machine.gpu.cache.capacity_bytes);
        let mut machine = Machine::new(cfg.machine);
        let layout = GraphLayout::place(&mut machine, graph, cfg.elem_bytes, cfg.placement, false);
        let transfer = build_transfer(
            &machine,
            graph,
            cfg.elem_bytes,
            cfg.placement,
            &layout,
            cfg.transfer,
        );
        let prefetcher = build_prefetcher(&machine, transfer.as_ref(), cfg.pipeline);
        Self {
            machine,
            graph,
            layout,
            strategy: cfg.strategy,
            placement: cfg.placement,
            transfer,
            prefetcher,
            reorder_segment,
            batch_status: Vec::new(),
        }
    }

    /// The placed graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Where the graph's arrays live on the machine.
    pub fn layout(&self) -> &GraphLayout {
        &self.layout
    }

    /// The kernel-level access strategy every run uses.
    pub fn strategy(&self) -> AccessStrategy {
        self.strategy
    }

    /// Effective host-link payload bandwidth in bytes per simulated
    /// nanosecond (numerically equal to usable GB/s). The serving
    /// layer's cost-model admission uses this to convert an estimated
    /// `iterations × frontier-bytes` workload into simulated time
    /// before accepting a deadline.
    pub fn link_bytes_per_ns(&self) -> f64 {
        self.machine.cfg.pcie.usable_gbps()
    }

    /// Edge-list bytes as placed (the Figure 10 denominator).
    pub fn dataset_bytes(&self) -> u64 {
        let mut b = self.graph.edge_list_bytes(self.layout.elem_bytes);
        if self.layout.weight_base.is_some() {
            b += self.graph.num_edges() as u64 * 4;
        }
        b
    }

    /// Place the auxiliary 4-byte-per-edge data array on demand (see
    /// [`ensure_edge_data`]).
    fn ensure_edge_data(&mut self) {
        ensure_edge_data(
            &mut self.machine,
            &mut self.layout,
            self.graph,
            self.placement,
        );
    }

    /// Device-side active-vertex scan before each launch.
    fn charge_vertex_scan(&mut self) {
        charge_vertex_scan(&mut self.machine, self.graph.num_vertices());
    }

    /// Hybrid planning before a launch: predict the launch's edge-list
    /// byte ranges from the program's access pattern — the frontier
    /// determines them precisely for frontier-driven programs, full
    /// sweeps read everything — let the transfer manager stage regions
    /// (advancing the machine clock by the bulk-copy time), and refresh
    /// the layout's staged-region table for the kernels' address
    /// computation.
    fn plan_transfers(&mut self, pattern: AccessPattern, frontier: &[VertexId]) {
        let Some(tm) = self.transfer.as_mut() else {
            return;
        };
        let elem = self.layout.elem_bytes;
        let graph = self.graph;
        let pf = self.prefetcher.as_mut();
        let changed = match pattern {
            AccessPattern::FrontierDriven => {
                let ranges = frontier
                    .iter()
                    .map(|&v| (graph.neighbor_start(v) * elem, graph.neighbor_end(v) * elem));
                match pf {
                    Some(p) => tm.plan_iteration_pipelined(&mut self.machine, ranges, p),
                    None => tm.plan_iteration(&mut self.machine, ranges),
                }
            }
            AccessPattern::FullSweep => {
                let ranges = std::iter::once((0, graph.edge_list_bytes(elem)));
                match pf {
                    Some(p) => tm.plan_iteration_pipelined(&mut self.machine, ranges, p),
                    None => tm.plan_iteration(&mut self.machine, ranges),
                }
            }
        };
        // Refresh the layout's table only when it changed: a run that
        // never stages keeps `staged_edges == None` and the address path
        // free of region lookups.
        if changed {
            self.layout.staged_edges = Some(tm.region_map());
        }
        // Double-buffering: feed the asynchronous lane with next
        // iteration's predicted regions so their copies overlap the
        // kernel launched right after this planning round.
        if let Some(p) = self.prefetcher.as_mut() {
            tm.prefetch_for_next(self.machine.now, p);
        }
    }

    /// Charge the program's inter-launch device-side work.
    fn apply_device_work<P: VertexProgram>(&mut self, program: &mut P, work: &mut DeviceWork) {
        program.post_iteration(work);
        for bytes in work.drain() {
            self.machine.now = self.machine.hbm.read_bulk(self.machine.now, bytes);
        }
    }

    /// Run `program` to convergence against the placed graph. One generic
    /// driver serves every program; there are no per-algorithm branches —
    /// only pattern dispatch on the program's declared [`AccessPattern`].
    pub fn run<P: VertexProgram>(&mut self, mut program: P) -> Run<P::Output> {
        if program.uses_edge_data() {
            self.ensure_edge_data();
        }
        let snap = self.machine.snapshot();
        let transfer_base = self.transfer.as_ref().map(|t| t.stats);
        let prefetch_base = self.prefetcher.as_ref().map(|p| p.stats);
        let pattern = program.pattern();
        let mut launches = 0u64;
        let mut work = DeviceWork::default();
        let mut next: Vec<VertexId> = Vec::new();
        match pattern {
            AccessPattern::FrontierDriven => {
                let mut frontier = program.initial_frontier();
                frontier.sort_unstable();
                frontier.dedup();
                while !frontier.is_empty() {
                    if let Some(seg) = self.reorder_segment {
                        crate::reorder::reorder_frontier(
                            &self.layout,
                            self.graph,
                            &mut frontier,
                            seg,
                        );
                    }
                    self.charge_vertex_scan();
                    self.plan_transfers(pattern, &frontier);
                    program.begin_iteration();
                    next.clear();
                    let mut kernel = ProgramKernel::new(
                        self.graph,
                        &self.layout,
                        self.strategy,
                        &mut program,
                        WorkList::Frontier(&frontier),
                        &mut next,
                    );
                    run_kernel(&mut self.machine, &mut kernel);
                    launches += 1;
                    self.apply_device_work(&mut program, &mut work);
                    next.sort_unstable();
                    next.dedup();
                    std::mem::swap(&mut frontier, &mut next);
                }
            }
            AccessPattern::FullSweep => {
                let n = self.graph.num_vertices() as u32;
                loop {
                    self.charge_vertex_scan();
                    self.plan_transfers(pattern, &[]);
                    program.begin_iteration();
                    next.clear();
                    let mut kernel = ProgramKernel::new(
                        self.graph,
                        &self.layout,
                        self.strategy,
                        &mut program,
                        WorkList::All(n),
                        &mut next,
                    );
                    run_kernel(&mut self.machine, &mut kernel);
                    launches += 1;
                    self.apply_device_work(&mut program, &mut work);
                    if program.converged() {
                        break;
                    }
                }
            }
        }
        let mut stats = self.machine.finish_run(&snap, launches);
        if let (Some(tm), Some(base)) = (&self.transfer, transfer_base) {
            stats.transfer = tm.stats - base;
        }
        if let (Some(p), Some(base)) = (&self.prefetcher, prefetch_base) {
            stats.prefetch = p.stats - base;
        }
        Run {
            output: program.finish(),
            stats,
        }
    }

    /// Ensure up to `want` device status arrays for batched execution,
    /// reused across batches (the simulated allocator never frees). In
    /// hybrid mode the transfer manager's staging pool is shrunk by the
    /// same amount, so staging can never outrun the real device
    /// capacity. Best-effort: allocation stops when device memory is
    /// exhausted (e.g. staging already filled it) or when the UVM driver
    /// has pinned the device layout; returns the number of usable slots,
    /// possibly less than `want` — [`run_batch`](Self::run_batch) splits
    /// the batch or falls back to solo runs accordingly.
    fn ensure_batch_status(&mut self, want: usize) -> usize {
        let bytes = self.graph.num_vertices() as u64 * 4;
        let need = bytes.div_ceil(128) * 128;
        while self.batch_status.len() < want {
            if self.machine.uvm.is_some() || self.machine.spaces.device_free() < need {
                break;
            }
            let base = self.machine.alloc_device(bytes);
            if let Some(tm) = self.transfer.as_mut() {
                tm.reserve(bytes);
            }
            self.batch_status.push(base);
        }
        self.batch_status.len().min(want)
    }

    /// Run a batch of same-type frontier-driven programs concurrently
    /// over the shared placement: each iteration launches one
    /// [`BatchKernel`](crate::batch::BatchKernel) over the **union** of
    /// the still-active queries'
    /// frontiers, so an edge-list region crosses PCIe once per iteration
    /// no matter how many queries read it.
    ///
    /// Per-query results (outputs *and* iteration counts) are
    /// bit-identical to running the same programs one at a time via
    /// [`run`](Self::run) — contexts are captured at iteration start and
    /// the shipped frontier-driven programs' per-edge updates are
    /// commutative within an iteration, so a query cannot observe its
    /// batch neighbours. Each query's [`RunStats`] accumulates the
    /// machine diff of the iterations it was active in, flagged
    /// [`shared_fetch`](RunStats::shared_fetch); the returned
    /// [`BatchRun::stats`] is the batch-level total in which every
    /// shared fetch is counted exactly once.
    ///
    /// Each query slot needs its own device status array. When device
    /// memory cannot hold one per query — hybrid staging already filled
    /// it, or the UVM driver froze the device layout — the batch
    /// degrades gracefully: it splits into groups sized to the slots
    /// that fit, down to plain back-to-back solo runs. Results are
    /// bit-identical in every case; only the fetch sharing shrinks.
    ///
    /// Panics if the batch is empty, exceeds
    /// [`MAX_BATCH_QUERIES`](crate::batch::MAX_BATCH_QUERIES), or
    /// contains a [`AccessPattern::FullSweep`] program (full sweeps read
    /// everything every launch — there is no frontier to merge; run them
    /// solo).
    pub fn run_batch<P: VertexProgram>(&mut self, programs: Vec<P>) -> BatchRun<P::Output> {
        assert!(!programs.is_empty(), "empty batch");
        assert!(
            programs.len() <= crate::batch::MAX_BATCH_QUERIES,
            "batch exceeds {} queries",
            crate::batch::MAX_BATCH_QUERIES
        );
        for p in &programs {
            assert_eq!(
                p.pattern(),
                AccessPattern::FrontierDriven,
                "batched execution requires frontier-driven programs"
            );
        }
        if programs[0].uses_edge_data() {
            self.ensure_edge_data();
        }
        // Best-effort slot acquisition: device memory may already be
        // exhausted (hybrid staging on an oversubscribed graph) or
        // frozen (UVM driver initialized). Degrade instead of crashing:
        // split the batch into groups that fit, or — with no slot at
        // all — serve the queries back-to-back through the solo path.
        // Results stay bit-identical either way; only the sharing (and
        // its savings) shrinks.
        let slots = self.ensure_batch_status(programs.len());

        let batch_snap = self.machine.snapshot();
        let batch_transfer_base = self.transfer.as_ref().map(|t| t.stats);
        let batch_prefetch_base = self.prefetcher.as_ref().map(|p| p.stats);
        let mut runs: Vec<Run<P::Output>> = Vec::with_capacity(programs.len());
        let mut total_launches = 0u64;
        if slots == 0 {
            for p in programs {
                let run = self.run(p);
                total_launches += run.stats.kernel_launches;
                runs.push(run);
            }
        } else {
            let mut programs = programs;
            while !programs.is_empty() {
                let rest = programs.split_off(slots.min(programs.len()));
                runs.extend(self.run_batch_group(programs, &mut total_launches));
                programs = rest;
            }
        }
        let mut stats = self.machine.finish_run(&batch_snap, total_launches);
        if let (Some(tm), Some(base)) = (&self.transfer, batch_transfer_base) {
            stats.transfer = tm.stats - base;
        }
        if let (Some(p), Some(base)) = (&self.prefetcher, batch_prefetch_base) {
            stats.prefetch = p.stats - base;
        }
        BatchRun { runs, stats }
    }

    /// One group of the batch, sized to the available status slots: the
    /// per-iteration union-frontier loop behind
    /// [`run_batch`](Self::run_batch).
    fn run_batch_group<P: VertexProgram>(
        &mut self,
        mut programs: Vec<P>,
        total_launches: &mut u64,
    ) -> Vec<Run<P::Output>> {
        let nq = programs.len();
        let mut frontiers: Vec<Vec<VertexId>> = programs
            .iter()
            .map(|p| {
                let mut f = p.initial_frontier();
                f.sort_unstable();
                f.dedup();
                f
            })
            .collect();
        let mut next: Vec<Vec<VertexId>> = vec![Vec::new(); nq];
        // A batch of one shares its fetches with nobody; only real
        // multi-query batches flag their per-query stats.
        let mut per_stats: Vec<RunStats> = vec![
            RunStats {
                shared_fetch: nq > 1,
                ..RunStats::default()
            };
            nq
        ];
        let mut work = DeviceWork::default();
        let mut union: Vec<VertexId> = Vec::new();
        let mut masks: Vec<u64> = Vec::new();
        loop {
            crate::batch::merge_frontiers(&frontiers, &mut union, &mut masks);
            if union.is_empty() {
                break;
            }
            if let Some(seg) = self.reorder_segment {
                crate::reorder::reorder_union(
                    &self.layout,
                    self.graph,
                    &mut union,
                    &mut masks,
                    seg,
                );
            }
            let active: Vec<usize> = (0..nq).filter(|&q| !frontiers[q].is_empty()).collect();
            let iter_snap = self.machine.snapshot();
            let iter_transfer_base = self.transfer.as_ref().map(|t| t.stats);
            let iter_prefetch_base = self.prefetcher.as_ref().map(|p| p.stats);
            // The active-vertex scan runs per query (each query's status
            // array is scanned for its own frontier), exactly as many
            // times as the sequential runs would pay it — batching saves
            // edge fetches, not bookkeeping.
            for _ in &active {
                self.charge_vertex_scan();
            }
            self.plan_transfers(AccessPattern::FrontierDriven, &union);
            for &q in &active {
                programs[q].begin_iteration();
            }
            let mut kernel = crate::batch::BatchKernel::new(
                self.graph,
                &self.layout,
                self.strategy,
                &mut programs,
                &self.batch_status,
                &union,
                &masks,
                &mut next,
            );
            run_kernel(&mut self.machine, &mut kernel);
            *total_launches += 1;
            for &q in &active {
                self.apply_device_work(&mut programs[q], &mut work);
            }
            let mut iter_stats = self.machine.finish_run(&iter_snap, 1);
            if let (Some(tm), Some(base)) = (&self.transfer, iter_transfer_base) {
                iter_stats.transfer = tm.stats - base;
            }
            if let (Some(p), Some(base)) = (&self.prefetcher, iter_prefetch_base) {
                iter_stats.prefetch = p.stats - base;
            }
            for &q in &active {
                per_stats[q].accumulate(&iter_stats);
            }
            for &q in &active {
                next[q].sort_unstable();
                next[q].dedup();
                std::mem::swap(&mut frontiers[q], &mut next[q]);
                next[q].clear();
            }
        }
        programs
            .into_iter()
            .zip(per_stats)
            .map(|(p, stats)| Run {
                output: p.finish(),
                stats,
            })
            .collect()
    }

    /// Full BFS from `src`; one kernel launch per level.
    pub fn bfs(&mut self, src: VertexId) -> BfsRun {
        self.run(BfsProgram::new(self.graph, src))
    }

    /// Full SSSP from `src` with per-edge `weights`; relaxation rounds
    /// until no distance changes.
    pub fn sssp(&mut self, weights: &[u32], src: VertexId) -> SsspRun {
        self.run(SsspProgram::new(self.graph, weights, src))
    }

    /// Full CC; hook passes over the whole edge list until stable, with a
    /// device-side pointer-jumping shortcut after each pass.
    pub fn cc(&mut self) -> CcRun {
        self.run(CcProgram::new(self.graph))
    }

    /// PageRank: `iterations` damped power iterations over the full edge
    /// list.
    pub fn pagerank(&mut self, damping: f64, iterations: u32) -> PageRankRun {
        self.run(PageRankProgram::new(self.graph, damping, iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::INF;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};

    #[test]
    fn emogi_bfs_matches_reference_end_to_end() {
        let g = generators::kronecker(9, 8, 21);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert!(run.stats.elapsed_ns > 0);
        assert!(run.stats.kernel_launches > 0);
        assert!(run.stats.pcie_read_requests > 0);
        assert_eq!(run.stats.page_faults, 0, "zero-copy never faults");
        assert_eq!(run.stats.transfer.staged_regions, 0, "no transfer manager");
    }

    #[test]
    fn uvm_bfs_matches_reference_and_faults() {
        let g = generators::kronecker(9, 8, 21);
        let mut engine = Engine::load(EngineConfig::uvm_v100(), &g);
        let run = engine.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert!(run.stats.page_faults > 0, "UVM must fault pages in");
        assert!(run.stats.pages_migrated > 0);
        assert_eq!(
            run.stats.pcie_read_requests, 0,
            "UVM traffic is migrations, not zero-copy reads"
        );
    }

    #[test]
    fn emogi_sssp_matches_reference() {
        let g = generators::uniform_random(300, 8, 3);
        let w = generate_weights(g.num_edges(), 3);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.sssp(&w, 5);
        let expect = algo::sssp_distances(&g, &w, 5);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }
    }

    #[test]
    fn emogi_cc_matches_reference() {
        let g = generators::uniform_random(400, 4, 8);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.cc();
        assert_eq!(run.comp, algo::cc_labels(&g));
        assert!(run.hook_passes >= 2);
    }

    #[test]
    fn second_bfs_reuses_the_machine() {
        let g = generators::uniform_random(300, 6, 2);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let a = engine.bfs(0);
        let b = engine.bfs(10);
        assert_eq!(b.levels, algo::bfs_levels(&g, 10));
        // Stats are per-run, not cumulative; and this tiny edge list fits
        // in the cache, so the second traversal rides on warmed lines.
        assert!(b.stats.elapsed_ns > 0);
        assert!(a.stats.host_bytes > 0);
        assert!(
            b.stats.host_bytes < a.stats.host_bytes,
            "second run should benefit from the warm cache"
        );
    }

    #[test]
    fn one_engine_serves_many_programs() {
        // The place-once, query-many promise: a single placement runs
        // BFS, SSSP, CC and PageRank back to back, each matching its
        // CPU reference, with edge data placed on demand by SSSP.
        let g = generators::uniform_random(400, 4, 8);
        let w = generate_weights(g.num_edges(), 8);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        assert!(engine.layout().weight_base.is_none());

        let bfs = engine.bfs(0);
        assert_eq!(bfs.levels, algo::bfs_levels(&g, 0));

        let sssp = engine.sssp(&w, 0);
        assert!(
            engine.layout().weight_base.is_some(),
            "edge data placed on demand"
        );
        let expect = algo::sssp_distances(&g, &w, 0);
        for (v, &want) in expect.iter().enumerate() {
            let got = if sssp.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(sssp.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }

        let cc = engine.cc();
        assert_eq!(cc.comp, algo::cc_labels(&g));

        let pr = engine.pagerank(0.85, 15);
        let want = algo::pagerank(&g, 0.85, 15);
        for (v, &r) in pr.ranks.iter().enumerate() {
            assert!((r - want[v]).abs() < 1e-9, "vertex {v}: {r} vs {}", want[v]);
        }
    }

    #[test]
    fn hybrid_bfs_matches_reference() {
        let g = generators::kronecker(9, 8, 21);
        let mut engine = Engine::load(EngineConfig::hybrid_v100(), &g);
        let run = engine.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert_eq!(run.stats.page_faults, 0, "hybrid never touches UVM");
        assert!(run.stats.elapsed_ns > 0);
    }

    #[test]
    fn hybrid_sssp_and_cc_match_reference() {
        let g = generators::uniform_random(300, 8, 3);
        let w = generate_weights(g.num_edges(), 3);
        let mut engine = Engine::load(EngineConfig::hybrid_v100(), &g);
        let run = engine.sssp(&w, 5);
        let expect = algo::sssp_distances(&g, &w, 5);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }
        let g2 = generators::uniform_random(400, 4, 8);
        let mut engine2 = Engine::load(EngineConfig::hybrid_v100(), &g2);
        assert_eq!(engine2.cc().comp, algo::cc_labels(&g2));
    }

    #[test]
    fn hybrid_stays_pure_zero_copy_on_a_sparse_one_shot_bfs() {
        // A single sparse BFS reads each region at most ~once in total:
        // the ski-rental policy must never stage, so hybrid and pure
        // merged+aligned are the *same* simulation, tick for tick.
        let g = generators::uniform_random(2_000, 16, 1);
        let mut zc = Engine::load(EngineConfig::emogi_v100(), &g);
        let mut hy = Engine::load(EngineConfig::hybrid_v100(), &g);
        let rz = zc.bfs(0);
        let rh = hy.bfs(0);
        assert_eq!(
            rh.stats.transfer.staged_regions, 0,
            "one-shot sparse BFS must not stage"
        );
        assert_eq!(rh.stats.elapsed_ns, rz.stats.elapsed_ns);
        assert_eq!(rh.stats.pcie_read_requests, rz.stats.pcie_read_requests);
    }

    /// V100 config with the cache shrunk below the test graphs' edge
    /// lists, modelling the paper's regime (edge list >> cache) without
    /// paying for multi-million-edge graphs in a unit test.
    fn oversubscribed(mut cfg: EngineConfig) -> EngineConfig {
        cfg.machine.gpu.cache.capacity_bytes = 64 << 10;
        cfg
    }

    #[test]
    fn hybrid_cc_stages_the_full_sweep_and_beats_zero_copy() {
        // CC hook passes read the whole edge list every pass: the policy
        // stages everything up front and passes 2+ run from HBM.
        let g = generators::lognormal_dense(400, 60.0, 0.5, 16, 5);
        let mut zc = Engine::load(oversubscribed(EngineConfig::emogi_v100()), &g);
        let mut hy = Engine::load(oversubscribed(EngineConfig::hybrid_v100()), &g);
        let rz = zc.cc();
        let rh = hy.cc();
        assert_eq!(rh.comp, rz.comp);
        assert!(
            rh.stats.transfer.staged_regions > 0,
            "full sweep must stage"
        );
        assert!(
            rh.stats.elapsed_ns < rz.stats.elapsed_ns,
            "hybrid CC {} must beat zero-copy {}",
            rh.stats.elapsed_ns,
            rz.stats.elapsed_ns
        );
    }

    #[test]
    fn hybrid_learns_across_repeated_traversals() {
        // Multiple BFS sources on one engine: regions recur, cross the
        // ski-rental point, and later traversals read mostly from HBM.
        let g = generators::uniform_random(3_000, 24, 4);
        let mut zc = Engine::load(oversubscribed(EngineConfig::emogi_v100()), &g);
        let mut hy = Engine::load(oversubscribed(EngineConfig::hybrid_v100()), &g);
        let sources = [0u32, 7, 21, 40];
        let mut zc_total = 0u64;
        let mut hy_total = 0u64;
        let mut hy_last_reqs = 0u64;
        let mut staged_total = 0u64;
        for &s in &sources {
            let rz = zc.bfs(s);
            let rh = hy.bfs(s);
            assert_eq!(rh.levels, rz.levels, "source {s}");
            zc_total += rz.stats.elapsed_ns;
            hy_total += rh.stats.elapsed_ns;
            hy_last_reqs = rh.stats.pcie_read_requests;
            staged_total += rh.stats.transfer.staged_regions;
        }
        assert!(staged_total > 0, "recurring regions must stage");
        assert!(
            hy_total < zc_total,
            "hybrid total {hy_total} must beat zero-copy {zc_total}"
        );
        // Once staged, the final traversal barely touches the link.
        let first_reqs = {
            let mut fresh = Engine::load(oversubscribed(EngineConfig::hybrid_v100()), &g);
            fresh.bfs(0).stats.pcie_read_requests
        };
        assert!(
            hy_last_reqs < first_reqs / 2,
            "staged regions should absorb most reads: {hy_last_reqs} vs {first_reqs}"
        );
    }

    #[test]
    fn per_run_transfer_stats_diff_not_accumulate() {
        // Staging happens on the early runs; per-run counters must show
        // later runs staging little or nothing (the counters are diffs,
        // not lifetime totals).
        let g = generators::uniform_random(3_000, 24, 4);
        let mut hy = Engine::load(oversubscribed(EngineConfig::hybrid_v100()), &g);
        let runs: Vec<u64> = [0u32, 7, 21, 40, 0, 7]
            .iter()
            .map(|&s| hy.bfs(s).stats.transfer.staged_regions)
            .collect();
        let total: u64 = runs.iter().sum();
        assert!(total > 0, "something must stage across the sequence");
        assert!(
            *runs.last().unwrap() < total,
            "per-run diffs cannot all equal the running total: {runs:?}"
        );
    }

    #[test]
    fn amplification_is_sane_for_merged_aligned() {
        let g = generators::uniform_random(2_000, 32, 5);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.bfs(0);
        let amp = run.stats.amplification(engine.dataset_bytes());
        // Every edge is touched once; sector granularity and alignment
        // overfetch keep amplification a little above 1 (Figure 10 shows
        // ≤ 1.31 for EMOGI).
        assert!(amp > 0.8 && amp < 1.9, "amplification {amp}");
    }

    #[test]
    fn uvm_engine_places_edge_data_lazily_before_first_kernel() {
        // SSSP as the first program on a UVM engine: the managed weight
        // array must land inside the UVM driver's span.
        let g = generators::uniform_random(300, 8, 3);
        let w = generate_weights(g.num_edges(), 3);
        let mut engine = Engine::load(EngineConfig::uvm_v100(), &g);
        let run = engine.sssp(&w, 5);
        assert!(run.stats.page_faults > 0);
        let expect = algo::sssp_distances(&g, &w, 5);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }
    }

    #[test]
    #[should_panic(expected = "before the first managed kernel")]
    fn uvm_edge_data_after_first_kernel_is_rejected() {
        let g = generators::uniform_random(200, 6, 1);
        let w = generate_weights(g.num_edges(), 1);
        let mut engine = Engine::load(EngineConfig::uvm_v100(), &g);
        let _ = engine.bfs(0); // initializes the UVM driver
        let _ = engine.sssp(&w, 0); // would grow the managed span: refuse
    }
}
