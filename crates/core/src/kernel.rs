//! The one generic traversal kernel: any [`VertexProgram`] over any
//! [`AccessStrategy`].
//!
//! This collapses what used to be three near-identical kernel structs
//! (BFS / SSSP / CC each carried its own `Warp`/`Lanes` task enum, offset
//! loading and walk plumbing) into one. The *memory shape* of a launch is
//! algorithm-independent — per task: two 8-byte CSR offset loads (plus
//! the 4-byte own-status load for programs that declare it), then a
//! [`WarpWalk`] or [`LaneWalk`] over the neighbour list with a 4-byte
//! status gather per edge (plus the 4-byte edge-data stream for programs
//! that declare it), with conditional status stores. Only the per-edge
//! state update is the program's.

use crate::layout::GraphLayout;
use crate::program::{EdgeEffect, VertexProgram};
use crate::strategy::AccessStrategy;
use crate::walk::{LaneWalk, WarpWalk};
use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_graph::{CsrGraph, VertexId};
use emogi_runtime::{Kernel, StepOutcome};

/// One sharded work item: expand edge-list elements `lo..hi` of vertex
/// `v`'s neighbour list (a sub-range when a mega-hub's list is split
/// cooperatively across devices, the full list otherwise).
pub type WorkSlice = (VertexId, u64, u64);

/// The vertices one launch iterates over.
#[derive(Debug, Clone, Copy)]
pub enum WorkList<'a> {
    /// Frontier-driven: this iteration's active vertices.
    Frontier(&'a [VertexId]),
    /// Full sweep: every vertex `0..n`.
    All(u32),
    /// Sharded full sweep: the contiguous vertex range `lo..hi` one
    /// device owns ([`All`](WorkList::All) is `Range(0, n)`).
    Range(VertexId, VertexId),
    /// Sharded frontier: explicit `(vertex, edge lo, edge hi)` work
    /// items, one per (possibly partial) neighbour-list walk.
    Slices(&'a [WorkSlice]),
}

impl WorkList<'_> {
    fn len(&self) -> usize {
        match self {
            WorkList::Frontier(f) => f.len(),
            WorkList::All(n) => *n as usize,
            WorkList::Range(lo, hi) => (hi - lo) as usize,
            WorkList::Slices(s) => s.len(),
        }
    }

    fn get(&self, i: usize) -> VertexId {
        match self {
            WorkList::Frontier(f) => f[i],
            WorkList::All(_) => i as VertexId,
            WorkList::Range(lo, _) => lo + i as VertexId,
            WorkList::Slices(s) => s[i].0,
        }
    }
}

/// Task state: offset loading, then list walking.
///
/// The naive variant carries 32 lane cursors and is much larger than the
/// warp variant; tasks live in pre-sized executor slots, so the size
/// difference is intentional and harmless.
#[allow(clippy::large_enum_variant)]
pub enum ProgramTask<C> {
    /// Merged/aligned: a warp on one vertex (or one slice of a split
    /// mega-hub list).
    Warp {
        /// The vertex this warp expands.
        v: VertexId,
        /// The vertex's iteration-start context.
        ctx: C,
        /// Edge-list element range this task walks (the vertex's whole
        /// neighbour list, or its slice of a cooperatively split one).
        range: (u64, u64),
        /// Neighbour-list sweep state (`None` until the offsets loaded).
        walk: Option<WarpWalk>,
    },
    /// Naive: 32 lanes on 32 vertices.
    Lanes {
        /// The vertices, one per lane.
        vs: Vec<VertexId>,
        /// Their iteration-start contexts, parallel to `vs`.
        ctxs: Vec<C>,
        /// Per-lane edge-list element ranges, parallel to `vs`.
        ranges: Vec<(u64, u64)>,
        /// Per-lane cursor state (`None` until the offsets loaded).
        walk: Option<LaneWalk>,
    },
}

/// One launch of `program` over `work`.
pub struct ProgramKernel<'a, P: VertexProgram> {
    graph: &'a CsrGraph,
    layout: &'a GraphLayout,
    strategy: AccessStrategy,
    program: &'a mut P,
    work: WorkList<'a>,
    /// Per-work-item contexts, captured at kernel construction (i.e. at
    /// iteration start) so a launch's semantics are a pure function of
    /// the iteration-start program state — independent of how warp tasks
    /// interleave in the simulated machine. This is what makes batched
    /// multi-query execution ([`crate::batch`]) bit-identical to
    /// sequential runs.
    ctxs: Vec<P::Ctx>,
    /// Vertices activated this launch (frontier-driven programs).
    next_frontier: &'a mut Vec<VertexId>,
    pos: usize,
    loaded_scratch: Vec<(u64, u8)>,
    /// Cached program capability flags (hot path).
    edge_data: bool,
    source_status: bool,
    /// Full sweeps re-enumerate every vertex anyway, so activations are
    /// meaningless there — don't collect them.
    collect_activations: bool,
}

impl<'a, P: VertexProgram> ProgramKernel<'a, P> {
    /// Build one launch of `program` over `work`. Captures every work
    /// item's [`VertexProgram::source_ctx`] up front (iteration start).
    pub fn new(
        graph: &'a CsrGraph,
        layout: &'a GraphLayout,
        strategy: AccessStrategy,
        program: &'a mut P,
        work: WorkList<'a>,
        next_frontier: &'a mut Vec<VertexId>,
    ) -> Self {
        let ctxs = (0..work.len())
            .map(|i| program.source_ctx(work.get(i)))
            .collect();
        Self::with_ctxs(graph, layout, strategy, program, work, ctxs, next_frontier)
    }

    /// Build one launch over `work` with **pre-captured** contexts,
    /// parallel to the work list. The sharded engine uses this: in a
    /// multi-device iteration every shard's contexts must be captured
    /// *before any shard's kernel runs* — capturing lazily per shard
    /// would let an earlier shard's updates leak into a later shard's
    /// iteration-start state, breaking bit-identity with the
    /// single-device engine.
    // Like the batch kernel: one borrow per engine-owned resource.
    #[allow(clippy::too_many_arguments)]
    pub fn with_ctxs(
        graph: &'a CsrGraph,
        layout: &'a GraphLayout,
        strategy: AccessStrategy,
        program: &'a mut P,
        work: WorkList<'a>,
        ctxs: Vec<P::Ctx>,
        next_frontier: &'a mut Vec<VertexId>,
    ) -> Self {
        let edge_data = program.uses_edge_data();
        if edge_data {
            assert!(
                layout.weight_base.is_some(),
                "program needs edge data but none is placed"
            );
        }
        assert_eq!(ctxs.len(), work.len(), "one context per work item");
        let source_status = program.reads_source_status();
        let collect_activations = matches!(work, WorkList::Frontier(_) | WorkList::Slices(_));
        Self {
            graph,
            layout,
            strategy,
            program,
            work,
            ctxs,
            next_frontier,
            pos: 0,
            loaded_scratch: Vec::with_capacity(WARP_SIZE),
            edge_data,
            source_status,
            collect_activations,
        }
    }

    /// The edge-list element range work item `i` walks: the vertex's
    /// whole neighbour list, or the explicit slice of a split one.
    fn item_range(&self, i: usize) -> (u64, u64) {
        match self.work {
            WorkList::Slices(s) => {
                let (_, lo, hi) = s[i];
                (lo, hi)
            }
            _ => {
                let v = self.work.get(i);
                (self.graph.neighbor_start(v), self.graph.neighbor_end(v))
            }
        }
    }

    /// Task-start loads for vertex `v`: the two CSR offsets, and the own
    /// status entry for programs that read it.
    fn open_vertex(&mut self, v: VertexId, batch: &mut AccessBatch) {
        batch.load(self.layout.vertex_addr(u64::from(v)), 8, Space::Device);
        batch.load(self.layout.vertex_addr(u64::from(v) + 1), 8, Space::Device);
        if self.source_status {
            batch.load(self.layout.status_addr(u64::from(v)), 4, Space::Device);
        }
    }

    /// Process the semantics of edge-list element `i` from source `src`:
    /// emit the destination-status gather, run the program's update, emit
    /// the traffic of its effect. `instr` separates the gathers of
    /// different loop iterations.
    fn visit_edge(
        &mut self,
        i: u64,
        src: VertexId,
        ctx: P::Ctx,
        instr: u8,
        batch: &mut AccessBatch,
    ) {
        let dst = self.graph.edge_dst(i);
        batch.load_instr(
            self.layout.status_addr(u64::from(dst)),
            4,
            Space::Device,
            instr,
        );
        match self.program.edge(i, src, dst, ctx) {
            EdgeEffect::None => {}
            EdgeEffect::UpdateDst { activate } => {
                batch.store(self.layout.status_addr(u64::from(dst)), 4, Space::Device);
                if activate && self.collect_activations {
                    self.next_frontier.push(dst);
                }
            }
            EdgeEffect::UpdateSrc => {
                batch.store(self.layout.status_addr(u64::from(src)), 4, Space::Device);
            }
        }
    }
}

impl<P: VertexProgram> Kernel for ProgramKernel<'_, P> {
    type Task = ProgramTask<P::Ctx>;

    fn next_task(&mut self) -> Option<Self::Task> {
        let n = self.work.len();
        if self.pos >= n {
            return None;
        }
        if self.strategy.warp_per_vertex() {
            let v = self.work.get(self.pos);
            let ctx = self.ctxs[self.pos];
            let range = self.item_range(self.pos);
            self.pos += 1;
            Some(ProgramTask::Warp {
                v,
                ctx,
                range,
                walk: None,
            })
        } else {
            let hi = (self.pos + WARP_SIZE).min(n);
            let vs: Vec<VertexId> = (self.pos..hi).map(|i| self.work.get(i)).collect();
            let ctxs = self.ctxs[self.pos..hi].to_vec();
            let ranges: Vec<(u64, u64)> = (self.pos..hi).map(|i| self.item_range(i)).collect();
            self.pos = hi;
            Some(ProgramTask::Lanes {
                vs,
                ctxs,
                ranges,
                walk: None,
            })
        }
    }

    fn step(&mut self, task: &mut Self::Task, batch: &mut AccessBatch) -> StepOutcome {
        match task {
            ProgramTask::Warp {
                v,
                ctx,
                range,
                walk,
            } => {
                let Some(w) = walk else {
                    let (start, end) = *range;
                    self.open_vertex(*v, batch);
                    if start == end {
                        return StepOutcome::Done;
                    }
                    *walk = Some(WarpWalk::new(start, end, self.strategy, self.layout));
                    return StepOutcome::Continue;
                };
                let (lo, hi) = w.emit_edges(self.layout, batch);
                if self.edge_data {
                    WarpWalk::emit_weights(self.layout, batch, lo, hi);
                }
                let c = *ctx;
                let src = *v;
                for i in lo..hi {
                    self.visit_edge(i, src, c, 128, batch);
                }
                if w.is_done() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            ProgramTask::Lanes {
                vs,
                ctxs,
                ranges,
                walk,
            } => {
                let Some(w) = walk else {
                    for &v in vs.iter() {
                        self.open_vertex(v, batch);
                    }
                    let lw = LaneWalk::new(ranges);
                    if lw.is_done() {
                        return StepOutcome::Done;
                    }
                    *walk = Some(lw);
                    return StepOutcome::Continue;
                };
                let mut loaded = std::mem::take(&mut self.loaded_scratch);
                loaded.clear();
                w.emit_edges(self.layout, batch, &mut loaded);
                if self.edge_data {
                    LaneWalk::emit_weights(self.layout, batch, &loaded);
                }
                for &(i, iter) in &loaded {
                    // Identify which lane (= which source vertex) the
                    // element belongs to for the correct context.
                    let lane = vs
                        .iter()
                        .position(|&v| {
                            i >= self.graph.neighbor_start(v) && i < self.graph.neighbor_end(v)
                        })
                        .expect("element belongs to some lane");
                    self.visit_edge(i, vs[lane], ctxs[lane], 128 + iter, batch);
                }
                let done = w.is_done();
                self.loaded_scratch = loaded;
                if done {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsProgram;
    use crate::layout::EdgePlacement;
    use emogi_graph::{algo, generators, UNVISITED};
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::{exec, Machine};

    #[test]
    fn worklists_enumerate_their_vertices() {
        let f = [3u32, 9, 11];
        let wl = WorkList::Frontier(&f);
        assert_eq!(wl.len(), 3);
        assert_eq!(wl.get(2), 11);
        let all = WorkList::All(5);
        assert_eq!(all.len(), 5);
        assert_eq!(all.get(4), 4);
        let range = WorkList::Range(7, 12);
        assert_eq!(range.len(), 5);
        assert_eq!(range.get(0), 7);
        assert_eq!(range.get(4), 11);
    }

    /// Drive the generic kernel directly (no engine) through a full BFS,
    /// for every strategy — the seam the engine builds on.
    #[test]
    fn generic_kernel_runs_a_program_standalone() {
        for strategy in AccessStrategy::all() {
            let g = generators::uniform_random(500, 6, 42);
            let mut m = Machine::new(MachineConfig::v100_gen3());
            let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
            let mut prog = BfsProgram::new(&g, 3);
            let mut frontier = vec![3u32];
            while !frontier.is_empty() {
                prog.begin_iteration();
                let mut next = Vec::new();
                let mut k = ProgramKernel::new(
                    &g,
                    &layout,
                    strategy,
                    &mut prog,
                    WorkList::Frontier(&frontier),
                    &mut next,
                );
                exec::run_kernel(&mut m, &mut k);
                next.sort_unstable();
                frontier = next;
            }
            let out = prog.finish();
            assert_eq!(out.levels, algo::bfs_levels(&g, 3), "{strategy:?}");
            assert!(m.monitor.read_requests > 0);
            assert!(out.levels.contains(&UNVISITED) || !out.levels.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "edge data")]
    fn edge_data_program_requires_placed_weights() {
        use crate::sssp::SsspProgram;
        let g = generators::uniform_random(50, 4, 1);
        let w = vec![1u32; g.num_edges()];
        let mut m = Machine::new(MachineConfig::v100_gen3());
        // Placed *without* the weight array.
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        let mut prog = SsspProgram::new(&g, &w, 0);
        let frontier = vec![0u32];
        let mut next = Vec::new();
        let _ = ProgramKernel::new(
            &g,
            &layout,
            AccessStrategy::MergedAligned,
            &mut prog,
            WorkList::Frontier(&frontier),
            &mut next,
        );
    }
}
