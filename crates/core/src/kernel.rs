//! The one generic traversal kernel: any [`VertexProgram`] over any
//! [`AccessStrategy`].
//!
//! This collapses what used to be three near-identical kernel structs
//! (BFS / SSSP / CC each carried its own `Warp`/`Lanes` task enum, offset
//! loading and walk plumbing) into one. The *memory shape* of a launch is
//! algorithm-independent — per task: two 8-byte CSR offset loads (plus
//! the 4-byte own-status load for programs that declare it), then a
//! [`WarpWalk`] or [`LaneWalk`] over the neighbour list with a 4-byte
//! status gather per edge (plus the 4-byte edge-data stream for programs
//! that declare it), with conditional status stores. Only the per-edge
//! state update is the program's.

use crate::layout::GraphLayout;
use crate::program::{EdgeEffect, VertexProgram};
use crate::strategy::AccessStrategy;
use crate::walk::{LaneWalk, WarpWalk};
use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_graph::{CsrGraph, VertexId};
use emogi_runtime::{Kernel, StepOutcome};

/// The vertices one launch iterates over.
#[derive(Debug, Clone, Copy)]
pub enum WorkList<'a> {
    /// Frontier-driven: this iteration's active vertices.
    Frontier(&'a [VertexId]),
    /// Full sweep: every vertex `0..n`.
    All(u32),
}

impl WorkList<'_> {
    fn len(&self) -> usize {
        match self {
            WorkList::Frontier(f) => f.len(),
            WorkList::All(n) => *n as usize,
        }
    }

    fn get(&self, i: usize) -> VertexId {
        match self {
            WorkList::Frontier(f) => f[i],
            WorkList::All(_) => i as VertexId,
        }
    }
}

/// Task state: offset loading, then list walking.
///
/// The naive variant carries 32 lane cursors and is much larger than the
/// warp variant; tasks live in pre-sized executor slots, so the size
/// difference is intentional and harmless.
#[allow(clippy::large_enum_variant)]
pub enum ProgramTask<C> {
    /// Merged/aligned: a warp on one vertex.
    Warp {
        /// The vertex this warp expands.
        v: VertexId,
        /// The vertex's iteration-start context.
        ctx: C,
        /// Neighbour-list sweep state (`None` until the offsets loaded).
        walk: Option<WarpWalk>,
    },
    /// Naive: 32 lanes on 32 vertices.
    Lanes {
        /// The vertices, one per lane.
        vs: Vec<VertexId>,
        /// Their iteration-start contexts, parallel to `vs`.
        ctxs: Vec<C>,
        /// Per-lane cursor state (`None` until the offsets loaded).
        walk: Option<LaneWalk>,
    },
}

/// One launch of `program` over `work`.
pub struct ProgramKernel<'a, P: VertexProgram> {
    graph: &'a CsrGraph,
    layout: &'a GraphLayout,
    strategy: AccessStrategy,
    program: &'a mut P,
    work: WorkList<'a>,
    /// Per-work-item contexts, captured at kernel construction (i.e. at
    /// iteration start) so a launch's semantics are a pure function of
    /// the iteration-start program state — independent of how warp tasks
    /// interleave in the simulated machine. This is what makes batched
    /// multi-query execution ([`crate::batch`]) bit-identical to
    /// sequential runs.
    ctxs: Vec<P::Ctx>,
    /// Vertices activated this launch (frontier-driven programs).
    next_frontier: &'a mut Vec<VertexId>,
    pos: usize,
    loaded_scratch: Vec<(u64, u8)>,
    /// Cached program capability flags (hot path).
    edge_data: bool,
    source_status: bool,
    /// Full sweeps re-enumerate every vertex anyway, so activations are
    /// meaningless there — don't collect them.
    collect_activations: bool,
}

impl<'a, P: VertexProgram> ProgramKernel<'a, P> {
    /// Build one launch of `program` over `work`. Captures every work
    /// item's [`VertexProgram::source_ctx`] up front (iteration start).
    pub fn new(
        graph: &'a CsrGraph,
        layout: &'a GraphLayout,
        strategy: AccessStrategy,
        program: &'a mut P,
        work: WorkList<'a>,
        next_frontier: &'a mut Vec<VertexId>,
    ) -> Self {
        let edge_data = program.uses_edge_data();
        if edge_data {
            assert!(
                layout.weight_base.is_some(),
                "program needs edge data but none is placed"
            );
        }
        let source_status = program.reads_source_status();
        let collect_activations = matches!(work, WorkList::Frontier(_));
        let ctxs = (0..work.len())
            .map(|i| program.source_ctx(work.get(i)))
            .collect();
        Self {
            graph,
            layout,
            strategy,
            program,
            work,
            ctxs,
            next_frontier,
            pos: 0,
            loaded_scratch: Vec::with_capacity(WARP_SIZE),
            edge_data,
            source_status,
            collect_activations,
        }
    }

    /// Task-start loads for vertex `v`: the two CSR offsets, and the own
    /// status entry for programs that read it. Returns the neighbour
    /// range.
    fn open_vertex(&mut self, v: VertexId, batch: &mut AccessBatch) -> (u64, u64) {
        batch.load(self.layout.vertex_addr(u64::from(v)), 8, Space::Device);
        batch.load(self.layout.vertex_addr(u64::from(v) + 1), 8, Space::Device);
        if self.source_status {
            batch.load(self.layout.status_addr(u64::from(v)), 4, Space::Device);
        }
        (self.graph.neighbor_start(v), self.graph.neighbor_end(v))
    }

    /// Process the semantics of edge-list element `i` from source `src`:
    /// emit the destination-status gather, run the program's update, emit
    /// the traffic of its effect. `instr` separates the gathers of
    /// different loop iterations.
    fn visit_edge(
        &mut self,
        i: u64,
        src: VertexId,
        ctx: P::Ctx,
        instr: u8,
        batch: &mut AccessBatch,
    ) {
        let dst = self.graph.edge_dst(i);
        batch.load_instr(
            self.layout.status_addr(u64::from(dst)),
            4,
            Space::Device,
            instr,
        );
        match self.program.edge(i, src, dst, ctx) {
            EdgeEffect::None => {}
            EdgeEffect::UpdateDst { activate } => {
                batch.store(self.layout.status_addr(u64::from(dst)), 4, Space::Device);
                if activate && self.collect_activations {
                    self.next_frontier.push(dst);
                }
            }
            EdgeEffect::UpdateSrc => {
                batch.store(self.layout.status_addr(u64::from(src)), 4, Space::Device);
            }
        }
    }
}

impl<P: VertexProgram> Kernel for ProgramKernel<'_, P> {
    type Task = ProgramTask<P::Ctx>;

    fn next_task(&mut self) -> Option<Self::Task> {
        let n = self.work.len();
        if self.pos >= n {
            return None;
        }
        if self.strategy.warp_per_vertex() {
            let v = self.work.get(self.pos);
            let ctx = self.ctxs[self.pos];
            self.pos += 1;
            Some(ProgramTask::Warp { v, ctx, walk: None })
        } else {
            let hi = (self.pos + WARP_SIZE).min(n);
            let vs: Vec<VertexId> = (self.pos..hi).map(|i| self.work.get(i)).collect();
            let ctxs = self.ctxs[self.pos..hi].to_vec();
            self.pos = hi;
            Some(ProgramTask::Lanes {
                vs,
                ctxs,
                walk: None,
            })
        }
    }

    fn step(&mut self, task: &mut Self::Task, batch: &mut AccessBatch) -> StepOutcome {
        match task {
            ProgramTask::Warp { v, ctx, walk } => {
                let Some(w) = walk else {
                    let (start, end) = self.open_vertex(*v, batch);
                    if start == end {
                        return StepOutcome::Done;
                    }
                    *walk = Some(WarpWalk::new(start, end, self.strategy, self.layout));
                    return StepOutcome::Continue;
                };
                let (lo, hi) = w.emit_edges(self.layout, batch);
                if self.edge_data {
                    WarpWalk::emit_weights(self.layout, batch, lo, hi);
                }
                let c = *ctx;
                let src = *v;
                for i in lo..hi {
                    self.visit_edge(i, src, c, 128, batch);
                }
                if w.is_done() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            ProgramTask::Lanes { vs, ctxs, walk } => {
                let Some(w) = walk else {
                    let mut ranges = Vec::with_capacity(vs.len());
                    for &v in vs.iter() {
                        let (start, end) = self.open_vertex(v, batch);
                        ranges.push((start, end));
                    }
                    let lw = LaneWalk::new(&ranges);
                    if lw.is_done() {
                        return StepOutcome::Done;
                    }
                    *walk = Some(lw);
                    return StepOutcome::Continue;
                };
                let mut loaded = std::mem::take(&mut self.loaded_scratch);
                loaded.clear();
                w.emit_edges(self.layout, batch, &mut loaded);
                if self.edge_data {
                    LaneWalk::emit_weights(self.layout, batch, &loaded);
                }
                for &(i, iter) in &loaded {
                    // Identify which lane (= which source vertex) the
                    // element belongs to for the correct context.
                    let lane = vs
                        .iter()
                        .position(|&v| {
                            i >= self.graph.neighbor_start(v) && i < self.graph.neighbor_end(v)
                        })
                        .expect("element belongs to some lane");
                    self.visit_edge(i, vs[lane], ctxs[lane], 128 + iter, batch);
                }
                let done = w.is_done();
                self.loaded_scratch = loaded;
                if done {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsProgram;
    use crate::layout::EdgePlacement;
    use emogi_graph::{algo, generators, UNVISITED};
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::{exec, Machine};

    #[test]
    fn worklists_enumerate_their_vertices() {
        let f = [3u32, 9, 11];
        let wl = WorkList::Frontier(&f);
        assert_eq!(wl.len(), 3);
        assert_eq!(wl.get(2), 11);
        let all = WorkList::All(5);
        assert_eq!(all.len(), 5);
        assert_eq!(all.get(4), 4);
    }

    /// Drive the generic kernel directly (no engine) through a full BFS,
    /// for every strategy — the seam the engine builds on.
    #[test]
    fn generic_kernel_runs_a_program_standalone() {
        for strategy in AccessStrategy::all() {
            let g = generators::uniform_random(500, 6, 42);
            let mut m = Machine::new(MachineConfig::v100_gen3());
            let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
            let mut prog = BfsProgram::new(&g, 3);
            let mut frontier = vec![3u32];
            while !frontier.is_empty() {
                prog.begin_iteration();
                let mut next = Vec::new();
                let mut k = ProgramKernel::new(
                    &g,
                    &layout,
                    strategy,
                    &mut prog,
                    WorkList::Frontier(&frontier),
                    &mut next,
                );
                exec::run_kernel(&mut m, &mut k);
                next.sort_unstable();
                frontier = next;
            }
            let out = prog.finish();
            assert_eq!(out.levels, algo::bfs_levels(&g, 3), "{strategy:?}");
            assert!(m.monitor.read_requests > 0);
            assert!(out.levels.contains(&UNVISITED) || !out.levels.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "edge data")]
    fn edge_data_program_requires_placed_weights() {
        use crate::sssp::SsspProgram;
        let g = generators::uniform_random(50, 4, 1);
        let w = vec![1u32; g.num_edges()];
        let mut m = Machine::new(MachineConfig::v100_gen3());
        // Placed *without* the weight array.
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        let mut prog = SsspProgram::new(&g, &w, 0);
        let frontier = vec![0u32];
        let mut next = Vec::new();
        let _ = ProgramKernel::new(
            &g,
            &layout,
            AccessStrategy::MergedAligned,
            &mut prog,
            WorkList::Frontier(&frontier),
            &mut next,
        );
    }
}
