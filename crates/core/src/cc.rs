//! Connected components as a [`VertexProgram`] (Shiloach-Vishkin-style
//! hook + shortcut, after the GARDENIA baseline the paper builds on,
//! its reference \[51\]).
//!
//! "With CC, instead of picking a specific vertex to start with, all
//! vertices are set as root vertices and the entire edge list is
//! traversed" (§5.4) — CC is the canonical
//! [`AccessPattern::FullSweep`] program: every hook pass streams the
//! whole edge list, which is why CC shows the most spatial locality of
//! the three applications and the smallest EMOGI-over-UVM gain. The
//! shortcut (pointer-jumping) passes touch only the device-resident
//! label array; the program reports them as inter-launch device work.

use crate::program::{AccessPattern, DeviceWork, EdgeEffect, VertexProgram};
use emogi_graph::{CsrGraph, VertexId};

/// CC result: per-vertex component labels (the smallest vertex id of the
/// component) and the number of hook passes it took to converge.
#[derive(Debug, Clone)]
pub struct CcOutput {
    /// Per-vertex component label (smallest vertex id in the component).
    pub comp: Vec<u32>,
    /// Hook passes until convergence.
    pub hook_passes: u64,
}

/// The CC vertex program. Per-vertex state: the device-resident label
/// array (semantic copy) plus its iteration-start snapshot.
pub struct CcProgram {
    comp: Vec<u32>,
    /// Iteration-start snapshot of `comp`: hooks read neighbour labels
    /// from here, so a pass's result is a pure function of its start
    /// state — independent of warp interleaving and of how the sweep is
    /// sharded across devices.
    prev: Vec<u32>,
    changed: bool,
    hook_passes: u64,
}

impl CcProgram {
    /// CC over `graph`, which must be undirected.
    pub fn new(graph: &CsrGraph) -> Self {
        assert!(
            graph.is_undirected(),
            "CC requires an undirected graph (the paper skips SK/UK5 for CC)"
        );
        Self {
            comp: (0..graph.num_vertices() as u32).collect(),
            prev: Vec::new(),
            changed: false,
            hook_passes: 0,
        }
    }
}

impl VertexProgram for CcProgram {
    type Ctx = ();
    type Output = CcOutput;

    fn pattern(&self) -> AccessPattern {
        AccessPattern::FullSweep
    }

    fn reads_source_status(&self) -> bool {
        true
    }

    fn begin_iteration(&mut self) {
        self.changed = false;
        self.hook_passes += 1;
        self.prev.clone_from(&self.comp);
    }

    fn source_ctx(&self, _v: VertexId) -> Self::Ctx {}

    /// Hook: the source adopts the smaller of its own live label and the
    /// neighbour's **iteration-start** label. Reading the neighbour from
    /// the pass-start snapshot makes the pass a commutative min-fold —
    /// `comp'[v] = min(comp[v], min of start labels of N(v))` — so its
    /// result (and the pass count to convergence) is identical no matter
    /// how warps interleave or how the sweep is sharded across devices.
    fn edge(&mut self, _i: u64, src: VertexId, dst: VertexId, _ctx: ()) -> EdgeEffect {
        let cd = self.prev[dst as usize];
        if cd < self.comp[src as usize] {
            self.comp[src as usize] = cd;
            self.changed = true;
            EdgeEffect::UpdateSrc
        } else {
            EdgeEffect::None
        }
    }

    /// Pointer-jumping shortcut after each hook pass. Pure device-array
    /// work: charge two 4-byte streams (read + gather) per pass.
    fn post_iteration(&mut self, work: &mut DeviceWork) {
        let jump_passes = shortcut(&mut self.comp);
        for _ in 0..jump_passes {
            work.bulk_read(self.comp.len() as u64 * 8);
        }
    }

    fn converged(&self) -> bool {
        !self.changed
    }

    fn finish(self) -> CcOutput {
        CcOutput {
            comp: self.comp,
            hook_passes: self.hook_passes,
        }
    }
}

/// Pointer-jumping shortcut: `comp[v] = comp[comp[v]]` to fixpoint.
/// Returns the number of jump passes so their cost can be charged.
pub fn shortcut(comp: &mut [u32]) -> u32 {
    let mut passes = 0;
    loop {
        passes += 1;
        let mut changed = false;
        for v in 0..comp.len() {
            let c = comp[v] as usize;
            let cc = comp[c];
            if comp[v] != cc {
                comp[v] = cc;
                changed = true;
            }
        }
        if !changed {
            return passes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::strategy::AccessStrategy;
    use emogi_graph::{algo, generators};

    fn cc_via_engine(strategy: AccessStrategy, seed: u64) {
        let g = generators::uniform_random(400, 4, seed);
        let mut engine = Engine::load(EngineConfig::emogi_v100().with_strategy(strategy), &g);
        let run = engine.cc();
        assert_eq!(run.comp, algo::cc_labels(&g), "{strategy:?}");
        assert_eq!(run.hook_passes, run.stats.kernel_launches);
    }

    #[test]
    fn merged_aligned_matches_union_find() {
        cc_via_engine(AccessStrategy::MergedAligned, 4);
    }

    #[test]
    fn merged_matches_union_find() {
        cc_via_engine(AccessStrategy::Merged, 5);
    }

    #[test]
    fn naive_matches_union_find() {
        cc_via_engine(AccessStrategy::Naive, 6);
    }

    #[test]
    fn shortcut_compresses_chains() {
        let mut comp = vec![0, 0, 1, 2, 3];
        let passes = shortcut(&mut comp);
        assert_eq!(comp, vec![0; 5]);
        assert!(passes >= 2);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_graph_rejected() {
        let g = generators::web_crawl(100, 4, 20, 0.8, 1);
        let _ = CcProgram::new(&g);
    }

    #[test]
    fn full_pass_streams_whole_edge_list() {
        let g = generators::uniform_random(512, 8, 11);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.cc();
        // Every hook pass must read at least every edge element once
        // (8 bytes each) — plus alignment overfetch, minus cache hits on
        // later passes; the first pass alone covers the edge list.
        assert!(run.stats.host_bytes >= g.num_edges() as u64 * 8);
    }
}
