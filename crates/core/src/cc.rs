//! Connected components kernel (Shiloach-Vishkin-style hook + shortcut,
//! after the GARDENIA baseline the paper builds on [51]).
//!
//! "With CC, instead of picking a specific vertex to start with, all
//! vertices are set as root vertices and the entire edge list is
//! traversed" (§5.4) — every hook pass streams the whole edge list, which
//! is why CC shows the most spatial locality of the three applications
//! and the smallest EMOGI-over-UVM gain. The shortcut (pointer-jumping)
//! passes touch only the device-resident label array; the traversal
//! driver charges them separately.

use crate::layout::GraphLayout;
use crate::strategy::AccessStrategy;
use crate::walk::{LaneWalk, WarpWalk};
use emogi_graph::{CsrGraph, VertexId};
use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_runtime::{Kernel, StepOutcome};

/// One hook pass: every vertex adopts the smallest label among its own
/// and its neighbours'.
pub struct CcKernel<'a> {
    pub graph: &'a CsrGraph,
    pub layout: &'a GraphLayout,
    pub strategy: AccessStrategy,
    /// Device-resident component label array (semantic copy).
    pub comp: &'a mut [u32],
    /// Set if any label changed in this pass.
    pub changed: bool,
    pos: u32,
    loaded_scratch: Vec<(u64, u8)>,
}

impl<'a> CcKernel<'a> {
    pub fn new(
        graph: &'a CsrGraph,
        layout: &'a GraphLayout,
        strategy: AccessStrategy,
        comp: &'a mut [u32],
    ) -> Self {
        assert!(
            graph.is_undirected(),
            "CC requires an undirected graph (the paper skips SK/UK5 for CC)"
        );
        Self {
            graph,
            layout,
            strategy,
            comp,
            changed: false,
            pos: 0,
            loaded_scratch: Vec::with_capacity(WARP_SIZE),
        }
    }

    fn hook(&mut self, i: u64, src: VertexId, instr: u8, batch: &mut AccessBatch) {
        let dst = self.graph.edge_dst(i);
        batch.load_instr(self.layout.status_addr(u64::from(dst)), 4, Space::Device, instr);
        let cd = self.comp[dst as usize];
        if cd < self.comp[src as usize] {
            self.comp[src as usize] = cd;
            batch.store(self.layout.status_addr(u64::from(src)), 4, Space::Device);
            self.changed = true;
        }
    }
}

#[allow(clippy::large_enum_variant)]
pub enum CcTask {
    Warp { v: VertexId, walk: Option<WarpWalk> },
    Lanes {
        vs: Vec<VertexId>,
        walk: Option<LaneWalk>,
    },
}

impl Kernel for CcKernel<'_> {
    type Task = CcTask;

    fn next_task(&mut self) -> Option<CcTask> {
        let n = self.graph.num_vertices() as u32;
        if self.pos >= n {
            return None;
        }
        if self.strategy.warp_per_vertex() {
            let v = self.pos;
            self.pos += 1;
            Some(CcTask::Warp { v, walk: None })
        } else {
            let lo = self.pos;
            let hi = (lo + WARP_SIZE as u32).min(n);
            self.pos = hi;
            Some(CcTask::Lanes {
                vs: (lo..hi).collect(),
                walk: None,
            })
        }
    }

    fn step(&mut self, task: &mut CcTask, batch: &mut AccessBatch) -> StepOutcome {
        match task {
            CcTask::Warp { v, walk } => {
                let Some(w) = walk else {
                    batch.load(self.layout.vertex_addr(u64::from(*v)), 8, Space::Device);
                    batch.load(self.layout.vertex_addr(u64::from(*v) + 1), 8, Space::Device);
                    batch.load(self.layout.status_addr(u64::from(*v)), 4, Space::Device);
                    let (start, end) = (self.graph.neighbor_start(*v), self.graph.neighbor_end(*v));
                    if start == end {
                        return StepOutcome::Done;
                    }
                    *walk = Some(WarpWalk::new(start, end, self.strategy, self.layout));
                    return StepOutcome::Continue;
                };
                let (lo, hi) = w.emit_edges(self.layout, batch);
                let src = *v;
                for i in lo..hi {
                    self.hook(i, src, 128, batch);
                }
                if w.is_done() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            CcTask::Lanes { vs, walk } => {
                let Some(w) = walk else {
                    let mut ranges = Vec::with_capacity(vs.len());
                    for &v in vs.iter() {
                        batch.load(self.layout.vertex_addr(u64::from(v)), 8, Space::Device);
                        batch.load(self.layout.vertex_addr(u64::from(v) + 1), 8, Space::Device);
                        batch.load(self.layout.status_addr(u64::from(v)), 4, Space::Device);
                        ranges.push((self.graph.neighbor_start(v), self.graph.neighbor_end(v)));
                    }
                    let lw = LaneWalk::new(&ranges);
                    if lw.is_done() {
                        return StepOutcome::Done;
                    }
                    *walk = Some(lw);
                    return StepOutcome::Continue;
                };
                let mut loaded = std::mem::take(&mut self.loaded_scratch);
                loaded.clear();
                w.emit_edges(self.layout, batch, &mut loaded);
                for &(i, iter) in &loaded {
                    let lane = vs
                        .iter()
                        .position(|&v| {
                            i >= self.graph.neighbor_start(v) && i < self.graph.neighbor_end(v)
                        })
                        .expect("element belongs to some lane");
                    self.hook(i, vs[lane], 128 + iter, batch);
                }
                let done = w.is_done();
                self.loaded_scratch = loaded;
                if done {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }
}

/// Pointer-jumping shortcut: `comp[v] = comp[comp[v]]` to fixpoint.
/// Pure device-array work; returns the number of jump passes so the
/// driver can charge their cost.
pub fn shortcut(comp: &mut [u32]) -> u32 {
    let mut passes = 0;
    loop {
        passes += 1;
        let mut changed = false;
        for v in 0..comp.len() {
            let c = comp[v] as usize;
            let cc = comp[c];
            if comp[v] != cc {
                comp[v] = cc;
                changed = true;
            }
        }
        if !changed {
            return passes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgePlacement;
    use emogi_graph::{algo, generators};
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::{exec, Machine};

    fn cc_via_kernel(strategy: AccessStrategy, seed: u64) {
        let g = generators::uniform_random(400, 4, seed);
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        let mut comp: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100, "CC failed to converge");
            let mut k = CcKernel::new(&g, &layout, strategy, &mut comp);
            exec::run_kernel(&mut m, &mut k);
            let changed = k.changed;
            shortcut(&mut comp);
            if !changed {
                break;
            }
        }
        assert_eq!(comp, algo::cc_labels(&g), "{strategy:?}");
    }

    #[test]
    fn merged_aligned_matches_union_find() {
        cc_via_kernel(AccessStrategy::MergedAligned, 4);
    }

    #[test]
    fn merged_matches_union_find() {
        cc_via_kernel(AccessStrategy::Merged, 5);
    }

    #[test]
    fn naive_matches_union_find() {
        cc_via_kernel(AccessStrategy::Naive, 6);
    }

    #[test]
    fn shortcut_compresses_chains() {
        let mut comp = vec![0, 0, 1, 2, 3];
        let passes = shortcut(&mut comp);
        assert_eq!(comp, vec![0; 5]);
        assert!(passes >= 2);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_graph_rejected() {
        let g = generators::web_crawl(100, 4, 20, 0.8, 1);
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        let mut comp: Vec<u32> = (0..100).collect();
        let _ = CcKernel::new(&g, &layout, AccessStrategy::Merged, &mut comp);
    }

    #[test]
    fn full_pass_streams_whole_edge_list() {
        let g = generators::uniform_random(512, 8, 11);
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        let mut comp: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut k = CcKernel::new(&g, &layout, AccessStrategy::MergedAligned, &mut comp);
        exec::run_kernel(&mut m, &mut k);
        // One pass must read at least every edge element once (8 bytes
        // each), minus nothing — plus alignment overfetch.
        assert!(m.monitor.zero_copy_bytes >= g.num_edges() as u64 * 8);
    }
}
