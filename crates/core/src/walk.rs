//! Neighbour-list walking shared by the BFS / SSSP / CC kernels.
//!
//! [`WarpWalk`] is the merged (warp-per-vertex) iterator of Listing 2:
//! the warp sweeps the list 32 elements at a time, optionally starting
//! from the 128-byte-aligned index below the list head with the
//! underflowing lanes masked off. [`LaneWalk`] is the naive
//! (thread-per-vertex) iterator of Listing 1: each lane advances its own
//! list one element at a time.

use crate::layout::GraphLayout;
use crate::strategy::AccessStrategy;
use emogi_gpu::access::{AccessBatch, WARP_SIZE};

/// Merged/aligned warp sweep over one `[start, end)` element range.
#[derive(Debug, Clone, Copy)]
pub struct WarpWalk {
    cursor: u64,
    start_org: u64,
    end: u64,
}

impl WarpWalk {
    /// A warp sweep over elements `[start, end)` under `strategy`.
    pub fn new(start: u64, end: u64, strategy: AccessStrategy, layout: &GraphLayout) -> Self {
        debug_assert!(strategy.warp_per_vertex());
        Self {
            cursor: strategy.start_cursor(start, layout.elems_per_line()),
            start_org: start,
            end,
        }
    }

    /// Whether the sweep has covered the whole range.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.end
    }

    /// Emit this iteration's edge loads (one per active lane) and advance.
    /// Returns the `[lo, hi)` range of *real* elements covered (the
    /// aligned prefix below `start_org` is fetched but carries no edges).
    pub fn emit_edges(&mut self, layout: &GraphLayout, batch: &mut AccessBatch) -> (u64, u64) {
        debug_assert!(!self.is_done());
        let chunk_end = (self.cursor + WARP_SIZE as u64).min(self.end);
        let lo = self.cursor.max(self.start_org);
        for i in lo..chunk_end {
            let addr = layout.edge_addr(i);
            batch.load(addr, layout.elem_bytes as u8, layout.edge_addr_space(addr));
        }
        self.cursor = chunk_end;
        (lo, chunk_end)
    }

    /// Emit weight loads for the same element range (SSSP reads the
    /// 4-byte weight array in lock-step with the edge array).
    pub fn emit_weights(layout: &GraphLayout, batch: &mut AccessBatch, lo: u64, hi: u64) {
        for i in lo..hi {
            batch.load(layout.weight_addr(i), 4, layout.edge_space);
        }
    }
}

/// Loop iterations a lane keeps in flight per step: modern GPUs issue the
/// *independent* edge loads of several loop iterations back-to-back
/// (per-thread memory-level parallelism), so a lane is never limited to
/// one outstanding sector. Each iteration is its own instruction group,
/// which keeps the naive pattern's requests at 32 bytes on the wire.
pub const LANE_RUNAHEAD: usize = 32;

/// Naive per-lane walk: up to 32 independent `[cursor, end)` ranges.
#[derive(Debug, Clone)]
pub struct LaneWalk {
    lanes: [(u64, u64); WARP_SIZE],
    active: u32,
}

impl LaneWalk {
    /// A per-lane walk over up to 32 independent element ranges.
    pub fn new(ranges: &[(u64, u64)]) -> Self {
        assert!(ranges.len() <= WARP_SIZE);
        let mut lanes = [(0u64, 0u64); WARP_SIZE];
        let mut active = 0;
        for (i, &(s, e)) in ranges.iter().enumerate() {
            lanes[i] = (s, e);
            if s < e {
                active += 1;
            }
        }
        Self { lanes, active }
    }

    /// Whether every lane has exhausted its range.
    pub fn is_done(&self) -> bool {
        self.active == 0
    }

    /// Emit up to [`LANE_RUNAHEAD`] element loads per still-active lane,
    /// one instruction group per loop iteration, and record the
    /// `(element, iteration)` pairs in `loaded`. Lanes whose lists are
    /// exhausted idle — the §4.3.1 divergence cost of unequal list
    /// lengths.
    pub fn emit_edges(
        &mut self,
        layout: &GraphLayout,
        batch: &mut AccessBatch,
        loaded: &mut Vec<(u64, u8)>,
    ) {
        debug_assert!(!self.is_done());
        for k in 0..LANE_RUNAHEAD as u8 {
            let mut any = false;
            for lane in &mut self.lanes {
                if lane.0 < lane.1 {
                    let addr = layout.edge_addr(lane.0);
                    batch.load_instr(
                        addr,
                        layout.elem_bytes as u8,
                        layout.edge_addr_space(addr),
                        k,
                    );
                    loaded.push((lane.0, k));
                    lane.0 += 1;
                    if lane.0 == lane.1 {
                        self.active -= 1;
                    }
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    /// Weight loads matching the `(element, iteration)` pairs just loaded
    /// (their own instruction groups, offset from the edge loads').
    pub fn emit_weights(layout: &GraphLayout, batch: &mut AccessBatch, loaded: &[(u64, u8)]) {
        for &(i, k) in loaded {
            batch.load_instr(layout.weight_addr(i), 4, layout.edge_space, 64 + k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgePlacement;
    use emogi_gpu::access::Space;

    fn layout() -> GraphLayout {
        GraphLayout {
            edge_base: 0x2_0000_0000_0000,
            weight_base: Some(0x2_0000_1000_0000),
            vertex_base: 0x1_0000_0000_0000,
            status_base: 0x1_0000_1000_0000,
            elem_bytes: 8,
            edge_space: EdgePlacement::ZeroCopyHost.space(),
            host_edge_bytes: u64::MAX,
            cxl_edge_base: None,
            staged_edges: None,
        }
    }

    #[test]
    fn aligned_walk_masks_underflow_lanes() {
        let l = layout();
        // List spans elements [19, 40): aligned start is 16.
        let mut w = WarpWalk::new(19, 40, AccessStrategy::MergedAligned, &l);
        let mut b = AccessBatch::new();
        let (lo, hi) = w.emit_edges(&l, &mut b);
        // The first chunk is the aligned 16..48 window clipped to the list.
        assert_eq!((lo, hi), (19, 40));
        assert_eq!(
            b.len(),
            (40 - 19) as usize,
            "lanes 16..19 masked, 40..48 beyond end"
        );
        // First load address is element 19, but the *chunk* covers the
        // aligned line; the coalescer sees loads from 19 to 39.
        assert_eq!(b.items()[0].addr, l.edge_addr(19));
        assert!(w.is_done());
    }

    #[test]
    fn merged_walk_starts_at_list_head() {
        let l = layout();
        let mut w = WarpWalk::new(19, 100, AccessStrategy::Merged, &l);
        let mut b = AccessBatch::new();
        let (lo, hi) = w.emit_edges(&l, &mut b);
        assert_eq!((lo, hi), (19, 51));
        assert_eq!(b.len(), 32);
        assert!(!w.is_done());
        b.clear();
        let (lo2, _) = w.emit_edges(&l, &mut b);
        assert_eq!(lo2, 51);
    }

    #[test]
    fn warp_walk_covers_every_real_element_exactly_once() {
        let l = layout();
        for strategy in [AccessStrategy::Merged, AccessStrategy::MergedAligned] {
            for (s, e) in [(0u64, 1u64), (5, 37), (16, 48), (19, 20), (100, 164)] {
                let mut w = WarpWalk::new(s, e, strategy, &l);
                let mut seen = Vec::new();
                let mut b = AccessBatch::new();
                while !w.is_done() {
                    b.clear();
                    let (lo, hi) = w.emit_edges(&l, &mut b);
                    seen.extend(lo..hi.min(e));
                }
                let want: Vec<u64> = (s..e).collect();
                assert_eq!(seen, want, "strategy {strategy:?} range {s}..{e}");
            }
        }
    }

    #[test]
    fn lane_walk_diverges_and_runs_ahead() {
        let l = layout();
        let mut w = LaneWalk::new(&[(0, 3), (10, 11), (20, 20)]);
        let mut b = AccessBatch::new();
        let mut loaded = Vec::new();
        // One step drains both short lists thanks to the runahead;
        // iterations interleave lane-major within each instruction group.
        w.emit_edges(&l, &mut b, &mut loaded);
        assert_eq!(loaded, vec![(0, 0), (10, 0), (1, 1), (2, 2)]);
        assert!(w.is_done());
        // Per-iteration instruction ids keep same-lane consecutive
        // elements in separate groups.
        assert_eq!(b.items()[0].instr, 0);
        assert_eq!(b.items()[2].instr, 1);
    }

    #[test]
    fn lane_walk_long_list_stops_at_runahead() {
        let l = layout();
        let mut w = LaneWalk::new(&[(0, 100)]);
        let mut b = AccessBatch::new();
        let mut loaded = Vec::new();
        w.emit_edges(&l, &mut b, &mut loaded);
        assert_eq!(loaded.len(), LANE_RUNAHEAD);
        assert!(!w.is_done());
    }

    #[test]
    fn weight_loads_are_4_byte_in_edge_space() {
        let l = layout();
        let mut b = AccessBatch::new();
        WarpWalk::emit_weights(&l, &mut b, 5, 8);
        assert_eq!(b.len(), 3);
        assert_eq!(b.items()[0].addr, l.weight_addr(5));
        assert_eq!(b.items()[0].size, 4);
        assert_eq!(b.items()[0].space, Space::HostPinned);

        let mut b2 = AccessBatch::new();
        LaneWalk::emit_weights(&l, &mut b2, &[(5, 0), (6, 1)]);
        assert_eq!(b2.items()[0].instr, 64);
        assert_eq!(b2.items()[1].instr, 65);
    }
}
