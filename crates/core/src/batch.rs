//! Batched multi-query execution: many frontier-driven queries, one
//! edge-list fetch.
//!
//! EMOGI's premise is that every PCIe cache line counts; once an
//! [`Engine`](crate::engine::Engine) serves many queries against one
//! placement, concurrent queries whose frontiers overlap should *share*
//! those cache lines instead of re-fetching them per query. A
//! [`BatchKernel`] runs one launch over the **union** of the batch's
//! per-query frontiers: each union vertex's neighbour list crosses the
//! link once and is handed to every query that has the vertex active,
//! while each query keeps its own device-resident status array, its own
//! program state and its own next frontier.
//!
//! Correctness contract: per-task contexts are captured at iteration
//! start ([`VertexProgram::source_ctx`]), and the shipped frontier-driven
//! programs' per-edge updates are commutative within an iteration
//! (BFS marks, SSSP takes mins), so a query's frontier sequence — and
//! therefore its output *and* its iteration count — is identical whether
//! it runs alone or inside any batch. [`Engine::run_batch`] is the
//! driver; `tests/serve_proptests.rs` checks the equivalence on random
//! graphs, query mixes and access modes.
//!
//! [`Engine::run_batch`]: crate::engine::Engine::run_batch

use crate::layout::GraphLayout;
use crate::program::{EdgeEffect, VertexProgram};
use crate::strategy::AccessStrategy;
use crate::walk::{LaneWalk, WarpWalk};
use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_graph::{CsrGraph, VertexId};
use emogi_runtime::{Kernel, RunStats, StepOutcome};

/// Maximum queries one batch may hold: per-vertex membership is a `u64`
/// bitset over the batch's query slots.
pub const MAX_BATCH_QUERIES: usize = 64;

/// Result of one batched multi-query execution.
///
/// `stats` is the batch-level machine diff — the ground truth for what
/// the batch cost (each shared edge fetch counted exactly once). Each
/// per-query [`Run`](crate::engine::Run) carries the totals of the
/// iterations that query was active in, with
/// [`RunStats::shared_fetch`] set: those bytes also served the other
/// queries of the batch, so per-query stats are attributable but do not
/// sum to the batch total.
#[derive(Debug, Clone)]
pub struct BatchRun<O> {
    /// Per-query outputs and attributable stats, in submission order.
    pub runs: Vec<crate::engine::Run<O>>,
    /// Batch-wide totals: the real cost of the whole execution.
    pub stats: RunStats,
}

/// Merge per-query frontiers (each sorted and deduplicated) into one
/// sorted union worklist plus a parallel membership bitset per union
/// vertex (bit `q` set ⇔ vertex is on query `q`'s frontier).
pub(crate) fn merge_frontiers(
    frontiers: &[Vec<VertexId>],
    union: &mut Vec<VertexId>,
    masks: &mut Vec<u64>,
) {
    union.clear();
    masks.clear();
    let mut pairs: Vec<(VertexId, u32)> = frontiers
        .iter()
        .enumerate()
        .flat_map(|(q, f)| f.iter().map(move |&v| (v, q as u32)))
        .collect();
    pairs.sort_unstable();
    for (v, q) in pairs {
        if union.last() == Some(&v) {
            *masks.last_mut().expect("parallel to union") |= 1 << q;
        } else {
            union.push(v);
            masks.push(1 << q);
        }
    }
}

/// Task state of one batched launch: like
/// [`ProgramTask`](crate::kernel::ProgramTask), but work items are union
/// frontier positions rather than per-query vertices.
#[allow(clippy::large_enum_variant)]
pub enum BatchTask {
    /// Merged/aligned: a warp on one union vertex.
    Warp {
        /// Index into the union worklist.
        u: usize,
        /// Neighbour-list sweep state (`None` until the offsets loaded).
        walk: Option<WarpWalk>,
    },
    /// Naive: 32 lanes on 32 union vertices.
    Lanes {
        /// Indices into the union worklist, one per lane.
        us: Vec<usize>,
        /// Per-lane cursor state (`None` until the offsets loaded).
        walk: Option<LaneWalk>,
    },
}

/// One launch of a batch of same-type programs over the union of their
/// frontiers.
///
/// The *shared* traffic — CSR offset loads, the edge-list stream and (for
/// edge-data programs) the weight stream — is emitted once per union
/// vertex. The *per-query* traffic — the own-status load at task start,
/// the destination-status gather and the conditional status store per
/// edge — is emitted once per member query against that query's own
/// status array.
pub struct BatchKernel<'a, P: VertexProgram> {
    graph: &'a CsrGraph,
    layout: &'a GraphLayout,
    strategy: AccessStrategy,
    programs: &'a mut [P],
    /// Device base address of each query's status array.
    status_bases: &'a [u64],
    /// The merged frontier, sorted and deduplicated.
    union: &'a [VertexId],
    /// CSR over the union: vertex `u`'s members are
    /// `members[member_off[u]..member_off[u + 1]]`.
    member_off: Vec<u32>,
    /// `(query slot, iteration-start context)` pairs.
    members: Vec<(u32, P::Ctx)>,
    /// Per-query next frontiers (activations).
    next: &'a mut [Vec<VertexId>],
    pos: usize,
    loaded_scratch: Vec<(u64, u8)>,
    edge_data: bool,
    source_status: bool,
}

impl<'a, P: VertexProgram> BatchKernel<'a, P> {
    /// Build one batched launch. `masks` is parallel to `union` (bit `q`
    /// set ⇔ the vertex is on query `q`'s frontier); contexts are
    /// captured here, at iteration start, exactly like the single-query
    /// kernel does.
    // A kernel launch wires one borrow per engine-owned resource; a
    // params struct would only rename the argument list.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &'a CsrGraph,
        layout: &'a GraphLayout,
        strategy: AccessStrategy,
        programs: &'a mut [P],
        status_bases: &'a [u64],
        union: &'a [VertexId],
        masks: &[u64],
        next: &'a mut [Vec<VertexId>],
    ) -> Self {
        assert!(!programs.is_empty() && programs.len() <= MAX_BATCH_QUERIES);
        assert_eq!(union.len(), masks.len(), "masks parallel the union");
        assert!(status_bases.len() >= programs.len());
        assert_eq!(next.len(), programs.len());
        let edge_data = programs[0].uses_edge_data();
        if edge_data {
            assert!(
                layout.weight_base.is_some(),
                "programs need edge data but none is placed"
            );
        }
        let source_status = programs[0].reads_source_status();
        let mut member_off = Vec::with_capacity(union.len() + 1);
        let mut members = Vec::new();
        member_off.push(0u32);
        for (&v, &mask) in union.iter().zip(masks) {
            let mut m = mask;
            while m != 0 {
                let q = m.trailing_zeros();
                m &= m - 1;
                members.push((q, programs[q as usize].source_ctx(v)));
            }
            member_off.push(members.len() as u32);
        }
        Self {
            graph,
            layout,
            strategy,
            programs,
            status_bases,
            union,
            member_off,
            members,
            next,
            pos: 0,
            loaded_scratch: Vec::with_capacity(WARP_SIZE),
            edge_data,
            source_status,
        }
    }

    /// Task-start loads for union vertex `u`: the two CSR offsets once
    /// (the vertex list is shared), plus each member query's own status
    /// entry for programs that read it.
    fn open_vertex(&mut self, u: usize, batch: &mut AccessBatch) -> (u64, u64) {
        let v = self.union[u];
        batch.load(self.layout.vertex_addr(u64::from(v)), 8, Space::Device);
        batch.load(self.layout.vertex_addr(u64::from(v) + 1), 8, Space::Device);
        if self.source_status {
            for idx in self.member_off[u]..self.member_off[u + 1] {
                let q = self.members[idx as usize].0 as usize;
                self.status_addr_load(q, u64::from(v), batch);
            }
        }
        (self.graph.neighbor_start(v), self.graph.neighbor_end(v))
    }

    fn status_addr(&self, q: usize, v: u64) -> u64 {
        self.status_bases[q] + v * 4
    }

    fn status_addr_load(&self, q: usize, v: u64, batch: &mut AccessBatch) {
        batch.load(self.status_addr(q, v), 4, Space::Device);
    }

    /// Process edge-list element `i` of union vertex `u` for every member
    /// query: one destination-status gather per member (each against its
    /// own array), then the member program's update and the traffic of
    /// its effect. The edge element itself was already loaded once for
    /// the whole batch.
    fn visit_edge(&mut self, u: usize, i: u64, instr: u8, batch: &mut AccessBatch) {
        let src = self.union[u];
        let dst = self.graph.edge_dst(i);
        for idx in self.member_off[u]..self.member_off[u + 1] {
            let (q, ctx) = self.members[idx as usize];
            let q = q as usize;
            batch.load_instr(self.status_addr(q, u64::from(dst)), 4, Space::Device, instr);
            match self.programs[q].edge(i, src, dst, ctx) {
                EdgeEffect::None => {}
                EdgeEffect::UpdateDst { activate } => {
                    batch.store(self.status_addr(q, u64::from(dst)), 4, Space::Device);
                    if activate {
                        self.next[q].push(dst);
                    }
                }
                EdgeEffect::UpdateSrc => {
                    batch.store(self.status_addr(q, u64::from(src)), 4, Space::Device);
                }
            }
        }
    }
}

impl<P: VertexProgram> Kernel for BatchKernel<'_, P> {
    type Task = BatchTask;

    fn next_task(&mut self) -> Option<Self::Task> {
        let n = self.union.len();
        if self.pos >= n {
            return None;
        }
        if self.strategy.warp_per_vertex() {
            let u = self.pos;
            self.pos += 1;
            Some(BatchTask::Warp { u, walk: None })
        } else {
            let hi = (self.pos + WARP_SIZE).min(n);
            let us: Vec<usize> = (self.pos..hi).collect();
            self.pos = hi;
            Some(BatchTask::Lanes { us, walk: None })
        }
    }

    fn step(&mut self, task: &mut Self::Task, batch: &mut AccessBatch) -> StepOutcome {
        match task {
            BatchTask::Warp { u, walk } => {
                let Some(w) = walk else {
                    let (start, end) = self.open_vertex(*u, batch);
                    if start == end {
                        return StepOutcome::Done;
                    }
                    *walk = Some(WarpWalk::new(start, end, self.strategy, self.layout));
                    return StepOutcome::Continue;
                };
                let (lo, hi) = w.emit_edges(self.layout, batch);
                if self.edge_data {
                    WarpWalk::emit_weights(self.layout, batch, lo, hi);
                }
                let u = *u;
                for i in lo..hi {
                    self.visit_edge(u, i, 128, batch);
                }
                if w.is_done() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            BatchTask::Lanes { us, walk } => {
                let Some(w) = walk else {
                    let mut ranges = Vec::with_capacity(us.len());
                    for &u in us.iter() {
                        ranges.push(self.open_vertex(u, batch));
                    }
                    let lw = LaneWalk::new(&ranges);
                    if lw.is_done() {
                        return StepOutcome::Done;
                    }
                    *walk = Some(lw);
                    return StepOutcome::Continue;
                };
                let mut loaded = std::mem::take(&mut self.loaded_scratch);
                loaded.clear();
                w.emit_edges(self.layout, batch, &mut loaded);
                if self.edge_data {
                    LaneWalk::emit_weights(self.layout, batch, &loaded);
                }
                for &(i, iter) in &loaded {
                    let lane = us
                        .iter()
                        .position(|&u| {
                            let v = self.union[u];
                            i >= self.graph.neighbor_start(v) && i < self.graph.neighbor_end(v)
                        })
                        .expect("element belongs to some lane");
                    self.visit_edge(us[lane], i, 128 + iter, batch);
                }
                let done = w.is_done();
                self.loaded_scratch = loaded;
                if done {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsProgram;
    use crate::engine::{Engine, EngineConfig};
    use crate::sssp::SsspProgram;
    use crate::strategy::AccessMode;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};

    #[test]
    fn merge_frontiers_builds_sorted_union_with_masks() {
        let fs = vec![vec![1u32, 5, 9], vec![5, 7], vec![]];
        let (mut union, mut masks) = (Vec::new(), Vec::new());
        merge_frontiers(&fs, &mut union, &mut masks);
        assert_eq!(union, vec![1, 5, 7, 9]);
        assert_eq!(masks, vec![0b001, 0b011, 0b010, 0b001]);
    }

    #[test]
    fn batched_bfs_matches_sequential_for_every_mode() {
        let g = generators::kronecker(8, 8, 3);
        let sources = [0u32, 3, 17, 40];
        for mode in AccessMode::all() {
            let cfg = EngineConfig::emogi_v100().with_mode(mode);
            let mut seq = Engine::load(cfg.clone(), &g);
            let seq_runs: Vec<_> = sources.iter().map(|&s| seq.bfs(s)).collect();
            let mut bat = Engine::load(cfg, &g);
            let batch = bat.run_batch(
                sources
                    .iter()
                    .map(|&s| BfsProgram::new(&g, s))
                    .collect::<Vec<_>>(),
            );
            for (q, (sr, br)) in seq_runs.iter().zip(&batch.runs).enumerate() {
                assert_eq!(br.levels, sr.levels, "{mode:?} query {q}");
                assert_eq!(
                    br.stats.kernel_launches, sr.stats.kernel_launches,
                    "{mode:?} query {q} iteration count"
                );
                assert!(br.stats.shared_fetch, "batched stats must be flagged");
                assert!(!sr.stats.shared_fetch);
            }
            assert!(!batch.stats.shared_fetch, "batch total is not shared");
        }
    }

    #[test]
    fn batched_sssp_matches_sequential_and_reference() {
        let g = generators::uniform_random(400, 8, 5);
        let w = generate_weights(g.num_edges(), 5);
        let sources = [2u32, 9, 31];
        let mut seq = Engine::load(EngineConfig::emogi_v100(), &g);
        let seq_runs: Vec<_> = sources.iter().map(|&s| seq.sssp(&w, s)).collect();
        let mut bat = Engine::load(EngineConfig::emogi_v100(), &g);
        let batch = bat.run_batch(
            sources
                .iter()
                .map(|&s| SsspProgram::new(&g, &w, s))
                .collect::<Vec<_>>(),
        );
        for ((q, sr), br) in seq_runs.iter().enumerate().zip(&batch.runs) {
            assert_eq!(br.dist, sr.dist, "query {q}");
            assert_eq!(br.stats.kernel_launches, sr.stats.kernel_launches);
        }
        // And against the CPU reference, belt and braces.
        for (&s, br) in sources.iter().zip(&batch.runs) {
            let want = algo::sssp_distances(&g, &w, s);
            for (v, &expect) in want.iter().enumerate() {
                let got = if br.dist[v] == crate::sssp::INF {
                    algo::UNREACHABLE
                } else {
                    u64::from(br.dist[v])
                };
                assert_eq!(got, expect, "source {s} vertex {v}");
            }
        }
    }

    #[test]
    fn single_query_batch_is_tick_identical_to_a_solo_run() {
        let g = generators::uniform_random(600, 8, 9);
        let mut solo = Engine::load(EngineConfig::emogi_v100(), &g);
        let mut bat = Engine::load(EngineConfig::emogi_v100(), &g);
        let sr = solo.bfs(4);
        let br = bat.run_batch(vec![BfsProgram::new(&g, 4)]);
        assert_eq!(br.runs[0].levels, sr.levels);
        assert_eq!(br.stats.pcie_read_requests, sr.stats.pcie_read_requests);
        assert_eq!(br.stats.host_bytes, sr.stats.host_bytes);
        assert_eq!(br.stats.elapsed_ns, sr.stats.elapsed_ns);
    }

    #[test]
    fn overlapping_queries_fetch_fewer_pcie_bytes_than_sequential() {
        // Skewed graph, several sources: frontiers overlap heavily after
        // the first level, so the union fetch must beat Q solo fetches.
        // The cache is shrunk below the edge list so sequential queries
        // cannot just ride on warmed lines.
        let g = generators::kronecker(10, 8, 7);
        let sources = [0u32, 1, 2, 3, 4, 5, 6, 7];
        let mut cfg = EngineConfig::emogi_v100();
        cfg.machine.gpu.cache.capacity_bytes = 32 << 10;
        let mut seq = Engine::load(cfg.clone(), &g);
        let seq_bytes: u64 = sources.iter().map(|&s| seq.bfs(s).stats.host_bytes).sum();
        let mut bat = Engine::load(cfg, &g);
        let batch = bat.run_batch(
            sources
                .iter()
                .map(|&s| BfsProgram::new(&g, s))
                .collect::<Vec<_>>(),
        );
        assert!(
            batch.stats.host_bytes < seq_bytes,
            "batched {} must beat sequential {}",
            batch.stats.host_bytes,
            seq_bytes
        );
    }

    #[test]
    fn run_batch_degrades_gracefully_when_device_memory_is_exhausted() {
        // Hybrid engine on an oversubscribed graph: solo full-sweep runs
        // let the default transfer pool stage regions until device
        // memory is gone. A later batch must not crash on status-array
        // allocation — it falls back to smaller groups or solo runs,
        // still bit-identical.
        let g = generators::lognormal_dense(2_000, 60.0, 0.5, 16, 5);
        let mut cfg = EngineConfig::hybrid_v100();
        cfg.machine.gpu.cache.capacity_bytes = 64 << 10;
        cfg.machine.gpu.mem_bytes = 256 << 10;
        let mut bat = Engine::load(cfg.clone(), &g);
        let _ = bat.cc(); // full sweep: stages regions until the pool is dry
        let sources = [3u32, 11, 19, 27, 35, 43, 51, 59];
        assert!(
            bat.machine.spaces.device_free() < sources.len() as u64 * g.num_vertices() as u64 * 4,
            "scenario must leave too little device memory for a full batch"
        );
        let batch = bat.run_batch(
            sources
                .iter()
                .map(|&s| BfsProgram::new(&g, s))
                .collect::<Vec<_>>(),
        );
        let mut seq = Engine::load(cfg, &g);
        let _ = seq.cc();
        for (&s, br) in sources.iter().zip(&batch.runs) {
            let sr = seq.bfs(s);
            assert_eq!(br.levels, sr.levels, "source {s}");
            assert_eq!(br.stats.kernel_launches, sr.stats.kernel_launches);
        }
    }

    #[test]
    fn run_batch_on_a_uvm_engine_falls_back_to_solo_runs() {
        // After the first managed kernel the UVM driver freezes the
        // device layout, so no batch status arrays can be allocated:
        // the batch must serve solo, not panic.
        let g = generators::uniform_random(400, 6, 2);
        let mut engine = Engine::load(EngineConfig::uvm_v100(), &g);
        let _ = engine.bfs(0); // initializes the UVM driver
        let batch = engine.run_batch(vec![BfsProgram::new(&g, 3), BfsProgram::new(&g, 9)]);
        assert_eq!(batch.runs[0].levels, algo::bfs_levels(&g, 3));
        assert_eq!(batch.runs[1].levels, algo::bfs_levels(&g, 9));
        assert!(
            !batch.runs[0].stats.shared_fetch,
            "solo fallback shares nothing"
        );
    }

    #[test]
    #[should_panic(expected = "frontier-driven")]
    fn full_sweep_programs_are_rejected() {
        let g = generators::uniform_random(100, 4, 1);
        let mut e = Engine::load(EngineConfig::emogi_v100(), &g);
        let _ = e.run_batch(vec![crate::cc::CcProgram::new(&g)]);
    }
}
