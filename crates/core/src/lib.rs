//! # emogi-core — EMOGI: zero-copy graph traversal
//!
//! The paper's contribution, §4: traverse graphs whose edge list lives in
//! *pinned host memory*, accessed zero-copy at cache-line granularity,
//! with two kernel-level optimizations:
//!
//! * **Merged** (§4.3.1) — a full 32-thread warp works on one vertex's
//!   neighbour list, so the coalescing unit emits maximum-size 128-byte
//!   PCIe requests;
//! * **Aligned** (§4.3.2) — each warp shifts its first access down to the
//!   preceding 128-byte boundary, masking the underflowing lanes, so a
//!   misaligned list start costs one partial request instead of
//!   cascading misalignment through the whole list.
//!
//! The unoptimized **Naive** strategy (thread-per-vertex, Listing 1) is
//! retained as the paper's own strawman.
//!
//! # Architecture: programs over an engine
//!
//! The crate is layered exactly the way the paper's contribution is
//! algorithm-agnostic:
//!
//! * [`program`] — the [`VertexProgram`] trait: an algorithm declares its
//!   access pattern (frontier-driven vs full-sweep), whether it streams
//!   auxiliary edge data, and its per-edge / per-iteration logic;
//! * [`kernel`] — one generic kernel ([`kernel::ProgramKernel`]) that
//!   runs any program under any [`AccessStrategy`];
//! * [`engine`] — the place-once, query-many [`Engine`]: it owns the
//!   placed graph, machine and (hybrid mode) transfer manager, and runs
//!   any number of programs against one placement;
//! * [`bfs`] / [`sssp`] / [`cc`] / [`pagerank`] — the four shipped
//!   programs. The first three are the paper's applications; PageRank is
//!   the generality proof: a fourth program with zero driver, kernel or
//!   transfer-planner changes;
//! * [`reorder`] — optional frontier access reordering: sort each
//!   iteration's work by the cache segment of its first edge-list
//!   access (off by default; a pure iteration-start transform, so
//!   outputs stay bit-identical either way);
//! * [`sharded`] — the multi-GPU [`ShardedEngine`]: the same programs
//!   over a device group, vertices partitioned across devices, each
//!   device reading only its frontier shard's edge-list ranges over its
//!   own link — outputs and iteration counts bit-identical to the
//!   single-device engine.
//!
//! [`compressed`] adds the paper's §6 extension: traversal over
//! delta-varint-compressed neighbour lists, trading idle-lane compute for
//! interconnect bytes. [`toy`] reproduces the §3.3 microbenchmark behind
//! Figures 3 and 4.
//!
//! # Example
//!
//! ```
//! use emogi_core::{BfsProgram, Engine, EngineConfig};
//! use emogi_graph::{algo, generators};
//!
//! let graph = generators::uniform_random(2_000, 8, 7);
//! // Place the graph once ...
//! let mut engine = Engine::load(EngineConfig::emogi_v100(), &graph);
//! // ... then run any vertex program against the placement, repeatedly.
//! let run = engine.run(BfsProgram::new(&graph, 0));
//! assert_eq!(run.levels, algo::bfs_levels(&graph, 0));
//! assert!(run.stats.avg_pcie_gbps > 0.0);
//! let pr = engine.pagerank(0.85, 10);
//! assert!((pr.ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bfs;
pub mod cc;
pub mod compressed;
pub mod engine;
pub mod kernel;
pub mod layout;
pub mod pagerank;
pub mod program;
pub mod reorder;
pub mod sharded;
pub mod sssp;
pub mod strategy;
pub mod toy;
pub mod walk;

pub use batch::{BatchKernel, BatchRun, MAX_BATCH_QUERIES};
pub use bfs::{BfsOutput, BfsProgram};
pub use cc::{CcOutput, CcProgram};
pub use engine::{BfsRun, CcRun, Engine, EngineConfig, PageRankRun, Run, SsspRun, TraversalConfig};
pub use kernel::{ProgramKernel, WorkList};
pub use layout::{EdgePlacement, GraphLayout};
pub use pagerank::{PageRankOutput, PageRankProgram};
pub use program::{AccessPattern, DeviceWork, EdgeEffect, VertexProgram};
pub use sharded::{ShardedConfig, ShardedEngine, ShardedRun};
pub use sssp::{SsspOutput, SsspProgram};
pub use strategy::{AccessMode, AccessStrategy};
