//! # emogi-core — EMOGI: zero-copy graph traversal
//!
//! The paper's contribution, §4: traverse graphs whose edge list lives in
//! *pinned host memory*, accessed zero-copy at cache-line granularity,
//! with two kernel-level optimizations:
//!
//! * **Merged** (§4.3.1) — a full 32-thread warp works on one vertex's
//!   neighbour list, so the coalescing unit emits maximum-size 128-byte
//!   PCIe requests;
//! * **Aligned** (§4.3.2) — each warp shifts its first access down to the
//!   preceding 128-byte boundary, masking the underflowing lanes, so a
//!   misaligned list start costs one partial request instead of
//!   cascading misalignment through the whole list.
//!
//! The unoptimized **Naive** strategy (thread-per-vertex, Listing 1) is
//! retained as the paper's own strawman.
//!
//! [`compressed`] adds the paper's §6 extension: traversal over
//! delta-varint-compressed neighbour lists, trading idle-lane compute for
//! interconnect bytes.
//!
//! # Example
//!
//! ```
//! use emogi_core::{TraversalConfig, TraversalSystem};
//! use emogi_graph::{algo, generators};
//!
//! let graph = generators::uniform_random(2_000, 8, 7);
//! let mut emogi = TraversalSystem::new(TraversalConfig::emogi_v100(), &graph, None);
//! let run = emogi.bfs(0);
//! assert_eq!(run.levels, algo::bfs_levels(&graph, 0));
//! assert!(run.stats.avg_pcie_gbps > 0.0);
//! ```
//!
//! All three strategies drive the same BFS / SSSP / CC kernels
//! ([`bfs`], [`sssp`], [`cc`]) through [`traversal::TraversalSystem`],
//! which also runs them against UVM-managed memory (the baseline) by
//! changing nothing but the edge list's placement. [`toy`] reproduces the
//! §3.3 microbenchmark behind Figures 3 and 4.

pub mod bfs;
pub mod cc;
pub mod compressed;
pub mod layout;
pub mod sssp;
pub mod strategy;
pub mod toy;
pub mod traversal;
pub mod walk;

pub use layout::{EdgePlacement, GraphLayout};
pub use strategy::{AccessMode, AccessStrategy};
pub use traversal::{TraversalSystem, TraversalConfig};
