//! The three zero-copy access strategies evaluated in §5 (Naive, Merged,
//! Merged+Aligned) — the paper's Figures 5, 7, 8, 9 compare exactly these
//! — plus [`AccessMode`], which adds the hybrid zero-copy/DMA mode on top
//! of them.

/// How GPU threads are assigned to neighbour lists and how their accesses
/// are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessStrategy {
    /// Listing 1: one *thread* per vertex; each lane strides through its
    /// own neighbour list, producing per-lane 32-byte PCIe requests.
    Naive,
    /// §4.3.1: one *warp* per vertex; lanes read 32 consecutive elements
    /// per iteration, so requests coalesce — but the first access starts
    /// wherever the list starts, so misalignment cascades.
    Merged,
    /// §4.3.2: Merged plus shifting the start index down to the closest
    /// preceding 128-byte boundary, with underflowing lanes masked off.
    MergedAligned,
}

impl AccessStrategy {
    /// Every strategy, in the paper's Naive → Merged → Aligned order.
    pub fn all() -> [AccessStrategy; 3] {
        [
            AccessStrategy::Naive,
            AccessStrategy::Merged,
            AccessStrategy::MergedAligned,
        ]
    }

    /// The paper's display name for this strategy.
    pub fn name(self) -> &'static str {
        match self {
            AccessStrategy::Naive => "Naive",
            AccessStrategy::Merged => "Merged",
            AccessStrategy::MergedAligned => "Merged+Aligned",
        }
    }

    /// Does this strategy assign a whole warp to one neighbour list?
    pub fn warp_per_vertex(self) -> bool {
        !matches!(self, AccessStrategy::Naive)
    }

    /// Starting element index for a list beginning at `start`, given
    /// `elems_per_line` elements per 128-byte cache line. The aligned
    /// strategy rounds down (Listing 2's `start & ~0xF` for 8-byte data).
    pub fn start_cursor(self, start: u64, elems_per_line: u64) -> u64 {
        match self {
            AccessStrategy::MergedAligned => start & !(elems_per_line - 1),
            _ => start,
        }
    }
}

/// A full access mode: the three §5 zero-copy strategies plus the hybrid
/// transport that keeps Merged+Aligned kernels but lets the runtime's
/// transfer manager stage hot edge-list regions into device memory via
/// bulk DMA (dense, recurring regions) while sparse regions stay
/// zero-copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Pure zero-copy with the [`AccessStrategy::Naive`] kernels.
    Naive,
    /// Pure zero-copy with the [`AccessStrategy::Merged`] kernels.
    Merged,
    /// Pure zero-copy with the [`AccessStrategy::MergedAligned`] kernels.
    MergedAligned,
    /// Merged+Aligned kernels over a per-region zero-copy/DMA mix.
    Hybrid,
}

impl AccessMode {
    /// Every mode, the three §5 zero-copy strategies then Hybrid.
    pub fn all() -> [AccessMode; 4] {
        [
            AccessMode::Naive,
            AccessMode::Merged,
            AccessMode::MergedAligned,
            AccessMode::Hybrid,
        ]
    }

    /// The kernel-level access strategy this mode runs with.
    pub fn strategy(self) -> AccessStrategy {
        match self {
            AccessMode::Naive => AccessStrategy::Naive,
            AccessMode::Merged => AccessStrategy::Merged,
            AccessMode::MergedAligned | AccessMode::Hybrid => AccessStrategy::MergedAligned,
        }
    }

    /// Does this mode mix transports via the transfer manager?
    pub fn is_hybrid(self) -> bool {
        matches!(self, AccessMode::Hybrid)
    }

    /// Display name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            AccessMode::Hybrid => "Hybrid",
            other => other.strategy().name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rounds_to_line_boundary() {
        let s = AccessStrategy::MergedAligned;
        // 8-byte elements: 16 per 128-byte line (Listing 2 masks ~0xF).
        assert_eq!(s.start_cursor(17, 16), 16);
        assert_eq!(s.start_cursor(16, 16), 16);
        assert_eq!(s.start_cursor(31, 16), 16);
        // 4-byte elements: 32 per line.
        assert_eq!(s.start_cursor(33, 32), 32);
    }

    #[test]
    fn merged_and_naive_do_not_shift() {
        assert_eq!(AccessStrategy::Merged.start_cursor(17, 16), 17);
        assert_eq!(AccessStrategy::Naive.start_cursor(17, 16), 17);
    }

    #[test]
    fn names_and_workers() {
        assert!(AccessStrategy::Merged.warp_per_vertex());
        assert!(!AccessStrategy::Naive.warp_per_vertex());
        assert_eq!(AccessStrategy::MergedAligned.name(), "Merged+Aligned");
    }

    #[test]
    fn modes_map_onto_strategies() {
        assert_eq!(AccessMode::Hybrid.strategy(), AccessStrategy::MergedAligned);
        assert_eq!(AccessMode::Naive.strategy(), AccessStrategy::Naive);
        assert!(AccessMode::Hybrid.is_hybrid());
        assert!(!AccessMode::MergedAligned.is_hybrid());
        assert_eq!(AccessMode::Hybrid.name(), "Hybrid");
        assert_eq!(AccessMode::all().len(), 4);
    }
}
