//! Single-source shortest path kernel (Bellman-Ford style with an active
//! worklist, the standard GPU formulation the paper bases its SSSP on
//! [28, 37]).
//!
//! Per iteration, every active vertex relaxes its outgoing edges; a
//! vertex whose distance improves becomes active for the next iteration.
//! Two zero-copy streams are read in lock-step: the 8-byte edge list and
//! the 4-byte weight list (Table 2's separate `|w|` array).

use crate::layout::GraphLayout;
use crate::strategy::AccessStrategy;
use crate::walk::{LaneWalk, WarpWalk};
use emogi_graph::{CsrGraph, VertexId};
use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_runtime::{Kernel, StepOutcome};

/// Distance marker for unreached vertices (4-byte device entries).
pub const INF: u32 = u32::MAX;

/// One SSSP relaxation pass.
pub struct SsspKernel<'a> {
    pub graph: &'a CsrGraph,
    pub weights: &'a [u32],
    pub layout: &'a GraphLayout,
    pub strategy: AccessStrategy,
    /// Device-resident distance array (semantic copy).
    pub dist: &'a mut [u32],
    pub frontier: &'a [VertexId],
    pub next_frontier: &'a mut Vec<VertexId>,
    pos: usize,
    loaded_scratch: Vec<(u64, u8)>,
}

impl<'a> SsspKernel<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &'a CsrGraph,
        weights: &'a [u32],
        layout: &'a GraphLayout,
        strategy: AccessStrategy,
        dist: &'a mut [u32],
        frontier: &'a [VertexId],
        next_frontier: &'a mut Vec<VertexId>,
    ) -> Self {
        assert_eq!(weights.len(), graph.num_edges());
        assert!(layout.weight_base.is_some(), "SSSP layout needs weights");
        Self {
            graph,
            weights,
            layout,
            strategy,
            dist,
            frontier,
            next_frontier,
            pos: 0,
            loaded_scratch: Vec::with_capacity(WARP_SIZE),
        }
    }

    /// Relax edge-list element `i` from a source whose distance is
    /// `dist_v` at task start.
    fn relax_edge(&mut self, i: u64, dist_v: u32, instr: u8, batch: &mut AccessBatch) {
        let dst = self.graph.edge_dst(i);
        batch.load_instr(self.layout.status_addr(u64::from(dst)), 4, Space::Device, instr);
        let nd = dist_v.saturating_add(self.weights[i as usize]);
        if nd < self.dist[dst as usize] {
            // atomicMin on the device distance array.
            self.dist[dst as usize] = nd;
            batch.store(self.layout.status_addr(u64::from(dst)), 4, Space::Device);
            self.next_frontier.push(dst);
        }
    }
}

#[allow(clippy::large_enum_variant)]
pub enum SsspTask {
    Warp {
        v: VertexId,
        dist_v: u32,
        walk: Option<WarpWalk>,
    },
    Lanes {
        vs: Vec<VertexId>,
        dists: Vec<u32>,
        walk: Option<LaneWalk>,
    },
}

impl Kernel for SsspKernel<'_> {
    type Task = SsspTask;

    fn next_task(&mut self) -> Option<SsspTask> {
        if self.pos >= self.frontier.len() {
            return None;
        }
        if self.strategy.warp_per_vertex() {
            let v = self.frontier[self.pos];
            self.pos += 1;
            Some(SsspTask::Warp {
                v,
                dist_v: 0,
                walk: None,
            })
        } else {
            let chunk = &self.frontier[self.pos..(self.pos + WARP_SIZE).min(self.frontier.len())];
            self.pos += chunk.len();
            Some(SsspTask::Lanes {
                vs: chunk.to_vec(),
                dists: Vec::new(),
                walk: None,
            })
        }
    }

    fn step(&mut self, task: &mut SsspTask, batch: &mut AccessBatch) -> StepOutcome {
        match task {
            SsspTask::Warp { v, dist_v, walk } => {
                let Some(w) = walk else {
                    batch.load(self.layout.vertex_addr(u64::from(*v)), 8, Space::Device);
                    batch.load(self.layout.vertex_addr(u64::from(*v) + 1), 8, Space::Device);
                    batch.load(self.layout.status_addr(u64::from(*v)), 4, Space::Device);
                    *dist_v = self.dist[*v as usize];
                    let (start, end) = (self.graph.neighbor_start(*v), self.graph.neighbor_end(*v));
                    if start == end {
                        return StepOutcome::Done;
                    }
                    *walk = Some(WarpWalk::new(start, end, self.strategy, self.layout));
                    return StepOutcome::Continue;
                };
                let (lo, hi) = w.emit_edges(self.layout, batch);
                WarpWalk::emit_weights(self.layout, batch, lo, hi);
                let dv = *dist_v;
                for i in lo..hi {
                    self.relax_edge(i, dv, 128, batch);
                }
                if w.is_done() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            SsspTask::Lanes { vs, dists, walk } => {
                let Some(w) = walk else {
                    let mut ranges = Vec::with_capacity(vs.len());
                    for &v in vs.iter() {
                        batch.load(self.layout.vertex_addr(u64::from(v)), 8, Space::Device);
                        batch.load(self.layout.vertex_addr(u64::from(v) + 1), 8, Space::Device);
                        batch.load(self.layout.status_addr(u64::from(v)), 4, Space::Device);
                        dists.push(self.dist[v as usize]);
                        ranges.push((self.graph.neighbor_start(v), self.graph.neighbor_end(v)));
                    }
                    let lw = LaneWalk::new(&ranges);
                    if lw.is_done() {
                        return StepOutcome::Done;
                    }
                    *walk = Some(lw);
                    return StepOutcome::Continue;
                };
                let mut loaded = std::mem::take(&mut self.loaded_scratch);
                loaded.clear();
                w.emit_edges(self.layout, batch, &mut loaded);
                LaneWalk::emit_weights(self.layout, batch, &loaded);
                for &(i, iter) in &loaded {
                    // Identify which lane (= which source vertex) the
                    // element belongs to for the correct base distance.
                    let lane = vs
                        .iter()
                        .position(|&v| {
                            i >= self.graph.neighbor_start(v) && i < self.graph.neighbor_end(v)
                        })
                        .expect("element belongs to some lane");
                    self.relax_edge(i, dists[lane], 128 + iter, batch);
                }
                let done = w.is_done();
                self.loaded_scratch = loaded;
                if done {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgePlacement;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::{exec, Machine};

    fn sssp_via_kernel(strategy: AccessStrategy, seed: u64) {
        let g = generators::uniform_random(400, 6, seed);
        let w = generate_weights(g.num_edges(), seed);
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, true);
        let mut dist = vec![INF; g.num_vertices()];
        dist[7] = 0;
        let mut frontier = vec![7u32];
        let mut guard = 0;
        while !frontier.is_empty() {
            guard += 1;
            assert!(guard < 10_000, "SSSP failed to converge");
            let mut next = Vec::new();
            let mut k = SsspKernel::new(&g, &w, &layout, strategy, &mut dist, &frontier, &mut next);
            exec::run_kernel(&mut m, &mut k);
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        let expect = algo::sssp_distances(&g, &w, 7);
        for (v, &want) in expect.iter().enumerate() {
            let got = if dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(dist[v])
            };
            assert_eq!(got, want, "vertex {v}, {strategy:?}");
        }
    }

    #[test]
    fn merged_aligned_matches_dijkstra() {
        sssp_via_kernel(AccessStrategy::MergedAligned, 1);
    }

    #[test]
    fn merged_matches_dijkstra() {
        sssp_via_kernel(AccessStrategy::Merged, 2);
    }

    #[test]
    fn naive_matches_dijkstra() {
        sssp_via_kernel(AccessStrategy::Naive, 3);
    }

    #[test]
    fn weight_stream_reads_both_arrays() {
        let g = generators::uniform_random(300, 8, 9);
        let w = generate_weights(g.num_edges(), 9);
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, true);
        let mut dist = vec![INF; g.num_vertices()];
        dist[0] = 0;
        let frontier = vec![0u32];
        let mut next = Vec::new();
        let mut k = SsspKernel::new(
            &g,
            &w,
            &layout,
            AccessStrategy::MergedAligned,
            &mut dist,
            &frontier,
            &mut next,
        );
        exec::run_kernel(&mut m, &mut k);
        // Edge bytes (8 B) + weight bytes (4 B) for the source's list, at
        // sector granularity: at least 12 bytes per neighbour.
        let deg = g.degree(0);
        assert!(m.monitor.zero_copy_bytes >= deg * 12);
    }
}
