//! Single-source shortest paths as a [`VertexProgram`] (Bellman-Ford
//! style with an active worklist, the standard GPU formulation the paper
//! bases its SSSP on [28, 37]).
//!
//! Per iteration, every active vertex relaxes its outgoing edges; a
//! vertex whose distance improves becomes active for the next iteration.
//! Two zero-copy streams are read in lock-step: the 8-byte edge list and
//! the 4-byte weight list (Table 2's separate `|w|` array) — SSSP is the
//! program that declares [`VertexProgram::uses_edge_data`], and the
//! weights are its own input rather than an engine field.

use crate::program::{AccessPattern, EdgeEffect, VertexProgram};
use emogi_graph::{CsrGraph, VertexId};

/// Distance marker for unreached vertices (4-byte device entries).
pub const INF: u32 = u32::MAX;

/// SSSP result: per-vertex distances ([`INF`] when unreachable).
#[derive(Debug, Clone)]
pub struct SsspOutput {
    /// Per-vertex shortest distance; [`INF`] for unreachable vertices.
    pub dist: Vec<u32>,
}

/// The SSSP vertex program. Per-vertex state: the device-resident
/// distance array (semantic copy); auxiliary edge data: the weight
/// stream.
pub struct SsspProgram<'w> {
    src: VertexId,
    weights: &'w [u32],
    dist: Vec<u32>,
}

impl<'w> SsspProgram<'w> {
    /// An SSSP from `src` over `graph`, with one weight per edge.
    pub fn new(graph: &CsrGraph, weights: &'w [u32], src: VertexId) -> Self {
        assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
        let mut dist = vec![INF; graph.num_vertices()];
        dist[src as usize] = 0;
        Self { src, weights, dist }
    }
}

impl VertexProgram for SsspProgram<'_> {
    /// The source's distance at task start.
    type Ctx = u32;
    type Output = SsspOutput;

    fn pattern(&self) -> AccessPattern {
        AccessPattern::FrontierDriven
    }

    fn uses_edge_data(&self) -> bool {
        true
    }

    fn reads_source_status(&self) -> bool {
        true
    }

    fn initial_frontier(&self) -> Vec<VertexId> {
        vec![self.src]
    }

    fn source_ctx(&self, v: VertexId) -> u32 {
        self.dist[v as usize]
    }

    fn edge(&mut self, i: u64, _src: VertexId, dst: VertexId, dist_v: u32) -> EdgeEffect {
        let nd = dist_v.saturating_add(self.weights[i as usize]);
        if nd < self.dist[dst as usize] {
            // atomicMin on the device distance array.
            self.dist[dst as usize] = nd;
            EdgeEffect::UpdateDst { activate: true }
        } else {
            EdgeEffect::None
        }
    }

    fn finish(self) -> SsspOutput {
        SsspOutput { dist: self.dist }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::strategy::AccessStrategy;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};

    fn sssp_via_engine(strategy: AccessStrategy, seed: u64) {
        let g = generators::uniform_random(400, 6, seed);
        let w = generate_weights(g.num_edges(), seed);
        let mut engine = Engine::load(EngineConfig::emogi_v100().with_strategy(strategy), &g);
        let run = engine.sssp(&w, 7);
        let expect = algo::sssp_distances(&g, &w, 7);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}, {strategy:?}");
        }
    }

    #[test]
    fn merged_aligned_matches_dijkstra() {
        sssp_via_engine(AccessStrategy::MergedAligned, 1);
    }

    #[test]
    fn merged_matches_dijkstra() {
        sssp_via_engine(AccessStrategy::Merged, 2);
    }

    #[test]
    fn naive_matches_dijkstra() {
        sssp_via_engine(AccessStrategy::Naive, 3);
    }

    #[test]
    fn weight_stream_reads_both_arrays() {
        let g = generators::uniform_random(300, 8, 9);
        let w = generate_weights(g.num_edges(), 9);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.sssp(&w, 0);
        // Edge bytes (8 B) + weight bytes (4 B) for every reachable
        // neighbour list, at sector granularity: at least 12 bytes per
        // relaxed edge.
        let reachable_edges: u64 = (0..g.num_vertices() as u32)
            .filter(|&v| run.dist[v as usize] != INF)
            .map(|v| g.degree(v))
            .sum();
        assert!(run.stats.host_bytes >= reachable_edges * 12);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn wrong_weight_count_rejected() {
        let g = generators::uniform_random(100, 4, 1);
        let _ = SsspProgram::new(&g, &[1, 2, 3], 0);
    }
}
