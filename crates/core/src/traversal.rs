//! The traversal system: machine setup + multi-launch drivers for BFS,
//! SSSP and CC.
//!
//! One `TraversalSystem` owns a simulated machine with a graph placed on
//! it (§4.2's layout) and runs complete traversals, launching one kernel
//! per BFS level / SSSP relaxation round / CC hook pass, mirroring the
//! paper's execution structure. Between launches it charges the
//! device-side vertex scan that selects active vertices (the kernels
//! iterate over all vertices and test their status, §2.1 Algorithm 1).

use crate::bfs::BfsKernel;
use crate::cc::{shortcut, CcKernel};
use crate::layout::{EdgePlacement, GraphLayout};
use crate::sssp::{SsspKernel, INF};
use crate::strategy::{AccessMode, AccessStrategy};
use emogi_graph::{CsrGraph, VertexId, UNVISITED};
use emogi_runtime::exec::run_kernel;
use emogi_runtime::machine::MachineConfig;
use emogi_runtime::report::RunStats;
use emogi_runtime::{Machine, TransferConfig, TransferManager, TransferStats};

/// How to build a [`TraversalSystem`].
#[derive(Debug, Clone)]
pub struct TraversalConfig {
    pub machine: MachineConfig,
    pub strategy: AccessStrategy,
    pub placement: EdgePlacement,
    /// Simulated edge element size: 8 by default, 4 for the Subway
    /// comparison (§5.6).
    pub elem_bytes: u64,
    /// Hybrid mode: stage hot edge-list regions into device memory via
    /// the runtime's transfer manager. Requires `ZeroCopyHost` placement.
    pub transfer: Option<TransferConfig>,
}

impl TraversalConfig {
    /// EMOGI as evaluated: V100, PCIe 3.0, merged + aligned zero-copy.
    pub fn emogi_v100() -> Self {
        Self {
            machine: MachineConfig::v100_gen3(),
            strategy: AccessStrategy::MergedAligned,
            placement: EdgePlacement::ZeroCopyHost,
            elem_bytes: 8,
            transfer: None,
        }
    }

    /// The paper's optimized UVM baseline: same kernels, edge list in
    /// managed memory with read-duplication (§5.1.2 (a)).
    pub fn uvm_v100() -> Self {
        Self {
            machine: MachineConfig::v100_gen3(),
            strategy: AccessStrategy::Merged,
            placement: EdgePlacement::Uvm,
            elem_bytes: 8,
            transfer: None,
        }
    }

    /// Hybrid transport on the V100 platform: merged + aligned kernels,
    /// with dense / recurring edge-list regions bulk-staged into device
    /// memory and the rest read zero-copy.
    pub fn hybrid_v100() -> Self {
        Self::emogi_v100().with_mode(AccessMode::Hybrid)
    }

    pub fn with_strategy(mut self, s: AccessStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Select a full access mode. A mode bundles kernel strategy *and*
    /// transport, so this always sets `ZeroCopyHost` placement —
    /// overwriting a previously configured UVM placement — and clears
    /// any transfer manager for the three pure zero-copy modes;
    /// `Hybrid` installs the default one. To vary only the kernel
    /// strategy of a UVM configuration, use
    /// [`with_strategy`](Self::with_strategy) instead.
    pub fn with_mode(mut self, mode: AccessMode) -> Self {
        self.strategy = mode.strategy();
        self.placement = EdgePlacement::ZeroCopyHost;
        self.transfer = mode.is_hybrid().then(TransferConfig::default);
        self
    }

    pub fn with_transfer(mut self, transfer: TransferConfig) -> Self {
        self.transfer = Some(transfer);
        self
    }

    pub fn with_machine(mut self, m: MachineConfig) -> Self {
        self.machine = m;
        self
    }

    pub fn with_elem_bytes(mut self, b: u64) -> Self {
        self.elem_bytes = b;
        self
    }
}

/// Result of one full BFS.
#[derive(Debug, Clone)]
pub struct BfsRun {
    pub levels: Vec<u32>,
    pub stats: RunStats,
}

/// Result of one full SSSP.
#[derive(Debug, Clone)]
pub struct SsspRun {
    pub dist: Vec<u32>,
    pub stats: RunStats,
}

/// Result of one full CC.
#[derive(Debug, Clone)]
pub struct CcRun {
    pub comp: Vec<u32>,
    pub stats: RunStats,
    pub hook_passes: u64,
}

/// A graph placed on a machine, ready to traverse.
pub struct TraversalSystem<'g> {
    pub machine: Machine,
    graph: &'g CsrGraph,
    weights: Option<&'g [u32]>,
    layout: GraphLayout,
    strategy: AccessStrategy,
    /// Hybrid mode: the per-region zero-copy / DMA transfer manager.
    transfer: Option<TransferManager>,
}

impl<'g> TraversalSystem<'g> {
    pub fn new(cfg: TraversalConfig, graph: &'g CsrGraph, weights: Option<&'g [u32]>) -> Self {
        let mut machine = Machine::new(cfg.machine);
        let layout = GraphLayout::place(
            &mut machine,
            graph,
            cfg.elem_bytes,
            cfg.placement,
            weights.is_some(),
        );
        let transfer = cfg.transfer.map(|tcfg| {
            assert_eq!(
                cfg.placement,
                EdgePlacement::ZeroCopyHost,
                "hybrid transfers manage the pinned-host edge list"
            );
            TransferManager::new(&machine, graph.edge_list_bytes(cfg.elem_bytes), tcfg)
        });
        Self {
            machine,
            graph,
            weights,
            layout,
            strategy: cfg.strategy,
            transfer,
        }
    }

    pub fn layout(&self) -> &GraphLayout {
        &self.layout
    }

    pub fn strategy(&self) -> AccessStrategy {
        self.strategy
    }

    /// Transfer-manager counters (hybrid mode only).
    pub fn transfer_stats(&self) -> Option<TransferStats> {
        self.transfer.as_ref().map(|t| t.stats)
    }

    /// Hybrid planning before a launch that will expand `frontier`: tell
    /// the transfer manager exactly which edge-list byte ranges the
    /// kernel will read, let it stage regions (advancing the machine
    /// clock by the bulk-copy time), and refresh the layout's staged-
    /// region table for the kernel's address computation.
    fn plan_transfers(&mut self, frontier: &[VertexId]) {
        let Some(tm) = self.transfer.as_mut() else {
            return;
        };
        let elem = self.layout.elem_bytes;
        for &v in frontier {
            let lo = self.graph.neighbor_start(v) * elem;
            let hi = self.graph.neighbor_end(v) * elem;
            tm.note_upcoming(lo, hi);
        }
        // Refresh the layout's table only when it changed: a traversal
        // that never stages keeps `staged_edges == None` and the address
        // path free of region lookups.
        if tm.plan(&mut self.machine) {
            self.layout.staged_edges = Some(tm.region_map());
        }
    }

    /// Hybrid planning for a launch that sweeps the whole edge list (CC
    /// hook passes activate every vertex).
    fn plan_transfers_full(&mut self) {
        let Some(tm) = self.transfer.as_mut() else {
            return;
        };
        tm.note_upcoming(0, self.graph.edge_list_bytes(self.layout.elem_bytes));
        if tm.plan(&mut self.machine) {
            self.layout.staged_edges = Some(tm.region_map());
        }
    }

    /// Edge-list bytes as placed (the Figure 10 denominator).
    pub fn dataset_bytes(&self) -> u64 {
        let mut b = self.graph.edge_list_bytes(self.layout.elem_bytes);
        if self.layout.weight_base.is_some() {
            b += self.graph.num_edges() as u64 * 4;
        }
        b
    }

    /// Device-side active-vertex scan before each launch.
    fn charge_vertex_scan(&mut self) {
        let bytes = self.graph.num_vertices() as u64 * 4;
        self.machine.now = self.machine.hbm.read_bulk(self.machine.now, bytes);
    }

    /// Full BFS from `src`; one kernel launch per level.
    pub fn bfs(&mut self, src: VertexId) -> BfsRun {
        let snap = self.machine.snapshot();
        let mut levels = vec![UNVISITED; self.graph.num_vertices()];
        levels[src as usize] = 0;
        let mut frontier = vec![src];
        let mut launches = 0u64;
        let mut level = 0u32;
        while !frontier.is_empty() {
            self.charge_vertex_scan();
            self.plan_transfers(&frontier);
            let mut next = Vec::new();
            let mut kernel = BfsKernel::new(
                self.graph,
                &self.layout,
                self.strategy,
                &mut levels,
                level + 1,
                &frontier,
                &mut next,
            );
            run_kernel(&mut self.machine, &mut kernel);
            launches += 1;
            level += 1;
            next.sort_unstable();
            frontier = next;
        }
        BfsRun {
            levels,
            stats: self.machine.finish_run(&snap, launches),
        }
    }

    /// Full SSSP from `src`; relaxation rounds until no distance changes.
    pub fn sssp(&mut self, src: VertexId) -> SsspRun {
        let weights = self.weights.expect("SSSP needs weights");
        let snap = self.machine.snapshot();
        let mut dist = vec![INF; self.graph.num_vertices()];
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        let mut launches = 0u64;
        while !frontier.is_empty() {
            self.charge_vertex_scan();
            self.plan_transfers(&frontier);
            let mut next = Vec::new();
            let mut kernel = SsspKernel::new(
                self.graph,
                weights,
                &self.layout,
                self.strategy,
                &mut dist,
                &frontier,
                &mut next,
            );
            run_kernel(&mut self.machine, &mut kernel);
            launches += 1;
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        SsspRun {
            dist,
            stats: self.machine.finish_run(&snap, launches),
        }
    }

    /// Full CC; hook passes over the whole edge list until stable, with a
    /// device-side pointer-jumping shortcut after each pass.
    pub fn cc(&mut self) -> CcRun {
        let snap = self.machine.snapshot();
        let n = self.graph.num_vertices();
        let mut comp: Vec<u32> = (0..n as u32).collect();
        let mut launches = 0u64;
        let mut hook_passes = 0u64;
        loop {
            self.charge_vertex_scan();
            self.plan_transfers_full();
            let mut kernel = CcKernel::new(self.graph, &self.layout, self.strategy, &mut comp);
            run_kernel(&mut self.machine, &mut kernel);
            let changed = kernel.changed;
            launches += 1;
            hook_passes += 1;
            // Shortcut passes touch the device label array only: charge
            // two 4-byte streams (read + gather) per pass.
            let jump_passes = shortcut(&mut comp);
            for _ in 0..jump_passes {
                self.machine.now = self
                    .machine
                    .hbm
                    .read_bulk(self.machine.now, n as u64 * 8);
            }
            if !changed {
                break;
            }
        }
        CcRun {
            comp,
            stats: self.machine.finish_run(&snap, launches),
            hook_passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};

    #[test]
    fn emogi_bfs_matches_reference_end_to_end() {
        let g = generators::kronecker(9, 8, 21);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let run = sys.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert!(run.stats.elapsed_ns > 0);
        assert!(run.stats.kernel_launches > 0);
        assert!(run.stats.pcie_read_requests > 0);
        assert_eq!(run.stats.page_faults, 0, "zero-copy never faults");
    }

    #[test]
    fn uvm_bfs_matches_reference_and_faults() {
        let g = generators::kronecker(9, 8, 21);
        let mut sys = TraversalSystem::new(TraversalConfig::uvm_v100(), &g, None);
        let run = sys.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert!(run.stats.page_faults > 0, "UVM must fault pages in");
        assert!(run.stats.pages_migrated > 0);
        assert_eq!(
            run.stats.pcie_read_requests, 0,
            "UVM traffic is migrations, not zero-copy reads"
        );
    }

    #[test]
    fn emogi_sssp_matches_reference() {
        let g = generators::uniform_random(300, 8, 3);
        let w = generate_weights(g.num_edges(), 3);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, Some(&w));
        let run = sys.sssp(5);
        let expect = algo::sssp_distances(&g, &w, 5);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }
    }

    #[test]
    fn emogi_cc_matches_reference() {
        let g = generators::uniform_random(400, 4, 8);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let run = sys.cc();
        assert_eq!(run.comp, algo::cc_labels(&g));
        assert!(run.hook_passes >= 2);
    }

    #[test]
    fn second_bfs_reuses_the_machine() {
        let g = generators::uniform_random(300, 6, 2);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let a = sys.bfs(0);
        let b = sys.bfs(10);
        assert_eq!(b.levels, algo::bfs_levels(&g, 10));
        // Stats are per-run, not cumulative; and this tiny edge list fits
        // in the cache, so the second traversal rides on warmed lines.
        assert!(b.stats.elapsed_ns > 0);
        assert!(a.stats.host_bytes > 0);
        assert!(
            b.stats.host_bytes < a.stats.host_bytes,
            "second run should benefit from the warm cache"
        );
    }

    #[test]
    fn hybrid_bfs_matches_reference() {
        let g = generators::kronecker(9, 8, 21);
        let mut sys = TraversalSystem::new(TraversalConfig::hybrid_v100(), &g, None);
        let run = sys.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert_eq!(run.stats.page_faults, 0, "hybrid never touches UVM");
        assert!(run.stats.elapsed_ns > 0);
    }

    #[test]
    fn hybrid_sssp_and_cc_match_reference() {
        let g = generators::uniform_random(300, 8, 3);
        let w = generate_weights(g.num_edges(), 3);
        let mut sys = TraversalSystem::new(TraversalConfig::hybrid_v100(), &g, Some(&w));
        let run = sys.sssp(5);
        let expect = algo::sssp_distances(&g, &w, 5);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }
        let g2 = generators::uniform_random(400, 4, 8);
        let mut sys2 = TraversalSystem::new(TraversalConfig::hybrid_v100(), &g2, None);
        assert_eq!(sys2.cc().comp, algo::cc_labels(&g2));
    }

    #[test]
    fn hybrid_stays_pure_zero_copy_on_a_sparse_one_shot_bfs() {
        // A single sparse BFS reads each region at most ~once in total:
        // the ski-rental policy must never stage, so hybrid and pure
        // merged+aligned are the *same* simulation, tick for tick.
        let g = generators::uniform_random(2_000, 16, 1);
        let mut zc = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let mut hy = TraversalSystem::new(TraversalConfig::hybrid_v100(), &g, None);
        let rz = zc.bfs(0);
        let rh = hy.bfs(0);
        let stats = hy.transfer_stats().unwrap();
        assert_eq!(stats.staged_regions, 0, "one-shot sparse BFS must not stage");
        assert_eq!(rh.stats.elapsed_ns, rz.stats.elapsed_ns);
        assert_eq!(rh.stats.pcie_read_requests, rz.stats.pcie_read_requests);
    }

    /// V100 config with the cache shrunk below the test graphs' edge
    /// lists, modelling the paper's regime (edge list >> cache) without
    /// paying for multi-million-edge graphs in a unit test.
    fn oversubscribed(mut cfg: TraversalConfig) -> TraversalConfig {
        cfg.machine.gpu.cache.capacity_bytes = 64 << 10;
        cfg
    }

    #[test]
    fn hybrid_cc_stages_the_full_sweep_and_beats_zero_copy() {
        // CC hook passes read the whole edge list every pass: the policy
        // stages everything up front and passes 2+ run from HBM.
        let g = generators::lognormal_dense(400, 60.0, 0.5, 16, 5);
        let mut zc =
            TraversalSystem::new(oversubscribed(TraversalConfig::emogi_v100()), &g, None);
        let mut hy =
            TraversalSystem::new(oversubscribed(TraversalConfig::hybrid_v100()), &g, None);
        let rz = zc.cc();
        let rh = hy.cc();
        assert_eq!(rh.comp, rz.comp);
        let stats = hy.transfer_stats().unwrap();
        assert!(stats.staged_regions > 0, "full sweep must stage");
        assert!(
            rh.stats.elapsed_ns < rz.stats.elapsed_ns,
            "hybrid CC {} must beat zero-copy {}",
            rh.stats.elapsed_ns,
            rz.stats.elapsed_ns
        );
    }

    #[test]
    fn hybrid_learns_across_repeated_traversals() {
        // Multiple BFS sources on one machine: regions recur, cross the
        // ski-rental point, and later traversals read mostly from HBM.
        let g = generators::uniform_random(3_000, 24, 4);
        let mut zc =
            TraversalSystem::new(oversubscribed(TraversalConfig::emogi_v100()), &g, None);
        let mut hy =
            TraversalSystem::new(oversubscribed(TraversalConfig::hybrid_v100()), &g, None);
        let sources = [0u32, 7, 21, 40];
        let mut zc_total = 0u64;
        let mut hy_total = 0u64;
        let mut hy_last_reqs = 0u64;
        for &s in &sources {
            let rz = zc.bfs(s);
            let rh = hy.bfs(s);
            assert_eq!(rh.levels, rz.levels, "source {s}");
            zc_total += rz.stats.elapsed_ns;
            hy_total += rh.stats.elapsed_ns;
            hy_last_reqs = rh.stats.pcie_read_requests;
        }
        let stats = hy.transfer_stats().unwrap();
        assert!(stats.staged_regions > 0, "recurring regions must stage");
        assert!(
            hy_total < zc_total,
            "hybrid total {hy_total} must beat zero-copy {zc_total}"
        );
        // Once staged, the final traversal barely touches the link.
        let first_reqs = {
            let mut fresh =
                TraversalSystem::new(oversubscribed(TraversalConfig::hybrid_v100()), &g, None);
            fresh.bfs(0).stats.pcie_read_requests
        };
        assert!(
            hy_last_reqs < first_reqs / 2,
            "staged regions should absorb most reads: {hy_last_reqs} vs {first_reqs}"
        );
    }

    #[test]
    fn amplification_is_sane_for_merged_aligned() {
        let g = generators::uniform_random(2_000, 32, 5);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let run = sys.bfs(0);
        let amp = run.stats.amplification(sys.dataset_bytes());
        // Every edge is touched once; sector granularity and alignment
        // overfetch keep amplification a little above 1 (Figure 10 shows
        // ≤ 1.31 for EMOGI).
        assert!(amp > 0.8 && amp < 1.9, "amplification {amp}");
    }
}
