//! The traversal system: machine setup + multi-launch drivers for BFS,
//! SSSP and CC.
//!
//! One `TraversalSystem` owns a simulated machine with a graph placed on
//! it (§4.2's layout) and runs complete traversals, launching one kernel
//! per BFS level / SSSP relaxation round / CC hook pass, mirroring the
//! paper's execution structure. Between launches it charges the
//! device-side vertex scan that selects active vertices (the kernels
//! iterate over all vertices and test their status, §2.1 Algorithm 1).

use crate::bfs::BfsKernel;
use crate::cc::{shortcut, CcKernel};
use crate::layout::{EdgePlacement, GraphLayout};
use crate::sssp::{SsspKernel, INF};
use crate::strategy::AccessStrategy;
use emogi_graph::{CsrGraph, VertexId, UNVISITED};
use emogi_runtime::exec::run_kernel;
use emogi_runtime::machine::MachineConfig;
use emogi_runtime::report::RunStats;
use emogi_runtime::Machine;

/// How to build a [`TraversalSystem`].
#[derive(Debug, Clone)]
pub struct TraversalConfig {
    pub machine: MachineConfig,
    pub strategy: AccessStrategy,
    pub placement: EdgePlacement,
    /// Simulated edge element size: 8 by default, 4 for the Subway
    /// comparison (§5.6).
    pub elem_bytes: u64,
}

impl TraversalConfig {
    /// EMOGI as evaluated: V100, PCIe 3.0, merged + aligned zero-copy.
    pub fn emogi_v100() -> Self {
        Self {
            machine: MachineConfig::v100_gen3(),
            strategy: AccessStrategy::MergedAligned,
            placement: EdgePlacement::ZeroCopyHost,
            elem_bytes: 8,
        }
    }

    /// The paper's optimized UVM baseline: same kernels, edge list in
    /// managed memory with read-duplication (§5.1.2 (a)).
    pub fn uvm_v100() -> Self {
        Self {
            machine: MachineConfig::v100_gen3(),
            strategy: AccessStrategy::Merged,
            placement: EdgePlacement::Uvm,
            elem_bytes: 8,
        }
    }

    pub fn with_strategy(mut self, s: AccessStrategy) -> Self {
        self.strategy = s;
        self
    }

    pub fn with_machine(mut self, m: MachineConfig) -> Self {
        self.machine = m;
        self
    }

    pub fn with_elem_bytes(mut self, b: u64) -> Self {
        self.elem_bytes = b;
        self
    }
}

/// Result of one full BFS.
#[derive(Debug, Clone)]
pub struct BfsRun {
    pub levels: Vec<u32>,
    pub stats: RunStats,
}

/// Result of one full SSSP.
#[derive(Debug, Clone)]
pub struct SsspRun {
    pub dist: Vec<u32>,
    pub stats: RunStats,
}

/// Result of one full CC.
#[derive(Debug, Clone)]
pub struct CcRun {
    pub comp: Vec<u32>,
    pub stats: RunStats,
    pub hook_passes: u64,
}

/// A graph placed on a machine, ready to traverse.
pub struct TraversalSystem<'g> {
    pub machine: Machine,
    graph: &'g CsrGraph,
    weights: Option<&'g [u32]>,
    layout: GraphLayout,
    strategy: AccessStrategy,
}

impl<'g> TraversalSystem<'g> {
    pub fn new(cfg: TraversalConfig, graph: &'g CsrGraph, weights: Option<&'g [u32]>) -> Self {
        let mut machine = Machine::new(cfg.machine);
        let layout = GraphLayout::place(
            &mut machine,
            graph,
            cfg.elem_bytes,
            cfg.placement,
            weights.is_some(),
        );
        Self {
            machine,
            graph,
            weights,
            layout,
            strategy: cfg.strategy,
        }
    }

    pub fn layout(&self) -> &GraphLayout {
        &self.layout
    }

    pub fn strategy(&self) -> AccessStrategy {
        self.strategy
    }

    /// Edge-list bytes as placed (the Figure 10 denominator).
    pub fn dataset_bytes(&self) -> u64 {
        let mut b = self.graph.edge_list_bytes(self.layout.elem_bytes);
        if self.layout.weight_base.is_some() {
            b += self.graph.num_edges() as u64 * 4;
        }
        b
    }

    /// Device-side active-vertex scan before each launch.
    fn charge_vertex_scan(&mut self) {
        let bytes = self.graph.num_vertices() as u64 * 4;
        self.machine.now = self.machine.hbm.read_bulk(self.machine.now, bytes);
    }

    /// Full BFS from `src`; one kernel launch per level.
    pub fn bfs(&mut self, src: VertexId) -> BfsRun {
        let snap = self.machine.snapshot();
        let mut levels = vec![UNVISITED; self.graph.num_vertices()];
        levels[src as usize] = 0;
        let mut frontier = vec![src];
        let mut launches = 0u64;
        let mut level = 0u32;
        while !frontier.is_empty() {
            self.charge_vertex_scan();
            let mut next = Vec::new();
            let mut kernel = BfsKernel::new(
                self.graph,
                &self.layout,
                self.strategy,
                &mut levels,
                level + 1,
                &frontier,
                &mut next,
            );
            run_kernel(&mut self.machine, &mut kernel);
            launches += 1;
            level += 1;
            next.sort_unstable();
            frontier = next;
        }
        BfsRun {
            levels,
            stats: self.machine.finish_run(&snap, launches),
        }
    }

    /// Full SSSP from `src`; relaxation rounds until no distance changes.
    pub fn sssp(&mut self, src: VertexId) -> SsspRun {
        let weights = self.weights.expect("SSSP needs weights");
        let snap = self.machine.snapshot();
        let mut dist = vec![INF; self.graph.num_vertices()];
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        let mut launches = 0u64;
        while !frontier.is_empty() {
            self.charge_vertex_scan();
            let mut next = Vec::new();
            let mut kernel = SsspKernel::new(
                self.graph,
                weights,
                &self.layout,
                self.strategy,
                &mut dist,
                &frontier,
                &mut next,
            );
            run_kernel(&mut self.machine, &mut kernel);
            launches += 1;
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        SsspRun {
            dist,
            stats: self.machine.finish_run(&snap, launches),
        }
    }

    /// Full CC; hook passes over the whole edge list until stable, with a
    /// device-side pointer-jumping shortcut after each pass.
    pub fn cc(&mut self) -> CcRun {
        let snap = self.machine.snapshot();
        let n = self.graph.num_vertices();
        let mut comp: Vec<u32> = (0..n as u32).collect();
        let mut launches = 0u64;
        let mut hook_passes = 0u64;
        loop {
            self.charge_vertex_scan();
            let mut kernel = CcKernel::new(self.graph, &self.layout, self.strategy, &mut comp);
            run_kernel(&mut self.machine, &mut kernel);
            let changed = kernel.changed;
            launches += 1;
            hook_passes += 1;
            // Shortcut passes touch the device label array only: charge
            // two 4-byte streams (read + gather) per pass.
            let jump_passes = shortcut(&mut comp);
            for _ in 0..jump_passes {
                self.machine.now = self
                    .machine
                    .hbm
                    .read_bulk(self.machine.now, n as u64 * 8);
            }
            if !changed {
                break;
            }
        }
        CcRun {
            comp,
            stats: self.machine.finish_run(&snap, launches),
            hook_passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};

    #[test]
    fn emogi_bfs_matches_reference_end_to_end() {
        let g = generators::kronecker(9, 8, 21);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let run = sys.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert!(run.stats.elapsed_ns > 0);
        assert!(run.stats.kernel_launches > 0);
        assert!(run.stats.pcie_read_requests > 0);
        assert_eq!(run.stats.page_faults, 0, "zero-copy never faults");
    }

    #[test]
    fn uvm_bfs_matches_reference_and_faults() {
        let g = generators::kronecker(9, 8, 21);
        let mut sys = TraversalSystem::new(TraversalConfig::uvm_v100(), &g, None);
        let run = sys.bfs(1);
        assert_eq!(run.levels, algo::bfs_levels(&g, 1));
        assert!(run.stats.page_faults > 0, "UVM must fault pages in");
        assert!(run.stats.pages_migrated > 0);
        assert_eq!(
            run.stats.pcie_read_requests, 0,
            "UVM traffic is migrations, not zero-copy reads"
        );
    }

    #[test]
    fn emogi_sssp_matches_reference() {
        let g = generators::uniform_random(300, 8, 3);
        let w = generate_weights(g.num_edges(), 3);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, Some(&w));
        let run = sys.sssp(5);
        let expect = algo::sssp_distances(&g, &w, 5);
        for (v, &want) in expect.iter().enumerate() {
            let got = if run.dist[v] == INF {
                algo::UNREACHABLE
            } else {
                u64::from(run.dist[v])
            };
            assert_eq!(got, want, "vertex {v}");
        }
    }

    #[test]
    fn emogi_cc_matches_reference() {
        let g = generators::uniform_random(400, 4, 8);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let run = sys.cc();
        assert_eq!(run.comp, algo::cc_labels(&g));
        assert!(run.hook_passes >= 2);
    }

    #[test]
    fn second_bfs_reuses_the_machine() {
        let g = generators::uniform_random(300, 6, 2);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let a = sys.bfs(0);
        let b = sys.bfs(10);
        assert_eq!(b.levels, algo::bfs_levels(&g, 10));
        // Stats are per-run, not cumulative; and this tiny edge list fits
        // in the cache, so the second traversal rides on warmed lines.
        assert!(b.stats.elapsed_ns > 0);
        assert!(a.stats.host_bytes > 0);
        assert!(
            b.stats.host_bytes < a.stats.host_bytes,
            "second run should benefit from the warm cache"
        );
    }

    #[test]
    fn amplification_is_sane_for_merged_aligned() {
        let g = generators::uniform_random(2_000, 32, 5);
        let mut sys = TraversalSystem::new(TraversalConfig::emogi_v100(), &g, None);
        let run = sys.bfs(0);
        let amp = run.stats.amplification(sys.dataset_bytes());
        // Every edge is touched once; sector granularity and alignment
        // overfetch keep amplification a little above 1 (Figure 10 shows
        // ≤ 1.31 for EMOGI).
        assert!(amp > 0.8 && amp < 1.9, "amplification {amp}");
    }
}
