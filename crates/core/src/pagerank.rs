//! PageRank as a [`VertexProgram`] — the fourth program, added to prove
//! the engine's generality: it reuses the generic kernel, driver and
//! hybrid transfer planning without a single change to any of them.
//!
//! Push-based damped power iteration: each sweep, every vertex pushes
//! `rank[v] / outdeg(v)` along its outgoing edges (an atomicAdd into the
//! destination's accumulator entry — the same gather + store shape as
//! the other programs' status updates); the rank update between sweeps
//! is device-array work like CC's shortcut. Dangling vertices (no
//! outgoing edges) redistribute their mass uniformly, so the ranks of a
//! connected graph sum to 1. Like CC, PageRank streams the entire edge
//! list every launch ([`AccessPattern::FullSweep`]), which makes it the
//! best case for the hybrid transfer manager: everything stages after
//! the first couple of sweeps and later iterations run at HBM speed.
//!
//! Ranks are kept in `f64` for fidelity to the CPU reference
//! ([`emogi_graph::algo::pagerank`]); the simulated traffic models the
//! 4-byte per-vertex accumulator entries the paper's status arrays use.

use crate::program::{AccessPattern, DeviceWork, EdgeEffect, VertexProgram};
use emogi_graph::{CsrGraph, VertexId};

/// PageRank result: per-vertex ranks (summing to ~1) and the number of
/// power iterations run.
#[derive(Debug, Clone)]
pub struct PageRankOutput {
    /// Per-vertex rank; sums to ~1 on connected graphs.
    pub ranks: Vec<f64>,
    /// Power iterations actually run.
    pub iterations: u32,
}

/// The PageRank vertex program.
pub struct PageRankProgram<'g> {
    /// The graph, kept for the value-ordered semantic reduction in
    /// [`post_iteration`](VertexProgram::post_iteration).
    graph: &'g CsrGraph,
    damping: f64,
    max_iterations: u32,
    iterations: u32,
    /// Out-degrees, fixed at construction.
    deg: Vec<u64>,
    rank: Vec<f64>,
    /// This sweep's accumulators (the device-resident status array).
    next: Vec<f64>,
    /// Per-vertex contribution `rank[v] / deg[v]`, snapshotted at
    /// iteration start.
    contrib: Vec<f64>,
    /// Mass held by dangling vertices this iteration.
    dangling: f64,
}

impl<'g> PageRankProgram<'g> {
    /// `iterations` damped power iterations over `graph`.
    pub fn new(graph: &'g CsrGraph, damping: f64, iterations: u32) -> Self {
        assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
        assert!(iterations > 0, "at least one iteration");
        let n = graph.num_vertices();
        assert!(n > 0, "PageRank needs a non-empty graph");
        Self {
            graph,
            damping,
            max_iterations: iterations,
            iterations: 0,
            deg: (0..n as u32).map(|v| graph.degree(v)).collect(),
            rank: vec![1.0 / n as f64; n],
            next: vec![0.0; n],
            contrib: vec![0.0; n],
            dangling: 0.0,
        }
    }
}

impl VertexProgram for PageRankProgram<'_> {
    /// The source's out-contribution this sweep.
    type Ctx = f64;
    type Output = PageRankOutput;

    fn pattern(&self) -> AccessPattern {
        AccessPattern::FullSweep
    }

    /// Each task reads its own rank entry to compute its contribution.
    fn reads_source_status(&self) -> bool {
        true
    }

    fn begin_iteration(&mut self) {
        self.iterations += 1;
        // Dangling mass folds in ascending value order: every rank is
        // positive, so the IEEE-754 bit pattern orders exactly like the
        // value and the sum is independent of the vertex labeling (the
        // multiset of dangling ranks is what a relabeling preserves).
        let mut dangling_bits: Vec<u64> = Vec::new();
        for v in 0..self.rank.len() {
            self.next[v] = 0.0;
            if self.deg[v] == 0 {
                self.contrib[v] = 0.0;
                dangling_bits.push(self.rank[v].to_bits());
            } else {
                self.contrib[v] = self.rank[v] / self.deg[v] as f64;
            }
        }
        dangling_bits.sort_unstable();
        self.dangling = 0.0;
        for &b in &dangling_bits {
            self.dangling += f64::from_bits(b);
        }
    }

    fn source_ctx(&self, v: VertexId) -> f64 {
        self.contrib[v as usize]
    }

    /// Models the kernel's atomicAdd into the destination's accumulator
    /// entry. Traffic only: the *semantic* sum is applied in
    /// [`post_iteration`](VertexProgram::post_iteration) in a canonical
    /// value-sorted order, because floating-point addition is not
    /// associative — summing in warp-interleaving (or shard) order
    /// would make the ranks depend on simulation timing and device
    /// count.
    fn edge(&mut self, _i: u64, _src: VertexId, _dst: VertexId, _contrib: f64) -> EdgeEffect {
        EdgeEffect::UpdateDst { activate: false }
    }

    /// Between sweeps: fold every vertex's contribution into its
    /// neighbours' accumulators in **ascending value order per
    /// destination** — each `(dst, contribution-bits)` pair is gathered
    /// and sorted before the fold. Every contribution is positive, so
    /// bit order equals numeric order, and the per-destination addend
    /// *multiset* (which any vertex relabeling preserves) fully
    /// determines the sum: ranks are bit-equal to
    /// [`emogi_graph::algo::pagerank`] (which folds the same way),
    /// independent of sharding **and** invariant under cache-aware
    /// relabelings (`tests/layout_differential.rs`). Then the rank
    /// update — one bulk pass over two per-vertex streams.
    fn post_iteration(&mut self, work: &mut DeviceWork) {
        let mut addends: Vec<(VertexId, u64)> = Vec::with_capacity(self.graph.num_edges());
        for v in 0..self.rank.len() {
            if self.deg[v] == 0 {
                continue;
            }
            let bits = self.contrib[v].to_bits();
            for &dst in self.graph.neighbors(v as VertexId) {
                addends.push((dst, bits));
            }
        }
        addends.sort_unstable();
        for &(dst, bits) in &addends {
            self.next[dst as usize] += f64::from_bits(bits);
        }
        let n = self.rank.len() as f64;
        let base = (1.0 - self.damping) / n + self.damping * self.dangling / n;
        for v in 0..self.rank.len() {
            self.rank[v] = base + self.damping * self.next[v];
        }
        work.bulk_read(self.rank.len() as u64 * 8);
    }

    fn converged(&self) -> bool {
        self.iterations >= self.max_iterations
    }

    fn finish(self) -> PageRankOutput {
        PageRankOutput {
            ranks: self.rank,
            iterations: self.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::strategy::AccessMode;
    use emogi_graph::{algo, generators};

    fn assert_close(got: &[f64], want: &[f64], tag: &str) {
        assert_eq!(got.len(), want.len());
        for (v, (&g, &w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() < 1e-9,
                "{tag}: vertex {v} rank {g} vs reference {w}"
            );
        }
    }

    #[test]
    fn every_access_mode_matches_the_cpu_reference() {
        let g = generators::kronecker(9, 8, 21);
        let want = algo::pagerank(&g, 0.85, 15);
        for mode in AccessMode::all() {
            let mut engine = Engine::load(EngineConfig::emogi_v100().with_mode(mode), &g);
            let run = engine.pagerank(0.85, 15);
            assert_close(&run.ranks, &want, mode.name());
            assert_eq!(run.iterations, 15);
            assert_eq!(run.stats.kernel_launches, 15, "one launch per sweep");
        }
    }

    #[test]
    fn uvm_engine_runs_pagerank_too() {
        let g = generators::uniform_random(400, 6, 9);
        let want = algo::pagerank(&g, 0.85, 10);
        let mut engine = Engine::load(EngineConfig::uvm_v100(), &g);
        let run = engine.pagerank(0.85, 10);
        assert_close(&run.ranks, &want, "uvm");
        assert!(run.stats.page_faults > 0);
    }

    #[test]
    fn ranks_sum_to_one_with_dangling_vertices() {
        // A directed graph where half the pages have no outgoing links:
        // their mass must be redistributed, keeping the distribution
        // normalized.
        let mut b = emogi_graph::EdgeListBuilder::new(200);
        for v in 0..100u32 {
            b.push(v, 100 + v); // 100..200 are dangling sinks
            b.push(v, (v + 1) % 100);
        }
        let g = b.build();
        let dangling = (0..g.num_vertices() as u32)
            .filter(|&v| g.degree(v) == 0)
            .count();
        assert_eq!(dangling, 100);
        let want = algo::pagerank(&g, 0.85, 20);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.pagerank(0.85, 20);
        assert_close(&run.ranks, &want, "dangling");
        let sum: f64 = run.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "ranks sum to {sum}");
    }

    #[test]
    fn high_degree_vertices_rank_higher() {
        let g = generators::kronecker(10, 8, 5);
        let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
        let run = engine.pagerank(0.85, 20);
        let max_deg = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        let median = {
            let mut r = run.ranks.clone();
            r.sort_by(|a, b| a.partial_cmp(b).unwrap());
            r[r.len() / 2]
        };
        assert!(
            run.ranks[max_deg as usize] > 4.0 * median,
            "hub rank {} vs median {median}",
            run.ranks[max_deg as usize]
        );
    }

    #[test]
    fn hybrid_pagerank_stages_and_beats_zero_copy() {
        // Full sweeps every iteration: the ski-rental policy stages the
        // whole (oversubscribed) edge list and later sweeps run from HBM.
        let g = generators::lognormal_dense(400, 60.0, 0.5, 16, 5);
        let shrink = |mut cfg: EngineConfig| {
            cfg.machine.gpu.cache.capacity_bytes = 64 << 10;
            cfg
        };
        let mut zc = Engine::load(shrink(EngineConfig::emogi_v100()), &g);
        let mut hy = Engine::load(shrink(EngineConfig::hybrid_v100()), &g);
        let rz = zc.pagerank(0.85, 10);
        let rh = hy.pagerank(0.85, 10);
        assert_close(&rh.ranks, &rz.ranks, "hybrid vs zero-copy");
        assert!(
            rh.stats.transfer.staged_regions > 0,
            "full sweeps must stage"
        );
        assert!(
            rh.stats.elapsed_ns < rz.stats.elapsed_ns,
            "hybrid {} must beat zero-copy {}",
            rh.stats.elapsed_ns,
            rz.stats.elapsed_ns
        );
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_rejected() {
        let g = generators::uniform_random(10, 2, 1);
        let _ = PageRankProgram::new(&g, 1.5, 10);
    }
}
