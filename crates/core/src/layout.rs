//! Where a graph's pieces live on the machine.
//!
//! EMOGI's placement (§4.2): "The edge list is allocated in the host
//! memory as it doesn't fit in GPU memory, but other small data structures
//! such as buffers and the vertex list are allocated in GPU memory." The
//! UVM baseline (§5.1.2) differs only in putting the edge list (and the
//! weight list, for SSSP) into the managed space.

use emogi_gpu::access::Space;
use emogi_graph::CsrGraph;
use emogi_runtime::{Machine, RegionMap, HOST_BASE};

/// Which memory mechanism serves the edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgePlacement {
    /// EMOGI: pinned host memory, zero-copy cache-line reads.
    ZeroCopyHost,
    /// Baseline: UVM-managed memory, 4 KiB page migration on fault.
    Uvm,
}

impl EdgePlacement {
    /// The simulated address space this placement maps to.
    pub fn space(self) -> Space {
        match self {
            EdgePlacement::ZeroCopyHost => Space::HostPinned,
            EdgePlacement::Uvm => Space::Managed,
        }
    }

    /// Display name of the placement.
    pub fn name(self) -> &'static str {
        match self {
            EdgePlacement::ZeroCopyHost => "zero-copy",
            EdgePlacement::Uvm => "UVM",
        }
    }
}

/// Simulated addresses of every array a traversal kernel touches.
#[derive(Debug, Clone)]
pub struct GraphLayout {
    /// Edge list base (host-pinned or managed).
    pub edge_base: u64,
    /// Edge weights base (same space as the edge list); only present when
    /// the layout was built with weights.
    pub weight_base: Option<u64>,
    /// Vertex list (CSR offsets) in device memory, 8-byte entries.
    pub vertex_base: u64,
    /// Status array (BFS level / SSSP distance / CC label) in device
    /// memory, 4-byte entries.
    pub status_base: u64,
    /// Simulated size of one edge element (8 by default; 4 in the §5.6
    /// Subway comparison).
    pub elem_bytes: u64,
    /// Space the edge and weight arrays live in.
    pub edge_space: Space,
    /// Hybrid mode only: regions of the edge list staged into device
    /// memory by the transfer manager; refreshed before each launch.
    pub staged_edges: Option<RegionMap>,
}

impl GraphLayout {
    /// Allocate the arrays for `graph` on `machine` per the placement
    /// discipline above.
    pub fn place(
        machine: &mut Machine,
        graph: &CsrGraph,
        elem_bytes: u64,
        placement: EdgePlacement,
        with_weights: bool,
    ) -> GraphLayout {
        assert!(
            elem_bytes == 4 || elem_bytes == 8,
            "CSR elements are 4 or 8 bytes"
        );
        let edge_bytes = graph.num_edges() as u64 * elem_bytes;
        let weight_bytes = graph.num_edges() as u64 * 4;
        let (edge_base, weight_base) = match placement {
            EdgePlacement::ZeroCopyHost => (
                machine.alloc_host_pinned(edge_bytes),
                with_weights.then(|| machine.alloc_host_pinned(weight_bytes)),
            ),
            EdgePlacement::Uvm => (
                machine.alloc_managed(edge_bytes),
                with_weights.then(|| machine.alloc_managed(weight_bytes)),
            ),
        };
        let vertex_base = machine.alloc_device(graph.vertex_list_bytes());
        let status_base = machine.alloc_device(graph.num_vertices() as u64 * 4);
        GraphLayout {
            edge_base,
            weight_base,
            vertex_base,
            status_base,
            elem_bytes,
            edge_space: placement.space(),
            staged_edges: None,
        }
    }

    /// Elements per 128-byte cache line (16 for 8-byte, 32 for 4-byte).
    #[inline]
    pub fn elems_per_line(&self) -> u64 {
        128 / self.elem_bytes
    }

    /// Address of edge-list element `i`. In hybrid mode a staged region
    /// redirects into device memory.
    #[inline]
    pub fn edge_addr(&self, i: u64) -> u64 {
        let off = i * self.elem_bytes;
        if let Some(map) = &self.staged_edges {
            if let Some(dev) = map.translate(off) {
                return dev;
            }
        }
        self.edge_base + off
    }

    /// Space of an edge-list access at `addr` (as produced by
    /// [`edge_addr`](Self::edge_addr)): staged addresses live below the
    /// pinned-host window and are priced as device memory.
    #[inline]
    pub fn edge_addr_space(&self, addr: u64) -> Space {
        if addr < HOST_BASE {
            Space::Device
        } else {
            self.edge_space
        }
    }

    /// Address of weight element `i`.
    #[inline]
    pub fn weight_addr(&self, i: u64) -> u64 {
        self.weight_base.expect("layout has no weights") + i * 4
    }

    /// Device address of vertex-list entry `v`.
    #[inline]
    pub fn vertex_addr(&self, v: u64) -> u64 {
        self.vertex_base + v * 8
    }

    /// Device address of the status entry for vertex `v`.
    #[inline]
    pub fn status_addr(&self, v: u64) -> u64 {
        self.status_base + v * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_graph::generators;
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::{DEVICE_BASE, HOST_BASE, MANAGED_BASE};

    #[test]
    fn zero_copy_placement_uses_pinned_host() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(1000, 8, 1);
        let l = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, true);
        assert!(l.edge_base >= HOST_BASE);
        assert!(l.weight_base.unwrap() >= HOST_BASE);
        assert!(l.vertex_base >= DEVICE_BASE && l.vertex_base < HOST_BASE);
        assert_eq!(l.elems_per_line(), 16);
        assert_eq!(l.edge_addr(2), l.edge_base + 16);
        assert_eq!(l.weight_addr(2), l.weight_base.unwrap() + 8);
    }

    #[test]
    fn uvm_placement_uses_managed_space() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(1000, 8, 1);
        let l = GraphLayout::place(&mut m, &g, 8, EdgePlacement::Uvm, false);
        assert!(l.edge_base >= MANAGED_BASE);
        assert!(l.weight_base.is_none());
        assert_eq!(l.edge_space, Space::Managed);
    }

    #[test]
    fn four_byte_elements() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(100, 4, 1);
        let l = GraphLayout::place(&mut m, &g, 4, EdgePlacement::ZeroCopyHost, false);
        assert_eq!(l.elems_per_line(), 32);
        assert_eq!(l.edge_addr(3), l.edge_base + 12);
    }

    #[test]
    #[should_panic(expected = "4 or 8")]
    fn bad_element_size_rejected() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(10, 2, 1);
        let _ = GraphLayout::place(&mut m, &g, 16, EdgePlacement::ZeroCopyHost, false);
    }
}
