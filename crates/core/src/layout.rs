//! Where a graph's pieces live on the machine.
//!
//! EMOGI's placement (§4.2): "The edge list is allocated in the host
//! memory as it doesn't fit in GPU memory, but other small data structures
//! such as buffers and the vertex list are allocated in GPU memory." The
//! UVM baseline (§5.1.2) differs only in putting the edge list (and the
//! weight list, for SSSP) into the managed space.

use emogi_gpu::access::Space;
use emogi_graph::CsrGraph;
use emogi_runtime::{Machine, RegionMap, CXL_BASE, HOST_BASE};

/// Granularity of the host/CXL split when the edge list spills past a
/// bounded host DRAM: the host-resident prefix is aligned down to 64 KiB
/// (the transfer manager's default region size) so it lands on a region
/// boundary for every power-of-two region size up to 64 KiB. Larger
/// region configurations are rejected by the transfer manager's own
/// boundary assertion.
pub const SPILL_ALIGN: u64 = 64 << 10;

/// Which memory mechanism serves the edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgePlacement {
    /// EMOGI: pinned host memory, zero-copy cache-line reads.
    ZeroCopyHost,
    /// Baseline: UVM-managed memory, 4 KiB page migration on fault.
    Uvm,
}

impl EdgePlacement {
    /// The simulated address space this placement maps to.
    pub fn space(self) -> Space {
        match self {
            EdgePlacement::ZeroCopyHost => Space::HostPinned,
            EdgePlacement::Uvm => Space::Managed,
        }
    }

    /// Display name of the placement.
    pub fn name(self) -> &'static str {
        match self {
            EdgePlacement::ZeroCopyHost => "zero-copy",
            EdgePlacement::Uvm => "UVM",
        }
    }
}

/// Simulated addresses of every array a traversal kernel touches.
#[derive(Debug, Clone)]
pub struct GraphLayout {
    /// Edge list base (host-pinned or managed).
    pub edge_base: u64,
    /// Edge weights base (same space as the edge list); only present when
    /// the layout was built with weights.
    pub weight_base: Option<u64>,
    /// Vertex list (CSR offsets) in device memory, 8-byte entries.
    pub vertex_base: u64,
    /// Status array (BFS level / SSSP distance / CC label) in device
    /// memory, 4-byte entries.
    pub status_base: u64,
    /// Simulated size of one edge element (8 by default; 4 in the §5.6
    /// Subway comparison).
    pub elem_bytes: u64,
    /// Space the edge and weight arrays live in.
    pub edge_space: Space,
    /// Bytes of the edge list resident in its primary home
    /// (pinned host or managed). Equal to the full edge-list size unless
    /// a bounded host DRAM forced the tail past it.
    pub host_edge_bytes: u64,
    /// Base of the CXL-resident tail of the edge list; present only when
    /// host capacity forced a spill into the external tier.
    pub cxl_edge_base: Option<u64>,
    /// Hybrid mode only: regions of the edge list staged into device
    /// memory by the transfer manager; refreshed before each launch.
    pub staged_edges: Option<RegionMap>,
}

impl GraphLayout {
    /// Allocate the arrays for `graph` on `machine` per the placement
    /// discipline above.
    pub fn place(
        machine: &mut Machine,
        graph: &CsrGraph,
        elem_bytes: u64,
        placement: EdgePlacement,
        with_weights: bool,
    ) -> GraphLayout {
        assert!(
            elem_bytes == 4 || elem_bytes == 8,
            "CSR elements are 4 or 8 bytes"
        );
        let edge_bytes = graph.num_edges() as u64 * elem_bytes;
        let weight_bytes = graph.num_edges() as u64 * 4;
        let (edge_base, weight_base, host_edge_bytes, cxl_edge_base) = match placement {
            EdgePlacement::ZeroCopyHost => {
                // Weights (when present) stay host-resident: only the
                // edge-list tail spills, so reserve their bytes up front.
                let avail =
                    machine
                        .host_free()
                        .saturating_sub(if with_weights { weight_bytes } else { 0 });
                let host_part = if avail >= edge_bytes {
                    edge_bytes
                } else {
                    avail / SPILL_ALIGN * SPILL_ALIGN
                };
                let spill = edge_bytes - host_part;
                assert!(
                    spill == 0 || machine.cxl.is_some(),
                    "edge list ({edge_bytes} B) exceeds host DRAM capacity \
                     ({avail} B free) and the machine has no CXL tier to \
                     spill into (MachineConfig::with_cxl)"
                );
                let edge_base = machine.alloc_host_pinned(host_part);
                let cxl_edge_base = (spill > 0).then(|| machine.alloc_cxl(spill));
                let weight_base = with_weights.then(|| machine.alloc_host_pinned(weight_bytes));
                (edge_base, weight_base, host_part, cxl_edge_base)
            }
            EdgePlacement::Uvm => (
                machine.alloc_managed(edge_bytes),
                with_weights.then(|| machine.alloc_managed(weight_bytes)),
                edge_bytes,
                None,
            ),
        };
        let vertex_base = machine.alloc_device(graph.vertex_list_bytes());
        let status_base = machine.alloc_device(graph.num_vertices() as u64 * 4);
        GraphLayout {
            edge_base,
            weight_base,
            vertex_base,
            status_base,
            elem_bytes,
            edge_space: placement.space(),
            host_edge_bytes,
            cxl_edge_base,
            staged_edges: None,
        }
    }

    /// Elements per 128-byte cache line (16 for 8-byte, 32 for 4-byte).
    #[inline]
    pub fn elems_per_line(&self) -> u64 {
        128 / self.elem_bytes
    }

    /// Address of edge-list element `i`. In hybrid mode a staged region
    /// redirects into device memory; offsets past the host-resident
    /// prefix resolve into the CXL spill tail.
    #[inline]
    pub fn edge_addr(&self, i: u64) -> u64 {
        let off = i * self.elem_bytes;
        if let Some(map) = &self.staged_edges {
            if let Some(dev) = map.translate(off) {
                return dev;
            }
        }
        match self.cxl_edge_base {
            Some(cxl) if off >= self.host_edge_bytes => cxl + (off - self.host_edge_bytes),
            _ => self.edge_base + off,
        }
    }

    /// Space of an edge-list access at `addr` (as produced by
    /// [`edge_addr`](Self::edge_addr)): staged addresses live below the
    /// pinned-host window and are priced as device memory; spilled
    /// addresses live at or above the CXL window and are priced over the
    /// CXL link.
    #[inline]
    pub fn edge_addr_space(&self, addr: u64) -> Space {
        if addr < HOST_BASE {
            Space::Device
        } else if addr >= CXL_BASE {
            Space::Cxl
        } else {
            self.edge_space
        }
    }

    /// Address of weight element `i`.
    #[inline]
    pub fn weight_addr(&self, i: u64) -> u64 {
        self.weight_base.expect("layout has no weights") + i * 4
    }

    /// Device address of vertex-list entry `v`.
    #[inline]
    pub fn vertex_addr(&self, v: u64) -> u64 {
        self.vertex_base + v * 8
    }

    /// Device address of the status entry for vertex `v`.
    #[inline]
    pub fn status_addr(&self, v: u64) -> u64 {
        self.status_base + v * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_graph::generators;
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::{DEVICE_BASE, HOST_BASE, MANAGED_BASE};

    #[test]
    fn zero_copy_placement_uses_pinned_host() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(1000, 8, 1);
        let l = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, true);
        assert!(l.edge_base >= HOST_BASE);
        assert!(l.weight_base.unwrap() >= HOST_BASE);
        assert!(l.vertex_base >= DEVICE_BASE && l.vertex_base < HOST_BASE);
        assert_eq!(l.elems_per_line(), 16);
        assert_eq!(l.edge_addr(2), l.edge_base + 16);
        assert_eq!(l.weight_addr(2), l.weight_base.unwrap() + 8);
    }

    #[test]
    fn uvm_placement_uses_managed_space() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(1000, 8, 1);
        let l = GraphLayout::place(&mut m, &g, 8, EdgePlacement::Uvm, false);
        assert!(l.edge_base >= MANAGED_BASE);
        assert!(l.weight_base.is_none());
        assert_eq!(l.edge_space, Space::Managed);
    }

    #[test]
    fn four_byte_elements() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(100, 4, 1);
        let l = GraphLayout::place(&mut m, &g, 4, EdgePlacement::ZeroCopyHost, false);
        assert_eq!(l.elems_per_line(), 32);
        assert_eq!(l.edge_addr(3), l.edge_base + 12);
    }

    #[test]
    fn unbounded_host_never_spills() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(1000, 8, 1);
        let l = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        assert_eq!(l.host_edge_bytes, g.num_edges() as u64 * 8);
        assert!(l.cxl_edge_base.is_none());
        assert_eq!(l.edge_addr_space(l.edge_base), Space::HostPinned);
    }

    #[test]
    fn bounded_host_spills_edge_tail_to_cxl() {
        use emogi_runtime::CXL_BASE;
        use emogi_sim::CxlConfig;
        let g = generators::uniform_random(100_000, 10, 1); // ~8 MB of edges
        let mut m = Machine::new(
            MachineConfig::v100_gen3()
                .with_cxl(CxlConfig::external_x8())
                .with_host_capacity(3 << 20),
        );
        let l = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        assert_eq!(l.host_edge_bytes, 3 << 20, "prefix aligned to SPILL_ALIGN");
        let cxl = l.cxl_edge_base.expect("tail spilled");
        assert!(cxl >= CXL_BASE);
        // Addresses on each side of the split resolve to the right tier.
        let boundary = l.host_edge_bytes / 8;
        assert_eq!(
            l.edge_addr(boundary - 1),
            l.edge_base + l.host_edge_bytes - 8
        );
        assert_eq!(l.edge_addr(boundary), cxl);
        assert_eq!(l.edge_addr(boundary + 1), cxl + 8);
        assert_eq!(l.edge_addr_space(l.edge_addr(boundary)), Space::Cxl);
        assert_eq!(
            l.edge_addr_space(l.edge_addr(boundary - 1)),
            Space::HostPinned
        );
    }

    #[test]
    fn spill_reserves_weight_bytes_on_the_host() {
        use emogi_sim::CxlConfig;
        let g = generators::uniform_random(100_000, 10, 1);
        let mut m = Machine::new(
            MachineConfig::v100_gen3()
                .with_cxl(CxlConfig::external_x8())
                .with_host_capacity(6 << 20),
        );
        let l = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, true);
        let weight_bytes = g.num_edges() as u64 * 4;
        assert!(
            l.weight_base.unwrap() >= HOST_BASE,
            "weights stay host-resident"
        );
        assert!(
            l.host_edge_bytes + weight_bytes <= 6 << 20,
            "edge prefix leaves room for the weights"
        );
        assert!(l.cxl_edge_base.is_some());
    }

    #[test]
    #[should_panic(expected = "no CXL tier")]
    fn spill_without_cxl_tier_is_rejected() {
        let g = generators::uniform_random(100_000, 10, 1);
        let mut m = Machine::new(MachineConfig::v100_gen3().with_host_capacity(1 << 20));
        let _ = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
    }

    #[test]
    #[should_panic(expected = "4 or 8")]
    fn bad_element_size_rejected() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let g = generators::uniform_random(10, 2, 1);
        let _ = GraphLayout::place(&mut m, &g, 16, EdgePlacement::ZeroCopyHost, false);
    }
}
