//! Breadth-first search as a [`VertexProgram`] (§5.3's case study).
//!
//! Vertex-centric, level-synchronous, push-based: one kernel launch per
//! BFS level ("the total number of kernels launched ... is equal to the
//! distance between the source vertex to the furthest reachable vertex",
//! §4.2). Frontier-driven: each launch expands only the vertices
//! discovered by the previous one, reading the edge list from host
//! memory and checking/updating the 4-byte level array in device memory.

use crate::program::{AccessPattern, EdgeEffect, VertexProgram};
use emogi_graph::{CsrGraph, VertexId, UNVISITED};

/// BFS result: per-vertex levels ([`UNVISITED`] when unreachable).
#[derive(Debug, Clone)]
pub struct BfsOutput {
    /// Per-vertex BFS level; [`UNVISITED`] for unreachable vertices.
    pub levels: Vec<u32>,
}

/// The BFS vertex program. Per-vertex state: the device-resident level
/// array (semantic copy).
pub struct BfsProgram {
    src: VertexId,
    levels: Vec<u32>,
    /// Level assigned to vertices discovered in the current launch.
    next_level: u32,
}

impl BfsProgram {
    /// A BFS from `src` over `graph`.
    pub fn new(graph: &CsrGraph, src: VertexId) -> Self {
        let mut levels = vec![UNVISITED; graph.num_vertices()];
        levels[src as usize] = 0;
        Self {
            src,
            levels,
            next_level: 0,
        }
    }
}

impl VertexProgram for BfsProgram {
    type Ctx = ();
    type Output = BfsOutput;

    fn pattern(&self) -> AccessPattern {
        AccessPattern::FrontierDriven
    }

    /// A BFS task needs only its CSR offsets; its own level is implied by
    /// being on the frontier.
    fn reads_source_status(&self) -> bool {
        false
    }

    fn initial_frontier(&self) -> Vec<VertexId> {
        vec![self.src]
    }

    fn begin_iteration(&mut self) {
        self.next_level += 1;
    }

    fn source_ctx(&self, _v: VertexId) -> Self::Ctx {}

    fn edge(&mut self, _i: u64, _src: VertexId, dst: VertexId, _ctx: ()) -> EdgeEffect {
        if self.levels[dst as usize] == UNVISITED {
            self.levels[dst as usize] = self.next_level;
            EdgeEffect::UpdateDst { activate: true }
        } else {
            EdgeEffect::None
        }
    }

    fn finish(self) -> BfsOutput {
        BfsOutput {
            levels: self.levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{Engine, EngineConfig};
    use crate::strategy::AccessStrategy;
    use emogi_graph::{algo, generators};

    /// Run a full BFS through the engine and compare with the CPU
    /// reference, for every strategy.
    fn bfs_via_engine(strategy: AccessStrategy) {
        let g = generators::uniform_random(500, 6, 42);
        let mut engine = Engine::load(EngineConfig::emogi_v100().with_strategy(strategy), &g);
        let run = engine.bfs(3);
        assert_eq!(run.levels, algo::bfs_levels(&g, 3), "{strategy:?}");
        assert!(run.stats.pcie_read_requests > 0);
    }

    #[test]
    fn merged_aligned_matches_reference() {
        bfs_via_engine(AccessStrategy::MergedAligned);
    }

    #[test]
    fn merged_matches_reference() {
        bfs_via_engine(AccessStrategy::Merged);
    }

    #[test]
    fn naive_matches_reference() {
        bfs_via_engine(AccessStrategy::Naive);
    }

    #[test]
    fn naive_produces_mostly_32_byte_requests() {
        // §5.3.1: "nearly all PCIe requests in the case of Naive
        // implementation are of 32-byte granularity".
        let g = generators::uniform_random(2_000, 32, 7);
        let mut engine = Engine::load(
            EngineConfig::emogi_v100().with_strategy(AccessStrategy::Naive),
            &g,
        );
        let run = engine.bfs(0);
        let frac32 = run.stats.request_sizes.fraction(32);
        assert!(frac32 > 0.9, "32-byte fraction {frac32}");
    }

    #[test]
    fn aligned_produces_more_128_byte_requests_than_merged() {
        let g = generators::lognormal_dense(400, 150.0, 0.4, 64, 5);
        let run = |strategy| {
            let mut engine = Engine::load(EngineConfig::emogi_v100().with_strategy(strategy), &g);
            engine.bfs(0).stats.request_sizes.fraction(128)
        };
        let merged = run(AccessStrategy::Merged);
        let aligned = run(AccessStrategy::MergedAligned);
        assert!(
            aligned > merged,
            "aligned 128B fraction {aligned} must beat merged {merged}"
        );
    }
}
