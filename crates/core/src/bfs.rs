//! Breadth-first search kernel (§5.3's case study).
//!
//! Vertex-centric, level-synchronous, push-based: one kernel launch per
//! BFS level ("the total number of kernels launched ... is equal to the
//! distance between the source vertex to the furthest reachable vertex",
//! §4.2). A task walks one frontier vertex's neighbour list (Merged /
//! Merged+Aligned) or 32 of them lane-parallel (Naive), reading the edge
//! list from host memory and checking/updating the 4-byte level array in
//! device memory.

use crate::layout::GraphLayout;
use crate::strategy::AccessStrategy;
use crate::walk::{LaneWalk, WarpWalk};
use emogi_graph::{CsrGraph, VertexId, UNVISITED};
use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_runtime::{Kernel, StepOutcome};

/// One BFS level's kernel: expands `frontier` into `next_frontier`.
pub struct BfsKernel<'a> {
    pub graph: &'a CsrGraph,
    pub layout: &'a GraphLayout,
    pub strategy: AccessStrategy,
    /// Device-resident level array (semantic copy).
    pub levels: &'a mut [u32],
    /// Level to assign to newly discovered vertices.
    pub next_level: u32,
    pub frontier: &'a [VertexId],
    pub next_frontier: &'a mut Vec<VertexId>,
    pos: usize,
    loaded_scratch: Vec<(u64, u8)>,
}

impl<'a> BfsKernel<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &'a CsrGraph,
        layout: &'a GraphLayout,
        strategy: AccessStrategy,
        levels: &'a mut [u32],
        next_level: u32,
        frontier: &'a [VertexId],
        next_frontier: &'a mut Vec<VertexId>,
    ) -> Self {
        Self {
            graph,
            layout,
            strategy,
            levels,
            next_level,
            frontier,
            next_frontier,
            pos: 0,
            loaded_scratch: Vec::with_capacity(WARP_SIZE),
        }
    }

    /// Process the semantics of edge-list element `i`: read the
    /// destination's level, discover it if unvisited. `instr` separates
    /// the status gathers of different loop iterations.
    fn visit_edge(&mut self, i: u64, instr: u8, batch: &mut AccessBatch) {
        let dst = self.graph.edge_dst(i);
        batch.load_instr(self.layout.status_addr(u64::from(dst)), 4, Space::Device, instr);
        if self.levels[dst as usize] == UNVISITED {
            self.levels[dst as usize] = self.next_level;
            batch.store(self.layout.status_addr(u64::from(dst)), 4, Space::Device);
            self.next_frontier.push(dst);
        }
    }
}

/// Task state: offset loading, then list walking.
///
/// The naive variant carries 32 lane cursors and is much larger than the
/// warp variant; tasks live in pre-sized executor slots, so the size
/// difference is intentional and harmless.
#[allow(clippy::large_enum_variant)]
pub enum BfsTask {
    /// Merged/aligned: a warp on one vertex.
    Warp { v: VertexId, walk: Option<WarpWalk> },
    /// Naive: 32 lanes on 32 vertices.
    Lanes {
        vs: Vec<VertexId>,
        walk: Option<LaneWalk>,
    },
}

impl Kernel for BfsKernel<'_> {
    type Task = BfsTask;

    fn next_task(&mut self) -> Option<BfsTask> {
        if self.pos >= self.frontier.len() {
            return None;
        }
        if self.strategy.warp_per_vertex() {
            let v = self.frontier[self.pos];
            self.pos += 1;
            Some(BfsTask::Warp { v, walk: None })
        } else {
            let chunk = &self.frontier[self.pos..(self.pos + WARP_SIZE).min(self.frontier.len())];
            self.pos += chunk.len();
            Some(BfsTask::Lanes {
                vs: chunk.to_vec(),
                walk: None,
            })
        }
    }

    fn step(&mut self, task: &mut BfsTask, batch: &mut AccessBatch) -> StepOutcome {
        match task {
            BfsTask::Warp { v, walk } => {
                let Some(w) = walk else {
                    // First step: the warp reads offsets[v] and offsets[v+1]
                    // from the device-resident vertex list.
                    batch.load(self.layout.vertex_addr(u64::from(*v)), 8, Space::Device);
                    batch.load(self.layout.vertex_addr(u64::from(*v) + 1), 8, Space::Device);
                    let start = self.graph.neighbor_start(*v);
                    let end = self.graph.neighbor_end(*v);
                    if start == end {
                        return StepOutcome::Done;
                    }
                    *walk = Some(WarpWalk::new(start, end, self.strategy, self.layout));
                    return StepOutcome::Continue;
                };
                let (lo, hi) = w.emit_edges(self.layout, batch);
                for i in lo..hi {
                    self.visit_edge(i, 128, batch);
                }
                if w.is_done() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            BfsTask::Lanes { vs, walk } => {
                let Some(w) = walk else {
                    let mut ranges = Vec::with_capacity(vs.len());
                    for &v in vs.iter() {
                        batch.load(self.layout.vertex_addr(u64::from(v)), 8, Space::Device);
                        batch.load(self.layout.vertex_addr(u64::from(v) + 1), 8, Space::Device);
                        ranges.push((self.graph.neighbor_start(v), self.graph.neighbor_end(v)));
                    }
                    let lw = LaneWalk::new(&ranges);
                    if lw.is_done() {
                        return StepOutcome::Done;
                    }
                    *walk = Some(lw);
                    return StepOutcome::Continue;
                };
                let mut loaded = std::mem::take(&mut self.loaded_scratch);
                loaded.clear();
                w.emit_edges(self.layout, batch, &mut loaded);
                for &(elem, iter) in &loaded {
                    self.visit_edge(elem, 128 + iter, batch);
                }
                let done = w.is_done();
                self.loaded_scratch = loaded;
                if done {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgePlacement;
    use emogi_graph::{algo, generators};
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::{exec, Machine};

    /// Run a full BFS through the kernel machinery and compare with the
    /// CPU reference, for every strategy.
    fn bfs_via_kernel(strategy: AccessStrategy) {
        let g = generators::uniform_random(500, 6, 42);
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        let mut levels = vec![UNVISITED; g.num_vertices()];
        levels[3] = 0;
        let mut frontier = vec![3u32];
        let mut level = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            let mut k = BfsKernel::new(
                &g, &layout, strategy, &mut levels, level + 1, &frontier, &mut next,
            );
            exec::run_kernel(&mut m, &mut k);
            next.sort_unstable();
            frontier = next;
            level += 1;
        }
        assert_eq!(levels, algo::bfs_levels(&g, 3), "{strategy:?}");
        assert!(m.monitor.read_requests > 0);
    }

    #[test]
    fn merged_aligned_matches_reference() {
        bfs_via_kernel(AccessStrategy::MergedAligned);
    }

    #[test]
    fn merged_matches_reference() {
        bfs_via_kernel(AccessStrategy::Merged);
    }

    #[test]
    fn naive_matches_reference() {
        bfs_via_kernel(AccessStrategy::Naive);
    }

    #[test]
    fn naive_produces_mostly_32_byte_requests() {
        // §5.3.1: "nearly all PCIe requests in the case of Naive
        // implementation are of 32-byte granularity".
        let g = generators::uniform_random(2_000, 32, 7);
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
        let mut levels = vec![UNVISITED; g.num_vertices()];
        levels[0] = 0;
        let mut frontier: Vec<u32> = vec![0];
        // Expand one hop to get a wide frontier, then measure the next.
        for _ in 0..2 {
            let mut next = Vec::new();
            let mut k = BfsKernel::new(
                &g,
                &layout,
                AccessStrategy::Naive,
                &mut levels,
                1,
                &frontier,
                &mut next,
            );
            exec::run_kernel(&mut m, &mut k);
            next.sort_unstable();
            frontier = next;
        }
        let frac32 = m.monitor.sizes.fraction(32);
        assert!(frac32 > 0.9, "32-byte fraction {frac32}");
    }

    #[test]
    fn aligned_produces_more_128_byte_requests_than_merged() {
        let g = generators::lognormal_dense(400, 150.0, 0.4, 64, 5);
        let run = |strategy| {
            let mut m = Machine::new(MachineConfig::v100_gen3());
            let layout = GraphLayout::place(&mut m, &g, 8, EdgePlacement::ZeroCopyHost, false);
            let mut levels = vec![UNVISITED; g.num_vertices()];
            levels[0] = 0;
            let mut frontier: Vec<u32> = vec![0];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                let mut k = BfsKernel::new(
                    &g, &layout, strategy, &mut levels, 1, &frontier, &mut next,
                );
                exec::run_kernel(&mut m, &mut k);
                next.sort_unstable();
                frontier = next;
            }
            m.monitor.sizes.fraction(128)
        };
        let merged = run(AccessStrategy::Merged);
        let aligned = run(AccessStrategy::MergedAligned);
        assert!(
            aligned > merged,
            "aligned 128B fraction {aligned} must beat merged {merged}"
        );
    }
}
