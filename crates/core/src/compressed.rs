//! Zero-copy BFS over a *compressed* edge list — the §6 extension.
//!
//! The kernel structure is EMOGI's merged+aligned sweep, but each warp
//! reads its vertex's delta-varint-compressed byte range instead of raw
//! 8-byte elements, then spends extra compute decompressing (the paper's
//! argument: lanes idle on interconnect latency anyway, so decompression
//! is free). The interconnect moves 2–4× fewer bytes on graphs with
//! id-space locality, which is exactly where an interconnect-bound
//! traversal gains.

use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_graph::compress::CompressedCsr;
use emogi_graph::{VertexId, UNVISITED};
use emogi_runtime::exec::run_kernel;
use emogi_runtime::machine::MachineConfig;
use emogi_runtime::report::RunStats;
use emogi_runtime::{Kernel, Machine, StepOutcome};

/// Decode cost per edge, ns (a few shifts/adds per varint byte; far below
/// the ~100 ns/edge the interconnect costs at 32 B per 3-ish edges).
const DECODE_NS_PER_EDGE: u32 = 2;

/// BFS engine over a compressed zero-copy edge list.
pub struct CompressedBfs<'g> {
    machine: Machine,
    graph: &'g CompressedCsr,
    /// Compressed bytes base in pinned host memory.
    edge_base: u64,
    layout_status: u64,
    layout_vertex: u64,
}

struct CompressedBfsKernel<'a, 'g> {
    sys_graph: &'g CompressedCsr,
    edge_base: u64,
    status_base: u64,
    vertex_base: u64,
    levels: &'a mut [u32],
    next_level: u32,
    frontier: &'a [VertexId],
    next_frontier: &'a mut Vec<VertexId>,
    pos: usize,
    scratch: Vec<VertexId>,
}

struct CompressedTask {
    v: VertexId,
    /// Byte cursor within the compressed stream; `None` until the offsets
    /// have been read.
    cursor: Option<u64>,
    end: u64,
}

impl Kernel for CompressedBfsKernel<'_, '_> {
    type Task = CompressedTask;

    fn next_task(&mut self) -> Option<CompressedTask> {
        let v = *self.frontier.get(self.pos)?;
        self.pos += 1;
        Some(CompressedTask {
            v,
            cursor: None,
            end: 0,
        })
    }

    fn step(&mut self, task: &mut CompressedTask, batch: &mut AccessBatch) -> StepOutcome {
        let Some(cursor) = task.cursor else {
            // Offsets from device memory, then align the byte cursor down
            // to the 128-byte boundary (EMOGI's aligned trick, applied to
            // the byte stream).
            batch.load(self.vertex_base + u64::from(task.v) * 8, 8, Space::Device);
            batch.load(
                self.vertex_base + (u64::from(task.v) + 1) * 8,
                8,
                Space::Device,
            );
            let (start, end) = self.sys_graph.byte_range(task.v);
            if start == end {
                return StepOutcome::Done;
            }
            task.cursor = Some(start & !127);
            task.end = end;
            // Semantics: decode the list now; traffic is still charged
            // byte-by-byte below.
            self.sys_graph.decode_into(task.v, &mut self.scratch);
            for i in 0..self.scratch.len() {
                let dst = self.scratch[i];
                if self.levels[dst as usize] == UNVISITED {
                    self.levels[dst as usize] = self.next_level;
                    self.next_frontier.push(dst);
                }
            }
            return StepOutcome::Continue;
        };
        // One warp iteration: 32 lanes x 8 bytes of the compressed
        // stream, skipping lanes below the true start.
        let (true_start, _) = self.sys_graph.byte_range(task.v);
        let chunk_end = (cursor + (WARP_SIZE as u64) * 8).min(task.end);
        let lo = cursor.max(true_start & !7);
        let mut b = lo;
        while b < chunk_end {
            batch.load(self.edge_base + b, 8, Space::HostPinned);
            b += 8;
        }
        // Status gathers + stores for the edges decoded in this window
        // are approximated by charging them when the bytes arrive.
        let window_edges = ((chunk_end - lo) / 2).max(1); // ~2 B per edge
        batch.compute_ns = DECODE_NS_PER_EDGE * window_edges as u32;
        for _ in 0..window_edges.min(WARP_SIZE as u64) {
            batch.load(self.status_base, 4, Space::Device);
        }
        task.cursor = Some(chunk_end);
        if chunk_end >= task.end {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }
}

impl<'g> CompressedBfs<'g> {
    /// A BFS system over a delta-varint-compressed graph on a fresh
    /// machine.
    pub fn new(machine_cfg: MachineConfig, graph: &'g CompressedCsr) -> Self {
        let mut machine = Machine::new(machine_cfg);
        let edge_base = machine.alloc_host_pinned(graph.compressed_bytes().max(1));
        let layout_vertex = machine.alloc_device((graph.num_vertices() as u64 + 1) * 8);
        let layout_status = machine.alloc_device(graph.num_vertices() as u64 * 4);
        Self {
            machine,
            graph,
            edge_base,
            layout_status,
            layout_vertex,
        }
    }

    /// Bytes the interconnect must move at minimum (the compressed size).
    pub fn dataset_bytes(&self) -> u64 {
        self.graph.compressed_bytes()
    }

    /// Full BFS from `src` over the compressed stream.
    pub fn bfs(&mut self, src: VertexId) -> (Vec<u32>, RunStats) {
        let snap = self.machine.snapshot();
        let n = self.graph.num_vertices();
        let mut levels = vec![UNVISITED; n];
        levels[src as usize] = 0;
        let mut frontier = vec![src];
        let mut launches = 0u64;
        let mut level = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            let mut kernel = CompressedBfsKernel {
                sys_graph: self.graph,
                edge_base: self.edge_base,
                status_base: self.layout_status,
                vertex_base: self.layout_vertex,
                levels: &mut levels,
                next_level: level + 1,
                frontier: &frontier,
                next_frontier: &mut next,
                pos: 0,
                scratch: Vec::new(),
            };
            run_kernel(&mut self.machine, &mut kernel);
            launches += 1;
            level += 1;
            next.sort_unstable();
            frontier = next;
        }
        (levels, self.machine.finish_run(&snap, launches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig};
    use emogi_graph::{algo, generators};

    #[test]
    fn compressed_bfs_matches_reference() {
        let g = generators::web_crawl(1_500, 10, 100, 0.85, 8);
        let c = CompressedCsr::encode(&g);
        let mut sys = CompressedBfs::new(MachineConfig::v100_gen3(), &c);
        let src = (0..1_500u32).find(|&v| g.degree(v) > 0).unwrap();
        let (levels, stats) = sys.bfs(src);
        assert_eq!(levels, algo::bfs_levels(&g, src));
        assert!(stats.pcie_read_requests > 0);
    }

    #[test]
    fn compression_reduces_interconnect_traffic() {
        // The §6 hypothesis: on a local-structured graph, the compressed
        // engine moves far fewer bytes than the raw 8-byte engine.
        let g = generators::web_crawl(4_000, 16, 200, 0.9, 9);
        let src = (0..4_000u32).find(|&v| g.degree(v) > 0).unwrap();

        let mut raw = Engine::load(EngineConfig::emogi_v100(), &g);
        let raw_run = raw.bfs(src);

        let c = CompressedCsr::encode(&g);
        let mut comp = CompressedBfs::new(MachineConfig::v100_gen3(), &c);
        let (levels, comp_stats) = comp.bfs(src);
        assert_eq!(levels, raw_run.levels);
        assert!(
            comp_stats.host_bytes * 2 < raw_run.stats.host_bytes,
            "compressed {} vs raw {} bytes",
            comp_stats.host_bytes,
            raw_run.stats.host_bytes
        );
    }
}
