//! The vertex-program abstraction: pluggable algorithms over one generic
//! traversal engine.
//!
//! EMOGI's contribution is deliberately algorithm-agnostic — §4's merged
//! / aligned zero-copy access pattern is applied uniformly to BFS, SSSP
//! and CC. A [`VertexProgram`] captures exactly what *does* differ
//! between those applications (and any new one):
//!
//! * its **access pattern** — [`AccessPattern::FrontierDriven`] programs
//!   expand an active-vertex worklist per launch (BFS, SSSP), while
//!   [`AccessPattern::FullSweep`] programs stream every neighbour list
//!   every launch (CC, PageRank). The pattern is all the engine and the
//!   hybrid transfer planner need to know — there are no per-algorithm
//!   branches anywhere in the driver;
//! * whether it reads **auxiliary edge data** in lock-step with the edge
//!   list (SSSP's 4-byte weight stream, Table 2's `|w|` array). The data
//!   itself is a program input, not an engine field;
//! * whether a task reads its **own status entry** at start (SSSP's
//!   distance, CC's label) or not (BFS);
//! * its **per-edge logic** — the one real computation, expressed as a
//!   state update plus an [`EdgeEffect`] describing the memory traffic it
//!   caused;
//! * its **per-iteration logic** — frontier seeding, iteration setup,
//!   post-launch device-side work (CC's pointer-jumping shortcut,
//!   PageRank's rank swap) and convergence.
//!
//! The engine ([`crate::engine::Engine`]) owns the placed graph, machine
//! and transfer manager, and runs any program through one generic kernel
//! ([`crate::kernel::ProgramKernel`]).
//!
//! # Writing a new algorithm
//!
//! A program that counts, per vertex, how many of its incoming edges come
//! from the source's component — no engine, kernel or transfer-planner
//! changes needed:
//!
//! ```
//! use emogi_core::program::{AccessPattern, EdgeEffect, VertexProgram};
//! use emogi_core::{Engine, EngineConfig};
//! use emogi_graph::{generators, VertexId};
//!
//! /// Count every vertex's in-degree with one full edge-list sweep.
//! struct InDegree {
//!     counts: Vec<u32>,
//!     done: bool,
//! }
//!
//! impl VertexProgram for InDegree {
//!     type Ctx = ();
//!     type Output = Vec<u32>;
//!
//!     fn pattern(&self) -> AccessPattern {
//!         AccessPattern::FullSweep
//!     }
//!     fn reads_source_status(&self) -> bool {
//!         false
//!     }
//!     fn begin_iteration(&mut self) {
//!         self.done = true; // one sweep suffices
//!     }
//!     fn source_ctx(&self, _v: VertexId) -> Self::Ctx {}
//!     fn edge(&mut self, _i: u64, _src: VertexId, dst: VertexId, _ctx: ()) -> EdgeEffect {
//!         self.counts[dst as usize] += 1;
//!         EdgeEffect::UpdateDst { activate: false } // atomicAdd on the status entry
//!     }
//!     fn converged(&self) -> bool {
//!         self.done
//!     }
//!     fn finish(self) -> Vec<u32> {
//!         self.counts
//!     }
//! }
//!
//! let g = generators::uniform_random(300, 4, 7);
//! let mut engine = Engine::load(EngineConfig::emogi_v100(), &g);
//! let run = engine.run(InDegree { counts: vec![0; g.num_vertices()], done: false });
//! let total: u64 = run.output.iter().map(|&c| u64::from(c)).sum();
//! assert_eq!(total, g.num_edges() as u64);
//! ```

use emogi_graph::VertexId;

/// How a program drives the engine's launch loop — and, equally, how the
/// hybrid transfer planner predicts the next launch's edge-list reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Per launch, only the active vertices' neighbour lists are read;
    /// the program seeds the first frontier and activates vertices via
    /// [`EdgeEffect::UpdateDst`]. The engine stops when a launch
    /// activates nothing.
    FrontierDriven,
    /// Every launch streams every vertex's neighbour list ("all vertices
    /// are set as root vertices and the entire edge list is traversed",
    /// §5.4). The engine stops when [`VertexProgram::converged`] holds.
    FullSweep,
}

/// What a program's per-edge update did, so the generic kernel can emit
/// the matching device-memory traffic. The destination-status gather is
/// always emitted before the program sees the edge; the effect only adds
/// the (conditional) store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeEffect {
    /// No state changed: the gather was read, nothing written.
    None,
    /// The destination's status entry was written (BFS discovery, SSSP
    /// relaxation, PageRank's atomicAdd). `activate` puts the destination
    /// on the next frontier; full-sweep launches re-enumerate every
    /// vertex anyway, so they ignore it.
    UpdateDst {
        /// Whether the destination joins the next frontier.
        activate: bool,
    },
    /// The *source's* status entry was written — CC's hook adopts the
    /// smaller neighbour label into the source.
    UpdateSrc,
}

/// Device-side work a program performs between kernel launches, outside
/// the edge-streaming kernels: bulk sweeps over device-resident arrays
/// (CC's pointer-jumping passes, PageRank's rank update). The engine
/// charges each sweep against the machine's HBM clock.
#[derive(Debug, Default)]
pub struct DeviceWork {
    bulk_reads: Vec<u64>,
}

impl DeviceWork {
    /// Charge one bulk HBM sweep of `bytes`.
    pub fn bulk_read(&mut self, bytes: u64) {
        self.bulk_reads.push(bytes);
    }

    pub(crate) fn drain(&mut self) -> impl Iterator<Item = u64> + '_ {
        self.bulk_reads.drain(..)
    }
}

/// A pluggable traversal algorithm. See the [module docs](self) for the
/// contract and a worked example of adding a new one.
///
/// The engine calls, per run:
///
/// ```text
/// initial_frontier()                 (frontier-driven only)
/// loop {
///     begin_iteration()
///     — kernel launch: per task  source_ctx(v), then per edge  edge(..) —
///     post_iteration(work)
/// } until the frontier empties / converged()
/// finish()
/// ```
pub trait VertexProgram {
    /// Per-source context captured once at task start (e.g. SSSP's
    /// distance of the source at launch time, PageRank's out-contribution)
    /// and handed to every [`edge`](Self::edge) call of that task.
    type Ctx: Copy;
    /// What [`finish`](Self::finish) extracts after convergence.
    type Output;

    /// Frontier-driven or full-sweep (drives the launch loop *and* the
    /// hybrid transfer planning).
    fn pattern(&self) -> AccessPattern;

    /// Does the program read a 4-byte auxiliary edge-data stream (SSSP's
    /// weights) in lock-step with the edge list? The engine places the
    /// array on demand; the data itself lives in the program.
    fn uses_edge_data(&self) -> bool {
        false
    }

    /// Does a task read its own vertex's status entry at start (SSSP, CC,
    /// PageRank) or only its CSR offsets (BFS)?
    fn reads_source_status(&self) -> bool;

    /// Seed frontier for frontier-driven programs (ignored for full
    /// sweeps). May contain duplicates; the engine sorts and dedups.
    fn initial_frontier(&self) -> Vec<VertexId> {
        Vec::new()
    }

    /// Called before every kernel launch (BFS bumps its level, CC clears
    /// its changed flag, PageRank snapshots contributions).
    fn begin_iteration(&mut self) {}

    /// Capture the per-source context for vertex `v`. Called once per
    /// work item at **iteration start** (kernel construction), before any
    /// [`edge`](Self::edge) call of that iteration runs — so a launch's
    /// semantics are a pure function of the iteration-start state, which
    /// is what lets batched multi-query execution reproduce sequential
    /// results bit for bit.
    fn source_ctx(&self, v: VertexId) -> Self::Ctx;

    /// Process edge-list element `i` (`src → dst`, with the source's
    /// captured context) and report what the update did. The kernel has
    /// already emitted the destination-status gather; it emits the store
    /// (and frontier push) the returned effect asks for.
    fn edge(&mut self, i: u64, src: VertexId, dst: VertexId, ctx: Self::Ctx) -> EdgeEffect;

    /// Device-side work after a launch (before the convergence check).
    fn post_iteration(&mut self, work: &mut DeviceWork) {
        let _ = work;
    }

    /// Full-sweep convergence, checked after
    /// [`post_iteration`](Self::post_iteration). Frontier-driven programs
    /// converge by emptying their frontier instead.
    fn converged(&self) -> bool {
        true
    }

    /// Extract the result.
    fn finish(self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_work_drains_in_order() {
        let mut w = DeviceWork::default();
        w.bulk_read(64);
        w.bulk_read(128);
        assert_eq!(w.drain().collect::<Vec<_>>(), vec![64, 128]);
        assert_eq!(w.drain().count(), 0, "drained");
    }
}
