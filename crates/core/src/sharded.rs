//! Sharded multi-GPU execution: one traversal, many simulated GPUs.
//!
//! EMOGI's multi-GPU result (§5.7) is that zero-copy traversal keeps
//! scaling across GPUs because each GPU fetches only the edge-list
//! ranges its own frontier shard needs, over its **own** host link. A
//! [`ShardedEngine`] reproduces that execution model on a
//! [`DeviceGroup`]:
//!
//! * the vertex set is split into contiguous shards by an
//!   [`emogi_graph::partition`] partitioner (equal vertices, or equal
//!   edges for skew-balanced PCIe traffic);
//! * every device holds the full vertex list and status array (the
//!   paper's small device-resident structures) while the edge list
//!   stays in shared host memory, placed identically on each device's
//!   address map;
//! * per iteration, device `d` launches one kernel over the frontier
//!   vertices (or, for full sweeps, the vertex range) it owns — its
//!   PCIe link carries only those neighbour lists;
//! * between iterations the devices exchange their status updates
//!   (activated `(vertex, value)` pairs for frontier-driven programs,
//!   owned status slices for full sweeps) over the group's
//!   interconnect, then synchronize at a barrier.
//!
//! # Bit-identity
//!
//! Sharding is a *pure execution-plan change*: outputs and iteration
//! counts are identical to the single-device
//! [`Engine`](crate::engine::Engine) for any device count and either
//! partitioner, because every shipped program's
//! per-iteration semantics are a pure function of iteration-start state
//! (contexts are captured for the **whole** frontier before any shard's
//! kernel runs, BFS/SSSP updates are commutative mins, CC hooks against
//! an iteration-start snapshot, and PageRank folds its sums in
//! canonical edge order). With **one** device the machine instruction
//! stream is identical too, so outputs, iteration counts *and* every
//! per-run statistic (including hybrid transfer counters) equal the
//! single-device engine's tick for tick. `tests/sharded_differential.rs`
//! checks both properties on random graphs.
//!
//! [`DeviceGroup`]: emogi_runtime::DeviceGroup

use crate::engine::EngineConfig;
use crate::kernel::{ProgramKernel, WorkList, WorkSlice};
use crate::layout::{EdgePlacement, GraphLayout};
use crate::program::{AccessPattern, DeviceWork, VertexProgram};
use crate::strategy::{AccessMode, AccessStrategy};
use emogi_graph::{CsrGraph, PartitionStrategy, VertexId, VertexPartition};
use emogi_runtime::exec::run_kernel;
use emogi_runtime::group::{DeviceGroup, DeviceGroupConfig};
use emogi_runtime::machine::MachineConfig;
use emogi_runtime::report::RunStats;
use emogi_runtime::{PrefetchStats, Prefetcher, TransferManager, TransferStats};
use emogi_sim::interconnect::{LinkStats, PeerLinkConfig};

/// Bytes per frontier-update record exchanged between devices: a 4-byte
/// vertex id plus its 4-byte status value.
pub const FRONTIER_UPDATE_BYTES: u64 = 8;

/// Neighbour lists at least this many elements long are expanded
/// **cooperatively**: the owner keeps the vertex (status, activation,
/// scan) but the list walk is split into one line-aligned slice per
/// device. A warp walks its list serially, so an unsplit mega-hub's
/// walk would be a latency chain no amount of sharding shortens — on
/// power-law graphs that chain *is* the critical path of the busiest
/// iterations, and splitting it is what keeps multi-GPU scaling near
/// linear (single-device runs never split, preserving tick-identity
/// with [`Engine`](crate::engine::Engine)).
pub const HUB_SPLIT_DEGREE: u64 = 256;

/// How to build a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// The per-device engine configuration (platform, kernel strategy,
    /// placement, hybrid transfer); every device is identical.
    pub engine: EngineConfig,
    /// Simulated GPUs.
    pub devices: usize,
    /// How vertices are split across devices.
    pub partition: PartitionStrategy,
    /// Inter-GPU peer link for the iteration-end exchange; `None`
    /// routes exchanges through host memory over two PCIe hops.
    pub peer: Option<PeerLinkConfig>,
}

impl ShardedConfig {
    /// `devices` × the EMOGI V100 platform, degree-balanced sharding,
    /// NVLink-class peer link.
    pub fn emogi_v100(devices: usize) -> Self {
        Self {
            engine: EngineConfig::emogi_v100(),
            devices,
            partition: PartitionStrategy::DegreeBalanced,
            peer: Some(PeerLinkConfig::default()),
        }
    }

    /// Like [`emogi_v100`](Self::emogi_v100) with per-device hybrid
    /// zero-copy/DMA transfer management.
    pub fn hybrid_v100(devices: usize) -> Self {
        Self {
            engine: EngineConfig::hybrid_v100(),
            ..Self::emogi_v100(devices)
        }
    }

    /// Replace the vertex partitioner.
    pub fn with_partition(mut self, partition: PartitionStrategy) -> Self {
        self.partition = partition;
        self
    }

    /// Select a full access mode on the per-device engines.
    pub fn with_mode(mut self, mode: AccessMode) -> Self {
        self.engine = self.engine.with_mode(mode);
        self
    }

    /// Enable pipelined (overlapped DMA/kernel) execution on every
    /// device, with default prefetch settings. Inert unless the
    /// per-device engines run in hybrid mode.
    pub fn pipelined(mut self) -> Self {
        self.engine = self.engine.pipelined();
        self
    }

    /// Replace the per-device simulated platform.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.engine = self.engine.with_machine(machine);
        self
    }

    /// Set the simulated edge element size on every device.
    pub fn with_elem_bytes(mut self, bytes: u64) -> Self {
        self.engine = self.engine.with_elem_bytes(bytes);
        self
    }

    /// Route iteration-end exchanges through host memory instead of a
    /// peer link.
    pub fn without_peer(mut self) -> Self {
        self.peer = None;
        self
    }

    /// Toggle frontier access reordering on every device (see
    /// [`EngineConfig::frontier_reorder`]).
    pub fn with_frontier_reorder(mut self, on: bool) -> Self {
        self.engine = self.engine.with_frontier_reorder(on);
        self
    }
}

/// Result of one sharded program execution.
///
/// Like [`Run`](crate::engine::Run), `ShardedRun` derefs to the
/// program's output.
#[derive(Debug, Clone)]
pub struct ShardedRun<O> {
    /// The program's output (levels, distances, labels, ranks, ...) —
    /// bit-identical to a single-device run.
    pub output: O,
    /// Group-level totals: elapsed time is the barrier-aligned wall
    /// clock (max over devices), traffic counters sum across links, and
    /// `kernel_launches` is the *logical* launch-wave count (equal to
    /// [`iterations`](Self::iterations), hence directly comparable with
    /// a single-device run's launch count).
    pub stats: RunStats,
    /// Per-device measurements, index = device id.
    pub per_device: Vec<RunStats>,
    /// Inter-device exchange traffic of this run (all lanes summed;
    /// zero for a single device).
    pub exchange: LinkStats,
    /// Synchronous iterations executed (kernel launches *per device
    /// with work*; equals the single-device engine's launch count).
    pub iterations: u64,
}

impl<O> std::ops::Deref for ShardedRun<O> {
    type Target = O;

    fn deref(&self) -> &O {
        &self.output
    }
}

/// A graph placed on every device of a group, ready to run any
/// [`VertexProgram`] sharded.
///
/// ```
/// use emogi_core::sharded::{ShardedConfig, ShardedEngine};
/// use emogi_graph::{algo, generators};
///
/// let graph = generators::kronecker(9, 8, 21);
/// let mut sharded = ShardedEngine::load(ShardedConfig::emogi_v100(2), &graph);
/// let run = sharded.bfs(1);
/// assert_eq!(run.levels, algo::bfs_levels(&graph, 1));
/// assert_eq!(run.per_device.len(), 2);
/// assert!(run.exchange.bytes > 0, "devices exchanged frontier updates");
/// ```
pub struct ShardedEngine<'g> {
    /// The device group (machines + interconnect) the shards run on.
    pub group: DeviceGroup,
    graph: &'g CsrGraph,
    /// Per-device placements; identical bases on every device.
    layouts: Vec<GraphLayout>,
    /// Per-device hybrid transfer managers (hybrid mode only).
    transfers: Vec<Option<TransferManager>>,
    /// Per-device speculative prefetchers (pipelined hybrid mode only);
    /// each device overlaps its own copy lane with its own kernels.
    prefetchers: Vec<Option<Prefetcher>>,
    partition: VertexPartition,
    strategy: AccessStrategy,
    placement: EdgePlacement,
    /// Frontier access reordering: segment size each device sorts its
    /// work slices by, or `None` when the knob is off.
    reorder_segment: Option<u64>,
}

impl<'g> ShardedEngine<'g> {
    /// Place `graph` on `cfg.devices` machines and partition its vertex
    /// set. Each device gets the same layout a single-device
    /// [`Engine`](crate::engine::Engine) would build.
    pub fn load(cfg: ShardedConfig, graph: &'g CsrGraph) -> Self {
        let partition = cfg.partition.partition(graph, cfg.devices);
        let reorder_segment = cfg
            .engine
            .frontier_reorder
            .then_some(cfg.engine.machine.gpu.cache.capacity_bytes);
        let mut group = DeviceGroup::new(DeviceGroupConfig {
            devices: cfg.devices,
            machine: cfg.engine.machine.clone(),
            peer: cfg.peer,
        });
        let mut layouts = Vec::with_capacity(cfg.devices);
        let mut transfers = Vec::with_capacity(cfg.devices);
        let mut prefetchers = Vec::with_capacity(cfg.devices);
        for m in &mut group.machines {
            let layout =
                GraphLayout::place(m, graph, cfg.engine.elem_bytes, cfg.engine.placement, false);
            let transfer = crate::engine::build_transfer(
                m,
                graph,
                cfg.engine.elem_bytes,
                cfg.engine.placement,
                &layout,
                cfg.engine.transfer.clone(),
            );
            let prefetcher =
                crate::engine::build_prefetcher(m, transfer.as_ref(), cfg.engine.pipeline.clone());
            layouts.push(layout);
            transfers.push(transfer);
            prefetchers.push(prefetcher);
        }
        Self {
            group,
            graph,
            layouts,
            transfers,
            prefetchers,
            partition,
            strategy: cfg.engine.strategy,
            placement: cfg.engine.placement,
            reorder_segment,
        }
    }

    /// The placed graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Devices in the group.
    pub fn num_devices(&self) -> usize {
        self.group.num_devices()
    }

    /// Aggregate host-link payload bandwidth across the device group,
    /// bytes per simulated nanosecond: every device fetches over its
    /// own link, so the group's effective bandwidth is the per-device
    /// usable rate times the device count. The serving layer's
    /// cost-model admission uses this like
    /// [`Engine::link_bytes_per_ns`](crate::Engine::link_bytes_per_ns).
    pub fn link_bytes_per_ns(&self) -> f64 {
        let per_device = self
            .group
            .machines
            .first()
            .map(|m| m.cfg.pcie.usable_gbps())
            .unwrap_or(0.0);
        per_device * self.group.num_devices() as f64
    }

    /// The vertex partition shards are derived from.
    pub fn partition(&self) -> &VertexPartition {
        &self.partition
    }

    /// Place the auxiliary 4-byte-per-edge data array on device `d`, if
    /// not already placed (the same shared helper the single-device
    /// engine uses).
    fn ensure_edge_data(&mut self, d: usize) {
        crate::engine::ensure_edge_data(
            &mut self.group.machines[d],
            &mut self.layouts[d],
            self.graph,
            self.placement,
        );
    }

    /// Device-side active-vertex scan on device `d` before its launch
    /// (each device scans its own full status array, like the
    /// single-device engine).
    fn charge_vertex_scan(&mut self, d: usize) {
        crate::engine::charge_vertex_scan(&mut self.group.machines[d], self.graph.num_vertices());
    }

    /// Hybrid planning on device `d` before a frontier-driven launch:
    /// the device's work items predict exactly the edge-list byte
    /// ranges its kernel will read.
    fn plan_transfers_slices(&mut self, d: usize, items: &[WorkSlice]) {
        let Some(tm) = self.transfers[d].as_mut() else {
            return;
        };
        let elem = self.layouts[d].elem_bytes;
        let machine = &mut self.group.machines[d];
        let ranges = items.iter().map(|&(_, lo, hi)| (lo * elem, hi * elem));
        let changed = match self.prefetchers[d].as_mut() {
            Some(p) => tm.plan_iteration_pipelined(machine, ranges, p),
            None => tm.plan_iteration(machine, ranges),
        };
        if changed {
            self.layouts[d].staged_edges = Some(tm.region_map());
        }
        // Double-buffering, per device: the device's copy lane streams
        // next iteration's predicted regions while this iteration's
        // kernel computes.
        if let Some(p) = self.prefetchers[d].as_mut() {
            tm.prefetch_for_next(self.group.machines[d].now, p);
        }
    }

    /// Hybrid planning on device `d` before a full-sweep launch: the
    /// device reads its whole owned edge-list range.
    fn plan_transfers_sweep(&mut self, d: usize) {
        let Some(tm) = self.transfers[d].as_mut() else {
            return;
        };
        let elem = self.layouts[d].elem_bytes;
        let r = self.partition.range(d);
        let range = if r.is_empty() {
            (0, 0)
        } else {
            (
                self.graph.neighbor_start(r.start) * elem,
                self.graph.neighbor_end(r.end - 1) * elem,
            )
        };
        let machine = &mut self.group.machines[d];
        let ranges = std::iter::once(range);
        let changed = match self.prefetchers[d].as_mut() {
            Some(p) => tm.plan_iteration_pipelined(machine, ranges, p),
            None => tm.plan_iteration(machine, ranges),
        };
        if changed {
            self.layouts[d].staged_edges = Some(tm.region_map());
        }
        // Double-buffering, per device (see `plan_transfers_slices`).
        if let Some(p) = self.prefetchers[d].as_mut() {
            tm.prefetch_for_next(self.group.machines[d].now, p);
        }
    }

    /// Build the per-device work lists for one frontier iteration:
    /// every owned vertex becomes one work item on its owner, except
    /// mega-hubs ([`HUB_SPLIT_DEGREE`]) whose lists are split into one
    /// line-aligned slice per device (the owner keeps the first slice).
    /// With a single device nothing ever splits, so the work list is
    /// exactly the frontier.
    fn build_work_items(
        &self,
        frontier: &[VertexId],
        bounds: &[(usize, usize)],
        items: &mut [Vec<WorkSlice>],
    ) {
        let ndev = items.len();
        let line = self.layouts[0].elems_per_line();
        for it in items.iter_mut() {
            it.clear();
        }
        for (d, &(lo, hi)) in bounds.iter().enumerate() {
            for &v in &frontier[lo..hi] {
                let (s, e) = (self.graph.neighbor_start(v), self.graph.neighbor_end(v));
                let deg = e - s;
                if ndev > 1 && deg >= HUB_SPLIT_DEGREE {
                    let chunk = deg.div_ceil(ndev as u64).div_ceil(line) * line;
                    let mut start = s;
                    let mut k = 0usize;
                    while start < e {
                        let end = (start + chunk).min(e);
                        items[(d + k) % ndev].push((v, start, end));
                        start = end;
                        k += 1;
                    }
                } else {
                    items[d].push((v, s, e));
                }
            }
        }
    }

    /// Charge the program's inter-launch device-side work. The work is
    /// semantic once (the program state updates a single time) but every
    /// device performs it on its own copy of the arrays, so each machine
    /// is charged the same bulk sweeps.
    fn apply_device_work<P: VertexProgram>(&mut self, program: &mut P, work: &mut DeviceWork) {
        program.post_iteration(work);
        let bytes: Vec<u64> = work.drain().collect();
        for m in &mut self.group.machines {
            for &b in &bytes {
                m.now = m.hbm.read_bulk(m.now, b);
            }
        }
    }

    /// Run `program` to convergence across all shards. One synchronous
    /// iteration = one kernel launch on every device that has work this
    /// iteration, followed by the inter-device update exchange and a
    /// barrier.
    pub fn run<P: VertexProgram>(&mut self, mut program: P) -> ShardedRun<P::Output> {
        let ndev = self.group.num_devices();
        if program.uses_edge_data() {
            for d in 0..ndev {
                self.ensure_edge_data(d);
            }
        }
        let snaps = self.group.snapshots();
        let transfer_bases: Vec<Option<TransferStats>> = self
            .transfers
            .iter()
            .map(|t| t.as_ref().map(|t| t.stats))
            .collect();
        let prefetch_bases: Vec<Option<PrefetchStats>> = self
            .prefetchers
            .iter()
            .map(|p| p.as_ref().map(|p| p.stats))
            .collect();
        let exchange_base = self.group.interconnect.totals();
        let pattern = program.pattern();
        let mut launches = vec![0u64; ndev];
        let mut iterations = 0u64;
        let mut work = DeviceWork::default();
        match pattern {
            AccessPattern::FrontierDriven => {
                let mut frontier = program.initial_frontier();
                frontier.sort_unstable();
                frontier.dedup();
                let mut next: Vec<Vec<VertexId>> = vec![Vec::new(); ndev];
                let mut items: Vec<Vec<WorkSlice>> = vec![Vec::new(); ndev];
                while !frontier.is_empty() {
                    iterations += 1;
                    // Idle shards produce no activations this iteration.
                    for nd in &mut next {
                        nd.clear();
                    }
                    let bounds = self.partition.slice_bounds(&frontier);
                    self.build_work_items(&frontier, &bounds, &mut items);
                    // Reorder each device's slices, never the frontier
                    // itself — `slice_bounds` needs it sorted.
                    if let Some(seg) = self.reorder_segment {
                        for (d, it) in items.iter_mut().enumerate() {
                            crate::reorder::reorder_slices(&self.layouts[d], it, seg);
                        }
                    }
                    for (d, it) in items.iter().enumerate() {
                        if !it.is_empty() {
                            self.charge_vertex_scan(d);
                            self.plan_transfers_slices(d, it);
                        }
                    }
                    program.begin_iteration();
                    // Capture every device's contexts before any
                    // shard's kernel runs — iteration-start state must
                    // not depend on shard execution order.
                    let ctxs: Vec<Vec<P::Ctx>> = items
                        .iter()
                        .map(|it| it.iter().map(|&(v, _, _)| program.source_ctx(v)).collect())
                        .collect();
                    for (d, ctx_vec) in ctxs.into_iter().enumerate() {
                        if items[d].is_empty() {
                            continue;
                        }
                        let mut kernel = ProgramKernel::with_ctxs(
                            self.graph,
                            &self.layouts[d],
                            self.strategy,
                            &mut program,
                            WorkList::Slices(&items[d]),
                            ctx_vec,
                            &mut next[d],
                        );
                        run_kernel(&mut self.group.machines[d], &mut kernel);
                        launches[d] += 1;
                    }
                    self.apply_device_work(&mut program, &mut work);
                    // Every device broadcasts the (vertex, value) pairs
                    // it activated; remote activations join their
                    // owners' next shards, and every device's status
                    // copy stays coherent.
                    let mut update_bytes = vec![0u64; ndev];
                    for (d, nd) in next.iter_mut().enumerate() {
                        nd.sort_unstable();
                        nd.dedup();
                        update_bytes[d] = nd.len() as u64 * FRONTIER_UPDATE_BYTES;
                    }
                    if ndev > 1 {
                        self.group.exchange(&update_bytes);
                    }
                    frontier.clear();
                    for nd in &next {
                        frontier.extend_from_slice(nd);
                    }
                    frontier.sort_unstable();
                    frontier.dedup();
                }
            }
            AccessPattern::FullSweep => {
                let n = self.graph.num_vertices() as u32;
                let mut sink: Vec<VertexId> = Vec::new();
                // Full sweeps update owned entries (CC) or reduce into
                // owners (PageRank): each device allgathers its owned
                // status slice after every sweep.
                let sweep_bytes: Vec<u64> = (0..ndev)
                    .map(|d| self.partition.range(d).len() as u64 * 4)
                    .collect();
                loop {
                    iterations += 1;
                    for d in 0..ndev {
                        if !self.partition.range(d).is_empty() {
                            self.charge_vertex_scan(d);
                            self.plan_transfers_sweep(d);
                        }
                    }
                    program.begin_iteration();
                    let ctxs: Vec<P::Ctx> = (0..n).map(|v| program.source_ctx(v)).collect();
                    for (d, launched) in launches.iter_mut().enumerate() {
                        let r = self.partition.range(d);
                        if r.is_empty() {
                            continue;
                        }
                        sink.clear();
                        let mut kernel = ProgramKernel::with_ctxs(
                            self.graph,
                            &self.layouts[d],
                            self.strategy,
                            &mut program,
                            WorkList::Range(r.start, r.end),
                            ctxs[r.start as usize..r.end as usize].to_vec(),
                            &mut sink,
                        );
                        run_kernel(&mut self.group.machines[d], &mut kernel);
                        *launched += 1;
                    }
                    self.apply_device_work(&mut program, &mut work);
                    if ndev > 1 {
                        self.group.exchange(&sweep_bytes);
                    }
                    if program.converged() {
                        break;
                    }
                }
            }
        }
        let mut per_device = self.group.finish_run(&snaps, &launches);
        for (d, stats) in per_device.iter_mut().enumerate() {
            if let (Some(tm), Some(base)) = (&self.transfers[d], transfer_bases[d]) {
                stats.transfer = tm.stats - base;
            }
            if let (Some(pf), Some(base)) = (&self.prefetchers[d], prefetch_bases[d]) {
                stats.prefetch = pf.stats - base;
            }
        }
        let mut stats = RunStats::aggregate_concurrent(&per_device);
        // The group-level launch count is the *logical* one: each
        // synchronous iteration is one launch wave, however many devices
        // participated — so `stats.kernel_launches` compares directly
        // with a single-device run's (physical per-device launches stay
        // in `per_device`).
        stats.kernel_launches = iterations;
        let exchange = self.group.interconnect.totals() - exchange_base;
        ShardedRun {
            output: program.finish(),
            stats,
            per_device,
            exchange,
            iterations,
        }
    }

    /// Sharded BFS from `src`.
    pub fn bfs(&mut self, src: VertexId) -> ShardedRun<crate::bfs::BfsOutput> {
        self.run(crate::bfs::BfsProgram::new(self.graph, src))
    }

    /// Sharded SSSP from `src` with per-edge `weights`.
    pub fn sssp(&mut self, weights: &[u32], src: VertexId) -> ShardedRun<crate::sssp::SsspOutput> {
        self.run(crate::sssp::SsspProgram::new(self.graph, weights, src))
    }

    /// Sharded CC.
    pub fn cc(&mut self) -> ShardedRun<crate::cc::CcOutput> {
        self.run(crate::cc::CcProgram::new(self.graph))
    }

    /// Sharded PageRank.
    pub fn pagerank(
        &mut self,
        damping: f64,
        iterations: u32,
    ) -> ShardedRun<crate::pagerank::PageRankOutput> {
        self.run(crate::pagerank::PageRankProgram::new(
            self.graph, damping, iterations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use emogi_graph::datasets::generate_weights;
    use emogi_graph::{algo, generators};

    fn sharded_cfg(devices: usize, mode: AccessMode) -> ShardedConfig {
        ShardedConfig::emogi_v100(devices).with_mode(mode)
    }

    #[test]
    fn one_device_sharded_runs_are_tick_identical_to_the_engine() {
        // The acceptance bar: outputs, iteration counts AND stats
        // (including hybrid transfer counters) must equal the
        // single-device engine exactly.
        let g = generators::kronecker(9, 8, 21);
        let w = generate_weights(g.num_edges(), 21);
        for mode in [AccessMode::MergedAligned, AccessMode::Hybrid] {
            let mut solo = Engine::load(EngineConfig::emogi_v100().with_mode(mode), &g);
            let mut shard = ShardedEngine::load(sharded_cfg(1, mode), &g);

            let (sr, dr) = (solo.bfs(1), shard.bfs(1));
            assert_eq!(dr.levels, sr.levels, "{mode:?} bfs output");
            assert_eq!(dr.iterations, sr.stats.kernel_launches);
            assert_eq!(dr.per_device[0], sr.stats, "{mode:?} bfs stats");

            let (sr, dr) = (solo.sssp(&w, 1), shard.sssp(&w, 1));
            assert_eq!(dr.dist, sr.dist, "{mode:?} sssp output");
            assert_eq!(dr.per_device[0], sr.stats, "{mode:?} sssp stats");

            let (sr, dr) = (solo.cc(), shard.cc());
            assert_eq!(dr.comp, sr.comp, "{mode:?} cc output");
            assert_eq!(dr.hook_passes, sr.hook_passes);
            assert_eq!(dr.per_device[0], sr.stats, "{mode:?} cc stats");

            let (sr, dr) = (solo.pagerank(0.85, 8), shard.pagerank(0.85, 8));
            assert_eq!(dr.ranks, sr.ranks, "{mode:?} pagerank output");
            assert_eq!(dr.per_device[0], sr.stats, "{mode:?} pagerank stats");

            assert_eq!(dr.exchange, LinkStats::default(), "no peers, no bytes");
        }
    }

    #[test]
    fn multi_device_outputs_match_references_for_both_partitioners() {
        let g = generators::kronecker(9, 8, 7);
        let w = generate_weights(g.num_edges(), 7);
        let want_bfs = algo::bfs_levels(&g, 3);
        let want_sssp = algo::sssp_distances(&g, &w, 3);
        let want_cc = algo::cc_labels(&g);
        for devices in [2usize, 4] {
            for partition in PartitionStrategy::all() {
                let cfg = sharded_cfg(devices, AccessMode::MergedAligned).with_partition(partition);
                let mut e = ShardedEngine::load(cfg, &g);
                let tag = format!("{devices} devices / {partition:?}");
                assert_eq!(e.bfs(3).levels, want_bfs, "{tag} bfs");
                let dist = e.sssp(&w, 3);
                for (v, &want) in want_sssp.iter().enumerate() {
                    let got = if dist.dist[v] == crate::sssp::INF {
                        algo::UNREACHABLE
                    } else {
                        u64::from(dist.dist[v])
                    };
                    assert_eq!(got, want, "{tag} sssp vertex {v}");
                }
                assert_eq!(e.cc().comp, want_cc, "{tag} cc");
                let pr = e.pagerank(0.85, 8);
                let want_pr = algo::pagerank(&g, 0.85, 8);
                assert_eq!(pr.ranks, want_pr, "{tag} pagerank is bit-exact");
            }
        }
    }

    #[test]
    fn multi_device_iteration_counts_match_the_engine() {
        let g = generators::kronecker(9, 8, 3);
        let mut solo = Engine::load(EngineConfig::emogi_v100(), &g);
        let solo_bfs = solo.bfs(0);
        let solo_cc = solo.cc();
        for devices in [2usize, 4] {
            let mut e = ShardedEngine::load(sharded_cfg(devices, AccessMode::MergedAligned), &g);
            assert_eq!(e.bfs(0).iterations, solo_bfs.stats.kernel_launches);
            assert_eq!(e.cc().iterations, solo_cc.stats.kernel_launches);
        }
    }

    #[test]
    fn devices_exchange_updates_and_split_the_pcie_traffic() {
        let g = generators::kronecker(10, 8, 5);
        let mut solo = ShardedEngine::load(sharded_cfg(1, AccessMode::MergedAligned), &g);
        let mut duo = ShardedEngine::load(sharded_cfg(2, AccessMode::MergedAligned), &g);
        let r1 = solo.bfs(0);
        let r2 = duo.bfs(0);
        assert_eq!(r2.levels, r1.levels);
        assert!(r2.exchange.bytes > 0, "frontier updates must cross links");
        assert!(r2.exchange.transfers > 0);
        // Each device reads roughly its shard's share of the edge list.
        let total: u64 = r2.per_device.iter().map(|s| s.host_bytes).sum();
        let max = r2.per_device.iter().map(|s| s.host_bytes).max().unwrap();
        assert!(
            max < total,
            "both devices must carry part of the traffic: {:?}",
            r2.per_device
                .iter()
                .map(|s| s.host_bytes)
                .collect::<Vec<_>>()
        );
        // And the barrier-aligned wall clock beats the single device.
        assert!(
            r2.stats.elapsed_ns < r1.stats.elapsed_ns,
            "2 devices {} must beat 1 device {}",
            r2.stats.elapsed_ns,
            r1.stats.elapsed_ns
        );
    }

    #[test]
    fn hybrid_sharded_runs_stage_per_device_and_stay_correct() {
        let g = generators::lognormal_dense(800, 60.0, 0.5, 16, 5);
        let mut cfg = sharded_cfg(2, AccessMode::Hybrid);
        cfg.engine.machine.gpu.cache.capacity_bytes = 64 << 10;
        let mut e = ShardedEngine::load(cfg, &g);
        let run = e.cc();
        assert_eq!(run.comp, algo::cc_labels(&g));
        for (d, s) in run.per_device.iter().enumerate() {
            assert!(
                s.transfer.staged_regions > 0,
                "device {d} full sweep must stage its owned range"
            );
        }
    }

    #[test]
    fn empty_shards_are_skipped_not_launched() {
        // More devices than vertices: trailing shards own nothing and
        // must not launch kernels.
        let g = generators::uniform_random(3, 2, 1);
        let mut e = ShardedEngine::load(sharded_cfg(8, AccessMode::MergedAligned), &g);
        let run = e.bfs(0);
        assert_eq!(run.levels, algo::bfs_levels(&g, 0));
        let launched: u64 = run.per_device.iter().map(|s| s.kernel_launches).sum();
        assert!(launched > 0);
        assert!(
            run.per_device.iter().any(|s| s.kernel_launches == 0),
            "empty shards must stay idle"
        );
    }
}
