//! The §3.3 toy experiment: traverse a 1D array in zero-copy memory and
//! copy it to GPU global memory, under three access arrangements
//! (Figure 3), plus the UVM and `cudaMemcpy` references of Figure 4.
//!
//! 4-byte elements as in Figure 3: a warp window is exactly one 128-byte
//! line, so the misaligned variant produces the paper's 96 + 32 pattern.

use emogi_gpu::access::{AccessBatch, Space, WARP_SIZE};
use emogi_runtime::exec::run_kernel;
use emogi_runtime::report::RunStats;
use emogi_runtime::{Kernel, Machine, StepOutcome};

const ELEM: u64 = 4;
/// Elements per 128-byte block.
const BLOCK_ELEMS: u64 = 128 / ELEM;

/// The three §3.3 access patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToyPattern {
    /// Each thread iterates over its own 128-byte block (Figure 3a).
    Strided,
    /// Warp-contiguous, 128-byte aligned (Figure 3b).
    MergedAligned,
    /// Warp-contiguous, shifted 32 bytes off alignment (Figure 3c).
    MergedMisaligned,
}

impl ToyPattern {
    /// Every pattern, in Figure 3 order.
    pub fn all() -> [ToyPattern; 3] {
        [
            ToyPattern::Strided,
            ToyPattern::MergedAligned,
            ToyPattern::MergedMisaligned,
        ]
    }

    /// The Figure 3/4 label of this pattern.
    pub fn name(self) -> &'static str {
        match self {
            ToyPattern::Strided => "Strided",
            ToyPattern::MergedAligned => "Merged and Aligned",
            ToyPattern::MergedMisaligned => "Merged but Misaligned",
        }
    }
}

/// Copy kernel: read `array_bytes` from `src_space` and store to device.
struct ToyKernel {
    pattern: ToyPattern,
    src_base: u64,
    dst_base: u64,
    array_bytes: u64,
    src_space: Space,
    /// Work distribution cursor (bytes).
    cursor: u64,
    /// Work granularity per task, bytes.
    task_bytes: u64,
}

enum ToyTask {
    /// Strided: 32 lanes each own a block; `step` elements consumed.
    Strided { base: u64, step: u64 },
    /// Merged: warp sweeps `[cursor, end)` 128 bytes per step.
    Merged { cursor: u64, end: u64 },
}

impl Kernel for ToyKernel {
    type Task = ToyTask;

    fn next_task(&mut self) -> Option<ToyTask> {
        if self.cursor >= self.array_bytes {
            return None;
        }
        let base = self.cursor;
        let end = (base + self.task_bytes).min(self.array_bytes);
        self.cursor = end;
        Some(match self.pattern {
            ToyPattern::Strided => ToyTask::Strided { base, step: 0 },
            ToyPattern::MergedAligned | ToyPattern::MergedMisaligned => {
                ToyTask::Merged { cursor: base, end }
            }
        })
    }

    fn step(&mut self, task: &mut ToyTask, batch: &mut AccessBatch) -> StepOutcome {
        match task {
            ToyTask::Strided { base, step } => {
                // Lane i owns block i; element `step` of each block.
                for lane in 0..WARP_SIZE as u64 {
                    let addr = self.src_base + *base + lane * 128 + *step * ELEM;
                    if addr < self.src_base + self.array_bytes {
                        batch.load(addr, ELEM as u8, self.src_space);
                        batch.store(
                            self.dst_base + *base + lane * 128 + *step * ELEM,
                            ELEM as u8,
                            Space::Device,
                        );
                    }
                }
                *step += 1;
                if *step >= BLOCK_ELEMS {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            ToyTask::Merged { cursor, end } => {
                let shift = if self.pattern == ToyPattern::MergedMisaligned {
                    32
                } else {
                    0
                };
                for lane in 0..WARP_SIZE as u64 {
                    let off = *cursor + lane * ELEM;
                    if off < *end {
                        let addr = self.src_base + shift + off;
                        if addr < self.src_base + self.array_bytes {
                            batch.load(addr, ELEM as u8, self.src_space);
                        }
                        batch.store(self.dst_base + off, ELEM as u8, Space::Device);
                    }
                }
                *cursor += WARP_SIZE as u64 * ELEM;
                if *cursor >= *end {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
        }
    }
}

/// Measured outcome of one toy run (one bar group of Figure 4).
#[derive(Debug, Clone)]
pub struct ToyRun {
    /// The pattern's Figure 4 label.
    pub label: &'static str,
    /// Average host→GPU payload bandwidth (Figure 4's "PCIe" number).
    pub pcie_gbps: f64,
    /// Host DRAM read bandwidth (Figure 4's "DRAM" number).
    pub dram_gbps: f64,
    /// Host→GPU bandwidth over time, (window start ns, GB/s) — the
    /// VTune-style trace of Figure 4.
    pub series: Vec<(u64, f64)>,
    /// The run's full measurements.
    pub stats: RunStats,
}

/// Run one zero-copy toy pattern over a fresh machine.
pub fn run_zero_copy(
    machine_cfg: emogi_runtime::MachineConfig,
    pattern: ToyPattern,
    array_bytes: u64,
) -> ToyRun {
    let mut m = Machine::new(machine_cfg);
    // Reserve a misalignment shift's worth of slack at the end.
    let src = m.alloc_host_pinned(array_bytes + 128);
    let dst = m.alloc_device(array_bytes.min(m.spaces.device_capacity() / 2));
    let mut kernel = ToyKernel {
        pattern,
        src_base: src,
        dst_base: dst,
        array_bytes,
        src_space: Space::HostPinned,
        cursor: 0,
        // One task covers 32 blocks (strided) or a 4 KiB sweep (merged):
        // either way 4 KiB of work per task.
        task_bytes: 4096,
    };
    let snap = m.snapshot();
    run_kernel(&mut m, &mut kernel);
    let stats = m.finish_run(&snap, 1);
    ToyRun {
        label: pattern.name(),
        pcie_gbps: stats.avg_pcie_gbps,
        dram_gbps: stats.host_dram_bytes as f64 / stats.elapsed_ns as f64,
        series: m.monitor.series.samples().collect(),
        stats,
    }
}

/// The UVM reference of Figure 4: same merged sweep, but the array lives
/// in managed memory and arrives via page migration.
pub fn run_uvm_reference(machine_cfg: emogi_runtime::MachineConfig, array_bytes: u64) -> ToyRun {
    let mut m = Machine::new(machine_cfg);
    let src = m.alloc_managed(array_bytes + 128);
    let dst = m.alloc_device(array_bytes.min(m.spaces.device_capacity() / 2));
    let mut kernel = ToyKernel {
        pattern: ToyPattern::MergedAligned,
        src_base: src,
        dst_base: dst,
        array_bytes,
        src_space: Space::Managed,
        cursor: 0,
        task_bytes: 4096,
    };
    let snap = m.snapshot();
    run_kernel(&mut m, &mut kernel);
    let stats = m.finish_run(&snap, 1);
    ToyRun {
        label: "UVM",
        pcie_gbps: stats.avg_pcie_gbps,
        dram_gbps: stats.host_dram_bytes as f64 / stats.elapsed_ns as f64,
        series: m.monitor.series.samples().collect(),
        stats,
    }
}

/// The `cudaMemcpy` peak reference (Figure 8's dashed line).
pub fn run_memcpy_reference(machine_cfg: emogi_runtime::MachineConfig, array_bytes: u64) -> f64 {
    let mut m = Machine::new(machine_cfg);
    let t0 = m.now;
    m.memcpy_to_device(array_bytes);
    array_bytes as f64 / (m.now - t0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_runtime::MachineConfig;

    const MIB: u64 = 1 << 20;

    #[test]
    fn strided_pattern_is_all_32_byte_requests() {
        let r = run_zero_copy(MachineConfig::v100_gen3(), ToyPattern::Strided, 2 * MIB);
        assert!(
            r.stats.request_sizes.fraction(32) > 0.99,
            "{:?}",
            r.stats.request_sizes
        );
    }

    #[test]
    fn aligned_pattern_is_all_128_byte_requests() {
        let r = run_zero_copy(
            MachineConfig::v100_gen3(),
            ToyPattern::MergedAligned,
            2 * MIB,
        );
        assert!(r.stats.request_sizes.fraction(128) > 0.99);
    }

    #[test]
    fn misaligned_pattern_is_96_plus_32() {
        let r = run_zero_copy(
            MachineConfig::v100_gen3(),
            ToyPattern::MergedMisaligned,
            2 * MIB,
        );
        let h = &r.stats.request_sizes;
        assert!(h.fraction(96) > 0.45, "{h:?}");
        assert!(h.fraction(32) > 0.45, "{h:?}");
    }

    #[test]
    fn bandwidth_ordering_matches_figure4() {
        // Strided ≪ misaligned < aligned; exact bands asserted in the
        // (release-mode) calibration suite.
        let cfg = MachineConfig::v100_gen3;
        let strided = run_zero_copy(cfg(), ToyPattern::Strided, 2 * MIB);
        let misaligned = run_zero_copy(cfg(), ToyPattern::MergedMisaligned, 2 * MIB);
        let aligned = run_zero_copy(cfg(), ToyPattern::MergedAligned, 2 * MIB);
        assert!(strided.pcie_gbps < misaligned.pcie_gbps);
        assert!(misaligned.pcie_gbps < aligned.pcie_gbps);
        // Strided doubles DRAM traffic relative to PCIe (64 B words for
        // 32 B requests).
        let ratio = strided.dram_gbps / strided.pcie_gbps;
        assert!((1.8..2.2).contains(&ratio), "DRAM/PCIe ratio {ratio}");
    }

    #[test]
    fn uvm_reference_migrates_pages() {
        let r = run_uvm_reference(MachineConfig::v100_gen3(), 2 * MIB);
        assert!(r.stats.pages_migrated >= 512);
        assert!(r.stats.pcie_read_requests == 0);
        assert!(r.pcie_gbps > 0.0);
    }

    #[test]
    fn memcpy_reference_hits_measured_peak() {
        let gbps = run_memcpy_reference(MachineConfig::v100_gen3(), 64 * MIB);
        assert!((11.9..12.7).contains(&gbps), "memcpy peak {gbps}");
    }
}
