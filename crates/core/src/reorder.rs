//! Frontier access reordering: sort each iteration's work by the cache
//! segment its edge-region read starts in.
//!
//! Inspired by in-advance reordering (IAR) schemes for irregular GPU
//! workloads: when the frontier is processed in vertex-id order, warps
//! jump between distant edge-list regions and their dst-status gathers
//! scatter across the L2. Sorting the iteration's work items by the
//! cache segment of their first edge-list access groups warps whose
//! reads share lines, so sectors fetched by one warp are still resident
//! when its neighbours in launch order touch them.
//!
//! # Determinism
//!
//! Reordering happens in the *driver loop*, before kernel construction,
//! and is a pure function of iteration-start state: the frontier (or
//! merged batch union, or per-device slice list), the immutable
//! [`GraphLayout`] and a fixed segment size. [`segment_key`] is the
//! kernel-purity hook emogi-lint audits — its body may read only the
//! layout's address arithmetic, never live machine state, so the sort
//! order cannot depend on how previous warps interleaved. Because every
//! shipped [`VertexProgram`](crate::program::VertexProgram) commutes
//! over edge-visit order within an iteration (first-discovery BFS,
//! min-fold SSSP/CC, value-sorted PageRank reduction), outputs and
//! iteration counts are bit-identical with the stage on or off; only
//! traffic statistics move. `tests/layout_differential.rs` asserts
//! exactly that.

use crate::layout::GraphLayout;
use emogi_graph::{CsrGraph, VertexId};

/// Sort key of an edge-region access that begins at edge-list element
/// `start`: the cache segment the first byte lands in, then the exact
/// address within it. A pure function of the immutable layout — the
/// kernel-purity contract for this module (see `emogi-lint.toml`).
#[inline]
pub fn segment_key(layout: &GraphLayout, start: u64, segment_bytes: u64) -> (u64, u64) {
    let addr = layout.edge_addr(start);
    (addr / segment_bytes.max(1), addr)
}

/// Sort a frontier by the cache segment of each vertex's neighbour-list
/// start, ties broken by address then vertex id. Call at the top of an
/// iteration, before kernel construction.
pub fn reorder_frontier(
    layout: &GraphLayout,
    graph: &CsrGraph,
    frontier: &mut [VertexId],
    segment_bytes: u64,
) {
    frontier.sort_by_key(|&v| {
        let (seg, addr) = segment_key(layout, graph.neighbor_start(v), segment_bytes);
        (seg, addr, v)
    });
}

/// Lockstep variant for batched execution: permute the merged frontier
/// `union` and its per-vertex membership `masks` together, preserving
/// the `union[i] ↔ masks[i]` pairing the [`BatchKernel`](crate::batch::BatchKernel)
/// relies on.
pub fn reorder_union(
    layout: &GraphLayout,
    graph: &CsrGraph,
    union: &mut Vec<VertexId>,
    masks: &mut Vec<u64>,
    segment_bytes: u64,
) {
    debug_assert_eq!(union.len(), masks.len(), "one mask per union vertex");
    let mut order: Vec<usize> = (0..union.len()).collect();
    order.sort_by_key(|&i| {
        let v = union[i];
        let (seg, addr) = segment_key(layout, graph.neighbor_start(v), segment_bytes);
        (seg, addr, v)
    });
    let permuted_union: Vec<VertexId> = order.iter().map(|&i| union[i]).collect();
    let permuted_masks: Vec<u64> = order.iter().map(|&i| masks[i]).collect();
    *union = permuted_union;
    *masks = permuted_masks;
}

/// Sharded variant: sort one device's work slices `(vertex, lo, hi)` by
/// the cache segment of each slice's first edge-list element. Hub
/// splitting can hand a device several slices of one vertex; the
/// per-slice `lo` keeps those distinct and address-ordered.
pub fn reorder_slices(
    layout: &GraphLayout,
    items: &mut [(VertexId, u64, u64)],
    segment_bytes: u64,
) {
    items.sort_by_key(|&(v, lo, _)| {
        let (seg, addr) = segment_key(layout, lo, segment_bytes);
        (seg, addr, v, lo)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgePlacement;
    use emogi_graph::generators;
    use emogi_runtime::machine::MachineConfig;
    use emogi_runtime::Machine;

    fn layout_for(graph: &emogi_graph::CsrGraph) -> GraphLayout {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        GraphLayout::place(&mut m, graph, 8, EdgePlacement::ZeroCopyHost, false)
    }

    #[test]
    fn segment_key_groups_by_segment_then_address() {
        let g = generators::uniform_random(64, 4, 9);
        let l = layout_for(&g);
        let a = segment_key(&l, 0, 4096);
        let b = segment_key(&l, 1, 4096);
        assert_eq!(a.0, b.0, "adjacent elements share a 4 KiB segment");
        assert!(b.1 > a.1, "address breaks the tie");
        let far = segment_key(&l, 4096, 4096);
        assert!(far.0 > a.0, "distant element lands in a later segment");
    }

    #[test]
    fn segment_key_survives_zero_segment() {
        let g = generators::uniform_random(8, 2, 1);
        let l = layout_for(&g);
        // max(1) guards the division; the key degenerates to plain address order.
        let k = segment_key(&l, 3, 0);
        assert_eq!(k.0, l.edge_addr(3));
    }

    #[test]
    fn reorder_frontier_is_a_permutation_in_segment_order() {
        let g = generators::uniform_random(500, 6, 3);
        let l = layout_for(&g);
        let mut frontier: Vec<VertexId> = (0..500).rev().collect();
        let mut expected = frontier.clone();
        expected.sort_unstable();
        reorder_frontier(&l, &g, &mut frontier, 4096);
        let mut sorted = frontier.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected, "reorder permutes, never drops");
        for w in frontier.windows(2) {
            let ka = segment_key(&l, g.neighbor_start(w[0]), 4096);
            let kb = segment_key(&l, g.neighbor_start(w[1]), 4096);
            assert!(ka <= kb, "non-decreasing segment keys");
        }
    }

    #[test]
    fn reorder_union_keeps_masks_in_lockstep() {
        let g = generators::uniform_random(200, 5, 7);
        let l = layout_for(&g);
        let mut union: Vec<VertexId> = (0..200).rev().collect();
        let mut masks: Vec<u64> = union.iter().map(|&v| u64::from(v) << 1 | 1).collect();
        reorder_union(&l, &g, &mut union, &mut masks, 2048);
        assert_eq!(union.len(), masks.len());
        for (&v, &m) in union.iter().zip(&masks) {
            assert_eq!(m, u64::from(v) << 1 | 1, "mask moved with its vertex");
        }
    }

    #[test]
    fn reorder_slices_orders_by_slice_start() {
        let g = generators::uniform_random(100, 8, 5);
        let l = layout_for(&g);
        let mut items: Vec<(VertexId, u64, u64)> = (0..100u32)
            .rev()
            .map(|v| {
                let lo = g.neighbor_start(v);
                (v, lo, lo + g.degree(v))
            })
            .collect();
        reorder_slices(&l, &mut items, 4096);
        for w in items.windows(2) {
            assert!(
                l.edge_addr(w[0].1) <= l.edge_addr(w[1].1),
                "slices in edge-address order"
            );
        }
    }
}
