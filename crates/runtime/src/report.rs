//! Per-kernel and per-run statistics.

use crate::prefetch::PrefetchStats;
use crate::transfer::TransferStats;
use emogi_sim::monitor::SizeHistogram;
use emogi_sim::time::Time;

/// What one kernel launch did, measured by the executor.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Launch time.
    pub start: Time,
    /// Completion time (all warps drained).
    pub end: Time,
    /// Warp tasks executed.
    pub tasks: u64,
    /// Warp steps executed.
    pub steps: u64,
    /// Coalesced device-space transactions.
    pub device_txns: u64,
    /// Coalesced pinned-host (zero-copy) transactions.
    pub host_txns: u64,
    /// Coalesced managed-space transactions.
    pub managed_txns: u64,
    /// Coalesced CXL-space transactions (regions served in place from the
    /// external tier).
    pub cxl_txns: u64,
    /// Host transactions that were satisfied by attaching to an already
    /// in-flight request (MSHR merges).
    pub mshr_merges: u64,
    /// Page faults raised against the UVM driver.
    pub page_faults: u64,
}

impl KernelReport {
    /// Launch-to-drain time of the kernel.
    pub fn elapsed(&self) -> Time {
        self.end - self.start
    }
}

/// Cumulative measurements for a whole traversal run (all kernel launches
/// of one BFS/SSSP/CC execution), diffed off the machine's monitors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total simulated wall time.
    pub elapsed_ns: Time,
    /// Kernel launches ("the total number of kernels launched ... is equal
    /// to the distance from the source vertex", §4.2).
    pub kernel_launches: u64,
    /// Zero-copy PCIe read requests (Figure 5).
    pub pcie_read_requests: u64,
    /// Their size mix (Figure 7).
    pub request_sizes: SizeHistogram,
    /// Host→GPU payload bytes: zero-copy reads plus DMA/migrations
    /// (Figure 10's numerator).
    pub host_bytes: u64,
    /// Average achieved PCIe bandwidth over the run, GB/s (Figure 8).
    pub avg_pcie_gbps: f64,
    /// UVM page faults (zero for EMOGI engines).
    pub page_faults: u64,
    /// UVM pages migrated to the device (zero for EMOGI engines).
    pub pages_migrated: u64,
    /// Host DRAM traffic (Figure 4's DRAM lane).
    pub host_dram_bytes: u64,
    /// L2 sectors that hit during this run's kernels (the cache-aware
    /// `layout` experiment's numerator).
    pub l2_sector_hits: u64,
    /// L2 sectors that missed during this run's kernels.
    pub l2_sector_misses: u64,
    /// Bytes the kernels' lanes requested, before coalescing.
    pub lane_bytes: u64,
    /// Bytes the coalesced transactions moved for those lanes.
    pub txn_bytes: u64,
    /// Demand read requests served by the CXL external tier; zero on
    /// two-tier machines.
    pub cxl_read_requests: u64,
    /// Payload bytes the CXL tier served — zero-copy demand reads plus
    /// bulk promotions into HBM. Kept separate from
    /// [`host_bytes`](Self::host_bytes), which stays PCIe-only.
    pub cxl_bytes: u64,
    /// Hybrid transfer-manager counters for this run; all-zero for runs
    /// that never stage (pure zero-copy, UVM).
    pub transfer: TransferStats,
    /// Pipelined-execution prefetch counters for this run (speculative
    /// bytes issued, adoption hits, mispredicted waste, residual stall
    /// and hidden staging latency); all-zero for synchronous runs.
    pub prefetch: PrefetchStats,
    /// `true` when these counters describe traffic *shared* with other
    /// queries of a batched multi-query execution: the merged edge fetch
    /// is accounted once globally (in the batch-level stats) and every
    /// query that was active in an iteration absorbs that iteration's
    /// totals, so summing flagged stats across queries double-counts the
    /// shared bytes by design. Always `false` for solo runs.
    pub shared_fetch: bool,
}

impl RunStats {
    /// Fraction of probed L2 sectors that hit over this run; 0 when no
    /// sector was probed. Higher under cache-aware vertex layouts.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_sector_hits + self.l2_sector_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_sector_hits as f64 / total as f64
        }
    }

    /// Requested lane bytes over moved transaction bytes — 1.0 means
    /// every transferred byte was asked for by a lane; lower means the
    /// coalescer padded scattered accesses out to sector granularity.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.txn_bytes == 0 {
            0.0
        } else {
            self.lane_bytes as f64 / self.txn_bytes as f64
        }
    }

    /// The paper's I/O read amplification metric (Figure 10).
    pub fn amplification(&self, dataset_bytes: u64) -> f64 {
        if dataset_bytes == 0 {
            0.0
        } else {
            self.host_bytes as f64 / dataset_bytes as f64
        }
    }

    /// Fold one iteration's measurements into a running per-query total
    /// (batched execution attributes each iteration's machine diff to
    /// every query active in it). Counters add, the size histogram
    /// merges, and the average bandwidth is re-derived from the summed
    /// bytes and time.
    pub fn accumulate(&mut self, iteration: &RunStats) {
        self.elapsed_ns += iteration.elapsed_ns;
        self.kernel_launches += iteration.kernel_launches;
        self.pcie_read_requests += iteration.pcie_read_requests;
        self.request_sizes.merge(&iteration.request_sizes);
        self.host_bytes += iteration.host_bytes;
        self.page_faults += iteration.page_faults;
        self.pages_migrated += iteration.pages_migrated;
        self.host_dram_bytes += iteration.host_dram_bytes;
        self.l2_sector_hits += iteration.l2_sector_hits;
        self.l2_sector_misses += iteration.l2_sector_misses;
        self.lane_bytes += iteration.lane_bytes;
        self.txn_bytes += iteration.txn_bytes;
        self.cxl_read_requests += iteration.cxl_read_requests;
        self.cxl_bytes += iteration.cxl_bytes;
        self.transfer += iteration.transfer;
        self.prefetch += iteration.prefetch;
        self.avg_pcie_gbps = if self.elapsed_ns == 0 {
            0.0
        } else {
            self.host_bytes as f64 / self.elapsed_ns as f64
        };
    }

    /// Fold the per-device stats of one multi-GPU run into a group
    /// total. The devices ran *concurrently*, so elapsed time is the
    /// maximum (the devices' clocks are barrier-aligned each iteration);
    /// every traffic counter sums across links, the size histograms
    /// merge, and the average bandwidth is re-derived as aggregate bytes
    /// over the shared wall clock.
    pub fn aggregate_concurrent(per_device: &[RunStats]) -> RunStats {
        let mut total = RunStats::default();
        for s in per_device {
            total.elapsed_ns = total.elapsed_ns.max(s.elapsed_ns);
            total.kernel_launches += s.kernel_launches;
            total.pcie_read_requests += s.pcie_read_requests;
            total.request_sizes.merge(&s.request_sizes);
            total.host_bytes += s.host_bytes;
            total.page_faults += s.page_faults;
            total.pages_migrated += s.pages_migrated;
            total.host_dram_bytes += s.host_dram_bytes;
            total.l2_sector_hits += s.l2_sector_hits;
            total.l2_sector_misses += s.l2_sector_misses;
            total.lane_bytes += s.lane_bytes;
            total.txn_bytes += s.txn_bytes;
            total.cxl_read_requests += s.cxl_read_requests;
            total.cxl_bytes += s.cxl_bytes;
            total.transfer += s.transfer;
            total.prefetch += s.prefetch;
        }
        total.avg_pcie_gbps = if total.elapsed_ns == 0 {
            0.0
        } else {
            total.host_bytes as f64 / total.elapsed_ns as f64
        };
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_and_amplification() {
        let r = KernelReport {
            start: 100,
            end: 350,
            ..Default::default()
        };
        assert_eq!(r.elapsed(), 250);
        let s = RunStats {
            host_bytes: 150,
            ..Default::default()
        };
        assert!((s.amplification(100) - 1.5).abs() < 1e-12);
        assert_eq!(s.amplification(0), 0.0);
    }
}
