//! Hot-path hashing.
//!
//! The executor keeps a map from 128-byte line address to in-flight
//! request state; it is probed on every cache miss. `std`'s SipHash is
//! needlessly slow for integer keys (see the Rust Performance Book's
//! hashing chapter), and pulling in an external hashing crate is not
//! justified for one map, so this is a minimal Fx-style multiply hasher.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-ish multiply hasher for integer keys (FxHash's constant).
#[derive(Default)]
pub struct IntHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback; the hot path uses write_u64.
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// HashMap with the fast integer hasher.
///
/// Deterministic across processes (fixed seed), but iteration order is
/// still a function of insertion history — so the determinism contract
/// restricts `FastMap` to point lookups unless the iteration result is
/// sorted or waived (`emogi-lint` rule `unordered-iter`; currently the
/// runtime has no iteration site at all).
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_like_a_map() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 128, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(50 * 128)), Some(&50));
        assert_eq!(m.remove(&0), Some(0));
        assert!(!m.contains_key(&0));
    }

    #[test]
    fn aligned_keys_spread_across_buckets() {
        // Line addresses are 128-byte aligned; a weak hasher would pile
        // them into few buckets. Check distinct hashes.
        use std::hash::BuildHasher;
        let bh = BuildHasherDefault::<IntHasher>::default();
        let mut hashes: Vec<u64> = (0..4096u64)
            .map(|i| {
                let mut h = bh.build_hasher();
                h.write_u64(i * 128);
                h.finish() >> 52 // top bits used by hashbrown
            })
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert!(
            hashes.len() > 1000,
            "only {} distinct top-12-bit hashes",
            hashes.len()
        );
    }
}
