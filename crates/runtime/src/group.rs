//! The device group: one [`Machine`] per simulated GPU plus the
//! inter-device [`Interconnect`].
//!
//! A [`DeviceGroup`] is the multi-GPU analogue of a single [`Machine`]:
//! each device keeps its own PCIe link, cache, HBM, DMA engine and
//! address spaces (the per-link independence that makes EMOGI's
//! multi-GPU traversal scale), while the group supplies the two
//! primitives sharded execution needs between iterations:
//!
//! * [`barrier`](DeviceGroup::barrier) — align every device's clock to
//!   the group maximum (the iteration-end synchronization point);
//! * [`exchange`](DeviceGroup::exchange) — broadcast each device's
//!   update payload to every peer over the interconnect, then advance
//!   all clocks to the last delivery.
//!
//! With one device both primitives are no-ops, which is what lets a
//! one-device sharded run stay tick-for-tick identical to a
//! single-machine run.

use crate::machine::{Machine, MachineConfig, Snapshot};
use crate::report::RunStats;
use emogi_sim::interconnect::{Interconnect, InterconnectConfig, PeerLinkConfig};
use emogi_sim::time::Time;

/// How to build a [`DeviceGroup`].
#[derive(Debug, Clone)]
pub struct DeviceGroupConfig {
    /// Simulated GPUs in the group.
    pub devices: usize,
    /// Per-device platform; every device is identical (the paper's DGX
    /// nodes are homogeneous).
    pub machine: MachineConfig,
    /// Inter-GPU peer link for exchanges; `None` routes them through
    /// host memory over two PCIe hops.
    pub peer: Option<PeerLinkConfig>,
}

impl DeviceGroupConfig {
    /// `devices` V100s, each on its own PCIe 3.0 x16 link, joined by an
    /// NVLink-class peer link.
    pub fn v100_gen3(devices: usize) -> Self {
        Self {
            devices,
            machine: MachineConfig::v100_gen3(),
            peer: Some(PeerLinkConfig::default()),
        }
    }

    /// Replace the per-device platform.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Route exchanges through host memory instead of a peer link.
    pub fn without_peer(mut self) -> Self {
        self.peer = None;
        self
    }
}

/// One machine per simulated GPU plus the exchange interconnect.
#[derive(Debug)]
pub struct DeviceGroup {
    /// The member machines, one per device, all built from the same
    /// configuration.
    pub machines: Vec<Machine>,
    /// The inter-device exchange fabric.
    pub interconnect: Interconnect,
}

impl DeviceGroup {
    /// Assemble `cfg.devices` identical machines at time 0.
    pub fn new(cfg: DeviceGroupConfig) -> Self {
        assert!(cfg.devices >= 1, "a device group needs at least one GPU");
        let machines = (0..cfg.devices)
            .map(|_| Machine::new(cfg.machine.clone()))
            .collect();
        let interconnect = Interconnect::new(InterconnectConfig {
            links: cfg.devices,
            host_link: cfg.machine.pcie,
            peer: cfg.peer,
        });
        Self {
            machines,
            interconnect,
        }
    }

    /// Devices in the group.
    pub fn num_devices(&self) -> usize {
        self.machines.len()
    }

    /// Align every device's clock to the group maximum and return it.
    /// A single-device group is untouched.
    pub fn barrier(&mut self) -> Time {
        let t = self.machines.iter().map(|m| m.now).max().unwrap_or(0);
        for m in &mut self.machines {
            m.now = t;
        }
        t
    }

    /// Iteration-end exchange: barrier, then every device broadcasts
    /// `bytes[d]` to each of its peers over the interconnect (via
    /// [`Interconnect::broadcast`], which stages a host-routed payload
    /// once), and all clocks advance to the last delivery. Returns the
    /// post-exchange time. A single-device group is a no-op (no
    /// barrier, no traffic, clocks untouched).
    pub fn exchange(&mut self, bytes: &[u64]) -> Time {
        assert_eq!(bytes.len(), self.machines.len(), "one payload per device");
        if self.machines.len() <= 1 {
            return self.machines[0].now;
        }
        let start = self.barrier();
        let mut done = start;
        for (src, &payload) in bytes.iter().enumerate() {
            done = done.max(self.interconnect.broadcast(src, start, payload));
        }
        for m in &mut self.machines {
            m.now = done;
        }
        done
    }

    /// Begin a measured run on every device.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.machines.iter().map(|m| m.snapshot()).collect()
    }

    /// Close a measured run: per-device stats diffed against `snaps`,
    /// with `launches[d]` kernel launches attributed to device `d`.
    pub fn finish_run(&self, snaps: &[Snapshot], launches: &[u64]) -> Vec<RunStats> {
        assert_eq!(snaps.len(), self.machines.len());
        assert_eq!(launches.len(), self.machines.len());
        self.machines
            .iter()
            .zip(snaps)
            .zip(launches)
            .map(|((m, s), &l)| m.finish_run(s, l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_builds_identical_machines() {
        let g = DeviceGroup::new(DeviceGroupConfig::v100_gen3(4));
        assert_eq!(g.num_devices(), 4);
        assert!(g.interconnect.has_peer());
        for m in &g.machines {
            assert_eq!(m.now, 0);
        }
    }

    #[test]
    fn barrier_aligns_clocks_to_the_maximum() {
        let mut g = DeviceGroup::new(DeviceGroupConfig::v100_gen3(3));
        g.machines[0].now = 100;
        g.machines[1].now = 700;
        g.machines[2].now = 300;
        assert_eq!(g.barrier(), 700);
        assert!(g.machines.iter().all(|m| m.now == 700));
    }

    #[test]
    fn exchange_broadcasts_and_advances_all_clocks() {
        let mut g = DeviceGroup::new(DeviceGroupConfig::v100_gen3(2));
        g.machines[0].now = 1_000;
        let t = g.exchange(&[1 << 20, 0]);
        assert!(t > 1_000, "exchange takes wire time");
        assert!(g.machines.iter().all(|m| m.now == t));
        assert_eq!(g.interconnect.totals().bytes, 1 << 20);
    }

    #[test]
    fn single_device_exchange_is_a_no_op() {
        let mut g = DeviceGroup::new(DeviceGroupConfig::v100_gen3(1));
        g.machines[0].now = 42;
        assert_eq!(g.exchange(&[999]), 42);
        assert_eq!(g.machines[0].now, 42);
        assert_eq!(g.interconnect.totals().bytes, 0);
    }

    #[test]
    fn host_routed_exchange_works_without_a_peer_link() {
        let mut g = DeviceGroup::new(DeviceGroupConfig::v100_gen3(2).without_peer());
        assert!(!g.interconnect.has_peer());
        let t = g.exchange(&[4096, 4096]);
        assert!(t > 0);
        // Each payload hops twice (up + down), so totals double-count.
        assert_eq!(g.interconnect.totals().bytes, 4 * 4096);
    }
}
