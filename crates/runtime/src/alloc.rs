//! Simulated address spaces.
//!
//! EMOGI's placement discipline (§4.2): the vertex list and status arrays
//! live in GPU memory, the edge list is pinned in host memory and accessed
//! zero-copy; the UVM baseline instead puts the edge list in managed
//! memory. Each placement is a distinct region of the simulated physical
//! address space, far enough apart that no transaction can straddle two
//! spaces. No data lives at these addresses — kernels keep real Rust
//! arrays and use the addresses only for traffic modelling.

use emogi_gpu::access::Space;

/// Base of the device-memory region.
pub const DEVICE_BASE: u64 = 0x1_0000_0000_0000;
/// Base of the pinned-host (zero-copy) region.
pub const HOST_BASE: u64 = 0x2_0000_0000_0000;
/// Base of the UVM-managed region.
pub const MANAGED_BASE: u64 = 0x3_0000_0000_0000;
/// Base of the CXL external-memory region (the cold spill tier).
pub const CXL_BASE: u64 = 0x4_0000_0000_0000;

const SPACE_SPAN: u64 = 0x1_0000_0000_0000;

/// Bump allocators for the four spaces.
#[derive(Debug, Clone)]
pub struct AddressSpaces {
    device_cursor: u64,
    host_cursor: u64,
    managed_cursor: u64,
    cxl_cursor: u64,
    device_capacity: u64,
}

impl AddressSpaces {
    /// Fresh spaces for a machine with `device_capacity` bytes of device
    /// memory.
    pub fn new(device_capacity: u64) -> Self {
        Self {
            device_cursor: DEVICE_BASE,
            host_cursor: HOST_BASE,
            managed_cursor: MANAGED_BASE,
            cxl_cursor: CXL_BASE,
            device_capacity,
        }
    }

    /// Allocate `bytes` of device memory (128-byte aligned, like
    /// `cudaMalloc`). Panics if the scaled device capacity is exceeded —
    /// the experiments size their explicit allocations to fit.
    pub fn alloc_device(&mut self, bytes: u64) -> u64 {
        let addr = self.device_cursor;
        self.device_cursor += align128(bytes);
        assert!(
            self.device_used() <= self.device_capacity,
            "device allocation of {bytes} B exceeds capacity {} B",
            self.device_capacity
        );
        addr
    }

    /// Allocate pinned host memory (`cudaMallocHost`; 4 KiB aligned as the
    /// pinning granularity is a page).
    pub fn alloc_host_pinned(&mut self, bytes: u64) -> u64 {
        let addr = self.host_cursor;
        self.host_cursor += align4k(bytes);
        addr
    }

    /// Allocate managed memory (`cudaMallocManaged`; page aligned).
    pub fn alloc_managed(&mut self, bytes: u64) -> u64 {
        let addr = self.managed_cursor;
        self.managed_cursor += align4k(bytes);
        addr
    }

    /// Allocate CXL external memory (page aligned, like host pinning —
    /// the expander is mapped at page granularity).
    pub fn alloc_cxl(&mut self, bytes: u64) -> u64 {
        let addr = self.cxl_cursor;
        self.cxl_cursor += align4k(bytes);
        addr
    }

    /// Explicitly allocated device bytes (excludes the UVM page pool).
    pub fn device_used(&self) -> u64 {
        self.device_cursor - DEVICE_BASE
    }

    /// Total pinned host bytes allocated so far.
    pub fn host_used(&self) -> u64 {
        self.host_cursor - HOST_BASE
    }

    /// Total CXL external-memory bytes allocated so far.
    pub fn cxl_used(&self) -> u64 {
        self.cxl_cursor - CXL_BASE
    }

    /// Total managed bytes allocated so far.
    pub fn managed_used(&self) -> u64 {
        self.managed_cursor - MANAGED_BASE
    }

    /// Device bytes left for the UVM page pool.
    pub fn device_free(&self) -> u64 {
        self.device_capacity.saturating_sub(self.device_used())
    }

    /// Total (scaled) device memory capacity.
    pub fn device_capacity(&self) -> u64 {
        self.device_capacity
    }

    /// Which space does `addr` belong to?
    pub fn space_of(addr: u64) -> Space {
        match addr / SPACE_SPAN {
            1 => Space::Device,
            2 => Space::HostPinned,
            3 => Space::Managed,
            4 => Space::Cxl,
            _ => panic!("address {addr:#x} outside all simulated spaces"),
        }
    }
}

fn align128(bytes: u64) -> u64 {
    bytes.div_ceil(128) * 128
}

fn align4k(bytes: u64) -> u64 {
    bytes.div_ceil(4096) * 4096
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut a = AddressSpaces::new(1 << 20);
        let d1 = a.alloc_device(100);
        let d2 = a.alloc_device(1);
        assert_eq!(d1, DEVICE_BASE);
        assert_eq!(d2, DEVICE_BASE + 128);
        let h = a.alloc_host_pinned(5000);
        assert_eq!(h % 4096, 0);
        let h2 = a.alloc_host_pinned(1);
        assert_eq!(h2, h + 8192);
        let m = a.alloc_managed(1);
        assert_eq!(m, MANAGED_BASE);
    }

    #[test]
    fn space_classification() {
        assert_eq!(AddressSpaces::space_of(DEVICE_BASE + 5), Space::Device);
        assert_eq!(AddressSpaces::space_of(HOST_BASE), Space::HostPinned);
        assert_eq!(AddressSpaces::space_of(MANAGED_BASE + 99), Space::Managed);
        assert_eq!(AddressSpaces::space_of(CXL_BASE + 7), Space::Cxl);
    }

    #[test]
    fn cxl_allocations_are_page_aligned_and_tracked() {
        let mut a = AddressSpaces::new(1 << 20);
        let c1 = a.alloc_cxl(100);
        let c2 = a.alloc_cxl(1);
        assert_eq!(c1, CXL_BASE);
        assert_eq!(c2, CXL_BASE + 4096);
        assert_eq!(a.cxl_used(), 8192);
        assert_eq!(a.host_used(), 0);
    }

    #[test]
    #[should_panic(expected = "outside all simulated spaces")]
    fn null_pointerish_address_panics() {
        let _ = AddressSpaces::space_of(42);
    }

    #[test]
    fn device_capacity_tracking() {
        let mut a = AddressSpaces::new(1024);
        a.alloc_device(512);
        assert_eq!(a.device_used(), 512);
        assert_eq!(a.device_free(), 512);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn overcommit_device_panics() {
        let mut a = AddressSpaces::new(256);
        a.alloc_device(512);
    }
}
