//! The simulated machine: one GPU, one PCIe link, host memory, optional
//! UVM — i.e. one row of the paper's Table 1, in miniature.

use crate::alloc::{AddressSpaces, MANAGED_BASE};
use crate::report::RunStats;
use emogi_gpu::cache::SectoredCache;
use emogi_gpu::config::{GpuConfig, GpuPreset};
use emogi_sim::cxl::{CxlConfig, CxlLink};
use emogi_sim::dma::{DmaEngine, MEMCPY_LAUNCH_OVERHEAD_NS};
use emogi_sim::dram::{Dram, DramConfig};
use emogi_sim::monitor::{SizeHistogram, TrafficMonitor};
use emogi_sim::pcie::{PcieConfig, PcieGen, PcieLink};
use emogi_sim::time::Time;
use emogi_uvm::{UvmConfig, UvmDriver};

/// Everything needed to assemble a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// The GPU model (SIMT limits, cache, HBM, device capacity).
    pub gpu: GpuConfig,
    /// The host↔GPU interconnect.
    pub pcie: PcieConfig,
    /// The host memory behind the link.
    pub host_dram: DramConfig,
    /// Template for the UVM driver (pool size is filled in from leftover
    /// device memory when the first managed allocation is made).
    pub uvm: UvmConfig,
    /// Resolution of the bandwidth time series.
    pub monitor_window_ns: Time,
    /// Optional CXL-class external-memory tier. `None` (the default in
    /// every preset) reproduces the paper's two-level machine exactly.
    pub cxl: Option<CxlConfig>,
    /// Pinned-host capacity in bytes; allocations past it spill to the
    /// CXL tier. `None` models unbounded host DRAM (the two-tier default).
    pub host_capacity_bytes: Option<u64>,
}

impl MachineConfig {
    /// Table 1: V100 + PCIe 3.0 + Cascade-Lake quad-channel DDR4.
    pub fn v100_gen3() -> Self {
        Self {
            gpu: GpuPreset::V100.config(),
            pcie: PcieGen::Gen3x16.config(),
            host_dram: DramConfig::ddr4_2933_quad(),
            uvm: UvmConfig::default(),
            monitor_window_ns: 50_000,
            cxl: None,
            host_capacity_bytes: None,
        }
    }

    /// §5.5: DGX A100 with the root port in PCIe 3.0 mode.
    pub fn a100_gen3() -> Self {
        Self {
            gpu: GpuPreset::A100.config(),
            pcie: PcieGen::Gen3x16.config(),
            host_dram: DramConfig::ddr4_3200_octa(),
            uvm: UvmConfig::default(),
            monitor_window_ns: 50_000,
            cxl: None,
            host_capacity_bytes: None,
        }
    }

    /// §5.5: DGX A100 with PCIe 4.0.
    pub fn a100_gen4() -> Self {
        Self {
            pcie: PcieGen::Gen4x16.config(),
            ..Self::a100_gen3()
        }
    }

    /// Table 3: Titan Xp platform used for the HALO comparison.
    pub fn titan_xp_gen3() -> Self {
        Self {
            gpu: GpuPreset::TitanXp.config(),
            pcie: PcieGen::Gen3x16.config(),
            host_dram: DramConfig::ddr4_2933_quad(),
            uvm: UvmConfig::default(),
            monitor_window_ns: 50_000,
            cxl: None,
            host_capacity_bytes: None,
        }
    }

    /// Attach a CXL-class external-memory tier.
    pub fn with_cxl(mut self, cxl: CxlConfig) -> Self {
        self.cxl = Some(cxl);
        self
    }

    /// Cap pinned host DRAM at `bytes`; allocations past the cap spill to
    /// the CXL tier (which must then be configured).
    pub fn with_host_capacity(mut self, bytes: u64) -> Self {
        self.host_capacity_bytes = Some(bytes);
        self
    }
}

/// The assembled machine. The executor (`crate::exec`) mutates it in
/// place; experiments read the monitors afterwards.
#[derive(Debug)]
pub struct Machine {
    /// The configuration the machine was assembled from.
    pub cfg: MachineConfig,
    /// The PCIe link with its tag pool and queueing model.
    pub link: PcieLink,
    /// Host DRAM serving zero-copy reads and DMA sources.
    pub host_dram: Dram,
    /// The GPU's device memory.
    pub hbm: Dram,
    /// Unified sectored cache in front of HBM and the PCIe path.
    pub cache: SectoredCache,
    /// The FPGA-style PCIe traffic monitor (§3.2).
    pub monitor: TrafficMonitor,
    /// The bulk-copy engine (`cudaMemcpy`, UVM migration batches).
    pub dma: DmaEngine,
    /// The simulated address-space allocators.
    pub spaces: AddressSpaces,
    /// The CXL external-memory link, present when the config attaches one.
    pub cxl: Option<CxlLink>,
    /// The UVM driver, initialized before the first managed kernel.
    pub uvm: Option<UvmDriver>,
    /// Simulated wall clock, advanced by kernels and copies.
    pub now: Time,
    /// Kernel launch fixed cost (driver + launch latency).
    pub kernel_launch_ns: Time,
    /// Bytes the kernels' lanes actually requested (pre-coalescing);
    /// incremented by the executor per warp step.
    pub lane_bytes: u64,
    /// Bytes the coalescer moved for those lanes (post-coalescing
    /// transaction sizes). `lane_bytes / txn_bytes` is the coalescing
    /// efficiency the layout experiments report.
    pub txn_bytes: u64,
}

/// Scalar counter snapshot used to diff per-run statistics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    at: Time,
    reads: u64,
    sizes: SizeHistogram,
    zero_copy: u64,
    dma: u64,
    dram_read: u64,
    faults: u64,
    migrated: u64,
    l2_hits: u64,
    l2_misses: u64,
    lane_bytes: u64,
    txn_bytes: u64,
    cxl_reads: u64,
    cxl_bytes: u64,
}

impl Machine {
    /// Assemble a machine from `cfg`, at time 0, with nothing allocated.
    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            link: PcieLink::new(cfg.pcie.clone()),
            host_dram: Dram::new(cfg.host_dram.clone()),
            hbm: Dram::new(cfg.gpu.hbm.clone()),
            cache: SectoredCache::new(&cfg.gpu.cache),
            monitor: TrafficMonitor::new(cfg.monitor_window_ns),
            dma: DmaEngine::new(),
            spaces: AddressSpaces::new(cfg.gpu.mem_bytes),
            cxl: cfg.cxl.clone().map(CxlLink::new),
            uvm: None,
            now: 0,
            kernel_launch_ns: 100, // scaled with the datasets (see DESIGN.md)
            lane_bytes: 0,
            txn_bytes: 0,
            cfg,
        }
    }

    /// `cudaMalloc`: device memory for vertex lists and status arrays.
    pub fn alloc_device(&mut self, bytes: u64) -> u64 {
        assert!(
            self.uvm.is_none(),
            "allocate all device memory before the first kernel runs \
             (the UVM pool is sized from leftover device memory)"
        );
        self.spaces.alloc_device(bytes)
    }

    /// `cudaMallocHost`: pinned, zero-copy-accessible host memory.
    pub fn alloc_host_pinned(&mut self, bytes: u64) -> u64 {
        self.spaces.alloc_host_pinned(bytes)
    }

    /// `cudaMallocManaged`: UVM-managed memory.
    pub fn alloc_managed(&mut self, bytes: u64) -> u64 {
        self.spaces.alloc_managed(bytes)
    }

    /// Allocate CXL external memory. Panics when no CXL tier is attached —
    /// spilling past host DRAM on a two-tier machine is a configuration
    /// error, not a silent fallback.
    pub fn alloc_cxl(&mut self, bytes: u64) -> u64 {
        assert!(
            self.cxl.is_some(),
            "allocating {bytes} B of CXL external memory, but the machine \
             has no CXL tier (MachineConfig::with_cxl)"
        );
        self.spaces.alloc_cxl(bytes)
    }

    /// Pinned host bytes still available under the configured capacity
    /// cap; `u64::MAX` when host DRAM is unbounded (the two-tier default).
    pub fn host_free(&self) -> u64 {
        match self.cfg.host_capacity_bytes {
            Some(cap) => cap.saturating_sub(self.spaces.host_used()),
            None => u64::MAX,
        }
    }

    /// Create the UVM driver covering every managed allocation so far,
    /// with a page pool equal to the unallocated device memory. Called
    /// automatically by the executor before the first kernel that touches
    /// managed space.
    pub fn ensure_uvm(&mut self) {
        if self.uvm.is_some() {
            return;
        }
        let managed_len = self.managed_used().max(4096);
        let mut uvm_cfg = self.cfg.uvm.clone();
        uvm_cfg.pool_bytes = self.spaces.device_free().max(uvm_cfg.page_bytes);
        self.uvm = Some(UvmDriver::new(uvm_cfg, MANAGED_BASE, managed_len));
    }

    fn managed_used(&self) -> u64 {
        self.spaces.managed_used()
    }

    /// Synchronous `cudaMemcpy` host→device; advances the clock.
    pub fn memcpy_to_device(&mut self, bytes: u64) {
        self.now = self.dma.copy_to_device(
            self.now,
            bytes,
            &mut self.link,
            &mut self.host_dram,
            &mut self.hbm,
            &mut self.monitor,
        );
    }

    /// Retro-account an asynchronous staging copy the pipelined planner
    /// has just adopted: the transfer's *time* was paid on the prefetch
    /// copy lane while a kernel computed, but its *traffic* must appear
    /// in every counter exactly as the synchronous batched copy's would —
    /// DMA bytes, monitor DMA/wire bytes (per-TLP completion headers
    /// included), host-DRAM read span and HBM write span. Deliberately
    /// does not advance the clock or occupy any busy-until lane; the
    /// caller applies any residual in-flight stall separately.
    pub fn account_async_stage(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.dma.bytes_to_device += bytes;
        let chunks = bytes.div_ceil(u64::from(self.cfg.pcie.dma_payload_bytes));
        let wire = bytes + chunks * u64::from(self.cfg.pcie.completion_header_bytes);
        self.monitor.on_dma(self.now, bytes, wire);
        self.host_dram.account_bulk_read(bytes);
        self.hbm.account_bulk_write(bytes);
    }

    /// Synchronous bulk promotion CXL→device; advances the clock. The
    /// stream pays the memcpy launch overhead, reads out of the CXL tier
    /// (link occupancy + flit headers) and lands in HBM — the far-memory
    /// twin of [`memcpy_to_device`](Self::memcpy_to_device). CXL traffic
    /// is *not* PCIe traffic: the monitor and DMA counters stay untouched
    /// and the bytes surface in [`RunStats::cxl_bytes`].
    pub fn memcpy_cxl_to_device(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let cxl = self
            .cxl
            .as_mut()
            .expect("CXL promotion on a machine without a CXL tier");
        let start = self.now + MEMCPY_LAUNCH_OVERHEAD_NS;
        let arrived = cxl.read_bulk(start, bytes);
        self.now = self.hbm.write_bulk(start, bytes).max(arrived);
    }

    /// Synchronous `cudaMemcpy` device→host; advances the clock.
    pub fn memcpy_to_host(&mut self, bytes: u64) {
        self.now = self.dma.copy_to_host(
            self.now,
            bytes,
            &mut self.link,
            &mut self.host_dram,
            &mut self.hbm,
            &mut self.monitor,
        );
    }

    /// Begin a measured run (BFS/SSSP/CC execution).
    pub fn snapshot(&self) -> Snapshot {
        let (faults, migrated) = self
            .uvm
            .as_ref()
            .map(|u| (u.stats.faults, u.stats.pages_migrated))
            .unwrap_or((0, 0));
        Snapshot {
            at: self.now,
            reads: self.monitor.read_requests,
            sizes: self.monitor.sizes.clone(),
            zero_copy: self.monitor.zero_copy_bytes,
            dma: self.monitor.dma_bytes,
            dram_read: self.host_dram.bytes_read,
            faults,
            migrated,
            l2_hits: self.cache.stats.sector_hits,
            l2_misses: self.cache.stats.sector_misses,
            lane_bytes: self.lane_bytes,
            txn_bytes: self.txn_bytes,
            cxl_reads: self.cxl.as_ref().map_or(0, |c| c.read_requests),
            cxl_bytes: self.cxl.as_ref().map_or(0, CxlLink::total_bytes),
        }
    }

    /// Close a measured run, diffing counters against `base`.
    pub fn finish_run(&self, base: &Snapshot, kernel_launches: u64) -> RunStats {
        let elapsed = self.now - base.at;
        let mut sizes = self.monitor.sizes.clone();
        for (b, old) in sizes.buckets.iter_mut().zip(base.sizes.buckets) {
            *b -= old;
        }
        sizes.other -= base.sizes.other;
        let (faults, migrated) = self
            .uvm
            .as_ref()
            .map(|u| (u.stats.faults, u.stats.pages_migrated))
            .unwrap_or((0, 0));
        let host_bytes =
            (self.monitor.zero_copy_bytes - base.zero_copy) + (self.monitor.dma_bytes - base.dma);
        RunStats {
            elapsed_ns: elapsed,
            kernel_launches,
            pcie_read_requests: self.monitor.read_requests - base.reads,
            request_sizes: sizes,
            host_bytes,
            avg_pcie_gbps: if elapsed == 0 {
                0.0
            } else {
                host_bytes as f64 / elapsed as f64
            },
            page_faults: faults - base.faults,
            pages_migrated: migrated - base.migrated,
            host_dram_bytes: self.host_dram.bytes_read - base.dram_read,
            l2_sector_hits: self.cache.stats.sector_hits - base.l2_hits,
            l2_sector_misses: self.cache.stats.sector_misses - base.l2_misses,
            lane_bytes: self.lane_bytes - base.lane_bytes,
            txn_bytes: self.txn_bytes - base.txn_bytes,
            cxl_read_requests: self.cxl.as_ref().map_or(0, |c| c.read_requests) - base.cxl_reads,
            cxl_bytes: self.cxl.as_ref().map_or(0, CxlLink::total_bytes) - base.cxl_bytes,
            // The transfer manager and prefetcher live outside the
            // machine; whoever owns them (the engine) overwrites these
            // with the per-run diffs.
            transfer: crate::transfer::TransferStats::default(),
            prefetch: crate::prefetch::PrefetchStats::default(),
            shared_fetch: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build() {
        for m in [
            MachineConfig::v100_gen3(),
            MachineConfig::a100_gen3(),
            MachineConfig::a100_gen4(),
            MachineConfig::titan_xp_gen3(),
        ] {
            let machine = Machine::new(m);
            assert_eq!(machine.now, 0);
        }
    }

    #[test]
    fn memcpy_advances_clock_and_counts() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        m.memcpy_to_device(1 << 20);
        assert!(m.now > 0);
        assert_eq!(m.monitor.dma_bytes, 1 << 20);
    }

    #[test]
    fn uvm_pool_is_leftover_device_memory() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        let cap = m.spaces.device_capacity();
        m.alloc_device(1 << 20);
        m.alloc_managed(8 << 20);
        m.ensure_uvm();
        let pool = m.uvm.as_ref().unwrap().config().pool_bytes;
        assert_eq!(pool, cap - (1 << 20));
    }

    #[test]
    #[should_panic(expected = "before the first kernel")]
    fn device_alloc_after_uvm_panics() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        m.alloc_managed(4096);
        m.ensure_uvm();
        m.alloc_device(128);
    }

    #[test]
    fn cxl_tier_is_opt_in_and_accounted_separately() {
        let mut m = Machine::new(
            MachineConfig::v100_gen3()
                .with_cxl(CxlConfig::external_x8())
                .with_host_capacity(1 << 20),
        );
        assert_eq!(m.host_free(), 1 << 20);
        m.alloc_host_pinned(1 << 20);
        assert_eq!(m.host_free(), 0, "host cap is exhausted");
        m.alloc_cxl(1 << 20);
        let snap = m.snapshot();
        m.memcpy_cxl_to_device(1 << 20);
        let stats = m.finish_run(&snap, 0);
        assert_eq!(stats.cxl_bytes, 1 << 20);
        assert_eq!(stats.host_bytes, 0, "CXL traffic must not count as PCIe");
        assert_eq!(m.monitor.dma_bytes, 0);
        assert!(m.now > MEMCPY_LAUNCH_OVERHEAD_NS);
    }

    #[test]
    #[should_panic(expected = "no CXL tier")]
    fn cxl_alloc_without_tier_panics() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        m.alloc_cxl(4096);
    }

    #[test]
    fn run_stats_diffing() {
        let mut m = Machine::new(MachineConfig::v100_gen3());
        m.memcpy_to_device(1 << 20);
        let snap = m.snapshot();
        m.memcpy_to_device(2 << 20);
        let stats = m.finish_run(&snap, 3);
        assert_eq!(stats.host_bytes, 2 << 20);
        assert_eq!(stats.kernel_launches, 3);
        assert!(stats.elapsed_ns > 0);
        assert!(stats.avg_pcie_gbps > 0.0);
    }
}
