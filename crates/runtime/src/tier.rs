//! Per-tier byte budgets for the N-tier transfer manager.
//!
//! The two-tier [`TransferManager`](crate::transfer::TransferManager)
//! carried its device-pool accounting in two bare fields (`pool_left`,
//! `spec_charged`) whose interaction with permanent reservations had
//! grown special cases. [`TierBudget`] packages that ledger — free bytes
//! plus bytes charged to live speculative stages — behind an invariant,
//! and [`TierBudgets`] holds one ledger per
//! [`MemoryTier`](emogi_uvm::MemoryTier):
//!
//! * the **HBM** ledger is the staging pool: demand stagings charge it,
//!   speculative stagings move bytes from `free` to `spec`, and batch
//!   reservations draw on the combined total;
//! * the **host** and **CXL** ledgers are placement ledgers recording how
//!   many bytes of the watched array are homed in each tier — the
//!   denominators of the bytes-per-tier columns in the `tiering`
//!   experiment.
//!
//! ```
//! use emogi_runtime::tier::TierBudget;
//!
//! let mut pool = TierBudget::new(256 << 10);
//! assert!(pool.try_charge(128 << 10), "demand staging fits");
//! pool.move_free_to_spec(64 << 10); // speculative stage in flight
//! assert_eq!(pool.free(), 64 << 10);
//! // A permanent reservation larger than the free pool consumes the
//! // speculative headroom instead of going negative:
//! pool.reserve(96 << 10);
//! assert_eq!((pool.free(), pool.spec()), (0, 32 << 10));
//! assert_eq!(pool.combined(), 32 << 10);
//! ```

/// One tier's byte ledger: bytes still free plus bytes charged to live
/// speculative stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierBudget {
    free: u64,
    spec: u64,
}

impl TierBudget {
    /// A ledger holding `free` uncommitted bytes.
    pub fn new(free: u64) -> Self {
        Self { free, spec: 0 }
    }

    /// Bytes not charged to anything.
    pub fn free(&self) -> u64 {
        self.free
    }

    /// Bytes charged to live speculative stages.
    pub fn spec(&self) -> u64 {
        self.spec
    }

    /// The budget a speculation-free manager would hold: `free + spec`.
    /// Speculative charges are refundable (credited back at adoption or
    /// eviction), so this is the real headroom.
    pub fn combined(&self) -> u64 {
        self.free + self.spec
    }

    /// Charge `bytes` against the free pool; `false` (and no change) when
    /// it does not fit.
    #[must_use]
    pub fn try_charge(&mut self, bytes: u64) -> bool {
        if self.free >= bytes {
            self.free -= bytes;
            true
        } else {
            false
        }
    }

    /// Credit `bytes` back to the free pool (a demoted region's slot).
    pub fn credit(&mut self, bytes: u64) {
        self.free += bytes;
    }

    /// Move `bytes` of free pool onto the speculative charge (a
    /// speculative stage was issued).
    pub fn move_free_to_spec(&mut self, bytes: u64) {
        debug_assert!(self.free >= bytes, "speculating past the free pool");
        self.free -= bytes;
        self.spec += bytes;
    }

    /// Return `bytes` of speculative charge to the free pool (a
    /// speculative stage was evicted before use).
    pub fn move_spec_to_free(&mut self, bytes: u64) {
        debug_assert!(self.spec >= bytes, "crediting more spec than charged");
        self.spec -= bytes;
        self.free += bytes;
    }

    /// Credit every speculative charge back to the free pool and return
    /// the previous charge. Run before a decision round so demand
    /// decisions see exactly the pool a speculation-free manager would;
    /// survivors are re-charged afterwards with [`set_spec`](Self::set_spec).
    pub fn settle(&mut self) -> u64 {
        let was = self.spec;
        self.free += was;
        self.spec = 0;
        was
    }

    /// Record `spec` as the surviving speculative charge after a recharge
    /// pass (the recharge itself already debited `free`).
    pub fn set_spec(&mut self, spec: u64) {
        self.spec = spec;
    }

    /// Permanently reserve `bytes` out of this ledger.
    ///
    /// Invariant: `free + spec` is the budget not yet consumed by demand
    /// allocations or permanent reservations — speculative charges are
    /// refundable, so a reservation must deduct from the *combined*
    /// total, taking free bytes first and speculative headroom second.
    /// Deducting from `free` alone (saturating at zero) would leave an
    /// evicted speculation's stale charge alive and resurrect pool bytes
    /// at the next settle — the double-count this method exists to
    /// prevent. Shortfalls pushed onto the speculative side surface as
    /// deterministic evictions at the next recharge pass.
    pub fn reserve(&mut self, bytes: u64) {
        let combined = (self.free + self.spec).saturating_sub(bytes);
        self.spec = self.spec.min(combined);
        self.free = combined - self.spec;
    }
}

/// One [`TierBudget`] per memory tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierBudgets {
    /// The HBM staging pool (demand + speculative stagings, reservations).
    pub hbm: TierBudget,
    /// Host placement ledger: bytes of the watched array homed in pinned
    /// host DRAM.
    pub host: TierBudget,
    /// CXL placement ledger: bytes of the watched array homed in the
    /// external tier.
    pub cxl: TierBudget,
}

impl TierBudgets {
    /// The ledger for `tier`.
    pub fn get(&self, tier: emogi_uvm::MemoryTier) -> &TierBudget {
        match tier {
            emogi_uvm::MemoryTier::Hbm => &self.hbm,
            emogi_uvm::MemoryTier::Host => &self.host,
            emogi_uvm::MemoryTier::Cxl => &self.cxl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emogi_uvm::MemoryTier;

    #[test]
    fn exhaustion_refuses_the_charge_without_mutating() {
        let mut b = TierBudget::new(100);
        assert!(b.try_charge(100));
        assert!(!b.try_charge(1), "exhausted budget must refuse");
        assert_eq!((b.free(), b.spec()), (0, 0));
        b.credit(64);
        assert!(b.try_charge(64));
    }

    #[test]
    fn speculative_round_trip_is_lossless() {
        let mut b = TierBudget::new(256);
        b.move_free_to_spec(100);
        assert_eq!((b.free(), b.spec(), b.combined()), (156, 100, 256));
        b.move_spec_to_free(40);
        assert_eq!((b.free(), b.spec()), (196, 60));
        assert_eq!(b.settle(), 60);
        assert_eq!((b.free(), b.spec()), (256, 0));
    }

    /// The regression `reserve` exists for: a reservation overlapping the
    /// speculative charge consumes it instead of leaving it to resurrect
    /// budget at the next settle.
    #[test]
    fn reserve_draws_free_first_then_speculative_headroom() {
        let mut b = TierBudget::new(256);
        b.move_free_to_spec(100);
        b.reserve(200); // 156 free + 44 of the speculative charge
        assert_eq!((b.free(), b.spec()), (0, 56));
        b.settle();
        assert_eq!(b.free(), 56, "no bytes resurrected past the reservation");
        // Reserving more than the combined budget saturates at zero.
        b.reserve(1 << 20);
        assert_eq!((b.free(), b.spec(), b.combined()), (0, 0, 0));
    }

    #[test]
    fn budgets_index_by_tier() {
        let b = TierBudgets {
            hbm: TierBudget::new(1),
            host: TierBudget::new(2),
            cxl: TierBudget::new(3),
        };
        assert_eq!(b.get(MemoryTier::Hbm).free(), 1);
        assert_eq!(b.get(MemoryTier::Host).free(), 2);
        assert_eq!(b.get(MemoryTier::Cxl).free(), 3);
    }
}
