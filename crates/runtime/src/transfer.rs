//! Hybrid zero-copy / DMA transfer manager.
//!
//! One [`TransferManager`] watches a pinned-host array (the edge list) in
//! fixed-size regions. Before each kernel iteration the traversal driver
//! reports exactly which byte ranges the iteration will read
//! ([`note_upcoming`](TransferManager::note_upcoming) — the frontier
//! determines this precisely), then calls
//! [`plan`](TransferManager::plan): the [`emogi_uvm::TransferPolicy`]
//! picks, per touched region, between staying zero-copy and staging the
//! region into device memory with one bulk DMA copy through the machine's
//! [`emogi_sim::DmaEngine`]. Staged regions are recorded in a
//! [`RegionMap`] that the kernel-side address computation consults, so
//! their reads are priced as cache-fronted HBM instead of PCIe.
//!
//! Device memory for staged regions comes from a bounded pool carved out
//! of the machine's free device capacity ([`crate::alloc`]); when the
//! pool runs dry the manager falls back to zero-copy for the remaining
//! regions (and keeps feeding the policy, so accounting stays truthful).
//! Nothing is ever un-staged: the simulated workloads only grow hotter
//! with iteration count, and a bounded pool plus fallback keeps the model
//! honest without an eviction clock.
//!
//! The **pipelined path** ([`plan_pipelined`](TransferManager::plan_pipelined),
//! [`prefetch_for_next`](TransferManager::prefetch_for_next)) pairs the
//! manager with a [`Prefetcher`]: after each
//! round it speculatively stages predicted-reuse regions onto an
//! asynchronous copy lane, and a later round that decides to stage such a
//! region *adopts* the in-flight copy instead of paying a demand copy on
//! the critical path. Decisions, allocation order and traffic counters
//! stay bit-identical to the synchronous path; only the clock (and the
//! new prefetch counters) differ.

use crate::machine::Machine;
use crate::prefetch::Prefetcher;
use emogi_sim::time::Time;
use emogi_uvm::{TransferDecision, TransferPolicy, TransferPolicyConfig};

/// Sentinel in a [`RegionMap`] table: region not staged.
pub const UNMAPPED: u64 = u64::MAX;

/// How to build a [`TransferManager`].
#[derive(Debug, Clone)]
pub struct TransferConfig {
    /// Region granularity in bytes; a power of two, at least one 128-byte
    /// cache line (so no line ever straddles a region boundary).
    pub region_bytes: u64,
    /// Device-pool budget for staged regions; `None` takes all device
    /// memory still free after the explicit allocations.
    pub pool_bytes: Option<u64>,
    /// The stage-or-stay-zero-copy decision policy.
    pub policy: TransferPolicyConfig,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            region_bytes: 64 << 10,
            pool_bytes: None,
            policy: TransferPolicyConfig::default(),
        }
    }
}

/// Staged-region address translation table, cheap to clone into whoever
/// computes kernel addresses.
#[derive(Debug, Clone)]
pub struct RegionMap {
    shift: u32,
    /// Region index -> device base address, or [`UNMAPPED`].
    table: Vec<u64>,
}

impl RegionMap {
    /// Translate a byte offset within the watched array: `Some(device
    /// address)` when the offset's region is staged.
    #[inline]
    pub fn translate(&self, offset: u64) -> Option<u64> {
        let dev = self.table[(offset >> self.shift) as usize];
        if dev == UNMAPPED {
            None
        } else {
            Some(dev + (offset & ((1u64 << self.shift) - 1)))
        }
    }

    /// Regions the watched array is divided into.
    pub fn num_regions(&self) -> usize {
        self.table.len()
    }

    /// Regions currently staged on the device.
    pub fn staged_regions(&self) -> usize {
        self.table.iter().filter(|&&d| d != UNMAPPED).count()
    }
}

/// Counters for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Regions staged into device memory so far.
    pub staged_regions: u64,
    /// Bytes bulk-copied for staging.
    pub staged_bytes: u64,
    /// Stage decisions that fell back to zero-copy because the device
    /// pool was exhausted.
    pub pool_fallbacks: u64,
    /// Planning rounds that staged at least one region.
    pub staging_rounds: u64,
}

impl std::ops::Sub for TransferStats {
    type Output = TransferStats;

    /// Diff two snapshots of the (monotonically growing) counters, for
    /// per-run reporting.
    fn sub(self, base: TransferStats) -> TransferStats {
        TransferStats {
            staged_regions: self.staged_regions - base.staged_regions,
            staged_bytes: self.staged_bytes - base.staged_bytes,
            pool_fallbacks: self.pool_fallbacks - base.pool_fallbacks,
            staging_rounds: self.staging_rounds - base.staging_rounds,
        }
    }
}

impl std::ops::AddAssign for TransferStats {
    /// Accumulate per-run diffs (e.g. across the queries of a scenario).
    fn add_assign(&mut self, other: TransferStats) {
        self.staged_regions += other.staged_regions;
        self.staged_bytes += other.staged_bytes;
        self.pool_fallbacks += other.pool_fallbacks;
        self.staging_rounds += other.staging_rounds;
    }
}

/// The per-array hybrid transfer manager.
#[derive(Debug)]
pub struct TransferManager {
    region_bytes: u64,
    shift: u32,
    /// Total bytes of the watched array.
    len_bytes: u64,
    policy: TransferPolicy,
    /// Region -> staged device base ([`UNMAPPED`] when zero-copy).
    table: Vec<u64>,
    /// Scratch: bytes the upcoming iteration reads, per region.
    upcoming: Vec<u64>,
    /// Scratch: regions with nonzero `upcoming`, in first-touch order.
    touched: Vec<u32>,
    /// The previous round's `(region, upcoming bytes)` pairs, sorted by
    /// region — the prefetcher's prediction input.
    last_touched: Vec<(u32, u64)>,
    pool_left: u64,
    /// Pool bytes currently charged to live speculative stages. Invariant
    /// between rounds: `pool_left + spec_charged` equals the pool a
    /// pipeline-free manager would hold (see [`reserve`](Self::reserve)).
    spec_charged: u64,
    /// Monotonically growing lifetime counters; snapshot and diff for
    /// per-run reporting.
    pub stats: TransferStats,
}

impl TransferManager {
    /// Watch `len_bytes` of pinned host memory on `machine`. The pool
    /// budget is capped by the device memory still free at this point.
    pub fn new(machine: &Machine, len_bytes: u64, cfg: TransferConfig) -> Self {
        assert!(
            cfg.region_bytes.is_power_of_two() && cfg.region_bytes >= 128,
            "region_bytes must be a power of two >= 128, got {}",
            cfg.region_bytes
        );
        let regions = len_bytes.div_ceil(cfg.region_bytes) as usize;
        let pool_left = cfg
            .pool_bytes
            .unwrap_or(u64::MAX)
            .min(machine.spaces.device_free());
        Self {
            region_bytes: cfg.region_bytes,
            shift: cfg.region_bytes.trailing_zeros(),
            len_bytes,
            policy: TransferPolicy::new(regions, cfg.policy),
            table: vec![UNMAPPED; regions],
            upcoming: vec![0; regions],
            touched: Vec::new(),
            last_touched: Vec::new(),
            pool_left,
            spec_charged: 0,
            stats: TransferStats::default(),
        }
    }

    /// Regions the watched array is divided into.
    pub fn num_regions(&self) -> usize {
        self.table.len()
    }

    /// Region granularity in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// Device-pool bytes still available for staging.
    pub fn pool_left(&self) -> u64 {
        self.pool_left
    }

    /// Inform the manager that `bytes` of device memory were allocated
    /// outside it after construction (e.g. the engine's batch-query
    /// status arrays): the staging pool shrinks accordingly, so the
    /// combined usage never exceeds the device capacity. Saturates at
    /// zero — staging then simply falls back to zero-copy.
    ///
    /// Accounting invariant: at every reservation site, `pool_left +
    /// spec_charged` is the budget not yet consumed by *demand*
    /// allocations or permanent reservations — exactly what a
    /// pipeline-free manager holds in `pool_left`. A speculative stage
    /// charges the pool once when issued and is credited back exactly
    /// once: either at adoption (where the demand allocation takes over
    /// the charge) or at eviction before first use. The reservation
    /// therefore deducts from the *combined* budget — taking free pool
    /// first, then speculative headroom — so a speculative stage that is
    /// later evicted never stays charged against the budget (the
    /// double-count this invariant exists to prevent). Shortfalls pushed
    /// onto `spec_charged` are realized as deterministic evictions at the
    /// next planning round's recharge pass, which re-charges survivors in
    /// issue order and evicts whatever no longer fits.
    pub fn reserve(&mut self, bytes: u64) {
        let need = bytes.div_ceil(128) * 128;
        let combined = (self.pool_left + self.spec_charged).saturating_sub(need);
        self.spec_charged = self.spec_charged.min(combined);
        self.pool_left = combined - self.spec_charged;
    }

    /// Whether `region` has been staged into device memory.
    pub fn is_staged(&self, region: usize) -> bool {
        self.table[region] != UNMAPPED
    }

    /// Regions staged so far over the manager's lifetime.
    pub fn staged_regions(&self) -> usize {
        self.stats.staged_regions as usize
    }

    /// Actual bytes of region `r` (the last region may be partial).
    fn region_len(&self, r: usize) -> u64 {
        let start = r as u64 * self.region_bytes;
        self.region_bytes.min(self.len_bytes - start)
    }

    /// Report that the upcoming iteration reads byte range `[lo, hi)` of
    /// the watched array. Ranges may overlap region boundaries and each
    /// other; per-region bytes saturate at the region size.
    pub fn note_upcoming(&mut self, lo: u64, hi: u64) {
        debug_assert!(lo <= hi && hi <= self.len_bytes, "range {lo}..{hi}");
        if lo == hi {
            return;
        }
        let first = (lo >> self.shift) as usize;
        let last = ((hi - 1) >> self.shift) as usize;
        for r in first..=last {
            let r_start = r as u64 * self.region_bytes;
            let r_end = r_start + self.region_len(r);
            let bytes = hi.min(r_end) - lo.max(r_start);
            if self.upcoming[r] == 0 {
                self.touched.push(r as u32);
            }
            self.upcoming[r] = (self.upcoming[r] + bytes).min(self.region_len(r));
        }
    }

    /// Decide and execute this iteration's stagings: consult the policy
    /// for every touched, not-yet-staged region, allocate device memory
    /// for the winners while the pool lasts, and issue one batched bulk
    /// copy for all of them (the copies queue back-to-back on the DMA
    /// engine, so the launch overhead is paid once per round). Clears the
    /// upcoming-iteration scratch. Returns whether any region was staged
    /// this round (i.e. whether the translation table changed).
    pub fn plan(&mut self, machine: &mut Machine) -> bool {
        self.plan_with(machine, None)
    }

    /// [`plan`](Self::plan) with a [`Prefetcher`] in the loop: staging
    /// decisions, allocation order and traffic counters are identical,
    /// but a staged region whose speculative copy is already on the
    /// asynchronous lane is *adopted* — its bytes are retro-accounted
    /// instead of re-copied, and the clock waits only if the copy is
    /// still in flight. Call [`prefetch_for_next`](Self::prefetch_for_next)
    /// after each round to keep the lane fed.
    pub fn plan_pipelined(&mut self, machine: &mut Machine, prefetcher: &mut Prefetcher) -> bool {
        self.plan_with(machine, Some(prefetcher))
    }

    fn plan_with(&mut self, machine: &mut Machine, mut pf: Option<&mut Prefetcher>) -> bool {
        // First-touch order follows the frontier, which is sorted by the
        // traversal drivers — sort to be robust against unsorted callers
        // (determinism, and allocation order independent of touch order).
        self.touched.sort_unstable();
        // Settle: credit every speculative charge back so the decision
        // loop below sees exactly the pool a synchronous manager would —
        // the stage-vs-fallback outcomes must be bit-identical. Survivors
        // are re-charged after the loop.
        if pf.is_some() {
            self.pool_left += self.spec_charged;
            self.spec_charged = 0;
            // Record the touch set for the predictor before the loop
            // consumes the per-region byte counts.
            self.last_touched.clear();
            for &r in &self.touched {
                self.last_touched.push((r, self.upcoming[r as usize]));
            }
        }
        let mut copy_bytes = 0u64;
        let mut adopted_bytes = 0u64;
        let mut staged_count = 0u64;
        let mut stall_until: Time = 0;
        for i in 0..self.touched.len() {
            let r = self.touched[i] as usize;
            let bytes = std::mem::take(&mut self.upcoming[r]);
            if self.table[r] != UNMAPPED {
                continue; // already on device; reads go to HBM
            }
            let len = self.region_len(r);
            // The allocator rounds to 128-byte lines; budget the rounded
            // size so the pool never outruns real capacity (a partial
            // last region is smaller than its allocation).
            let need = len.div_ceil(128) * 128;
            let density = bytes as f64 / len as f64;
            match self.policy.decide(r, density.min(1.0)) {
                TransferDecision::Stage if self.pool_left >= need => {
                    self.table[r] = machine.alloc_device(len);
                    self.pool_left -= need;
                    self.stats.staged_regions += 1;
                    self.stats.staged_bytes += len;
                    staged_count += 1;
                    // A speculative copy of this region is already on (or
                    // past) the async lane: adopt it instead of paying a
                    // demand copy.
                    match pf.as_deref_mut().and_then(|p| p.adopt(r as u32)) {
                        Some(done_at) => {
                            adopted_bytes += len;
                            stall_until = stall_until.max(done_at);
                        }
                        None => copy_bytes += len,
                    }
                }
                TransferDecision::Stage => {
                    self.stats.pool_fallbacks += 1;
                    self.policy.note_zero_copy(r, density);
                }
                TransferDecision::ZeroCopy => {
                    self.policy.note_zero_copy(r, density);
                }
            }
        }
        self.touched.clear();
        if staged_count > 0 {
            self.stats.staging_rounds += 1;
        }
        if copy_bytes > 0 {
            machine.memcpy_to_device(copy_bytes);
        }
        if let Some(p) = pf {
            if adopted_bytes > 0 {
                // The adopted bytes crossed the link on the speculative
                // lane; charge them to the traffic counters exactly as
                // the synchronous batched copy would have (at most one
                // partial region exists, so the alignment rounding splits
                // exactly between the demand and adopted shares).
                machine.account_async_stage(adopted_bytes);
                let hidden_estimate = p.sync_cost_delta(copy_bytes, adopted_bytes);
                let wait = stall_until.saturating_sub(machine.now);
                if wait > 0 {
                    p.stats.stall_ns += wait;
                    machine.now = stall_until;
                }
                p.stats.hidden_ns += hidden_estimate.saturating_sub(wait);
            }
            // Re-charge surviving speculative stages from what the
            // demand decisions left over; evict the rest.
            self.spec_charged = p.recharge(&mut self.pool_left);
        }
        staged_count > 0
    }

    /// Feed the asynchronous copy lane for the next iteration: rank
    /// not-yet-staged regions by predicted reuse (a pure function of this
    /// round's planner state) and issue speculative stages into the
    /// prefetcher's bounded pool slice. Call right after
    /// [`plan_pipelined`](Self::plan_pipelined), at iteration start, so
    /// the copies overlap the kernel that follows.
    pub fn prefetch_for_next(&mut self, at: Time, pf: &mut Prefetcher) {
        pf.observe_round(at, &self.last_touched);
        let wanted = pf.rank_candidates(
            &self.policy,
            &self.table,
            &self.last_touched,
            self.region_bytes,
            self.len_bytes,
        );
        for r in wanted {
            let len = self.region_len(r as usize);
            let charge = len.div_ceil(128) * 128;
            // Make room in the bounded slice: evict the oldest
            // speculative stages (stale predictions), crediting their
            // pool charges back.
            while pf.slice_used() + charge > pf.slice_bytes() {
                let Some(freed) = pf.evict_oldest() else {
                    break;
                };
                self.spec_charged -= freed;
                self.pool_left += freed;
            }
            if pf.slice_used() + charge > pf.slice_bytes() {
                break; // a region larger than the whole slice
            }
            if self.pool_left < charge {
                break; // speculate only into real pool slack
            }
            self.pool_left -= charge;
            self.spec_charged += charge;
            pf.issue(r, len, charge, at);
        }
    }

    /// One-call planning hook for a kernel launch: note every byte range
    /// the launch will read (frontier-driven callers pass one range per
    /// active neighbour list, full-sweep callers the whole array) and run
    /// the staging decision. Returns whether the translation table
    /// changed, i.e. whether callers must refresh their [`RegionMap`].
    pub fn plan_iteration(
        &mut self,
        machine: &mut Machine,
        ranges: impl IntoIterator<Item = (u64, u64)>,
    ) -> bool {
        for (lo, hi) in ranges {
            self.note_upcoming(lo, hi);
        }
        self.plan(machine)
    }

    /// [`plan_iteration`](Self::plan_iteration) over the pipelined path:
    /// identical noting, then [`plan_pipelined`](Self::plan_pipelined).
    pub fn plan_iteration_pipelined(
        &mut self,
        machine: &mut Machine,
        ranges: impl IntoIterator<Item = (u64, u64)>,
        prefetcher: &mut Prefetcher,
    ) -> bool {
        for (lo, hi) in ranges {
            self.note_upcoming(lo, hi);
        }
        self.plan_pipelined(machine, prefetcher)
    }

    /// Snapshot of the translation table for the kernel address path.
    pub fn region_map(&self) -> RegionMap {
        RegionMap {
            shift: self.shift,
            table: self.table.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use emogi_uvm::TransferPolicyConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::v100_gen3())
    }

    fn cfg(region_bytes: u64, pool: Option<u64>) -> TransferConfig {
        TransferConfig {
            region_bytes,
            pool_bytes: pool,
            policy: TransferPolicyConfig::default(),
        }
    }

    #[test]
    fn regions_cover_the_array() {
        let m = machine();
        let tm = TransferManager::new(&m, 200 << 10, cfg(64 << 10, None));
        assert_eq!(tm.num_regions(), 4);
        assert_eq!(tm.region_len(0), 64 << 10);
        assert_eq!(tm.region_len(3), 8 << 10, "last region is partial");
    }

    #[test]
    fn dense_upcoming_region_is_staged_and_copied() {
        let mut m = machine();
        m.alloc_host_pinned(128 << 10);
        let mut tm = TransferManager::new(&m, 128 << 10, cfg(64 << 10, None));
        tm.note_upcoming(0, 64 << 10); // region 0 fully read next iteration
        tm.note_upcoming(80 << 10, 81 << 10); // region 1 barely touched
        let before = m.now;
        tm.plan(&mut m);
        assert!(tm.is_staged(0));
        assert!(!tm.is_staged(1));
        assert_eq!(tm.stats.staged_bytes, 64 << 10);
        assert_eq!(
            m.dma.bytes_to_device,
            64 << 10,
            "staging used the DMA engine"
        );
        assert!(m.now > before, "bulk copy advances the clock");
        // Translation: offsets in region 0 map into device space.
        let map = tm.region_map();
        let dev = map.translate(4096).expect("staged");
        assert!(dev < crate::alloc::HOST_BASE);
        assert_eq!(map.translate(64 << 10), None, "region 1 stays zero-copy");
    }

    #[test]
    fn sparse_traffic_accumulates_then_stages() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 64 << 10, cfg(64 << 10, None));
        // 0.41-dense iterations: decisions stay zero-copy until
        // cumulative + upcoming density reaches the ski-rental point
        // (1.5), i.e. on the fourth round (3 x 0.41 + 0.41 = 1.63).
        for round in 0..4 {
            tm.note_upcoming(0, 26 << 10);
            tm.plan(&mut m);
            let staged = tm.is_staged(0);
            match round {
                0..=2 => assert!(!staged, "round {round} must stay zero-copy"),
                _ => assert!(staged, "cumulative reuse must trigger staging"),
            }
        }
        assert_eq!(tm.stats.staging_rounds, 1);
    }

    #[test]
    fn pool_exhaustion_falls_back_to_zero_copy() {
        let mut m = machine();
        // Pool holds exactly one region.
        let mut tm = TransferManager::new(&m, 256 << 10, cfg(64 << 10, Some(64 << 10)));
        tm.note_upcoming(0, 256 << 10); // all four regions fully dense
        tm.plan(&mut m);
        assert_eq!(tm.stats.staged_regions, 1);
        assert_eq!(tm.stats.pool_fallbacks, 3);
        assert_eq!(tm.pool_left(), 0);
        assert!(tm.is_staged(0) && !tm.is_staged(1));
        // The fallen-back regions keep accruing zero-copy history.
        tm.note_upcoming(64 << 10, 128 << 10);
        tm.plan(&mut m);
        assert_eq!(tm.stats.pool_fallbacks, 4);
    }

    #[test]
    fn partial_region_budgets_its_rounded_allocation() {
        let mut m = machine();
        // One 8000-byte (non-128-multiple) region; a pool of exactly
        // 8000 bytes cannot hold its 8064-byte rounded allocation, so
        // staging must fall back rather than underflow the budget.
        let mut tm = TransferManager::new(&m, 8_000, cfg(64 << 10, Some(8_000)));
        tm.note_upcoming(0, 8_000);
        assert!(!tm.plan(&mut m));
        assert!(!tm.is_staged(0));
        assert_eq!(tm.stats.pool_fallbacks, 1);
        assert_eq!(tm.pool_left(), 8_000);
        // With the rounded size available the region stages fine.
        let mut tm = TransferManager::new(&m, 8_000, cfg(64 << 10, Some(8_064)));
        tm.note_upcoming(0, 8_000);
        assert!(tm.plan(&mut m));
        assert!(tm.is_staged(0));
        assert_eq!(tm.pool_left(), 0);
    }

    #[test]
    fn pool_is_capped_by_free_device_memory() {
        let mut m = machine();
        let free = m.spaces.device_free();
        m.alloc_device(free - (64 << 10));
        let tm = TransferManager::new(&m, 1 << 20, cfg(64 << 10, None));
        assert_eq!(tm.pool_left(), 64 << 10);
    }

    #[test]
    fn staged_region_is_not_replanned() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 64 << 10, cfg(64 << 10, None));
        tm.note_upcoming(0, 64 << 10);
        tm.plan(&mut m);
        assert_eq!(tm.stats.staged_regions, 1);
        let copied = m.dma.bytes_to_device;
        tm.note_upcoming(0, 64 << 10);
        tm.plan(&mut m);
        assert_eq!(tm.stats.staged_regions, 1, "no double staging");
        assert_eq!(m.dma.bytes_to_device, copied, "no repeat copy");
    }

    #[test]
    fn overlapping_notes_saturate_at_region_size() {
        let m = machine();
        let mut tm = TransferManager::new(&m, 64 << 10, cfg(64 << 10, None));
        for _ in 0..8 {
            tm.note_upcoming(0, 32 << 10);
        }
        assert_eq!(tm.upcoming[0], 64 << 10, "clamped to the region size");
    }

    #[test]
    fn plan_iteration_notes_then_plans() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 128 << 10, cfg(64 << 10, None));
        let changed = tm.plan_iteration(&mut m, [(0u64, 64 << 10), (80 << 10, 81 << 10)]);
        assert!(changed, "dense region 0 must stage");
        assert!(tm.is_staged(0) && !tm.is_staged(1));
        assert!(
            !tm.plan_iteration(&mut m, std::iter::empty()),
            "nothing new to stage"
        );
    }

    #[test]
    fn stats_diff_and_accumulate() {
        let a = TransferStats {
            staged_regions: 3,
            staged_bytes: 300,
            pool_fallbacks: 1,
            staging_rounds: 2,
        };
        let b = TransferStats {
            staged_regions: 1,
            staged_bytes: 100,
            pool_fallbacks: 0,
            staging_rounds: 1,
        };
        let d = a - b;
        assert_eq!(d.staged_regions, 2);
        assert_eq!(d.staged_bytes, 200);
        let mut acc = TransferStats::default();
        acc += d;
        acc += b;
        assert_eq!(acc, a);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_region_rejected() {
        let m = machine();
        let _ = TransferManager::new(&m, 1 << 20, cfg(48 << 10, None));
    }

    // ----------------------------------------------- pipelined path

    use crate::prefetch::{PrefetchConfig, Prefetcher};
    use emogi_sim::pipeline::CopyEngineConfig;

    fn prefetcher(m: &Machine, tm: &TransferManager) -> Prefetcher {
        Prefetcher::new(
            tm.num_regions(),
            PrefetchConfig::default(),
            CopyEngineConfig::from_pcie(&m.cfg.pcie),
        )
    }

    /// The sparse-accumulation scenario, pipelined: the prefetcher spots
    /// region 0 once its score crosses the margin, speculates it onto the
    /// lane, and the round that finally stages it adopts the copy — all
    /// decision and traffic counters equal to the synchronous twin.
    #[test]
    fn adopted_prefetch_skips_the_demand_copy_but_counts_identical_traffic() {
        let mut ms = machine();
        let mut tms = TransferManager::new(&ms, 64 << 10, cfg(64 << 10, None));
        let mut mp = machine();
        let mut tmp = TransferManager::new(&mp, 64 << 10, cfg(64 << 10, None));
        let mut pf = prefetcher(&mp, &tmp);

        for _ in 0..4 {
            tms.note_upcoming(0, 26 << 10);
            tms.plan(&mut ms);
            tmp.note_upcoming(0, 26 << 10);
            tmp.plan_pipelined(&mut mp, &mut pf);
            tmp.prefetch_for_next(mp.now, &mut pf);
        }
        assert!(tms.is_staged(0) && tmp.is_staged(0));
        assert_eq!(tmp.stats, tms.stats, "decision counters identical");
        assert_eq!(pf.stats.prefetched_regions, 1);
        assert_eq!(pf.stats.hit_regions, 1, "the speculative copy was adopted");
        assert_eq!(pf.stats.hit_bytes, 64 << 10);
        assert_eq!(pf.stats.wasted_bytes, 0);
        // Traffic counters: the adopted copy is retro-accounted so the
        // pipelined machine reports byte-identical DMA/DRAM/monitor
        // traffic to the synchronous one.
        assert_eq!(mp.dma.bytes_to_device, ms.dma.bytes_to_device);
        assert_eq!(mp.monitor.dma_bytes, ms.monitor.dma_bytes);
        assert_eq!(mp.monitor.wire_bytes, ms.monitor.wire_bytes);
        assert_eq!(mp.host_dram.bytes_read, ms.host_dram.bytes_read);
        assert_eq!(mp.hbm.bytes_written, ms.hbm.bytes_written);
        // Pool accounting settles back to the synchronous value once the
        // speculative charge is consumed by the adoption.
        assert_eq!(tmp.pool_left(), tms.pool_left());
    }

    /// Speculative charges never change staging decisions: with a pool of
    /// exactly one region, a speculative stage of the *wrong* region is
    /// settled back before the decision round, so the dense region still
    /// wins the pool and the misprediction only costs wasted bytes.
    #[test]
    fn speculative_charge_never_steals_the_pool_from_demand_staging() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 128 << 10, cfg(64 << 10, Some(64 << 10)));
        let mut pf = prefetcher(&m, &tm);
        // Make region 1 look hot so the prefetcher speculates it.
        for _ in 0..3 {
            tm.note_upcoming(64 << 10, 90 << 10);
            tm.plan_pipelined(&mut m, &mut pf);
            tm.prefetch_for_next(m.now, &mut pf);
        }
        assert!(pf.is_speculative(1), "region 1 speculated");
        assert_eq!(tm.pool_left(), 0, "slack fully charged to the speculation");
        // Now region 0 arrives fully dense: it must stage exactly as it
        // would synchronously; the speculation is evicted, not the stage.
        tm.note_upcoming(0, 64 << 10);
        assert!(tm.plan_pipelined(&mut m, &mut pf));
        assert!(tm.is_staged(0));
        assert!(!pf.is_speculative(1), "speculation evicted at recharge");
        assert_eq!(pf.stats.wasted_bytes, 64 << 10);
        assert_eq!(tm.pool_left(), 0);
    }

    /// The `reserve` double-count fix: a permanent reservation consumes
    /// speculative headroom, and the evicted speculation's charge must
    /// not resurrect pool budget at the next settle.
    #[test]
    fn reserve_consumes_speculative_headroom_without_double_counting() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 128 << 10, cfg(64 << 10, Some(64 << 10)));
        let mut pf = prefetcher(&m, &tm);
        for _ in 0..3 {
            tm.note_upcoming(64 << 10, 90 << 10);
            tm.plan_pipelined(&mut m, &mut pf);
            tm.prefetch_for_next(m.now, &mut pf);
        }
        assert!(pf.is_speculative(1));
        assert_eq!(tm.pool_left(), 0);
        assert_eq!(tm.spec_charged, 64 << 10);
        // Reserve the whole pool: the speculative charge is the only
        // headroom left, so it must be consumed — not just `pool_left`
        // saturated to zero with the charge still outstanding.
        tm.reserve(64 << 10);
        assert_eq!(tm.spec_charged, 0);
        assert_eq!(tm.pool_left(), 0);
        // The next round settles: the speculation is evicted (its budget
        // is gone) and — the regression this guards — no pool bytes
        // reappear from the stale charge.
        tm.note_upcoming(0, 64 << 10);
        tm.plan_pipelined(&mut m, &mut pf);
        assert!(!tm.is_staged(0), "pool is fully reserved");
        assert!(!pf.is_speculative(1), "orphaned speculation evicted");
        assert_eq!(tm.pool_left(), 0, "no budget resurrected");
        assert_eq!(pf.stats.wasted_bytes, 64 << 10);
    }

    /// With no prefetcher in the loop the pipelined entry points are the
    /// synchronous ones (same decisions, same clock).
    #[test]
    fn plan_pipelined_without_speculation_matches_plan_exactly() {
        let mut ms = machine();
        let mut tms = TransferManager::new(&ms, 256 << 10, cfg(64 << 10, None));
        let mut mp = machine();
        let mut tmp = TransferManager::new(&mp, 256 << 10, cfg(64 << 10, None));
        // A prefetcher with a zero-byte slice can never issue.
        let mut pf = Prefetcher::new(
            tmp.num_regions(),
            PrefetchConfig {
                slice_bytes: 0,
                ..PrefetchConfig::default()
            },
            CopyEngineConfig::from_pcie(&mp.cfg.pcie),
        );
        for _ in 0..3 {
            let a = tms.plan_iteration(&mut ms, [(0u64, 200u64 << 10)]);
            let b = tmp.plan_iteration_pipelined(&mut mp, [(0u64, 200u64 << 10)], &mut pf);
            tmp.prefetch_for_next(mp.now, &mut pf);
            assert_eq!(a, b);
        }
        assert_eq!(tmp.stats, tms.stats);
        assert_eq!(mp.now, ms.now, "clocks identical without speculation");
        assert_eq!(pf.stats, crate::prefetch::PrefetchStats::default());
    }
}
