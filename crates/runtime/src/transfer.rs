//! Hybrid zero-copy / DMA transfer manager.
//!
//! One [`TransferManager`] watches a pinned-host array (the edge list) in
//! fixed-size regions. Before each kernel iteration the traversal driver
//! reports exactly which byte ranges the iteration will read
//! ([`note_upcoming`](TransferManager::note_upcoming) — the frontier
//! determines this precisely), then calls
//! [`plan`](TransferManager::plan): the [`emogi_uvm::TransferPolicy`]
//! picks, per touched region, between staying zero-copy and staging the
//! region into device memory with one bulk DMA copy through the machine's
//! [`emogi_sim::DmaEngine`]. Staged regions are recorded in a
//! [`RegionMap`] that the kernel-side address computation consults, so
//! their reads are priced as cache-fronted HBM instead of PCIe.
//!
//! Device memory for staged regions comes from a bounded pool carved out
//! of the machine's free device capacity ([`crate::alloc`]); when the
//! pool runs dry the manager falls back to zero-copy for the remaining
//! regions (and keeps feeding the policy, so accounting stays truthful).
//! Nothing is ever un-staged: the simulated workloads only grow hotter
//! with iteration count, and a bounded pool plus fallback keeps the model
//! honest without an eviction clock.

use crate::machine::Machine;
use emogi_uvm::{TransferDecision, TransferPolicy, TransferPolicyConfig};

/// Sentinel in a [`RegionMap`] table: region not staged.
pub const UNMAPPED: u64 = u64::MAX;

/// How to build a [`TransferManager`].
#[derive(Debug, Clone)]
pub struct TransferConfig {
    /// Region granularity in bytes; a power of two, at least one 128-byte
    /// cache line (so no line ever straddles a region boundary).
    pub region_bytes: u64,
    /// Device-pool budget for staged regions; `None` takes all device
    /// memory still free after the explicit allocations.
    pub pool_bytes: Option<u64>,
    /// The stage-or-stay-zero-copy decision policy.
    pub policy: TransferPolicyConfig,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            region_bytes: 64 << 10,
            pool_bytes: None,
            policy: TransferPolicyConfig::default(),
        }
    }
}

/// Staged-region address translation table, cheap to clone into whoever
/// computes kernel addresses.
#[derive(Debug, Clone)]
pub struct RegionMap {
    shift: u32,
    /// Region index -> device base address, or [`UNMAPPED`].
    table: Vec<u64>,
}

impl RegionMap {
    /// Translate a byte offset within the watched array: `Some(device
    /// address)` when the offset's region is staged.
    #[inline]
    pub fn translate(&self, offset: u64) -> Option<u64> {
        let dev = self.table[(offset >> self.shift) as usize];
        if dev == UNMAPPED {
            None
        } else {
            Some(dev + (offset & ((1u64 << self.shift) - 1)))
        }
    }

    /// Regions the watched array is divided into.
    pub fn num_regions(&self) -> usize {
        self.table.len()
    }

    /// Regions currently staged on the device.
    pub fn staged_regions(&self) -> usize {
        self.table.iter().filter(|&&d| d != UNMAPPED).count()
    }
}

/// Counters for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Regions staged into device memory so far.
    pub staged_regions: u64,
    /// Bytes bulk-copied for staging.
    pub staged_bytes: u64,
    /// Stage decisions that fell back to zero-copy because the device
    /// pool was exhausted.
    pub pool_fallbacks: u64,
    /// Planning rounds that staged at least one region.
    pub staging_rounds: u64,
}

impl std::ops::Sub for TransferStats {
    type Output = TransferStats;

    /// Diff two snapshots of the (monotonically growing) counters, for
    /// per-run reporting.
    fn sub(self, base: TransferStats) -> TransferStats {
        TransferStats {
            staged_regions: self.staged_regions - base.staged_regions,
            staged_bytes: self.staged_bytes - base.staged_bytes,
            pool_fallbacks: self.pool_fallbacks - base.pool_fallbacks,
            staging_rounds: self.staging_rounds - base.staging_rounds,
        }
    }
}

impl std::ops::AddAssign for TransferStats {
    /// Accumulate per-run diffs (e.g. across the queries of a scenario).
    fn add_assign(&mut self, other: TransferStats) {
        self.staged_regions += other.staged_regions;
        self.staged_bytes += other.staged_bytes;
        self.pool_fallbacks += other.pool_fallbacks;
        self.staging_rounds += other.staging_rounds;
    }
}

/// The per-array hybrid transfer manager.
#[derive(Debug)]
pub struct TransferManager {
    region_bytes: u64,
    shift: u32,
    /// Total bytes of the watched array.
    len_bytes: u64,
    policy: TransferPolicy,
    /// Region -> staged device base ([`UNMAPPED`] when zero-copy).
    table: Vec<u64>,
    /// Scratch: bytes the upcoming iteration reads, per region.
    upcoming: Vec<u64>,
    /// Scratch: regions with nonzero `upcoming`, in first-touch order.
    touched: Vec<u32>,
    pool_left: u64,
    /// Monotonically growing lifetime counters; snapshot and diff for
    /// per-run reporting.
    pub stats: TransferStats,
}

impl TransferManager {
    /// Watch `len_bytes` of pinned host memory on `machine`. The pool
    /// budget is capped by the device memory still free at this point.
    pub fn new(machine: &Machine, len_bytes: u64, cfg: TransferConfig) -> Self {
        assert!(
            cfg.region_bytes.is_power_of_two() && cfg.region_bytes >= 128,
            "region_bytes must be a power of two >= 128, got {}",
            cfg.region_bytes
        );
        let regions = len_bytes.div_ceil(cfg.region_bytes) as usize;
        let pool_left = cfg
            .pool_bytes
            .unwrap_or(u64::MAX)
            .min(machine.spaces.device_free());
        Self {
            region_bytes: cfg.region_bytes,
            shift: cfg.region_bytes.trailing_zeros(),
            len_bytes,
            policy: TransferPolicy::new(regions, cfg.policy),
            table: vec![UNMAPPED; regions],
            upcoming: vec![0; regions],
            touched: Vec::new(),
            pool_left,
            stats: TransferStats::default(),
        }
    }

    /// Regions the watched array is divided into.
    pub fn num_regions(&self) -> usize {
        self.table.len()
    }

    /// Region granularity in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// Device-pool bytes still available for staging.
    pub fn pool_left(&self) -> u64 {
        self.pool_left
    }

    /// Inform the manager that `bytes` of device memory were allocated
    /// outside it after construction (e.g. the engine's batch-query
    /// status arrays): the staging pool shrinks accordingly, so the
    /// combined usage never exceeds the device capacity. Saturates at
    /// zero — staging then simply falls back to zero-copy.
    pub fn reserve(&mut self, bytes: u64) {
        self.pool_left = self.pool_left.saturating_sub(bytes.div_ceil(128) * 128);
    }

    /// Whether `region` has been staged into device memory.
    pub fn is_staged(&self, region: usize) -> bool {
        self.table[region] != UNMAPPED
    }

    /// Regions staged so far over the manager's lifetime.
    pub fn staged_regions(&self) -> usize {
        self.stats.staged_regions as usize
    }

    /// Actual bytes of region `r` (the last region may be partial).
    fn region_len(&self, r: usize) -> u64 {
        let start = r as u64 * self.region_bytes;
        self.region_bytes.min(self.len_bytes - start)
    }

    /// Report that the upcoming iteration reads byte range `[lo, hi)` of
    /// the watched array. Ranges may overlap region boundaries and each
    /// other; per-region bytes saturate at the region size.
    pub fn note_upcoming(&mut self, lo: u64, hi: u64) {
        debug_assert!(lo <= hi && hi <= self.len_bytes, "range {lo}..{hi}");
        if lo == hi {
            return;
        }
        let first = (lo >> self.shift) as usize;
        let last = ((hi - 1) >> self.shift) as usize;
        for r in first..=last {
            let r_start = r as u64 * self.region_bytes;
            let r_end = r_start + self.region_len(r);
            let bytes = hi.min(r_end) - lo.max(r_start);
            if self.upcoming[r] == 0 {
                self.touched.push(r as u32);
            }
            self.upcoming[r] = (self.upcoming[r] + bytes).min(self.region_len(r));
        }
    }

    /// Decide and execute this iteration's stagings: consult the policy
    /// for every touched, not-yet-staged region, allocate device memory
    /// for the winners while the pool lasts, and issue one batched bulk
    /// copy for all of them (the copies queue back-to-back on the DMA
    /// engine, so the launch overhead is paid once per round). Clears the
    /// upcoming-iteration scratch. Returns whether any region was staged
    /// this round (i.e. whether the translation table changed).
    pub fn plan(&mut self, machine: &mut Machine) -> bool {
        // First-touch order follows the frontier, which is sorted by the
        // traversal drivers — sort to be robust against unsorted callers
        // (determinism, and allocation order independent of touch order).
        self.touched.sort_unstable();
        let mut copy_bytes = 0u64;
        for i in 0..self.touched.len() {
            let r = self.touched[i] as usize;
            let bytes = std::mem::take(&mut self.upcoming[r]);
            if self.table[r] != UNMAPPED {
                continue; // already on device; reads go to HBM
            }
            let len = self.region_len(r);
            // The allocator rounds to 128-byte lines; budget the rounded
            // size so the pool never outruns real capacity (a partial
            // last region is smaller than its allocation).
            let need = len.div_ceil(128) * 128;
            let density = bytes as f64 / len as f64;
            match self.policy.decide(r, density.min(1.0)) {
                TransferDecision::Stage if self.pool_left >= need => {
                    self.table[r] = machine.alloc_device(len);
                    self.pool_left -= need;
                    copy_bytes += len;
                    self.stats.staged_regions += 1;
                    self.stats.staged_bytes += len;
                }
                TransferDecision::Stage => {
                    self.stats.pool_fallbacks += 1;
                    self.policy.note_zero_copy(r, density);
                }
                TransferDecision::ZeroCopy => {
                    self.policy.note_zero_copy(r, density);
                }
            }
        }
        self.touched.clear();
        if copy_bytes > 0 {
            self.stats.staging_rounds += 1;
            machine.memcpy_to_device(copy_bytes);
        }
        copy_bytes > 0
    }

    /// One-call planning hook for a kernel launch: note every byte range
    /// the launch will read (frontier-driven callers pass one range per
    /// active neighbour list, full-sweep callers the whole array) and run
    /// the staging decision. Returns whether the translation table
    /// changed, i.e. whether callers must refresh their [`RegionMap`].
    pub fn plan_iteration(
        &mut self,
        machine: &mut Machine,
        ranges: impl IntoIterator<Item = (u64, u64)>,
    ) -> bool {
        for (lo, hi) in ranges {
            self.note_upcoming(lo, hi);
        }
        self.plan(machine)
    }

    /// Snapshot of the translation table for the kernel address path.
    pub fn region_map(&self) -> RegionMap {
        RegionMap {
            shift: self.shift,
            table: self.table.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use emogi_uvm::TransferPolicyConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::v100_gen3())
    }

    fn cfg(region_bytes: u64, pool: Option<u64>) -> TransferConfig {
        TransferConfig {
            region_bytes,
            pool_bytes: pool,
            policy: TransferPolicyConfig::default(),
        }
    }

    #[test]
    fn regions_cover_the_array() {
        let m = machine();
        let tm = TransferManager::new(&m, 200 << 10, cfg(64 << 10, None));
        assert_eq!(tm.num_regions(), 4);
        assert_eq!(tm.region_len(0), 64 << 10);
        assert_eq!(tm.region_len(3), 8 << 10, "last region is partial");
    }

    #[test]
    fn dense_upcoming_region_is_staged_and_copied() {
        let mut m = machine();
        m.alloc_host_pinned(128 << 10);
        let mut tm = TransferManager::new(&m, 128 << 10, cfg(64 << 10, None));
        tm.note_upcoming(0, 64 << 10); // region 0 fully read next iteration
        tm.note_upcoming(80 << 10, 81 << 10); // region 1 barely touched
        let before = m.now;
        tm.plan(&mut m);
        assert!(tm.is_staged(0));
        assert!(!tm.is_staged(1));
        assert_eq!(tm.stats.staged_bytes, 64 << 10);
        assert_eq!(
            m.dma.bytes_to_device,
            64 << 10,
            "staging used the DMA engine"
        );
        assert!(m.now > before, "bulk copy advances the clock");
        // Translation: offsets in region 0 map into device space.
        let map = tm.region_map();
        let dev = map.translate(4096).expect("staged");
        assert!(dev < crate::alloc::HOST_BASE);
        assert_eq!(map.translate(64 << 10), None, "region 1 stays zero-copy");
    }

    #[test]
    fn sparse_traffic_accumulates_then_stages() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 64 << 10, cfg(64 << 10, None));
        // 0.41-dense iterations: decisions stay zero-copy until
        // cumulative + upcoming density reaches the ski-rental point
        // (1.5), i.e. on the fourth round (3 x 0.41 + 0.41 = 1.63).
        for round in 0..4 {
            tm.note_upcoming(0, 26 << 10);
            tm.plan(&mut m);
            let staged = tm.is_staged(0);
            match round {
                0..=2 => assert!(!staged, "round {round} must stay zero-copy"),
                _ => assert!(staged, "cumulative reuse must trigger staging"),
            }
        }
        assert_eq!(tm.stats.staging_rounds, 1);
    }

    #[test]
    fn pool_exhaustion_falls_back_to_zero_copy() {
        let mut m = machine();
        // Pool holds exactly one region.
        let mut tm = TransferManager::new(&m, 256 << 10, cfg(64 << 10, Some(64 << 10)));
        tm.note_upcoming(0, 256 << 10); // all four regions fully dense
        tm.plan(&mut m);
        assert_eq!(tm.stats.staged_regions, 1);
        assert_eq!(tm.stats.pool_fallbacks, 3);
        assert_eq!(tm.pool_left(), 0);
        assert!(tm.is_staged(0) && !tm.is_staged(1));
        // The fallen-back regions keep accruing zero-copy history.
        tm.note_upcoming(64 << 10, 128 << 10);
        tm.plan(&mut m);
        assert_eq!(tm.stats.pool_fallbacks, 4);
    }

    #[test]
    fn partial_region_budgets_its_rounded_allocation() {
        let mut m = machine();
        // One 8000-byte (non-128-multiple) region; a pool of exactly
        // 8000 bytes cannot hold its 8064-byte rounded allocation, so
        // staging must fall back rather than underflow the budget.
        let mut tm = TransferManager::new(&m, 8_000, cfg(64 << 10, Some(8_000)));
        tm.note_upcoming(0, 8_000);
        assert!(!tm.plan(&mut m));
        assert!(!tm.is_staged(0));
        assert_eq!(tm.stats.pool_fallbacks, 1);
        assert_eq!(tm.pool_left(), 8_000);
        // With the rounded size available the region stages fine.
        let mut tm = TransferManager::new(&m, 8_000, cfg(64 << 10, Some(8_064)));
        tm.note_upcoming(0, 8_000);
        assert!(tm.plan(&mut m));
        assert!(tm.is_staged(0));
        assert_eq!(tm.pool_left(), 0);
    }

    #[test]
    fn pool_is_capped_by_free_device_memory() {
        let mut m = machine();
        let free = m.spaces.device_free();
        m.alloc_device(free - (64 << 10));
        let tm = TransferManager::new(&m, 1 << 20, cfg(64 << 10, None));
        assert_eq!(tm.pool_left(), 64 << 10);
    }

    #[test]
    fn staged_region_is_not_replanned() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 64 << 10, cfg(64 << 10, None));
        tm.note_upcoming(0, 64 << 10);
        tm.plan(&mut m);
        assert_eq!(tm.stats.staged_regions, 1);
        let copied = m.dma.bytes_to_device;
        tm.note_upcoming(0, 64 << 10);
        tm.plan(&mut m);
        assert_eq!(tm.stats.staged_regions, 1, "no double staging");
        assert_eq!(m.dma.bytes_to_device, copied, "no repeat copy");
    }

    #[test]
    fn overlapping_notes_saturate_at_region_size() {
        let m = machine();
        let mut tm = TransferManager::new(&m, 64 << 10, cfg(64 << 10, None));
        for _ in 0..8 {
            tm.note_upcoming(0, 32 << 10);
        }
        assert_eq!(tm.upcoming[0], 64 << 10, "clamped to the region size");
    }

    #[test]
    fn plan_iteration_notes_then_plans() {
        let mut m = machine();
        let mut tm = TransferManager::new(&m, 128 << 10, cfg(64 << 10, None));
        let changed = tm.plan_iteration(&mut m, [(0u64, 64 << 10), (80 << 10, 81 << 10)]);
        assert!(changed, "dense region 0 must stage");
        assert!(tm.is_staged(0) && !tm.is_staged(1));
        assert!(
            !tm.plan_iteration(&mut m, std::iter::empty()),
            "nothing new to stage"
        );
    }

    #[test]
    fn stats_diff_and_accumulate() {
        let a = TransferStats {
            staged_regions: 3,
            staged_bytes: 300,
            pool_fallbacks: 1,
            staging_rounds: 2,
        };
        let b = TransferStats {
            staged_regions: 1,
            staged_bytes: 100,
            pool_fallbacks: 0,
            staging_rounds: 1,
        };
        let d = a - b;
        assert_eq!(d.staged_regions, 2);
        assert_eq!(d.staged_bytes, 200);
        let mut acc = TransferStats::default();
        acc += d;
        acc += b;
        assert_eq!(acc, a);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_region_rejected() {
        let m = machine();
        let _ = TransferManager::new(&m, 1 << 20, cfg(48 << 10, None));
    }
}
